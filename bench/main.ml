(* The benchmark harness: one experiment per measurable claim of the
   paper (the paper is a theory paper with no empirical tables, so the
   experiment set E1..E10 defined in DESIGN.md §3 validates each theorem
   and the motivating application; EXPERIMENTS.md records expected vs
   measured for every table printed here).

   Run with: dune exec bench/main.exe
   Options:  --only E1,E5      run a subset of the experiments
             --json [FILE]     also emit machine-readable results
                               (name, headline ratio, wall seconds)
             --baseline FILE   compare wall seconds against a previous
                               --json dump; exit nonzero if any selected
                               experiment regressed more than 2x *)

module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module Lower_bounds = Rebal_core.Lower_bounds
module Greedy = Rebal_algo.Greedy
module M_partition = Rebal_algo.M_partition
module Local_search = Rebal_algo.Local_search
module Lpt = Rebal_algo.Lpt
module Exact = Rebal_algo.Exact
module BP = Rebal_algo.Budgeted_partition
module Ptas = Rebal_algo.Ptas
module Gap = Rebal_lp.Gap
module Dist = Rebal_workloads.Dist
module Gen = Rebal_workloads.Gen
module Rng = Rebal_workloads.Rng
module Tight = Rebal_workloads.Tight
module Table = Rebal_harness.Table
module Stats = Rebal_harness.Stats
module Timer = Rebal_harness.Timer
module Metrics = Rebal_obs.Metrics
module Journal = Rebal_obs.Journal
module Indexed_heap = Rebal_ds.Indexed_heap

let ratio = Stats.ratio
let pf = Printf.sprintf

let header title =
  Printf.printf "\n################ %s ################\n\n" title

(* ---------------------------------------------------------------------- *)
(* E1 — Theorem 1: GREEDY is a tight (2 - 1/m)-approximation.             *)
(* ---------------------------------------------------------------------- *)

let e1 () =
  header "E1: GREEDY tightness (Theorem 1)";
  let t = Table.create ~title:"adversarial family: one size-m job + m^2-m unit jobs, k = m-1"
      ~columns:[ "m"; "opt"; "greedy(asc)"; "greedy(desc)"; "ratio(asc)"; "bound 2-1/m" ]
  in
  List.iter
    (fun m ->
      let tight = Tight.greedy_tight ~m in
      let inst = tight.Tight.instance in
      let asc = Greedy.solve ~order:Greedy.Ascending inst ~k:tight.Tight.k in
      let desc = Greedy.solve ~order:Greedy.Descending inst ~k:tight.Tight.k in
      Table.add_row t
        [
          string_of_int m;
          string_of_int tight.Tight.opt;
          string_of_int (Assignment.makespan inst asc);
          string_of_int (Assignment.makespan inst desc);
          pf "%.4f" (ratio (Assignment.makespan inst asc) tight.Tight.opt);
          pf "%.4f" (2.0 -. (1.0 /. float_of_int m));
        ])
    [ 2; 4; 8; 16; 32; 64 ];
  Table.print t;
  (* On random workloads the measured ratio vs the exact optimum stays
     well below the guarantee. *)
  let rng = Rng.create 101 in
  let ratios = ref [] in
  for _ = 1 to 150 do
    let n = Rng.int_range rng 4 10 in
    let m = Rng.int_range rng 2 4 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 50) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~sizes ~m initial in
    let k = Rng.int_range rng 0 n in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Moves k) in
    let g = Assignment.makespan inst (Greedy.solve inst ~k) in
    ratios := ratio g opt :: !ratios
  done;
  let s = Stats.summarize (Array.of_list !ratios) in
  Printf.printf
    "random instances vs exact optimum (150 runs): mean ratio %.4f, max %.4f\n\
     (guarantee 2 - 1/m = 1.75 at m=4; the adversarial family above is what\n\
     makes the bound tight)\n"
    s.Stats.mean s.Stats.max;
  Some s.Stats.mean

(* ---------------------------------------------------------------------- *)
(* E2 — Theorems 2/3: M-PARTITION is a tight 1.5-approximation.           *)
(* ---------------------------------------------------------------------- *)

let e2 () =
  header "E2: M-PARTITION 1.5-approximation (Theorems 2 and 3)";
  let t = Table.create ~title:"adversarial 2-processor instance (scaled), k = 1"
      ~columns:[ "scale"; "opt"; "m-partition"; "ratio"; "bound" ]
  in
  List.iter
    (fun scale ->
      let tight = Tight.partition_tight ~scale () in
      let inst = tight.Tight.instance in
      let a = M_partition.solve inst ~k:tight.Tight.k in
      Table.add_row t
        [
          string_of_int scale;
          string_of_int tight.Tight.opt;
          string_of_int (Assignment.makespan inst a);
          pf "%.4f" (ratio (Assignment.makespan inst a) tight.Tight.opt);
          "1.5000";
        ])
    [ 1; 10; 100; 1000 ];
  Table.print t;
  let rng = Rng.create 102 in
  let mp_ratios = ref [] and g_ratios = ref [] in
  for _ = 1 to 200 do
    let n = Rng.int_range rng 4 10 in
    let m = Rng.int_range rng 2 4 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 50) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~sizes ~m initial in
    let k = Rng.int_range rng 0 n in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Moves k) in
    mp_ratios := ratio (Assignment.makespan inst (M_partition.solve inst ~k)) opt :: !mp_ratios;
    g_ratios := ratio (Assignment.makespan inst (Greedy.solve inst ~k)) opt :: !g_ratios
  done;
  let mp = Stats.summarize (Array.of_list !mp_ratios) in
  let g = Stats.summarize (Array.of_list !g_ratios) in
  let t2 = Table.create ~title:"random instances vs exact optimum (200 runs)"
      ~columns:[ "algorithm"; "mean ratio"; "p95"; "max"; "guarantee" ]
  in
  Table.add_row t2 [ "m-partition"; pf "%.4f" mp.Stats.mean; pf "%.4f" mp.Stats.p95; pf "%.4f" mp.Stats.max; "1.5" ];
  Table.add_row t2 [ "greedy"; pf "%.4f" g.Stats.mean; pf "%.4f" g.Stats.p95; pf "%.4f" g.Stats.max; "2 - 1/m" ];
  Table.print t2;
  Some mp.Stats.mean

(* ---------------------------------------------------------------------- *)
(* E3 — running time: O(n log n) scaling (Theorems 1 and 3).              *)
(* ---------------------------------------------------------------------- *)

let e3 () =
  header "E3: running time scaling (Bechamel, O(n log n) claim)";
  let open Bechamel in
  let open Toolkit in
  let make_instance n =
    let rng = Rng.create (1000 + n) in
    let dist = Dist.prepare (Dist.Zipf { ranks = 1000; alpha = 1.1; scale = 10_000 }) in
    Gen.random rng ~n ~m:64 ~dist ()
  in
  let sizes = [ 1_000; 4_000; 16_000; 64_000 ] in
  let tests =
    List.concat_map
      (fun n ->
        let inst = make_instance n in
        let k = n / 20 in
        [
          Test.make ~name:(pf "greedy/%d" n) (Staged.stage (fun () -> ignore (Greedy.solve inst ~k)));
          Test.make ~name:(pf "m-partition/%d" n)
            (Staged.stage (fun () -> ignore (M_partition.solve inst ~k)));
          Test.make ~name:(pf "lpt/%d" n) (Staged.stage (fun () -> ignore (Lpt.solve inst)));
        ])
      sizes
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (Test.make_grouped ~name:"E3" tests) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = Table.create ~title:"per-call wall time (OLS estimate)"
      ~columns:[ "algorithm"; "n"; "time (ms)"; "ns / (n log2 n)" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (ns :: _) -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  let sorted =
    List.sort
      (fun (a, _) (b, _) ->
        let algo s = List.nth (String.split_on_char '/' s) 1 in
        let size s = int_of_string (List.nth (String.split_on_char '/' s) 2) in
        if algo a <> algo b then compare (algo a) (algo b) else compare (size a) (size b))
      !rows
  in
  List.iter
    (fun (name, ns) ->
      let parts = String.split_on_char '/' name in
      let algo = List.nth parts 1 and n = int_of_string (List.nth parts 2) in
      let nlogn = float_of_int n *. (log (float_of_int n) /. log 2.0) in
      Table.add_row t [ algo; string_of_int n; pf "%.3f" (ns /. 1e6); pf "%.2f" (ns /. nlogn) ])
    sorted;
  Table.print t;
  print_endline
    "the last column is flat when the running time is Theta(n log n); greedy\n\
     and m-partition track lpt's constant within a small factor.";
  None

(* ---------------------------------------------------------------------- *)
(* E4 — solution quality across workloads at scale (vs lower bound).      *)
(* ---------------------------------------------------------------------- *)

let e4 () =
  header "E4: quality across workloads, n=2000 m=32 k=100 (vs lower bound)";
  let n = 2000 and m = 32 in
  let k = 100 in
  let workloads =
    [
      ("uniform", fun rng -> Gen.random rng ~n ~m ~dist:(Dist.prepare (Dist.Uniform { lo = 1; hi = 100 })) ());
      ("zipf", fun rng -> Gen.random rng ~n ~m ~dist:(Dist.prepare (Dist.Zipf { ranks = 1000; alpha = 1.1; scale = 5000 })) ());
      ( "bimodal",
        fun rng ->
          Gen.random rng ~n ~m
            ~dist:(Dist.prepare (Dist.Bimodal { small_lo = 1; small_hi = 20; big_lo = 200; big_hi = 400; big_prob = 0.05 }))
            () );
      ( "drifted",
        fun rng ->
          Gen.drifted rng ~n ~m ~dist:(Dist.prepare (Dist.Exponential { mean = 50.0 })) ~drift:0.3 () );
      ( "skewed",
        fun rng ->
          Gen.skewed rng ~n ~m ~dist:(Dist.prepare (Dist.Exponential { mean = 50.0 })) ~skew:1.2 () );
    ]
  in
  let t = Table.create ~title:"makespan / lower bound (and wall time, ms)"
      ~columns:[ "workload"; "initial"; "greedy"; "m-partition"; "local-search"; "lpt(k=inf)"; "mp ms" ]
  in
  let mp_acc = ref [] in
  List.iter
    (fun (name, build) ->
      let inst = build (Rng.create 103) in
      let lb = Lower_bounds.best inst ~budget:(Budget.Moves k) in
      (* lpt ignores the move budget, so it is measured against the
         budget-free bound (average / max size), not the k-bound. *)
      let lb_free = max (Lower_bounds.average inst) (Lower_bounds.max_size inst) in
      let cell a = pf "%.3f" (ratio (Assignment.makespan inst a) lb) in
      let mp, mp_time = Timer.time (fun () -> M_partition.solve inst ~k) in
      mp_acc := ratio (Assignment.makespan inst mp) lb :: !mp_acc;
      Table.add_row t
        [
          name;
          pf "%.3f" (ratio (Instance.initial_makespan inst) lb);
          cell (Greedy.solve inst ~k);
          cell mp;
          cell (Local_search.solve inst ~k);
          pf "%.3f" (ratio (Assignment.makespan inst (Lpt.solve inst)) lb_free);
          pf "%.1f" (mp_time *. 1e3);
        ])
    workloads;
  Table.print t;
  print_endline
    "m-partition stays within its 1.5 guarantee of the *lower bound* (hence\n\
     of OPT) everywhere; lpt ignores the move budget entirely and is the\n\
     what-if-moves-were-free reference.";
  Some (Stats.mean (Array.of_list !mp_acc))

(* ---------------------------------------------------------------------- *)
(* E5 — the moves/makespan tradeoff curve.                                *)
(* ---------------------------------------------------------------------- *)

let e5 () =
  header "E5: moves vs makespan tradeoff (drifted workload, n=1000 m=16)";
  let rng = Rng.create 104 in
  let dist = Dist.prepare (Dist.Exponential { mean = 60.0 }) in
  let inst = Gen.drifted rng ~n:1000 ~m:16 ~dist ~drift:0.25 () in
  let t = Table.create ~title:"makespan after at most k moves"
      ~columns:[ "k"; "greedy"; "m-partition"; "mp moves used"; "local-search"; "lower bound" ]
  in
  List.iter
    (fun k ->
      let mp = M_partition.solve inst ~k in
      Table.add_row t
        [
          string_of_int k;
          string_of_int (Assignment.makespan inst (Greedy.solve inst ~k));
          string_of_int (Assignment.makespan inst mp);
          string_of_int (Assignment.moves inst mp);
          string_of_int (Assignment.makespan inst (Local_search.solve inst ~k));
          string_of_int (Lower_bounds.best inst ~budget:(Budget.Moves k));
        ])
    [ 0; 1; 2; 4; 8; 16; 32; 64; 128; 256; 1000 ];
  Table.print t;
  None

(* ---------------------------------------------------------------------- *)
(* E6 — §3.2: arbitrary relocation costs within a budget.                 *)
(* ---------------------------------------------------------------------- *)

let e6 () =
  header "E6: arbitrary-cost rebalancing (Section 3.2)";
  (* Small instances against the exact optimum. *)
  let rng = Rng.create 105 in
  let ratios = ref [] in
  for _ = 1 to 100 do
    let n = Rng.int_range rng 4 9 in
    let m = Rng.int_range rng 2 4 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 30) in
    let costs = Array.init n (fun _ -> Rng.int_range rng 0 9) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~costs ~sizes ~m initial in
    let b = Rng.int_range rng 0 20 in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Cost b) in
    let a, _ = BP.solve inst ~budget:b in
    ratios := ratio (Assignment.makespan inst a) opt :: !ratios
  done;
  let s = Stats.summarize (Array.of_list !ratios) in
  Printf.printf
    "small instances vs exact (100 runs): mean ratio %.4f, p95 %.4f, max %.4f\n\
     (guarantee 1.5 * (1 + alpha) = 1.575 at alpha = 0.05)\n\n"
    s.Stats.mean s.Stats.p95 s.Stats.max;
  (* A medium instance across cost models and budget sweep. *)
  let t = Table.create ~title:"n=60 m=6, makespan vs budget (exact-knapsack §3.2 algorithm)"
      ~columns:[ "cost model"; "B=0"; "B=10"; "B=25"; "B=50"; "B=100"; "lower bound" ]
  in
  List.iter
    (fun (name, cost) ->
      let rng = Rng.create 106 in
      let dist = Dist.prepare (Dist.Uniform { lo = 5; hi = 100 }) in
      let inst = Gen.skewed rng ~n:60 ~m:6 ~dist ~skew:1.0 ~cost () in
      let at b = string_of_int (Assignment.makespan inst (fst (BP.solve inst ~budget:b))) in
      Table.add_row t
        [
          name;
          at 0;
          at 10;
          at 25;
          at 50;
          at 100;
          string_of_int (Lower_bounds.best inst ~budget:(Budget.Cost 0));
        ])
    [
      ("unit", Gen.Unit);
      ("size-proportional", Gen.Proportional_to_size { per = 10 });
      ("inverse-size", Gen.Inverse_size { numerator = 100 });
      ("random", Gen.Uniform_random { lo = 1; hi = 10 });
    ];
  Table.print t;
  print_endline
    "makespan decreases monotonically with the budget under every cost model;\n\
     inverse-size costs (sticky small jobs) are the hardest to exploit.";
  Some s.Stats.mean

(* ---------------------------------------------------------------------- *)
(* E7 — §4: the PTAS reaches (1 + eps) OPT on toy instances.              *)
(* ---------------------------------------------------------------------- *)

let e7 () =
  header "E7: PTAS quality and cost (Section 4 / Theorem 4)";
  let t = Table.create ~title:"30 toy instances per delta, vs exact optimum"
      ~columns:[ "delta"; "mean ratio"; "max ratio"; "mean DP states"; "mean ms"; "m-partition ratio" ]
  in
  let headline = ref None in
  List.iter
    (fun delta ->
      let rng = Rng.create 107 in
      let ratios = ref [] and states = ref [] and times = ref [] and mp_ratios = ref [] in
      for _ = 1 to 30 do
        let n = Rng.int_range rng 4 9 in
        let m = Rng.int_range rng 2 3 in
        let sizes = Array.init n (fun _ -> Rng.int_range rng 10 300 * 10) in
        let initial = Array.init n (fun _ -> Rng.int rng m) in
        let inst = Instance.create ~sizes ~m initial in
        let k = Rng.int_range rng 0 n in
        let budget = Budget.Moves k in
        let opt = Exact.opt_makespan_exn inst ~budget in
        let (a, stats), dt = Timer.time (fun () -> Ptas.solve_with_stats ~delta inst ~budget) in
        ratios := ratio (Assignment.makespan inst a) opt :: !ratios;
        states := float_of_int stats.Ptas.dp_states :: !states;
        times := dt *. 1e3 :: !times;
        mp_ratios := ratio (Assignment.makespan inst (M_partition.solve inst ~k)) opt :: !mp_ratios
      done;
      let r = Stats.summarize (Array.of_list !ratios) in
      let st = Stats.mean (Array.of_list !states) in
      let tm = Stats.mean (Array.of_list !times) in
      let mp = Stats.mean (Array.of_list !mp_ratios) in
      headline := Some r.Stats.mean;
      Table.add_row t
        [ pf "%.2f" delta; pf "%.4f" r.Stats.mean; pf "%.4f" r.Stats.max; pf "%.0f" st; pf "%.2f" tm; pf "%.4f" mp ])
    [ 0.5; 0.3; 0.2; 0.1 ];
  Table.print t;
  print_endline
    "smaller delta buys quality at a steep state-space price — the paper's\n\
     point that M-PARTITION, not the PTAS, is the practical algorithm.";
  !headline

(* ---------------------------------------------------------------------- *)
(* E8 — §5: the hardness reductions, executed.                            *)
(* ---------------------------------------------------------------------- *)

let e8 () =
  header "E8: hardness reductions verified in both directions (Section 5)";
  let module Tdm = Rebal_reductions.Three_dm in
  let module Conflict = Rebal_reductions.Conflict in
  let module Move_min = Rebal_reductions.Move_min in
  let module Restricted = Rebal_reductions.Restricted in
  let t = Table.create ~title:"random 3DM / PARTITION inputs through each gadget"
      ~columns:[ "reduction"; "instances"; "yes"; "no"; "agreements" ]
  in
  let rng = Rng.create 108 in
  let conflict_yes = ref 0 and conflict_no = ref 0 and conflict_ok = ref 0 in
  for _ = 1 to 30 do
    let n = Rng.int_range rng 1 3 in
    let dm = Tdm.random rng ~n ~triples:(Rng.int_range rng n 6) in
    if Tdm.has_perfect_matching dm then incr conflict_yes else incr conflict_no;
    if Conflict.verify_reduction dm then incr conflict_ok
  done;
  Table.add_row t
    [ "3DM -> conflict scheduling (Thm 7)"; "30"; string_of_int !conflict_yes; string_of_int !conflict_no; string_of_int !conflict_ok ];
  let restricted_yes = ref 0 and restricted_no = ref 0 and restricted_ok = ref 0 in
  for _ = 1 to 30 do
    let n = Rng.int_range rng 1 3 in
    let dm = Tdm.random rng ~n ~triples:(Rng.int_range rng n 6) in
    if Tdm.has_perfect_matching dm then incr restricted_yes else incr restricted_no;
    if Restricted.verify_reduction dm then incr restricted_ok
  done;
  Table.add_row t
    [ "3DM -> two-cost makespan (Thm 6/Cor 1)"; "30"; string_of_int !restricted_yes; string_of_int !restricted_no; string_of_int !restricted_ok ];
  let mm_yes = ref 0 and mm_no = ref 0 and mm_ok = ref 0 and mm_count = ref 0 in
  while !mm_count < 30 do
    let r = Rng.int_range rng 2 8 in
    let numbers = Array.init r (fun _ -> Rng.int_range rng 1 15) in
    if Array.fold_left ( + ) 0 numbers mod 2 = 0 then begin
      incr mm_count;
      if Move_min.partition_exists numbers then incr mm_yes else incr mm_no;
      if Move_min.verify_reduction numbers then incr mm_ok
    end
  done;
  Table.add_row t
    [ "PARTITION -> move minimization (Thm 5)"; "30"; string_of_int !mm_yes; string_of_int !mm_no; string_of_int !mm_ok ];
  Table.print t;
  print_endline
    "every row must show agreements = instances: the gadgets decide the\n\
     source problem exactly, which is the content of the hardness theorems.";
  Some (float_of_int (!conflict_ok + !restricted_ok + !mm_ok) /. 90.0)

(* ---------------------------------------------------------------------- *)
(* E9 — §1: the web-server migration case study.                          *)
(* ---------------------------------------------------------------------- *)

let e9 () =
  header "E9: web-server migration over a simulated week (Section 1 motivation)";
  let traffic =
    Rebal_sim.Traffic.create (Rng.create 109) ~sites:240 ~horizon:168 ~zipf_alpha:0.6
      ~scale:400 ~period:24 ~diurnal_depth:0.7 ~noise:0.12 ~flash_prob:0.002
      ~flash_mult:6 ~flash_len:5 ()
  in
  let t = Table.create ~title:"240 sites, 12 servers, rebalance every 6h"
      ~columns:[ "policy"; "mean imbalance"; "p95 imbalance"; "peak"; "migrations" ]
  in
  List.iter
    (fun policy ->
      let r =
        Rebal_sim.Simulation.run traffic
          { Rebal_sim.Simulation.servers = 12; period = 6; policy }
      in
      Table.add_row t
        [
          Rebal_sim.Policy.name policy;
          pf "%.3f" r.Rebal_sim.Simulation.mean_imbalance;
          pf "%.3f" r.Rebal_sim.Simulation.p95_imbalance;
          string_of_int r.Rebal_sim.Simulation.peak_makespan;
          string_of_int r.Rebal_sim.Simulation.total_moves;
        ])
    [
      Rebal_sim.Policy.No_rebalance;
      Rebal_sim.Policy.Greedy 8;
      Rebal_sim.Policy.M_partition 8;
      Rebal_sim.Policy.Local_search 8;
      Rebal_sim.Policy.Triggered { k = 8; threshold = 1.25 };
      Rebal_sim.Policy.Full_lpt;
    ];
  Table.print t;
  print_endline
    "bounded-move policies recover most of full rebalancing's imbalance\n\
     reduction with around 2% of its migrations — the Linder-Shah claim.";
  None

(* ---------------------------------------------------------------------- *)
(* E10 — the Shmoys-Tardos GAP baseline.                                  *)
(* ---------------------------------------------------------------------- *)

let e10 () =
  header "E10: Shmoys-Tardos GAP baseline vs the paper's algorithms";
  let rng = Rng.create 110 in
  let gap_r = ref [] and bp_r = ref [] and gap_t = ref [] and bp_t = ref [] in
  for _ = 1 to 60 do
    let n = Rng.int_range rng 6 13 in
    let m = Rng.int_range rng 2 4 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 30) in
    let costs = Array.init n (fun _ -> Rng.int_range rng 0 9) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~costs ~sizes ~m initial in
    let b = Rng.int_range rng 0 25 in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Cost b) in
    let g, dt_g = Timer.time (fun () -> fst (Gap.solve inst ~budget:b)) in
    let p, dt_p = Timer.time (fun () -> fst (BP.solve inst ~budget:b)) in
    gap_r := ratio (Assignment.makespan inst g) opt :: !gap_r;
    bp_r := ratio (Assignment.makespan inst p) opt :: !bp_r;
    gap_t := dt_g *. 1e3 :: !gap_t;
    bp_t := dt_p *. 1e3 :: !bp_t
  done;
  let t = Table.create ~title:"60 random costed instances vs exact optimum"
      ~columns:[ "algorithm"; "mean ratio"; "p95 ratio"; "max ratio"; "guarantee"; "mean ms" ]
  in
  let row name rs ts guarantee =
    let s = Stats.summarize (Array.of_list rs) in
    Table.add_row t
      [ name; pf "%.4f" s.Stats.mean; pf "%.4f" s.Stats.p95; pf "%.4f" s.Stats.max; guarantee; pf "%.2f" (Stats.mean (Array.of_list ts)) ]
  in
  row "st-gap (LP rounding)" !gap_r !gap_t "2.0";
  row "budgeted-partition (§3.2)" !bp_r !bp_t "1.5(1+a)";
  Table.print t;
  print_endline
    "the paper's combinatorial algorithm matches or beats the LP baseline in\n\
     quality and is far cheaper — its stated motivation for bettering the\n\
     generalized-assignment route.";
  Some (Stats.mean (Array.of_list !bp_r))


(* ---------------------------------------------------------------------- *)
(* E11 — Corollary 1: constrained load rebalancing, ST upper bound.       *)
(* ---------------------------------------------------------------------- *)

let e11 () =
  header "E11: constrained load rebalancing (Corollary 1 upper bound)";
  let module Restricted = Rebal_reductions.Restricted in
  let rng = Rng.create 111 in
  let ratios = ref [] and targets_ok = ref 0 and runs = ref 0 in
  for _ = 1 to 60 do
    let n = Rng.int_range rng 2 7 in
    let m = Rng.int_range rng 2 3 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 20) in
    let eligible =
      Array.init n (fun _ ->
          let count = Rng.int_range rng 1 m in
          let all = Array.init m Fun.id in
          Rng.shuffle rng all;
          List.sort compare (Array.to_list (Array.sub all 0 count)))
    in
    let initial = Array.map List.hd eligible in
    let inst = Instance.create ~sizes ~m initial in
    let restricted = Restricted.create ~sizes ~machines:m ~eligible in
    match Restricted.min_makespan restricted with
    | None -> ()
    | Some opt -> begin
      match Gap.solve_constrained inst ~eligible ~budget:n with
      | None -> ()
      | Some (a, target) ->
        incr runs;
        ratios := ratio (Assignment.makespan inst a) opt :: !ratios;
        if target <= opt then incr targets_ok
    end
  done;
  let s = Stats.summarize (Array.of_list !ratios) in
  Printf.printf
    "constrained ST rounding vs brute-force constrained optimum (%d runs):\n\
     mean ratio %.4f, p95 %.4f, max %.4f (guarantee 2.0);\n\
     LP target lower-bounded the optimum in %d/%d runs.\n\
     Corollary 1 says no polynomial algorithm can guarantee < 1.5 here;\n\
     factor 2 remains the best known upper bound (open problem in §5).\n"
    !runs s.Stats.mean s.Stats.p95 s.Stats.max !targets_ok !runs;
  Some s.Stats.mean

(* ---------------------------------------------------------------------- *)
(* E12 — ablation: how much of the threshold set does the scan visit?     *)
(* ---------------------------------------------------------------------- *)

let e12 () =
  header "E12: M-PARTITION threshold-scan ablation (value of the G1 bound)";
  let t = Table.create
      ~title:"thresholds evaluated, scanning from max(avg,max) vs from the G1-augmented bound"
      ~columns:[ "n"; "m"; "k"; "candidates"; "tried (with G1)"; "tried (without G1)" ]
  in
  List.iter
    (fun (n, m) ->
      let rng = Rng.create (112 + n) in
      let dist = Dist.prepare (Dist.Exponential { mean = 50.0 }) in
      let inst = Gen.drifted rng ~n ~m ~dist ~drift:0.3 () in
      let views = Instance.sorted_views inst in
      let candidates = M_partition.candidate_thresholds inst in
      List.iter
        (fun k ->
          let _, stats = M_partition.solve_with_stats inst ~k in
          (* Ablated scan: start at the G1-free lower bound and walk the
             same candidate set. *)
          let lb0 = max (Lower_bounds.average inst) (Lower_bounds.max_size inst) in
          let tried0 = ref 0 in
          let feasible threshold =
            incr tried0;
            match Rebal_algo.Partition.plan inst ~views ~threshold with
            | Some plan -> plan.Rebal_algo.Partition.moves <= k
            | None -> false
          in
          (if not (feasible lb0) then begin
             let i = ref 0 in
             let stop = ref false in
             while not !stop do
               if !i >= Array.length candidates then stop := true
               else begin
                 let c = candidates.(!i) in
                 incr i;
                 if c >= lb0 && feasible c then stop := true
               end
             done
           end);
          Table.add_row t
            [
              string_of_int n;
              string_of_int m;
              string_of_int k;
              string_of_int stats.M_partition.candidates;
              string_of_int stats.M_partition.tried;
              string_of_int !tried0;
            ])
        [ 1; n / 100; n / 10 ])
    [ (1_000, 16); (10_000, 32); (100_000, 64) ];
  Table.print t;
  print_endline
    "starting the scan at Lemma 1's G1 bound collapses it to a single plan\n\
     evaluation at small k, where the average-load bound alone can be far\n\
     below the reachable makespan and costs thousands of evaluations.";
  None


(* ---------------------------------------------------------------------- *)
(* E13 — §1: process migration under heavy vs light-tailed lifetimes.     *)
(* ---------------------------------------------------------------------- *)

let e13 () =
  header "E13: process migration and lifetime tails (the [6] vs [9] debate)";
  let module PS = Rebal_sim.Process_sim in
  let run lifetime rate policy =
    PS.run (Rng.create 113)
      { PS.cpus = 8; arrival_rate = rate; lifetime; horizon = 6000; period = 10; policy }
  in
  let t = Table.create
      ~title:"8 processor-sharing CPUs, rebalance every 10 steps, greedy budget sweep"
      ~columns:[ "lifetimes"; "policy"; "mean slowdown"; "benefit %"; "migrations" ]
  in
  let scenario name lifetime rate =
    let none = run lifetime rate Rebal_sim.Policy.No_rebalance in
    let full = run lifetime rate Rebal_sim.Policy.Full_lpt in
    let denom = none.PS.mean_slowdown -. full.PS.mean_slowdown in
    let row policy_name r =
      Table.add_row t
        [
          name;
          policy_name;
          pf "%.3f" r.PS.mean_slowdown;
          pf "%.0f" (100.0 *. (none.PS.mean_slowdown -. r.PS.mean_slowdown) /. denom);
          string_of_int r.PS.migrations;
        ]
    in
    row "none" none;
    List.iter
      (fun k -> row (pf "greedy k=%d" k) (run lifetime rate (Rebal_sim.Policy.Greedy k)))
      [ 1; 4 ];
    row "full-lpt" full
  in
  scenario "pareto(1.1)" (PS.Pareto_work { alpha = 1.1; xmin = 1.0 }) 0.5;
  scenario "exponential" (PS.Exponential_work 5.5) 0.82;
  Table.print t;
  print_endline
    "both regimes saturate by k = 4, but the heavy-tailed one needs 2-3x\n\
     fewer actual migrations for the same benefit: the gain concentrates in\n\
     relocating a few marathon processes (Harchol-Balter & Downey's point),\n\
     while light-tailed workloads must churn many processes to profit\n\
     (Lazowska et al's cost concern).";
  None

(* ---------------------------------------------------------------------- *)
(* E15 — the online engine: incremental events vs from-scratch re-solve.  *)
(* ---------------------------------------------------------------------- *)

let e15 () =
  header "E15: online engine throughput (incremental vs from-scratch)";
  let module Engine = Rebal_online.Engine in
  let n = 10_000 and m = 64 in
  let rng = Rng.create 115 in
  let eng = Engine.create ~m () in
  (* A growable pool of live job ids so REMOVE/RESIZE hit uniformly. *)
  let live = ref (Array.make (2 * n) "") in
  let count = ref 0 in
  let push id =
    if !count = Array.length !live then begin
      let bigger = Array.make (2 * Array.length !live) "" in
      Array.blit !live 0 bigger 0 !count;
      live := bigger
    end;
    !live.(!count) <- id;
    incr count
  in
  let next = ref 0 in
  let fresh_size () = Rng.int_range rng 1 1000 in
  let add () =
    let id = pf "j%d" !next in
    incr next;
    (match Engine.add_job eng ~id ~size:(fresh_size ()) with
    | Ok _ -> ()
    | Error e -> failwith e);
    push id
  in
  for _ = 1 to n do
    add ()
  done;
  ignore (Engine.rebalance eng ~k:(n / 20));
  let apply_event () =
    match Rng.int rng 3 with
    | 0 -> add ()
    | 1 when !count > 1 ->
      let i = Rng.int rng !count in
      let id = !live.(i) in
      (match Engine.remove_job eng ~id with Ok _ -> () | Error e -> failwith e);
      decr count;
      !live.(i) <- !live.(!count)
    | _ ->
      let id = !live.(Rng.int rng !count) in
      (match Engine.resize_job eng ~id ~size:(fresh_size ()) with
      | Ok _ -> ()
      | Error e -> failwith e)
  in
  let events = 50_000 in
  let (), dt_inc = Timer.time (fun () -> for _ = 1 to events do apply_event () done) in
  let per_event = dt_inc /. float_of_int events in
  (* The from-scratch alternative per event: materialize the instance and
     run batch GREEDY over all n jobs. *)
  let solves = 20 in
  let k = Engine.job_count eng / 20 in
  let (), dt_scratch =
    Timer.time (fun () ->
        for _ = 1 to solves do
          let inst, _ = Engine.to_instance eng in
          ignore (Greedy.solve inst ~k)
        done)
  in
  let per_solve = dt_scratch /. float_of_int solves in
  let speedup = per_solve /. per_event in
  let t = Table.create ~title:(pf "n≈%d jobs on m=%d, %d-event stream" n m events)
      ~columns:[ "path"; "per event"; "events/sec" ]
  in
  Table.add_row t
    [ "incremental (O(log m))"; pf "%.2f us" (per_event *. 1e6); pf "%.0f" (1.0 /. per_event) ];
  Table.add_row t
    [ "from-scratch greedy"; pf "%.2f ms" (per_solve *. 1e3); pf "%.1f" (1.0 /. per_solve) ];
  Table.print t;
  let consistent = Engine.check_consistency eng ~k:max_int in
  let s = Engine.stats eng in
  Printf.printf
    "speedup: %.0fx per event (acceptance floor: 10x)\n\
     consistency with batch greedy at k=inf: %s (%d check(s), %d failure(s))\n"
    speedup
    (if consistent then "bit-match" else "MISMATCH")
    s.Engine.consistency_checks s.Engine.consistency_failures;
  if not consistent then failwith "E15: online engine diverged from batch greedy";
  Some speedup

(* ---------------------------------------------------------------------- *)
(* E16 — measured operation counts vs the O(n log n) analysis.            *)
(* ---------------------------------------------------------------------- *)

let e16 () =
  header "E16: measured operation counts vs the O(n log n) analysis";
  let t =
    Table.create
      ~title:"per-solve counts from the metrics registry + heap hook; m=64, k=n/20"
      ~columns:
        [ "algorithm"; "n"; "heap ops"; "sift steps"; "solver counter"; "count/(n log2 n)" ]
  in
  let headline = ref None in
  List.iter
    (fun n ->
      let rng = Rng.create (116 + n) in
      let dist = Dist.prepare (Dist.Uniform { lo = 1; hi = 1000 }) in
      let inst = Gen.random rng ~n ~m:64 ~dist () in
      let k = n / 20 in
      let nlogn = float_of_int n *. (log (float_of_int n) /. log 2.0) in
      List.iter
        (fun (name, solve, dominant) ->
          (* Fresh registry and fresh heap counters per solve, so each
             cell is exactly one run's work. *)
          let reg = Metrics.Registry.create () in
          Metrics.Registry.with_registry reg @@ fun () ->
          let hc = Indexed_heap.fresh_counters () in
          Indexed_heap.install_counters hc;
          Fun.protect ~finally:Indexed_heap.remove_counters @@ fun () ->
          solve inst ~k;
          let heap_ops = hc.Indexed_heap.sets + hc.Indexed_heap.removes + hc.Indexed_heap.pops in
          let sifts = hc.Indexed_heap.sift_up_steps + hc.Indexed_heap.sift_down_steps in
          let counter_value cname =
            match
              List.find_opt
                (fun (mtr : Metrics.metric) -> mtr.Metrics.name = cname)
                (Metrics.Registry.metrics reg)
            with
            | Some { Metrics.kind = Metrics.Counter c; _ } -> Metrics.Counter.value c
            | _ -> 0
          in
          let dom = counter_value dominant in
          if name = "greedy" && n = 100_000 then
            headline := Some (float_of_int dom /. nlogn);
          Table.add_row t
            [
              name;
              string_of_int n;
              string_of_int heap_ops;
              string_of_int sifts;
              pf "%s=%d" dominant dom;
              pf "%.4f" (float_of_int dom /. nlogn);
            ])
        [
          ( "greedy",
            (fun inst ~k -> ignore (Greedy.solve inst ~k)),
            "rebal_solver_comparisons_total" );
          ( "m-partition",
            (fun inst ~k -> ignore (M_partition.solve inst ~k)),
            "rebal_mpartition_candidates_total" );
        ])
    [ 1_000; 10_000; 100_000 ];
  Table.print t;
  print_endline
    "heap ops scale with k + m (the budget), not with n: the paper's point\n\
     that the per-round work after the one-off O(n log n) sort is small.\n\
     greedy's dominant count (sort comparisons over the k removed jobs) and\n\
     m-partition's (candidate thresholds, O(n + m log n) of them) both stay\n\
     a bounded fraction of n log2 n as n grows 100x.";
  !headline

(* ---------------------------------------------------------------------- *)
(* E17 — flight-recorder overhead on the E15 event stream.                *)
(* ---------------------------------------------------------------------- *)

let e17 () =
  header "E17: flight-recorder journal overhead (E15's event mix, buffer sink)";
  let module Engine = Rebal_online.Engine in
  let n = 10_000 and m = 64 in
  let events = 50_000 in
  (* The same workload as E15 — load n jobs, one repair pass, then a
     50k-event add/remove/resize stream — run twice: once bare, once
     with a journal sink writing into a Buffer (so the measured cost is
     event rendering, not disk I/O, matching the serve daemon's
     buffered-channel sink). *)
  let run ?journal () =
    (* Start every repetition from a compacted heap: by this point a full
       bench run has left enough major-heap pressure behind to swing a
       single sample by 30%, which would drown the ratio being measured. *)
    Gc.compact ();
    let rng = Rng.create 117 in
    let eng = Engine.create ?journal ~m () in
    let live = ref (Array.make (2 * n) "") in
    let count = ref 0 in
    let push id =
      if !count = Array.length !live then begin
        let bigger = Array.make (2 * Array.length !live) "" in
        Array.blit !live 0 bigger 0 !count;
        live := bigger
      end;
      !live.(!count) <- id;
      incr count
    in
    let next = ref 0 in
    let fresh_size () = Rng.int_range rng 1 1000 in
    let add () =
      let id = pf "j%d" !next in
      incr next;
      (match Engine.add_job eng ~id ~size:(fresh_size ()) with
      | Ok _ -> ()
      | Error e -> failwith e);
      push id
    in
    for _ = 1 to n do
      add ()
    done;
    ignore (Engine.rebalance eng ~k:(n / 20));
    let apply_event () =
      match Rng.int rng 3 with
      | 0 -> add ()
      | 1 when !count > 1 ->
        let i = Rng.int rng !count in
        let id = !live.(i) in
        (match Engine.remove_job eng ~id with Ok _ -> () | Error e -> failwith e);
        decr count;
        !live.(i) <- !live.(!count)
      | _ ->
        let id = !live.(Rng.int rng !count) in
        (match Engine.resize_job eng ~id ~size:(fresh_size ()) with
        | Ok _ -> ()
        | Error e -> failwith e)
    in
    let (), dt = Timer.time (fun () -> for _ = 1 to events do apply_event () done) in
    dt /. float_of_int events
  in
  (* Absolute per-event times swing 2x between runs on a shared machine,
     but the off/on *ratio* is stable when the two configurations run
     back-to-back. So: three (off, on) pairs, report the median pair by
     ratio. *)
  let pair () =
    let off = run () in
    let buf = Buffer.create (1 lsl 23) in
    let sink = Journal.create ~write:(Buffer.add_string buf) () in
    let on = run ~journal:sink () in
    (off, on, sink, buf)
  in
  let pairs = List.init 3 (fun _ -> pair ()) in
  let sorted =
    List.sort
      (fun (o1, n1, _, _) (o2, n2, _, _) -> compare (n1 /. o1) (n2 /. o2))
      pairs
  in
  let per_off, per_on, sink, buf = List.nth sorted 1 in
  let overhead = per_on /. per_off in
  let t = Table.create ~title:(pf "n≈%d jobs on m=%d, %d-event stream" n m events)
      ~columns:[ "journal"; "per event"; "events/sec" ]
  in
  Table.add_row t [ "off"; pf "%.2f us" (per_off *. 1e6); pf "%.0f" (1.0 /. per_off) ];
  Table.add_row t
    [ "on (buffer sink)"; pf "%.2f us" (per_on *. 1e6); pf "%.0f" (1.0 /. per_on) ];
  Table.print t;
  Printf.printf
    "journal captured %d events, %.1f MB of JSONL; overhead %.2fx per event\n\
     (acceptance ceiling 2.0x: with no sink attached every emission site is a\n\
     single None branch, so the cost only exists when a recording is wanted)\n"
    (Journal.events_written sink)
    (float_of_int (Buffer.length buf) /. 1e6)
    overhead;
  if overhead > 2.0 then
    print_endline "WARNING: journal overhead above the 2.0x acceptance ceiling";
  Some overhead

(* ---------------------------------------------------------------------- *)
(* E18 — sharded router vs single engine on the E15 event mix.            *)
(* ---------------------------------------------------------------------- *)

let e18 () =
  header "E18: sharded router vs single engine (E15's event mix)";
  let module Engine = Rebal_online.Engine in
  let module Shard = Rebal_online.Shard in
  let n = 10_000 and m = 64 in
  let events = 50_000 in
  (* One driver, parameterized over the serving shape, so single and
     sharded runs see byte-identical id/size/event streams. *)
  let run ~add_job ~remove_job ~resize_job ~rebalance ~makespan =
    Gc.compact ();
    let rng = Rng.create 118 in
    let live = ref (Array.make (2 * n) "") in
    let count = ref 0 in
    let push id =
      if !count = Array.length !live then begin
        let bigger = Array.make (2 * Array.length !live) "" in
        Array.blit !live 0 bigger 0 !count;
        live := bigger
      end;
      !live.(!count) <- id;
      incr count
    in
    let next = ref 0 in
    let fresh_size () = Rng.int_range rng 1 1000 in
    let add () =
      let id = pf "j%d" !next in
      incr next;
      (match add_job id (fresh_size ()) with Ok _ -> () | Error e -> failwith e);
      push id
    in
    for _ = 1 to n do
      add ()
    done;
    ignore (rebalance (n / 20));
    let apply_event () =
      match Rng.int rng 3 with
      | 0 -> add ()
      | 1 when !count > 1 ->
        let i = Rng.int rng !count in
        let id = !live.(i) in
        (match remove_job id with Ok _ -> () | Error e -> failwith e);
        decr count;
        !live.(i) <- !live.(!count)
      | _ ->
        let id = !live.(Rng.int rng !count) in
        (match resize_job id (fresh_size ()) with Ok _ -> () | Error e -> failwith e)
    in
    let (), dt = Timer.time (fun () -> for _ = 1 to events do apply_event () done) in
    ignore (rebalance (n / 20));
    (dt /. float_of_int events, makespan ())
  in
  let t =
    Table.create
      ~title:(pf "n≈%d jobs, m=%d procs, %d-event stream" n m events)
      ~columns:[ "configuration"; "per event"; "events/sec"; "final makespan" ]
  in
  let per_single, ms_single =
    let eng = Engine.create ~m () in
    let r =
      run
        ~add_job:(fun id size -> Engine.add_job eng ~id ~size)
        ~remove_job:(fun id -> Engine.remove_job eng ~id)
        ~resize_job:(fun id size -> Engine.resize_job eng ~id ~size)
        ~rebalance:(fun k -> Engine.rebalance eng ~k)
        ~makespan:(fun () -> Engine.makespan eng)
    in
    if not (Engine.check_consistency eng ~k:max_int) then
      failwith "E18: single engine diverged from batch greedy";
    r
  in
  Table.add_row t
    [
      "single engine";
      pf "%.2f us" (per_single *. 1e6);
      pf "%.0f" (1.0 /. per_single);
      string_of_int ms_single;
    ];
  let last_ratio = ref 1.0 and last_ms = ref ms_single in
  List.iter
    (fun shards ->
      let sh = Shard.create ~m ~shards () in
      let per, ms =
        run
          ~add_job:(fun id size -> Shard.add_job sh ~id ~size)
          ~remove_job:(fun id -> Shard.remove_job sh ~id)
          ~resize_job:(fun id size -> Shard.resize_job sh ~id ~size)
          ~rebalance:(fun k -> Shard.rebalance sh ~k)
          ~makespan:(fun () -> Shard.makespan sh)
      in
      if not (Shard.check_consistency sh ~k:max_int) then
        failwith (pf "E18: %d-shard router diverged from batch greedy" shards);
      last_ratio := per_single /. per;
      last_ms := ms;
      Table.add_row t
        [
          pf "%d shards" shards;
          pf "%.2f us" (per *. 1e6);
          pf "%.0f" (1.0 /. per);
          string_of_int ms;
        ])
    [ 2; 4; 8 ];
  Table.print t;
  Printf.printf
    "8-shard throughput: %.2fx single-engine; final makespan %d vs %d single\n\
     (each shard's heaps cover m/S processors; the cross-shard pass keeps the\n\
     global peak within a few largest-job transfers of the single-engine repair,\n\
     and the shards are independent — the parallel headroom is S workers)\n"
    !last_ratio !last_ms ms_single;
  Some !last_ratio

(* ---------------------------------------------------------------------- *)
(* E19 — restart from snapshot vs genesis replay.                         *)
(* ---------------------------------------------------------------------- *)

let e19 () =
  header "E19: restart-from-snapshot vs genesis replay (journal compaction)";
  let module Engine = Rebal_online.Engine in
  let module Replay = Rebal_online.Replay in
  let m = 64 in
  let events = 100_000 in
  let snapshot_at = 92_000 in
  (* Record a 100k-event session with a snapshot near the end — the
     periodic-snapshot discipline a production daemon would run — then
     compare recovering the final state by genesis replay vs by
     compacting to the snapshot and replaying only the tail. *)
  let buf = Buffer.create (1 lsl 24) in
  let tick = ref 0 in
  let sink =
    Journal.create
      ~clock_ns:(fun () ->
        incr tick;
        Int64.of_int !tick)
      ~write:(Buffer.add_string buf) ()
  in
  let eng = Engine.create ~journal:sink ~m () in
  let rng = Rng.create 119 in
  let live = ref (Array.make 1024 "") in
  let count = ref 0 in
  let push id =
    if !count = Array.length !live then begin
      let bigger = Array.make (2 * Array.length !live) "" in
      Array.blit !live 0 bigger 0 !count;
      live := bigger
    end;
    !live.(!count) <- id;
    incr count
  in
  let next = ref 0 in
  let fresh_size () = Rng.int_range rng 1 1000 in
  let add () =
    let id = pf "j%d" !next in
    incr next;
    (match Engine.add_job eng ~id ~size:(fresh_size ()) with
    | Ok _ -> ()
    | Error e -> failwith e);
    push id
  in
  let apply_event () =
    match Rng.int rng 3 with
    | 0 -> add ()
    | 1 when !count > 1 ->
      let i = Rng.int rng !count in
      let id = !live.(i) in
      (match Engine.remove_job eng ~id with Ok _ -> () | Error e -> failwith e);
      decr count;
      !live.(i) <- !live.(!count)
    | _ when !count > 0 ->
      let id = !live.(Rng.int rng !count) in
      (match Engine.resize_job eng ~id ~size:(fresh_size ()) with
      | Ok _ -> ()
      | Error e -> failwith e)
    | _ -> add ()
  in
  for i = 1 to events do
    apply_event ();
    if i = snapshot_at then
      match Engine.journal_snapshot eng with Ok _ -> () | Error e -> failwith e
  done;
  let parsed =
    match Journal.parse_string (Buffer.contents buf) with
    | Ok p -> p
    | Error e -> failwith ("E19: journal does not parse: " ^ e)
  in
  let replay what parsed =
    Gc.compact ();
    let r, dt = Timer.time (fun () -> Replay.run parsed) in
    match r with
    | Error e -> failwith (pf "E19: %s replay failed: %s" what e)
    | Ok o -> (o, dt)
  in
  let full, dt_full = replay "genesis" parsed in
  let compacted =
    match Replay.compact parsed with
    | Error e -> failwith ("E19: compaction failed: " ^ e)
    | Ok (lines, _, _) -> begin
      match Journal.parse_string (String.concat "\n" lines) with
      | Ok p -> p
      | Error e -> failwith ("E19: compacted journal does not parse: " ^ e)
    end
  in
  let resumed, dt_resumed = replay "resumed" compacted in
  if resumed.Replay.final_makespan <> full.Replay.final_makespan
     || resumed.Replay.final_jobs <> full.Replay.final_jobs
  then failwith "E19: resumed replay disagrees with genesis replay";
  let factor =
    float_of_int full.Replay.events /. float_of_int resumed.Replay.events
  in
  let t =
    Table.create
      ~title:(pf "m=%d, %d recorded events, snapshot at event %d" m events snapshot_at)
      ~columns:[ "recovery path"; "events re-executed"; "wall time" ]
  in
  Table.add_row t
    [ "genesis replay"; string_of_int full.Replay.events; pf "%.3f s" dt_full ];
  Table.add_row t
    [
      "compact + resume";
      string_of_int resumed.Replay.events;
      pf "%.3f s" dt_resumed;
    ];
  Table.print t;
  Printf.printf
    "re-executed %.1fx fewer events after compaction (acceptance floor: 10x);\n\
     both paths reach %d jobs at makespan %d and pass the final consistency check\n"
    factor resumed.Replay.final_jobs resumed.Replay.final_makespan;
  if factor < 10.0 then failwith "E19: snapshot recovery below the 10x acceptance floor";
  Some factor

(* ---------------------------------------------------------------------- *)
(* E20 — failover cost: downtime-weighted makespan under shard kills.     *)
(* ---------------------------------------------------------------------- *)

let e20 () =
  header "E20: self-healing failover (supervised cluster under shard kills)";
  let module Engine = Rebal_online.Engine in
  let module Shard = Rebal_online.Shard in
  let module Supervisor = Rebal_online.Supervisor in
  let module Replay = Rebal_online.Replay in
  let shards = 8 and m = 32 in
  let horizon = 400 and ops_per_step = 8 in
  let kills = [ (2, 100); (5, 200) ] and down_for = 80 in
  (* One driver, two schedules: the identical seeded workload runs once
     with no faults and once with two mid-stream shard kills (each down
     for 80 steps, evacuated, restored from its own journal, readmitted
     and re-weighted). Scoring weights each step's makespan by
     1 + (shards - serving), so downtime is charged on top of whatever
     load imbalance the failover caused. *)
  let drive ~faults () =
    let live i t =
      (not faults)
      || not (List.exists (fun (s, st) -> s = i && t >= st && t < st + down_for) kills)
    in
    let buffers = Array.init shards (fun _ -> Buffer.create 4096) in
    let cluster =
      Shard.create
        ~journal_for:(fun i ->
          Some (Journal.create ~write:(Buffer.add_string buffers.(i)) ()))
        ~m ~shards ()
    in
    let time = ref 0 in
    let config =
      {
        Supervisor.default_config with
        Supervisor.suspect_after = 1;
        down_after = 2;
        recovery_steps = 4;
      }
    in
    let sup = Supervisor.create ~config ~probe:(fun i -> live i !time) cluster in
    let model = Hashtbl.create 1024 in
    let rng = Rng.create 120 in
    let live_ids = ref (Array.make 1024 "") in
    let count = ref 0 in
    let push id =
      if !count = Array.length !live_ids then begin
        let bigger = Array.make (2 * Array.length !live_ids) "" in
        Array.blit !live_ids 0 bigger 0 !count;
        live_ids := bigger
      end;
      !live_ids.(!count) <- id;
      incr count
    in
    let next = ref 0 in
    let recovered = ref 0 in
    let dw = ref 0.0 in
    for t = 0 to horizon - 1 do
      time := t;
      ignore (Supervisor.tick sup);
      for i = 0 to shards - 1 do
        if Supervisor.health sup i = Supervisor.Down && live i t then begin
          match
            Result.bind (Journal.parse_string (Buffer.contents buffers.(i))) Replay.resume
          with
          | Error e -> failwith (pf "E20: shard %d restore failed: %s" i e)
          | Ok (eng, outcome) ->
            Engine.set_journal eng
              (Some
                 (Journal.create ~start_seq:outcome.Replay.events ~header_written:true
                    ~write:(Buffer.add_string buffers.(i)) ()));
            (match Supervisor.readmit sup i eng with
            | Ok () -> incr recovered
            | Error e -> failwith (pf "E20: shard %d readmission rejected: %s" i e))
        end
      done;
      for _ = 1 to ops_per_step do
        let r = Rng.float rng 1.0 in
        if r < 0.6 || !count = 0 then begin
          let id = pf "f%d" !next in
          incr next;
          let size = Rng.int_range rng 1 100 in
          match Supervisor.add_job sup ~id ~size with
          | Ok _ ->
            Hashtbl.replace model id size;
            push id
          | Error e -> failwith ("E20: add rejected: " ^ e)
        end
        else begin
          let j = Rng.int rng !count in
          let id = !live_ids.(j) in
          if r < 0.85 then (
            match Supervisor.remove_job sup ~id with
            | Ok _ ->
              Hashtbl.remove model id;
              !live_ids.(j) <- !live_ids.(!count - 1);
              decr count
            | Error e -> failwith ("E20: remove rejected: " ^ e))
          else begin
            let size = Rng.int_range rng 1 100 in
            match Supervisor.resize_job sup ~id ~size with
            | Ok _ -> Hashtbl.replace model id size
            | Error e -> failwith ("E20: resize rejected: " ^ e)
          end
        end
      done;
      if (t + 1) mod 10 = 0 then ignore (Supervisor.rebalance sup ~k:16);
      let serving = Supervisor.serving_shards sup in
      dw :=
        !dw +. (float_of_int (Shard.makespan cluster) *. float_of_int (1 + shards - serving))
    done;
    (* Audit: nothing lost, every journal still replays to the live state. *)
    Hashtbl.iter
      (fun id size ->
        match Shard.find cluster id with
        | Some (sz, _) when sz = size -> ()
        | _ -> failwith (pf "E20: job %s lost or corrupted" id))
      model;
    if Shard.job_count cluster <> Hashtbl.length model then
      failwith "E20: stray or duplicated jobs after failover";
    if not (Shard.check_consistency cluster ~k:16) then
      failwith "E20: cluster consistency check failed";
    Array.iteri
      (fun i buf ->
        match Result.bind (Journal.parse_string (Buffer.contents buf)) Replay.resume with
        | Error e -> failwith (pf "E20: shard %d journal replay: %s" i e)
        | Ok (eng, _) ->
          if
            Engine.job_count eng <> Engine.job_count (Shard.engine cluster i)
            || Engine.makespan eng <> Engine.makespan (Shard.engine cluster i)
          then failwith (pf "E20: shard %d journal replay diverges" i))
      buffers;
    (!dw, !recovered, Supervisor.stats sup)
  in
  Gc.compact ();
  let (dw_base, _, _), dt_base = Timer.time (fun () -> drive ~faults:false ()) in
  Gc.compact ();
  let (dw_fault, recovered, h), dt_fault = Timer.time (fun () -> drive ~faults:true ()) in
  if recovered <> List.length kills then
    failwith (pf "E20: only %d of %d killed shards were readmitted" recovered (List.length kills));
  let ratio = dw_fault /. dw_base in
  let t =
    Table.create
      ~title:
        (pf "S=%d shards, m=%d, %d steps x %d ops, %d kills (down for %d steps)" shards m
           horizon ops_per_step (List.length kills) down_for)
      ~columns:[ "schedule"; "dw makespan"; "evacuated"; "readmitted"; "wall time" ]
  in
  Table.add_row t [ "no faults"; pf "%.0f" dw_base; "0"; "0"; pf "%.3f s" dt_base ];
  Table.add_row t
    [
      "2 shard kills";
      pf "%.0f" dw_fault;
      string_of_int h.Supervisor.evacuated_jobs;
      string_of_int h.Supervisor.readmissions;
      pf "%.3f s" dt_fault;
    ];
  Table.print t;
  Printf.printf
    "downtime-weighted makespan degraded %.2fx under two shard kills (acceptance: within \
     2x);\nno job lost, all %d journals replay clean, both shards evacuated (%d jobs) and \
     readmitted\n"
    ratio shards h.Supervisor.evacuated_jobs;
  if ratio > 2.0 then failwith "E20: failover cost above the 2x acceptance ceiling";
  Some ratio

(* ---------------------------------------------------------------------- *)
(* E21 — parallel serving: throughput and p99 vs worker domain count.     *)
(* ---------------------------------------------------------------------- *)

let e21 () =
  header "E21: parallel serving throughput (domain-per-shard cluster, 1024 sessions)";
  let module Engine = Rebal_online.Engine in
  let module Cluster = Rebal_online.Cluster in
  let module Replay = Rebal_online.Replay in
  let shards = 8 and m = 32 in
  let driver_threads = 8 and sessions_per_thread = 128 in
  let ops_per_thread = 3_000 in
  let total_sessions = driver_threads * sessions_per_thread in
  let total_ops = driver_threads * ops_per_thread in
  (* One driver, parameterized by worker domain count: 1024 logical
     loadgen sessions multiplexed over 8 client threads submit the
     60/25/15 add/remove/resize mix straight into the cluster (the same
     closures the TCP sessions run, minus the sockets). Every op is
     timed; every run is audited the same way the serve daemon is —
     nothing lost, directory consistent, and each shard's journal
     replays to exactly the engine its worker domain left behind. *)
  let drive ~domains () =
    let buffers = Array.init shards (fun _ -> Buffer.create 65536) in
    let cluster =
      Cluster.create
        ~journal_for:(fun i ->
          Some (Journal.create ~write:(Buffer.add_string buffers.(i)) ()))
        ~m ~shards ~domains ()
    in
    let survivors = Array.make driver_threads 0 in
    let latencies = Array.make total_ops 0.0 in
    let driver t () =
      let rng = Rng.create (4242 + t) in
      (* Per-session state: a private id universe, so every command is
         semantically valid and an error is a cluster bug, not noise. *)
      let live = Array.make sessions_per_thread [] in
      let next = Array.make sessions_per_thread 0 in
      let n = ref 0 in
      for i = 0 to ops_per_thread - 1 do
        let s = i mod sessions_per_thread in
        let started = Timer.now_ns () in
        (match Rng.float rng 1.0 with
        | r when r < 0.6 || live.(s) = [] ->
          let id = pf "t%ds%d.%d" t s next.(s) in
          next.(s) <- next.(s) + 1;
          (match Cluster.add_job cluster ~id ~size:(Rng.int_range rng 1 100) with
          | Ok _ ->
            live.(s) <- id :: live.(s);
            incr n
          | Error e -> failwith ("E21: add rejected: " ^ e))
        | r when r < 0.85 -> (
          match live.(s) with
          | [] -> assert false
          | id :: rest -> (
            match Cluster.remove_job cluster ~id with
            | Ok _ ->
              live.(s) <- rest;
              decr n
            | Error e -> failwith ("E21: remove rejected: " ^ e)))
        | _ -> (
          let id = List.hd live.(s) in
          match Cluster.resize_job cluster ~id ~size:(Rng.int_range rng 1 100) with
          | Ok _ -> ()
          | Error e -> failwith ("E21: resize rejected: " ^ e)));
        latencies.((t * ops_per_thread) + i) <-
          Int64.to_float (Int64.sub (Timer.now_ns ()) started) /. 1e9;
        if t = 0 && (i + 1) mod 500 = 0 then ignore (Cluster.rebalance cluster ~k:8)
      done;
      survivors.(t) <- !n
    in
    Gc.compact ();
    let (), wall =
      Timer.time (fun () ->
          let ts = Array.init driver_threads (fun t -> Thread.create (driver t) ()) in
          Array.iter Thread.join ts)
    in
    (* Audit before scoring: the speed is worthless if the state is wrong. *)
    if Cluster.job_count cluster <> Array.fold_left ( + ) 0 survivors then
      failwith "E21: jobs lost or duplicated under concurrency";
    if not (Cluster.check_consistency cluster ~k:max_int) then
      failwith "E21: directory/engine consistency check failed";
    let makespan = Cluster.makespan cluster in
    Cluster.merge_metrics cluster ~into:(Metrics.Registry.current ());
    Cluster.shutdown cluster;
    let journal_events = ref 0 in
    Array.iteri
      (fun i buf ->
        match Result.bind (Journal.parse_string (Buffer.contents buf)) Replay.run with
        | Error e -> failwith (pf "E21: shard %d journal replay: %s" i e)
        | Ok o ->
          journal_events := !journal_events + o.Replay.events;
          let eng = Cluster.engine cluster i in
          if
            (not o.Replay.consistency_ok)
            || o.Replay.final_jobs <> Engine.job_count eng
            || o.Replay.final_makespan <> Engine.makespan eng
          then failwith (pf "E21: shard %d journal replay diverges" i))
      buffers;
    Array.sort compare latencies;
    let pctl q = latencies.(min (total_ops - 1) (int_of_float (q *. float_of_int total_ops))) in
    (wall, float_of_int total_ops /. wall, pctl 0.5, pctl 0.99, makespan, !journal_events)
  in
  let w1, tput1, p50_1, p99_1, mk1, ev1 = drive ~domains:1 () in
  let w4, tput4, p50_4, p99_4, mk4, ev4 = drive ~domains:4 () in
  let t =
    Table.create
      ~title:
        (pf "S=%d shards, m=%d, %d sessions x %d total ops (8 driver threads)" shards m
           total_sessions total_ops)
      ~columns:
        [ "domains"; "wall time"; "ops/sec"; "p50"; "p99"; "makespan"; "journal events" ]
  in
  let row d w tput p50 p99 mk ev =
    Table.add_row t
      [
        string_of_int d;
        pf "%.3f s" w;
        pf "%.0f" tput;
        pf "%.0f us" (p50 *. 1e6);
        pf "%.0f us" (p99 *. 1e6);
        string_of_int mk;
        string_of_int ev;
      ]
  in
  row 1 w1 tput1 p50_1 p99_1 mk1 ev1;
  row 4 w4 tput4 p50_4 p99_4 mk4 ev4;
  Table.print t;
  let speedup = tput4 /. tput1 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "4 worker domains served %.2fx the single-domain throughput (%d cores available);\n\
     both runs audited: no job lost, directories consistent, all %d journals replay\n\
     with zero divergence\n"
    speedup cores shards;
  (* The parallel-speedup acceptance bound (>= 2x at 4 domains) is a
     claim about parallel hardware: on fewer than 4 cores the worker
     domains time-slice one another and the honest expectation is
     parity, so there the guard only rejects collapse. The correctness
     audits above hold unconditionally either way. *)
  if cores >= 4 && speedup < 2.0 then
    failwith "E21: parallel speedup below the 2x acceptance floor";
  if speedup < 0.25 then
    failwith "E21: multi-domain throughput collapsed against the single-domain run";
  Some speedup

(* ---------------------------------------------------------------------- *)
(* E22 — tracing overhead: 1/64 head sampling + 10ms tail capture.        *)
(* ---------------------------------------------------------------------- *)

let e22 () =
  header "E22: tracing overhead (1/64 head sampling + 10ms tail capture, 4 domains)";
  let module Engine = Rebal_online.Engine in
  let module Cluster = Rebal_online.Cluster in
  let module Replay = Rebal_online.Replay in
  let module Optrace = Rebal_obs.Optrace in
  let shards = 8 and m = 32 and domains = 4 in
  let driver_threads = 8 and ops_per_thread = 2_000 in
  let total_ops = driver_threads * ops_per_thread in
  (* The E21 driver with every op wrapped in the session-boundary
     [Optrace.with_op] — exactly what handle_line does. [traced] flips
     the production knobs (head 1/64 + 10ms tail); untraced leaves both
     off, where with_op must cost two atomic loads. Both runs keep the
     full E21 audit: nothing lost, directory consistent, every shard
     journal replays without divergence — tracing must not perturb the
     event stream. *)
  let drive ~traced () =
    Optrace.reset ();
    if traced then begin
      Optrace.set_sample_every 64;
      Optrace.set_slow_threshold_ns 10_000_000
    end
    else begin
      Optrace.set_sample_every 0;
      Optrace.set_slow_threshold_ns (-1)
    end;
    let buffers = Array.init shards (fun _ -> Buffer.create 65536) in
    let cluster =
      Cluster.create
        ~journal_for:(fun i ->
          Some (Journal.create ~write:(Buffer.add_string buffers.(i)) ()))
        ~m ~shards ~domains ()
    in
    let survivors = Array.make driver_threads 0 in
    let latencies = Array.make total_ops 0.0 in
    let driver t () =
      let rng = Rng.create (22422 + t) in
      let live = ref [] in
      let next = ref 0 in
      let n = ref 0 in
      for i = 0 to ops_per_thread - 1 do
        let started = Timer.now_ns () in
        (match Rng.float rng 1.0 with
        | r when r < 0.6 || !live = [] ->
          let id = pf "e22t%d.%d" t !next in
          incr next;
          Optrace.with_op ~verb:"ADD" (fun () ->
              match Cluster.add_job cluster ~id ~size:(Rng.int_range rng 1 100) with
              | Ok _ ->
                live := id :: !live;
                incr n
              | Error e -> failwith ("E22: add rejected: " ^ e))
        | r when r < 0.85 -> (
          match !live with
          | [] -> assert false
          | id :: rest ->
            Optrace.with_op ~verb:"REMOVE" (fun () ->
                match Cluster.remove_job cluster ~id with
                | Ok _ ->
                  live := rest;
                  decr n
                | Error e -> failwith ("E22: remove rejected: " ^ e)))
        | _ ->
          let id = List.hd !live in
          Optrace.with_op ~verb:"RESIZE" (fun () ->
              match Cluster.resize_job cluster ~id ~size:(Rng.int_range rng 1 100) with
              | Ok _ -> ()
              | Error e -> failwith ("E22: resize rejected: " ^ e)));
        latencies.((t * ops_per_thread) + i) <-
          Int64.to_float (Int64.sub (Timer.now_ns ()) started) /. 1e9;
        if t = 0 && (i + 1) mod 500 = 0 then
          Optrace.with_op ~verb:"REBALANCE" (fun () ->
              ignore (Cluster.rebalance cluster ~k:8))
      done;
      survivors.(t) <- !n
    in
    Gc.compact ();
    let (), wall =
      Timer.time (fun () ->
          let ts = Array.init driver_threads (fun t -> Thread.create (driver t) ()) in
          Array.iter Thread.join ts)
    in
    if Cluster.job_count cluster <> Array.fold_left ( + ) 0 survivors then
      failwith "E22: jobs lost or duplicated under concurrency";
    if not (Cluster.check_consistency cluster ~k:max_int) then
      failwith "E22: directory/engine consistency check failed";
    if traced && Optrace.recorded () = [] then
      failwith "E22: tracing enabled but no spans recorded at the op boundary";
    Cluster.shutdown cluster;
    Array.iteri
      (fun i buf ->
        match Result.bind (Journal.parse_string (Buffer.contents buf)) Replay.run with
        | Error e -> failwith (pf "E22: shard %d journal replay: %s" i e)
        | Ok o ->
          let eng = Cluster.engine cluster i in
          if
            (not o.Replay.consistency_ok)
            || o.Replay.final_jobs <> Engine.job_count eng
            || o.Replay.final_makespan <> Engine.makespan eng
          then failwith (pf "E22: shard %d journal replay diverges with tracing on" i))
      buffers;
    Optrace.set_sample_every 0;
    Optrace.set_slow_threshold_ns (-1);
    Array.sort compare latencies;
    let pctl q = latencies.(min (total_ops - 1) (int_of_float (q *. float_of_int total_ops))) in
    (wall, float_of_int total_ops /. wall, pctl 0.99)
  in
  (* Interleaved pairs, scored best-of per arm: scheduler noise only
     ever slows a run down, never speeds it up, so the fastest run of
     each arm is the cleanest estimate of its true cost — and tracing
     overhead is systematic, so it cannot hide in the best traced run. *)
  let pairs = 5 in
  let t =
    Table.create
      ~title:(pf "S=%d shards, %d domains, %d ops per run, %d interleaved pairs" shards domains total_ops pairs)
      ~columns:[ "pair"; "untraced ops/s"; "traced ops/s"; "ratio"; "untraced p99"; "traced p99" ]
  in
  let runs =
    List.init pairs (fun i ->
        let _, tput_u, p99_u = drive ~traced:false () in
        let _, tput_t, p99_t = drive ~traced:true () in
        Table.add_row t
          [
            string_of_int (i + 1);
            pf "%.0f" tput_u;
            pf "%.0f" tput_t;
            pf "%.3f" (tput_t /. tput_u);
            pf "%.0f us" (p99_u *. 1e6);
            pf "%.0f us" (p99_t *. 1e6);
          ];
        (tput_u, tput_t))
  in
  Table.print t;
  let best f = List.fold_left (fun acc r -> Float.max acc (f r)) 0.0 runs in
  let ratio = best snd /. best fst in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "best traced / best untraced throughput ratio %.3f (%d cores available);\n\
     every run audited: directories consistent, all %d journals replay with zero\n\
     divergence with tracing enabled\n"
    ratio cores shards;
  (* Like E21's speedup bound, the 10%% overhead budget is a claim about
     parallel hardware: with fewer than 4 cores the worker domains
     time-slice one another and run-to-run scheduling noise exceeds the
     budget being measured, so there the guard only rejects collapse.
     The correctness audits above hold unconditionally either way. *)
  if cores >= 4 && ratio < 0.9 then
    failwith "E22: tracing overhead above the 10%% acceptance budget";
  if ratio < 0.5 then
    failwith "E22: traced throughput collapsed against the untraced run";
  Some ratio

(* ---------------------------------------------------------------------- *)
(* E23 — telemetry overhead: 50 Hz sampling + 10 active alert rules.      *)
(* ---------------------------------------------------------------------- *)

let e23 () =
  header "E23: telemetry overhead (50 Hz sampling + 10 active alert rules, 4 domains)";
  let module Engine = Rebal_online.Engine in
  let module Cluster = Rebal_online.Cluster in
  let module Replay = Rebal_online.Replay in
  let module Tsdb = Rebal_obs.Tsdb in
  let module Alerts = Rebal_obs.Alerts in
  let shards = 8 and m = 32 and domains = 4 in
  let driver_threads = 8 and ops_per_thread = 2_000 in
  let total_ops = driver_threads * ops_per_thread in
  (* Ten rules over series the cluster actually produces — per-domain
     utilization and mailbox depth, engine latency quantiles and rates,
     and one multi-window burn rate — so every tick pays for real
     window scans, not missing-series early-outs. *)
  let rules_text =
    String.concat "\n"
      ([
         "alert add_p99 p99(rebal_engine_op_latency_seconds{op=\"add\"}[2s]) > 0.01 for 1s";
         "alert rm_p99 p99(rebal_engine_op_latency_seconds{op=\"remove\"}[2s]) > 0.01 for 1s";
         "alert add_rate rate(rebal_engine_op_latency_seconds_count{op=\"add\"}[2s]) > 0 for 0s";
         "burnrate rebalance_share bad=rebal_engine_op_latency_seconds_count{op=\"rebalance\"} \
          total=rebal_engine_op_latency_seconds_count{op=\"add\"} budget=0.5 factor=1 \
          short=1s long=3s";
       ]
      @ List.init 4 (fun d ->
            pf "alert util%d avg(rebal_domain_utilization{domain=\"%d\"}[2s]) > 0.95 for 1s" d
              d)
      @ List.init 2 (fun d ->
            pf "alert mbox%d max(rebal_mailbox_depth{domain=\"%d\"}[2s]) > 512 for 1s" d d))
  in
  let rules =
    match Alerts.parse_rules rules_text with
    | Ok rs -> rs
    | Error e -> failwith ("E23: rules: " ^ e)
  in
  if List.length rules <> 10 then failwith "E23: expected 10 rules";
  (* The E21/E22 driver mix, with [Control] (latency histograms) on in
     BOTH arms so the ratio isolates exactly what this PR added: the
     sampler walking a merged snapshot of every domain registry into the
     ring store, ten rule evaluations per tick and the JSONL telemetry
     sink. 50 Hz is 50x the production 1 s cadence — headroom, not
     flattery. Both arms keep the full audit: nothing lost, directory
     consistent, every shard journal replays with zero divergence. *)
  let drive ~telemetry () =
    let buffers = Array.init shards (fun _ -> Buffer.create 65536) in
    let cluster =
      Cluster.create
        ~journal_for:(fun i ->
          Some (Journal.create ~write:(Buffer.add_string buffers.(i)) ()))
        ~m ~shards ~domains ()
    in
    let telemetry_buf = Buffer.create 65536 in
    let stop = ref false in
    let sampler =
      if not telemetry then None
      else begin
        let sink = Journal.create ~write:(Buffer.add_string telemetry_buf) () in
        let tsdb =
          Tsdb.create ~sink
            ~meta:[ ("mode", Journal.Str "bench-e23"); ("shards", Journal.Int shards) ]
            ~source:(fun () ->
              let reg = Metrics.Registry.create () in
              Cluster.merge_metrics cluster ~into:reg;
              Metrics.Registry.metrics reg)
            ()
        in
        let alerts = Alerts.create ~sink ~rules tsdb in
        let thread =
          Thread.create
            (fun () ->
              while not !stop do
                Tsdb.sample tsdb;
                ignore (Alerts.eval alerts);
                Thread.delay 0.02
              done)
            ()
        in
        Some (tsdb, alerts, thread)
      end
    in
    let survivors = Array.make driver_threads 0 in
    let latencies = Array.make total_ops 0.0 in
    let driver t () =
      let rng = Rng.create (23523 + t) in
      let live = ref [] in
      let next = ref 0 in
      let n = ref 0 in
      for i = 0 to ops_per_thread - 1 do
        let started = Timer.now_ns () in
        (match Rng.float rng 1.0 with
        | r when r < 0.6 || !live = [] ->
          let id = pf "e23t%d.%d" t !next in
          incr next;
          (match Cluster.add_job cluster ~id ~size:(Rng.int_range rng 1 100) with
          | Ok _ ->
            live := id :: !live;
            incr n
          | Error e -> failwith ("E23: add rejected: " ^ e))
        | r when r < 0.85 -> (
          match !live with
          | [] -> assert false
          | id :: rest -> (
            match Cluster.remove_job cluster ~id with
            | Ok _ ->
              live := rest;
              decr n
            | Error e -> failwith ("E23: remove rejected: " ^ e)))
        | _ -> (
          let id = List.hd !live in
          match Cluster.resize_job cluster ~id ~size:(Rng.int_range rng 1 100) with
          | Ok _ -> ()
          | Error e -> failwith ("E23: resize rejected: " ^ e)));
        latencies.((t * ops_per_thread) + i) <-
          Int64.to_float (Int64.sub (Timer.now_ns ()) started) /. 1e9;
        if t = 0 && (i + 1) mod 500 = 0 then ignore (Cluster.rebalance cluster ~k:8)
      done;
      survivors.(t) <- !n
    in
    Gc.compact ();
    let (), wall =
      Timer.time (fun () ->
          let ts = Array.init driver_threads (fun t -> Thread.create (driver t) ()) in
          Array.iter Thread.join ts)
    in
    (match sampler with
    | None -> ()
    | Some (tsdb, alerts, thread) ->
      stop := true;
      Thread.join thread;
      (* One final tick over the settled cluster, then audit the
         telemetry itself: samples were taken, every rule evaluated
         against live data, and the JSONL sink parses back. *)
      Tsdb.sample tsdb;
      ignore (Alerts.eval alerts);
      if Tsdb.samples_taken tsdb < 2 then failwith "E23: sampler never ran";
      List.iter
        (fun (r : Alerts.rule) ->
          if Alerts.state alerts r.Alerts.rule_name = None then
            failwith (pf "E23: rule %s not evaluated" r.Alerts.rule_name))
        rules;
      if Alerts.last_value alerts "add_rate" = None then
        failwith "E23: add_rate rule saw no data";
      (match Journal.parse_string (Buffer.contents telemetry_buf) with
      | Error e -> failwith ("E23: telemetry journal: " ^ e)
      | Ok (hdr, events) ->
        if hdr.Journal.journal <> "rebal-telemetry" then
          failwith "E23: telemetry journal mislabeled";
        if List.length events < Tsdb.samples_taken tsdb then
          failwith "E23: telemetry journal lost samples"));
    if Cluster.job_count cluster <> Array.fold_left ( + ) 0 survivors then
      failwith "E23: jobs lost or duplicated under concurrency";
    if not (Cluster.check_consistency cluster ~k:max_int) then
      failwith "E23: directory/engine consistency check failed";
    Cluster.shutdown cluster;
    Array.iteri
      (fun i buf ->
        match Result.bind (Journal.parse_string (Buffer.contents buf)) Replay.run with
        | Error e -> failwith (pf "E23: shard %d journal replay: %s" i e)
        | Ok o ->
          let eng = Cluster.engine cluster i in
          if
            (not o.Replay.consistency_ok)
            || o.Replay.final_jobs <> Engine.job_count eng
            || o.Replay.final_makespan <> Engine.makespan eng
          then failwith (pf "E23: shard %d journal replay diverges with telemetry on" i))
      buffers;
    Array.sort compare latencies;
    let pctl q = latencies.(min (total_ops - 1) (int_of_float (q *. float_of_int total_ops))) in
    (wall, float_of_int total_ops /. wall, pctl 0.99)
  in
  Rebal_obs.Control.with_enabled true (fun () ->
      let pairs = 5 in
      let t =
        Table.create
          ~title:
            (pf "S=%d shards, %d domains, %d ops per run, %d interleaved pairs" shards
               domains total_ops pairs)
          ~columns:[ "pair"; "quiet ops/s"; "telemetry ops/s"; "ratio"; "quiet p99"; "telemetry p99" ]
      in
      let runs =
        List.init pairs (fun i ->
            let _, tput_q, p99_q = drive ~telemetry:false () in
            let _, tput_t, p99_t = drive ~telemetry:true () in
            Table.add_row t
              [
                string_of_int (i + 1);
                pf "%.0f" tput_q;
                pf "%.0f" tput_t;
                pf "%.3f" (tput_t /. tput_q);
                pf "%.0f us" (p99_q *. 1e6);
                pf "%.0f us" (p99_t *. 1e6);
              ];
            (tput_q, tput_t))
      in
      Table.print t;
      let best f = List.fold_left (fun acc r -> Float.max acc (f r)) 0.0 runs in
      let ratio = best snd /. best fst in
      let cores = Domain.recommended_domain_count () in
      Printf.printf
        "best telemetry / best quiet throughput ratio %.3f (%d cores available);\n\
         every run audited: directories consistent, all %d journals replay with zero\n\
         divergence, and the telemetry arm took real samples through 10 live rules\n"
        ratio cores shards;
      (* Same hardware caveat as E21/E22: under 4 cores the sampler
         thread time-slices the workers and scheduler noise swamps the
         10%% budget being measured, so there the guard only rejects
         collapse. The correctness audits above hold unconditionally. *)
      if cores >= 4 && ratio < 1.0 /. 1.10 then
        failwith "E23: telemetry overhead above the 10%% acceptance budget";
      if ratio < 0.5 then
        failwith "E23: telemetried throughput collapsed against the quiet run";
      Some ratio)

(* ---------------------------------------------------------------------- *)
(* E24 — the flat hot path: µs/event, minor words/event, binary journal.  *)
(* ---------------------------------------------------------------------- *)

let e24 () =
  header "E24: flat-core hot path (us/event, alloc/event, binary journal overhead)";
  let module Engine = Rebal_online.Engine in
  let n = 10_000 and m = 64 in
  let events = 50_000 in
  (* The E15 mix, but PREGENERATED: the measured loop contains no
     Printf, no rng draws, no pool bookkeeping — only
     [Engine.apply_bulk] over immutable op arrays, so the numbers are
     the engine's, not the harness's. The stream is built against a
     shadow pool so every op is valid when it executes. *)
  let rng = Rng.create 124 in
  let pool = Array.make (n + events + 1) "" in
  let count = ref 0 and next = ref 0 in
  let fresh_size () = Rng.int_range rng 1 1000 in
  let add () =
    let id = pf "j%d" !next in
    incr next;
    pool.(!count) <- id;
    incr count;
    Engine.Add { id; size = fresh_size () }
  in
  let preload = Array.init n (fun _ -> add ()) in
  let stream =
    Array.init events (fun _ ->
        match Rng.int rng 3 with
        | 0 -> add ()
        | 1 when !count > 1 ->
          let i = Rng.int rng !count in
          let id = pool.(i) in
          decr count;
          pool.(i) <- pool.(!count);
          Engine.Remove { id }
        | _ -> Engine.Resize { id = pool.(Rng.int rng !count); size = fresh_size () })
  in
  (* Pre-chunk into batch-sized slices once; every run reuses them, so
     slicing never happens inside a measured or counted window. *)
  let batch = 1024 in
  let slices =
    let rec go i acc =
      if i >= events then List.rev acc
      else
        let len = min batch (events - i) in
        go (i + len) (Array.sub stream i len :: acc)
    in
    go 0 []
  in
  let run ?journal () =
    Gc.compact ();
    let eng = Engine.create ?journal ~m () in
    Engine.apply_bulk eng preload;
    ignore (Engine.rebalance eng ~k:(n / 20));
    Engine.reserve eng ~jobs:(n + events);
    let (), dt =
      Timer.time (fun () -> List.iter (fun s -> Engine.apply_bulk eng s) slices)
    in
    dt /. float_of_int events
  in
  (* Ratio stability as in E17: absolute times swing on a shared box,
     back-to-back ratios don't. Three (off, binary, jsonl) triples,
     median by binary ratio. *)
  let triple () =
    let off = run () in
    let bbuf = Buffer.create (1 lsl 22) in
    let bin = run ~journal:(Journal.create ~format:Journal.Binary ~write:(Buffer.add_string bbuf) ()) () in
    let jbuf = Buffer.create (1 lsl 23) in
    let jsonl = run ~journal:(Journal.create ~write:(Buffer.add_string jbuf) ()) () in
    (off, bin, jsonl, Buffer.length bbuf, Buffer.length jbuf)
  in
  let triples = List.init 3 (fun _ -> triple ()) in
  let sorted =
    List.sort (fun (o1, b1, _, _, _) (o2, b2, _, _, _) -> compare (b1 /. o1) (b2 /. o2)) triples
  in
  let per_off, per_bin, per_jsonl, bbytes, jbytes = List.nth sorted 1 in
  (* The allocation audit: a 10k-op steady-state window in the middle of
     the stream, journal off, counted with [Gc.minor_words]. The probe
     itself boxes a float, so an empty window is measured first and
     subtracted. *)
  let words_per_op =
    Gc.compact ();
    let eng = Engine.create ~m () in
    Engine.apply_bulk eng preload;
    ignore (Engine.rebalance eng ~k:(n / 20));
    Engine.reserve eng ~jobs:(n + events);
    let warm, window, _rest =
      let rec split k l =
        if k = 0 then ([], l)
        else
          match l with
          | [] -> ([], [])
          | x :: tl ->
            let a, b = split (k - 1) tl in
            (x :: a, b)
      in
      let warm, rest = split 20 slices in
      let window, rest = split 10 rest in
      (warm, window, rest)
    in
    List.iter (fun s -> Engine.apply_bulk eng s) warm;
    let window_ops = List.fold_left (fun a s -> a + Array.length s) 0 window in
    let apply_window = fun () -> List.iter (fun s -> Engine.apply_bulk eng s) window in
    let calib =
      let a = Gc.minor_words () in
      Gc.minor_words () -. a
    in
    let before = Gc.minor_words () in
    apply_window ();
    let after = Gc.minor_words () in
    (after -. before -. calib) /. float_of_int window_ops
  in
  let t =
    Table.create
      ~title:(pf "n≈%d jobs on m=%d, %d-event pregenerated stream, batch=%d" n m events batch)
      ~columns:[ "journal"; "per event"; "events/sec"; "overhead"; "bytes/event" ]
  in
  Table.add_row t
    [ "off"; pf "%.3f us" (per_off *. 1e6); pf "%.0f" (1.0 /. per_off); "1.00x"; "-" ];
  Table.add_row t
    [
      "binary (buffer sink)";
      pf "%.3f us" (per_bin *. 1e6);
      pf "%.0f" (1.0 /. per_bin);
      pf "%.2fx" (per_bin /. per_off);
      pf "%.0f" (float_of_int bbytes /. float_of_int events);
    ];
  Table.add_row t
    [
      "jsonl (buffer sink)";
      pf "%.3f us" (per_jsonl *. 1e6);
      pf "%.0f" (1.0 /. per_jsonl);
      pf "%.2fx" (per_jsonl /. per_off);
      pf "%.0f" (float_of_int jbytes /. float_of_int events);
    ];
  Table.print t;
  let bin_overhead = per_bin /. per_off in
  Printf.printf
    "steady-state allocation: %.4f minor words/op over a 10k-op window\n\
     (acceptance: 0 — the flat core neither boxes nor grows on the quiet path)\n\
     binary journal overhead %.2fx (ceiling 1.2x); journal-off %.3f us/event (target <= 1.0)\n"
    words_per_op bin_overhead (per_off *. 1e6);
  if words_per_op > 0.5 then
    failwith
      (pf "E24: steady-state path allocates (%.2f minor words/op, budget 0)" words_per_op);
  if bin_overhead > 1.2 then
    print_endline "WARNING: binary journal overhead above the 1.2x acceptance ceiling";
  if per_off > 1.0e-6 then
    print_endline "WARNING: journal-off hot path above the 1.0 us/event target";
  Some bin_overhead

(* ---------------------------------------------------------------------- *)
(* Runner: --only to subset, --json for machine-readable results.         *)
(* ---------------------------------------------------------------------- *)

let experiments =
  [
    ("E1", e1);
    ("E2", e2);
    ("E3", e3);
    ("E4", e4);
    ("E5", e5);
    ("E6", e6);
    ("E7", e7);
    ("E8", e8);
    ("E9", e9);
    ("E10", e10);
    ("E11", e11);
    ("E12", e12);
    ("E13", e13);
    ("E15", e15);
    ("E16", e16);
    ("E17", e17);
    ("E18", e18);
    ("E19", e19);
    ("E20", e20);
    ("E21", e21);
    ("E22", e22);
    ("E23", e23);
    ("E24", e24);
  ]

(* Baseline regression guard: --baseline FILE compares each selected
   experiment's wall seconds against a previous --json dump and fails
   the run when one slowed down more than 2x (plus 50ms of absolute
   slack, so microsecond-scale experiments don't trip on scheduler
   noise). CI runs the smoke subset against the committed
   BENCH_online.json. *)

let read_baseline path =
  let contents = In_channel.with_open_text path In_channel.input_all in
  match Journal.json_of_string contents with
  | Error e -> Error (pf "%s: %s" path e)
  | Ok (Journal.List entries) ->
    Ok
      (List.filter_map
         (function
           | Journal.Obj fields -> begin
             match (List.assoc_opt "name" fields, List.assoc_opt "seconds" fields) with
             | Some (Journal.Str name), Some (Journal.Float s) -> Some (name, s)
             | Some (Journal.Str name), Some (Journal.Int s) -> Some (name, float_of_int s)
             | _ -> None
           end
           | _ -> None)
         entries)
  | Ok _ -> Error (pf "%s: expected a JSON array of experiment results" path)

let check_baseline path results =
  match read_baseline path with
  | Error e ->
    Printf.eprintf "baseline error: %s\n" e;
    exit 2
  | Ok base ->
    (* Experiments newer than the baseline dump are skipped loudly, not
       silently: a CI baseline that predates E18/E19 should say so
       rather than pretend those experiments were guarded. *)
    let missing =
      List.filter_map
        (fun (name, _, _, _) ->
          if List.mem_assoc name base then None else Some name)
        results
    in
    List.iter
      (fun name ->
        Printf.printf
          "baseline %s: WARNING %s not in baseline, skipped (refresh with --json)\n"
          path name)
      missing;
    let regressions =
      List.filter_map
        (fun (name, _, secs, _) ->
          match List.assoc_opt name base with
          | Some b when secs > (2.0 *. b) +. 0.05 -> Some (name, b, secs)
          | _ -> None)
        results
    in
    (match regressions with
    | [] ->
      Printf.printf "baseline %s: no regressions among %d guarded experiment(s) (threshold 2x + 50ms slack)\n"
        path
        (List.length results - List.length missing)
    | rs ->
      List.iter
        (fun (name, b, s) ->
          Printf.eprintf "REGRESSION %s: %.3fs vs baseline %.3fs (limit %.3fs)\n" name s b
            ((2.0 *. b) +. 0.05))
        rs;
      exit 1)

(* One "name{labels}": value pair per metric the experiment produced;
   histograms are summarized as count/sum. *)
let metric_json_pairs ms =
  List.map
    (fun (m : Metrics.metric) ->
      let key =
        match m.Metrics.labels with
        | [] -> m.Metrics.name
        | ls ->
          pf "%s{%s}" m.Metrics.name
            (String.concat "," (List.map (fun (k, v) -> pf "%s=%s" k v) ls))
      in
      let value =
        match m.Metrics.kind with
        | Metrics.Counter c -> string_of_int (Metrics.Counter.value c)
        | Metrics.Gauge g -> pf "%g" (Metrics.Gauge.value g)
        | Metrics.Histogram h ->
          pf "{\"count\": %d, \"sum\": %g}" (Metrics.Histogram.observations h)
            (Metrics.Histogram.sum h)
      in
      pf "\"%s\": %s" key value)
    ms

let write_json path results =
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length results - 1 in
  List.iteri
    (fun i (name, ratio, secs, metrics) ->
      Printf.fprintf oc "  {\"name\": \"%s\", \"ratio\": %s, \"seconds\": %.3f, \
                         \"metrics\": {%s}}%s\n"
        name
        (match ratio with
        | None -> "null"
        | Some r -> pf "%.4f" r)
        secs
        (String.concat ", " (metric_json_pairs metrics))
        (if i < last then "," else ""))
    results;
  output_string oc "]\n";
  close_out oc

let () =
  let only = ref [] in
  let json = ref None in
  let baseline = ref None in
  let usage () =
    prerr_endline
      "usage: main.exe [--only E1,E5,...] [--json [FILE]] [--baseline FILE]";
    exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--only" :: spec :: rest ->
      only := !only @ String.split_on_char ',' spec;
      parse_args rest
    | [ "--json" ] -> json := Some "bench.json"
    | "--json" :: v :: rest when String.length v > 0 && v.[0] <> '-' ->
      json := Some v;
      parse_args rest
    | "--json" :: rest ->
      json := Some "bench.json";
      parse_args rest
    | "--baseline" :: file :: rest ->
      baseline := Some file;
      parse_args rest
    | _ -> usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let selected =
    match !only with
    | [] -> experiments
    | names ->
      List.iter
        (fun name ->
          if not (List.mem_assoc name experiments) then begin
            Printf.eprintf "unknown experiment %s (have %s)\n" name
              (String.concat ", " (List.map fst experiments));
            exit 2
          end)
        names;
      List.filter (fun (name, _) -> List.mem name names) experiments
  in
  let t0 = Unix.gettimeofday () in
  let results =
    List.map
      (fun (name, f) ->
        (* Each experiment gets its own registry, so the counters in the
           JSON output are attributable to that experiment alone. *)
        let reg = Metrics.Registry.create () in
        Metrics.Registry.with_registry reg @@ fun () ->
        let ratio, secs = Timer.time f in
        (name, ratio, secs, Metrics.Registry.metrics reg))
      selected
  in
  Printf.printf "\nall experiments done in %.1f s\n" (Unix.gettimeofday () -. t0);
  (match !json with
  | None -> ()
  | Some path ->
    write_json path results;
    Printf.printf "wrote %s\n" path);
  match !baseline with
  | None -> ()
  | Some path -> check_baseline path results
