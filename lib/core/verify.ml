type report = {
  makespan : int;
  moves : int;
  relocation_cost : int;
  budget_ok : bool;
  lower_bound : int;
  ratio : float;
}

let check inst assignment ~budget =
  if Assignment.n assignment <> Instance.n inst then
    Error
      (Printf.sprintf "assignment covers %d jobs but instance has %d"
         (Assignment.n assignment) (Instance.n inst))
  else if Assignment.m assignment <> Instance.m inst then
    Error
      (Printf.sprintf "assignment uses %d processors but instance has %d"
         (Assignment.m assignment) (Instance.m inst))
  else begin
    let makespan = Assignment.makespan inst assignment in
    let moves = Assignment.moves inst assignment in
    let relocation_cost = Assignment.relocation_cost inst assignment in
    let budget_ok = Budget.within inst assignment budget in
    let lower_bound = Lower_bounds.best inst ~budget in
    let ratio =
      if lower_bound = 0 then 1.0
      else float_of_int makespan /. float_of_int lower_bound
    in
    Ok { makespan; moves; relocation_cost; budget_ok; lower_bound; ratio }
  end

let check_exn inst assignment ~budget =
  match check inst assignment ~budget with
  | Error msg -> failwith ("Verify.check_exn: " ^ msg)
  | Ok report ->
    if not report.budget_ok then
      failwith
        (Format.asprintf "Verify.check_exn: budget %a exceeded (moves=%d cost=%d)"
           Budget.pp budget report.moves report.relocation_cost);
    report

let check_live_placement ~m ~live ~placement ~round_moves ~budget =
  if Array.length live <> m then
    Error (Printf.sprintf "live mask covers %d servers but m=%d" (Array.length live) m)
  else if not (Array.exists Fun.id live) then Error "no live server"
  else begin
    let bad = ref None in
    Array.iteri
      (fun j p ->
        if !bad = None then
          if p < 0 || p >= m then
            bad := Some (Printf.sprintf "job %d on out-of-range server %d (m=%d)" j p m)
          else if not live.(p) then
            bad := Some (Printf.sprintf "job %d on dead server %d" j p))
      placement;
    match !bad with
    | Some msg -> Error msg
    | None -> begin
      match budget with
      | Some k when round_moves > k ->
        Error (Printf.sprintf "round used %d policy moves but budget is %d" round_moves k)
      | _ ->
        if round_moves < 0 then Error "negative move count"
        else Ok ()
    end
  end

let pp_report ppf r =
  Format.fprintf ppf
    "makespan=%d moves=%d cost=%d budget_ok=%b lb=%d ratio=%.4f" r.makespan
    r.moves r.relocation_cost r.budget_ok r.lower_bound r.ratio
