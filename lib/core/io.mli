(** Plain-text instance and assignment serialization, used by the
    [rebalance] command-line tool.

    Instance format (lines; [#] starts a comment; blank lines ignored):
    {v
    processors <m>
    job <size> <cost> <initial-processor>   # one line per job, in id order
    v}

    Assignment format: one line of [n] whitespace-separated processor
    indices, job order. *)

val write_instance : out_channel -> Instance.t -> unit
val instance_to_string : Instance.t -> string

val read_instance : in_channel -> (Instance.t, string) result
(** Never raises on malformed input: empty files, non-integer tokens,
    non-positive sizes, negative costs, duplicate or missing
    [processors] lines and out-of-range initial processors all produce
    [Error "line N: ..."] naming the first offending line. *)

val instance_of_string : string -> (Instance.t, string) result

val write_assignment : out_channel -> Assignment.t -> unit
val assignment_to_string : Assignment.t -> string

val read_assignment : m:int -> in_channel -> (Assignment.t, string) result
val assignment_of_string : m:int -> string -> (Assignment.t, string) result
