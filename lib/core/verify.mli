(** Independent validation of algorithm outputs. Every algorithm in
    [rebal_algo] is checked against this module in the test suite: the
    checker recomputes loads, move counts and costs from scratch and never
    trusts any quantity reported by a solver. *)

type report = {
  makespan : int;
  moves : int;
  relocation_cost : int;
  budget_ok : bool;
  lower_bound : int;  (** [Lower_bounds.best] for the same budget *)
  ratio : float;  (** makespan / lower_bound; an upper bound on the true approximation ratio *)
}

val check : Instance.t -> Assignment.t -> budget:Budget.t -> (report, string) result
(** [Ok report] if the assignment is well-formed for the instance;
    [Error msg] describes the first shape problem found. A blown budget is
    not an error: it is reported via [budget_ok] so callers can decide. *)

val check_exn : Instance.t -> Assignment.t -> budget:Budget.t -> report
(** Like [check] but also fails if the budget is exceeded.
    @raise Failure on any violation. *)

val check_live_placement :
  m:int ->
  live:bool array ->
  placement:int array ->
  round_moves:int ->
  budget:int option ->
  (unit, string) result
(** Per-step invariant for the fault-injected simulators: every job is
    assigned to exactly one server index in [0 .. m-1] whose [live]
    entry is true, at least one server is live, and the number of
    policy moves consumed this round is within the policy's budget
    ([None] = unbounded). Emergency evacuations are not policy moves
    and must not be included in [round_moves]. *)

val pp_report : Format.formatter -> report -> unit
