let write_instance oc inst =
  Printf.fprintf oc "processors %d\n" (Instance.m inst);
  for j = 0 to Instance.n inst - 1 do
    Printf.fprintf oc "job %d %d %d\n" (Instance.size inst j)
      (Instance.cost inst j) (Instance.initial inst j)
  done

let instance_to_string inst =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "processors %d\n" (Instance.m inst));
  for j = 0 to Instance.n inst - 1 do
    Buffer.add_string buf
      (Printf.sprintf "job %d %d %d\n" (Instance.size inst j)
         (Instance.cost inst j) (Instance.initial inst j))
  done;
  Buffer.contents buf

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  strip_comment line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_lines lines =
  (* Jobs carry their line number so every semantic error — not just a
     token that fails to parse — points at the offending line. *)
  let m = ref None in
  let jobs = ref [] in
  let error = ref None in
  let fail lineno fmt = Printf.ksprintf (fun msg -> error := Some (Printf.sprintf "line %d: %s" lineno msg)) fmt in
  List.iteri
    (fun idx line ->
      if !error = None then begin
        let lineno = idx + 1 in
        match tokens line with
        | [] -> ()
        | [ "processors"; v ] -> begin
          match (int_of_string_opt v, !m) with
          | Some _, Some _ -> fail lineno "duplicate 'processors' line"
          | Some v, None when v >= 1 -> m := Some v
          | Some v, None -> fail lineno "processor count must be >= 1, got %d" v
          | None, _ -> fail lineno "bad processor count %S" v
        end
        | "processors" :: _ -> fail lineno "'processors' line wants exactly one count"
        | [ "job"; s; c; p ] -> begin
          match (int_of_string_opt s, int_of_string_opt c, int_of_string_opt p) with
          | Some s, _, _ when s <= 0 -> fail lineno "job size must be positive, got %d" s
          | _, Some c, _ when c < 0 -> fail lineno "relocation cost must be non-negative, got %d" c
          | Some s, Some c, Some p -> jobs := (lineno, s, c, p) :: !jobs
          | None, _, _ -> fail lineno "bad job size %S" s
          | _, None, _ -> fail lineno "bad relocation cost %S" c
          | _, _, None -> fail lineno "bad initial processor %S" p
        end
        | "job" :: rest ->
          fail lineno "'job' line wants <size> <cost> <initial>, got %d fields" (List.length rest)
        | tok :: _ -> fail lineno "unrecognized directive %S" tok
      end)
    lines;
  match (!error, !m) with
  | Some msg, _ -> Error msg
  | None, None -> Error (if !jobs = [] then "empty instance: missing 'processors' line" else "missing 'processors' line")
  | None, Some m -> begin
    let jobs = Array.of_list (List.rev !jobs) in
    match
      Array.fold_left
        (fun acc (lineno, _, _, p) ->
          match acc with
          | Some _ -> acc
          | None ->
            if p < 0 || p >= m then
              Some
                (Printf.sprintf
                   "line %d: initial processor %d out of range for %d processors" lineno p m)
            else None)
        None jobs
    with
    | Some msg -> Error msg
    | None ->
      let sizes = Array.map (fun (_, s, _, _) -> s) jobs in
      let costs = Array.map (fun (_, _, c, _) -> c) jobs in
      let initial = Array.map (fun (_, _, _, p) -> p) jobs in
      (try Ok (Instance.create ~costs ~sizes ~m initial)
       with Invalid_argument msg -> Error msg)
  end

let lines_of_channel ic =
  let rec loop acc =
    match input_line ic with
    | line -> loop (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  loop []

let read_instance ic = parse_lines (lines_of_channel ic)
let instance_of_string s = parse_lines (String.split_on_char '\n' s)

let assignment_to_string assignment =
  Assignment.to_array assignment |> Array.to_list |> List.map string_of_int
  |> String.concat " "

let write_assignment oc assignment =
  output_string oc (assignment_to_string assignment);
  output_char oc '\n'

let assignment_of_string ~m s =
  let toks = tokens s in
  let parsed = List.map int_of_string_opt toks in
  if List.exists (fun v -> v = None) parsed then
    Error "assignment: non-integer token"
  else begin
    let arr = Array.of_list (List.map Option.get parsed) in
    try Ok (Assignment.of_array ~m arr) with Invalid_argument msg -> Error msg
  end

let read_assignment ~m ic =
  let contents = lines_of_channel ic |> String.concat " " in
  assignment_of_string ~m contents
