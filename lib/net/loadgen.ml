module Metrics = Rebal_obs.Metrics

type config = {
  host : string;
  port : int;
  connections : int;
  rate : float;  (* aggregate target ops/sec across all connections *)
  ops : int;  (* total ops across all connections *)
  seed : int;
  ids : int;  (* per-connection id-universe size *)
}

type verb_stats = {
  v_count : int;
  v_mean : float;
  v_p50 : float;
  v_p99 : float;
}

type report = {
  connections : int;
  ops : int;
  ok : int;
  errors : int;
  elapsed : float;
  throughput : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max_latency : float;
  per_verb : (string * verb_stats) list;
}

let default =
  { host = "127.0.0.1"; port = 7677; connections = 32; rate = 2000.0; ops = 10_000; seed = 1; ids = 64 }

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | exception Not_found -> failwith ("cannot resolve host " ^ host)
    | h ->
      if Array.length h.Unix.h_addr_list = 0 then failwith ("cannot resolve host " ^ host)
      else h.Unix.h_addr_list.(0))

(* One acknowledgement per command: PLACED/REMOVED/RESIZED/ERR
   terminate an op's reply; MOVE and REBALANCED lines are riders
   (automatic repairs travel behind the ack that triggered them), so
   they are skipped — which keeps op -> ack attribution exact even
   when replies interleave with trigger-fired repair reports. *)
let rec read_ack ic =
  let line = input_line ic in
  let starts p =
    String.length line >= String.length p && String.sub line 0 (String.length p) = p
  in
  if starts "PLACED" || starts "REMOVED" || starts "RESIZED" then `Ok
  else if starts "ERR" then `Err
  else read_ack ic

(* What one connection thread does: an open-loop arrival schedule
   (seeded exponential interarrivals at rate/connections) against its
   own private id universe. Latency is completion minus *scheduled*
   arrival — the open-loop convention, so a server that falls behind
   accumulates queueing delay in the histogram instead of silently
   slowing the generator down. The op mix is 60% add / 25% remove /
   15% resize against locally-tracked live ids, so every command is
   semantically valid and an ERR reply means the server misbehaved. *)
type conn_result = {
  c_ok : int;
  c_err : int;
  c_lat : (string * float) list;  (* (op, latency) pairs *)
}

let drive_connection (cfg : config) ~conn ~n_ops ~observe =
  let rng = Random.State.make [| cfg.seed; conn; 0x10adc0de |] in
  let addr = Unix.ADDR_INET (resolve cfg.host, cfg.port) in
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (* EINTR-safe: an interrupted connect keeps handshaking in the
     kernel; Lineio waits it out instead of racing a second connect. *)
  Lineio.connect sock addr;
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  Fun.protect ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
  @@ fun () ->
  ignore (input_line ic) (* READY banner *);
  let live = Hashtbl.create 64 in
  let id j = Printf.sprintf "lg%d.%d" conn j in
  let pick_live () =
    let n = Hashtbl.length live in
    let target = Random.State.int rng n in
    let k = ref 0 and found = ref None in
    Hashtbl.iter
      (fun j () ->
        if !k = target && !found = None then found := Some j;
        incr k)
      live;
    Option.get !found
  in
  let pick_free () =
    let rec try_from j = if Hashtbl.mem live j then try_from ((j + 1) mod cfg.ids) else j in
    try_from (Random.State.int rng cfg.ids)
  in
  let command () =
    let r = Random.State.float rng 1.0 in
    let n_live = Hashtbl.length live in
    if (r < 0.6 && n_live < cfg.ids) || n_live = 0 then begin
      let j = pick_free () in
      Hashtbl.replace live j ();
      ("add", Printf.sprintf "ADD %s %d" (id j) (1 + Random.State.int rng 100))
    end
    else if r < 0.85 && n_live > 0 then begin
      let j = pick_live () in
      Hashtbl.remove live j;
      ("remove", Printf.sprintf "REMOVE %s" (id j))
    end
    else begin
      let j = pick_live () in
      ("resize", Printf.sprintf "RESIZE %s %d" (id j) (1 + Random.State.int rng 100))
    end
  in
  let per_conn_rate = cfg.rate /. float_of_int cfg.connections in
  let interarrival () =
    (* Exponential with mean 1/rate; clamp the log away from 0. *)
    -.log (1e-12 +. Random.State.float rng 1.0) /. per_conn_rate
  in
  let ok = ref 0 and err = ref 0 and lats = ref [] in
  let scheduled = ref (Unix.gettimeofday ()) in
  for _ = 1 to n_ops do
    scheduled := !scheduled +. interarrival ();
    let now = Unix.gettimeofday () in
    if now < !scheduled then Thread.delay (!scheduled -. now);
    let op, line = command () in
    output_string oc line;
    output_char oc '\n';
    flush oc;
    (match read_ack ic with `Ok -> incr ok | `Err -> incr err);
    let latency = Unix.gettimeofday () -. !scheduled in
    lats := (op, latency) :: !lats;
    observe ~op latency
  done;
  { c_ok = !ok; c_err = !err; c_lat = !lats }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let run (cfg : config) =
  if cfg.connections < 1 then Error "loadgen: need at least one connection"
  else if cfg.ops < 1 then Error "loadgen: need at least one op"
  else if cfg.rate <= 0.0 then Error "loadgen: need a positive rate"
  else if cfg.ids < 1 then Error "loadgen: need a positive id universe"
  else begin
    (* The exposition-facing histogram. All connection threads are
       systhreads of this one domain, so sharing the handles is within
       the Metrics confinement contract. *)
    let histo op =
      Metrics.histogram
        ~help:"Loadgen op latency (completion minus scheduled arrival) in seconds"
        ~labels:[ ("op", op) ] "rebal_loadgen_latency_seconds"
    in
    let h_add = histo "add" and h_remove = histo "remove" and h_resize = histo "resize" in
    let observe ~op latency =
      Metrics.Histogram.observe
        (match op with "add" -> h_add | "remove" -> h_remove | _ -> h_resize)
        latency
    in
    let n_conn i =
      (cfg.ops / cfg.connections) + if i < cfg.ops mod cfg.connections then 1 else 0
    in
    let results = Array.make cfg.connections (Ok { c_ok = 0; c_err = 0; c_lat = [] }) in
    let started = Unix.gettimeofday () in
    let threads =
      Array.init cfg.connections (fun conn ->
          Thread.create
            (fun () ->
              results.(conn) <-
                (match drive_connection cfg ~conn ~n_ops:(n_conn conn) ~observe with
                | r -> Ok r
                | exception e -> Error (Printexc.to_string e)))
            ())
    in
    Array.iter Thread.join threads;
    let elapsed = Unix.gettimeofday () -. started in
    match Array.find_opt Result.is_error results with
    | Some (Error e) -> Error ("loadgen: connection failed: " ^ e)
    | _ ->
      let folded =
        Array.fold_left
          (fun (ok, err, lats) r ->
            match r with
            | Ok c -> (ok + c.c_ok, err + c.c_err, List.rev_append c.c_lat lats)
            | Error _ -> (ok, err, lats))
          (0, 0, []) results
      in
      let ok, errors, lats = folded in
      let sorted = Array.of_list (List.map snd lats) in
      Array.sort compare sorted;
      let verb_stats op =
        let vs = List.filter_map (fun (o, l) -> if o = op then Some l else None) lats in
        let v = Array.of_list vs in
        Array.sort compare v;
        let n = Array.length v in
        {
          v_count = n;
          v_mean = (if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 v /. float_of_int n);
          v_p50 = percentile v 0.50;
          v_p99 = percentile v 0.99;
        }
      in
      Ok
        {
          connections = cfg.connections;
          ops = ok + errors;
          ok;
          errors;
          elapsed;
          throughput = (if elapsed > 0.0 then float_of_int (ok + errors) /. elapsed else 0.0);
          p50 = percentile sorted 0.50;
          p95 = percentile sorted 0.95;
          p99 = percentile sorted 0.99;
          max_latency = percentile sorted 1.0;
          per_verb = List.map (fun op -> (op, verb_stats op)) [ "add"; "remove"; "resize" ];
        }
  end

(* ----- machine-readable summary ----- *)

(* The JSON summary [loadgen --out] writes: run configuration, the
   aggregate figures, and per-verb count/mean/p50/p99 — rendered
   through the journal's JSON (the repo's one JSON writer). *)
let summary_json (cfg : config) (r : report) =
  let module J = Rebal_obs.Journal in
  let f x = J.Float x in
  J.render_json
    (J.Obj
       [
         ("tool", J.Str "rebalance loadgen");
         ( "config",
           J.Obj
             [
               ("host", J.Str cfg.host);
               ("port", J.Int cfg.port);
               ("connections", J.Int cfg.connections);
               ("rate", f cfg.rate);
               ("ops", J.Int cfg.ops);
               ("seed", J.Int cfg.seed);
               ("ids", J.Int cfg.ids);
             ] );
         ("ops", J.Int r.ops);
         ("ok", J.Int r.ok);
         ("errors", J.Int r.errors);
         ("elapsed_s", f r.elapsed);
         ("achieved_rate", f r.throughput);
         ("p50_s", f r.p50);
         ("p95_s", f r.p95);
         ("p99_s", f r.p99);
         ("max_s", f r.max_latency);
         ( "per_verb",
           J.Obj
             (List.map
                (fun (op, v) ->
                  ( op,
                    J.Obj
                      [
                        ("count", J.Int v.v_count);
                        ("mean_s", f v.v_mean);
                        ("p50_s", f v.v_p50);
                        ("p99_s", f v.v_p99);
                      ] ))
                r.per_verb) );
       ])
