module Protocol = Rebal_online.Protocol

type t = {
  sock : Unix.file_descr;
  mu : Mutex.t;
  mutable live : Unix.file_descr list;  (* fds of active sessions *)
  mutable sessions : int;
  mutable stopping : bool;
}

let create ?(backlog = 64) ~addr () =
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock addr;
     Unix.listen sock backlog
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  { sock; mu = Mutex.create (); live = []; sessions = 0; stopping = false }

let bound_addr t = Unix.getsockname t.sock

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let stopping t = locked t (fun () -> t.stopping)
let session_count t = locked t (fun () -> t.sessions)

let request_stop t =
  let first =
    locked t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          true
        end)
  in
  if first then
    (* shutdown, not close: closing an fd another thread is blocked in
       accept(2) on does not reliably wake it; shutdown makes the
       accept fail immediately (EINVAL on Linux). The fd itself is
       closed at the end of [drain]. *)
    try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let register t fd =
  locked t (fun () ->
      t.live <- fd :: t.live;
      t.sessions <- t.sessions + 1)

let unregister t fd =
  locked t (fun () ->
      t.live <- List.filter (fun f -> f != fd) t.live;
      t.sessions <- t.sessions - 1)

(* One connection: channels over the fd, the protocol session, then
   close. [close_out] flushes and closes the shared fd; the input
   channel must not be closed as well (double close). A session that
   dies however it likes — EOF, broken pipe, an exception — ends only
   itself. *)
let handle t session fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let verdict = try session ic oc with _ -> Protocol.Close in
  (try close_out oc with Sys_error _ -> ());
  unregister t fd;
  if verdict = Protocol.Stop then request_stop t

let run t ~session =
  let rec loop () =
    if stopping t then ()
    else
      match Unix.accept t.sock with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.EINVAL | Unix.EBADF | Unix.ECONNABORTED), _, _) ->
        () (* listener shut down underneath us: a stop request *)
      | fd, _ ->
        register t fd;
        ignore (Thread.create (handle t session) fd);
        loop ()
  in
  loop ()

let drain ?(grace = 5.0) t =
  request_stop t;
  (* Grace period: let in-flight sessions finish what they are doing
     (OCaml's Condition has no timed wait, so this polls — drain is a
     once-per-process path, 20ms granularity is plenty). *)
  let deadline = Unix.gettimeofday () +. grace in
  while session_count t > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  (* Stragglers get their sockets shut down: their next read sees EOF,
     the session returns and its thread closes the fd itself. *)
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    (locked t (fun () -> t.live));
  let hard = Unix.gettimeofday () +. 1.0 in
  while session_count t > 0 && Unix.gettimeofday () < hard do
    Thread.delay 0.02
  done;
  try Unix.close t.sock with Unix.Unix_error _ -> ()
