(** Concurrent TCP load generator for the serve daemon.

    [N] client connections, each on its own thread, drive a seeded
    {e open-loop} workload: arrivals follow exponential interarrivals
    at [rate / connections] per connection, and an op's latency is
    measured from its {e scheduled} arrival to its acknowledgement —
    so when the server falls behind, the backlog shows up as queueing
    delay in the latency tail instead of silently throttling the
    generator (the closed-loop pitfall).

    The op mix is 60% add / 25% remove / 15% resize over a private
    per-connection id universe, tracked locally so every command is
    semantically valid: an [ERR] reply counts as a server error, not
    workload noise. Pipelined riders (MOVE / [REBALANCED auto] lines
    behind an ack) are consumed and attributed to the op that caused
    them.

    Latencies are also observed into
    [rebal_loadgen_latency_seconds{op="..."}] histograms in the
    current {!Rebal_obs.Metrics} registry. *)

type config = {
  host : string;
  port : int;
  connections : int;  (** concurrent client connections *)
  rate : float;  (** aggregate target ops/sec, split across connections *)
  ops : int;  (** total ops, split across connections *)
  seed : int;
  ids : int;  (** per-connection id-universe size *)
}

type verb_stats = {
  v_count : int;
  v_mean : float;
  v_p50 : float;
  v_p99 : float;
}

type report = {
  connections : int;
  ops : int;  (** ops acknowledged (= sent, on a clean run) *)
  ok : int;
  errors : int;  (** [ERR] acknowledgements *)
  elapsed : float;  (** wall seconds for the whole run *)
  throughput : float;  (** acknowledged ops per second *)
  p50 : float;
  p95 : float;
  p99 : float;
  max_latency : float;  (** seconds, open-loop accounting *)
  per_verb : (string * verb_stats) list;
      (** one entry per op kind (add/remove/resize), in mix order *)
}

val default : config
(** 32 connections, 2000 ops/sec, 10k ops, seed 1, 64 ids each,
    127.0.0.1:7677. *)

val run : config -> (report, string) result
(** Run to completion. [Error] on an invalid config or if any
    connection fails outright (refused, reset mid-run). *)

val summary_json : config -> report -> string
(** The machine-readable summary [loadgen --out] writes: the run
    configuration, the aggregate figures (count, error count, achieved
    rate, latency percentiles) and per-verb count/mean/p50/p99. *)
