(** The scrape endpoint: just enough HTTP/1.0 to serve
    [GET /metrics], [GET /alerts] and [GET /tsdb?series=...&window=...]
    from the same TCP port the line protocol listens on. One request
    per connection, always [Connection: close].

    Dispatch works in two layers. {!sniff} peeks (MSG_PEEK) at a
    freshly accepted socket: an HTTP client writes its request
    immediately after connect, a line-protocol client waits for the
    [READY] banner, so a short wait distinguishes them without
    consuming any bytes. A connection that sniffs as HTTP is then
    handed to {!handle} instead of the protocol session. *)

type response = {
  status : int;
  reason : string;
  content_type : string;
  body : string;
}

val is_request : string -> bool
(** Does this line parse as an HTTP request line ([METHOD target
    HTTP/x.y])? No line-protocol command does, so the test is
    unambiguous. *)

val sniff : ?timeout:float -> Unix.file_descr -> bool
(** Wait up to [timeout] (default 50ms) for the client's first bytes
    and peek at them without consuming: [true] iff a {e complete} HTTP
    method token ("GET " with its space, etc.) arrives within the
    window. A peek that is only a strict prefix of a method ("G",
    "HE" — also what a slow-to-write protocol client produces) is
    inconclusive and polled further, never classified; on timeout the
    answer is [false] — fall back to the protocol session and its
    banner, not to an HTTP error. *)

val respond :
  metrics:(unit -> string) ->
  ?alerts:(unit -> string) ->
  ?tsdb:(series:string -> window:string option -> (string, string) result) ->
  string ->
  response
(** The routing table: [GET /metrics] answers 200 with [metrics ()]
    as the body and the Prometheus text content type; [GET /alerts]
    answers [alerts ()] as plain text; [GET /tsdb] decodes the
    [series] (required) and [window] query parameters (%xx-decoded)
    and answers [tsdb]'s JSON on [Ok], 400 on [Error]. The telemetry
    routes answer 404 when their handler is absent (a daemon without
    [--telemetry-interval]); any other GET is 404, any other method
    405, an unparseable request line 400. All handlers are thunks so
    the work runs only when the route is hit. *)

val render : response -> string
(** Status line, [Content-Type]/[Content-Length]/[Connection: close]
    headers, blank line, body — CRLF line endings throughout. *)

val handle :
  metrics:(unit -> string) ->
  ?alerts:(unit -> string) ->
  ?tsdb:(series:string -> window:string option -> (string, string) result) ->
  in_channel ->
  out_channel ->
  unit
(** Serve one request: read the request line, drain the header block,
    write the rendered {!respond} answer, flush. EOF mid-request just
    returns — the caller closes the socket either way. *)
