(** Signal-safe line I/O over raw file descriptors.

    The protocol session's read/write layer: a buffered line reader
    whose buffer is inspectable ({!has_line} — what lets the session
    coalesce every already-arrived line into one batched dispatch
    without risking a blocking read mid-batch), and writers that
    survive signals. Every syscall here retries [EINTR] and waits out
    [EAGAIN]/[EWOULDBLOCK], so a SIGTERM delivered during drain never
    tears down a session whose peer is still connected. *)

type reader

val reader : ?initial_size:int -> Unix.file_descr -> reader
(** A buffered reader over [fd] (buffer grows as needed from
    [initial_size], default 4096). The reader owns the stream: do not
    mix it with channel reads on the same descriptor. *)

val read_line : reader -> string option
(** The next line, without its ['\n'] (a ['\r'] is preserved, matching
    [input_line]). Blocks until a full line, EOF, or a hard error. A
    final unterminated line is returned as-is; [None] means EOF with
    nothing buffered. [EINTR] is retried, [EAGAIN] waited out,
    [ECONNRESET] reads as EOF; other [Unix_error]s propagate. *)

val has_line : reader -> bool
(** Whether {!read_line} would return without blocking: a complete
    line is already buffered (or EOF makes the remainder a line). No
    syscall — this is the batching probe. *)

val write_string : Unix.file_descr -> string -> unit
(** Write the whole string: short writes resumed, [EINTR] retried,
    [EAGAIN] waited out. [EPIPE]/[ECONNRESET] propagate — a vanished
    peer ends the session, it is not retryable. *)

val write_substring : Unix.file_descr -> string -> int -> int -> unit

val connect : Unix.file_descr -> Unix.sockaddr -> unit
(** [Unix.connect] that survives [EINTR]: an interrupted connect keeps
    handshaking in the kernel, so retrying the syscall races it —
    instead this waits for writability and reads the outcome from
    [SO_ERROR], raising the recorded error if the connect failed. *)
