(* Signal-safe line I/O over raw file descriptors.

   OCaml channels hide their buffer: there is no way to ask "is a
   complete line already buffered?", which the batched protocol session
   needs (it coalesces every already-arrived line into one
   [Protocol.handle_lines] call without ever blocking mid-batch). This
   reader owns its buffer, so [has_line] is an exact, syscall-free
   answer — and every syscall in the module retries [EINTR] and waits
   out [EAGAIN]/[EWOULDBLOCK], so a SIGTERM landing mid-drain (or a
   socket with a receive timeout) never tears down a session that the
   peer has not actually closed. *)

type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable start : int; (* first unconsumed byte *)
  mutable len : int; (* unconsumed bytes from [start] *)
  mutable eof : bool;
}

let reader ?(initial_size = 4096) fd =
  if initial_size < 1 then invalid_arg "Lineio.reader: need a positive buffer size";
  { fd; buf = Bytes.create initial_size; start = 0; len = 0; eof = false }

(* Wait until [fd] is readable/writable, retrying interrupted selects. *)
let rec wait_fd ~read fd =
  let r, w = if read then ([ fd ], []) else ([], [ fd ]) in
  match Unix.select r w [] (-1.0) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_fd ~read fd
  | _ -> ()

(* One refill. 0 bytes (or a peer reset) marks EOF; EINTR retries
   immediately; EAGAIN waits for readability and retries. *)
let rec refill r =
  if Bytes.length r.buf - (r.start + r.len) = 0 then begin
    if r.start > 0 then begin
      (* compact: reclaim the consumed prefix *)
      Bytes.blit r.buf r.start r.buf 0 r.len;
      r.start <- 0
    end
    else begin
      (* one line larger than the whole buffer: grow *)
      let bigger = Bytes.create (2 * Bytes.length r.buf) in
      Bytes.blit r.buf r.start bigger 0 r.len;
      r.buf <- bigger;
      r.start <- 0
    end
  end;
  let off = r.start + r.len in
  match Unix.read r.fd r.buf off (Bytes.length r.buf - off) with
  | 0 -> r.eof <- true
  | n -> r.len <- r.len + n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill r
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    wait_fd ~read:true r.fd;
    refill r
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> r.eof <- true

let newline_at r =
  let stop = r.start + r.len in
  let rec scan i = if i >= stop then -1 else if Bytes.get r.buf i = '\n' then i else scan (i + 1) in
  scan r.start

let has_line r = newline_at r >= 0 || (r.eof && r.len > 0)

let take r stop consume =
  let line = Bytes.sub_string r.buf r.start (stop - r.start) in
  r.len <- r.len - (consume - r.start);
  r.start <- consume;
  line

let rec read_line r =
  match newline_at r with
  | i when i >= 0 -> Some (take r i (i + 1))
  | _ ->
    if r.eof then
      if r.len > 0 then Some (take r (r.start + r.len) (r.start + r.len))
      else None
    else begin
      refill r;
      read_line r
    end

(* ----- writing ----- *)

let write_substring fd s pos len =
  let rec go pos len =
    if len > 0 then
      match Unix.write_substring fd s pos len with
      | n -> go (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait_fd ~read:false fd;
        go pos len
  in
  go pos len

let write_string fd s = write_substring fd s 0 (String.length s)

(* ----- connecting ----- *)

(* connect(2) interrupted by a signal does NOT abort the attempt: the
   three-way handshake continues in the kernel, and calling connect
   again races it (EALREADY/EISCONN). The portable recovery is to wait
   for writability and read the disposition out of SO_ERROR. *)
let connect fd addr =
  match Unix.connect fd addr with
  | () -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> (
    wait_fd ~read:false fd;
    match Unix.getsockopt_error fd with
    | None -> ()
    | Some err -> raise (Unix.Unix_error (err, "connect", "")))
