(* A scrape endpoint, not a web server: just enough HTTP/1.0 to let
   Prometheus (or curl) GET /metrics from the same TCP port the line
   protocol listens on. One request per connection, always
   [Connection: close] — scrapes are periodic and cheap, keep-alive
   buys nothing and would complicate the session dispatch. *)

type response = {
  status : int;
  reason : string;
  content_type : string;
  body : string;
}

(* An HTTP request line is [METHOD SP target SP HTTP/x.y] — three
   tokens, version last. No line-protocol verb parses like that (their
   arguments never start with "HTTP/"), so dispatch on the first line
   is unambiguous. *)
let is_request line =
  match String.split_on_char ' ' (String.trim line) with
  | [ _; _; version ] ->
    String.length version >= 5 && String.sub version 0 5 = "HTTP/"
  | _ -> false

(* Sniff a freshly accepted socket: does the client open with an HTTP
   method? HTTP clients write their request immediately after connect,
   so a short wait suffices; a line-protocol client that is itself
   waiting for the READY banner sends nothing and we fall through at
   the timeout. MSG_PEEK leaves the bytes in the kernel buffer, so the
   session (either kind) still reads the stream from the start. *)
let methods = [ "GET "; "HEAD "; "POST "; "PUT "; "DELETE "; "OPTIONS " ]

let sniff ?(timeout = 0.05) fd =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _, _, _ -> (
    let buf = Bytes.create 8 in
    match Unix.recv fd buf 0 8 [ Unix.MSG_PEEK ] with
    | exception Unix.Unix_error _ -> false
    | n ->
      let s = Bytes.sub_string buf 0 n in
      List.exists
        (fun m ->
          let k = min (String.length m) (String.length s) in
          k > 0 && String.sub s 0 k = String.sub m 0 k)
        methods)
  | exception Unix.Unix_error _ -> false

let content_type_metrics = "text/plain; version=0.0.4; charset=utf-8"

let text status reason body =
  { status; reason; content_type = "text/plain; charset=utf-8"; body }

(* [metrics] is a thunk so the (comparatively expensive) registry merge
   and render run only for the one path that needs them. *)
let respond ~metrics request_line =
  match String.split_on_char ' ' (String.trim request_line) with
  | [ meth; target; _version ] -> begin
    match (meth, target) with
    | "GET", "/metrics" ->
      { status = 200; reason = "OK"; content_type = content_type_metrics; body = metrics () }
    | "GET", _ -> text 404 "Not Found" (Printf.sprintf "no route for %s\n" target)
    | _ -> text 405 "Method Not Allowed" "only GET is served here\n"
  end
  | _ -> text 400 "Bad Request" "malformed request line\n"

let render r =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    r.status r.reason r.content_type (String.length r.body) r.body

let handle ~metrics ic oc =
  match input_line ic with
  | exception (End_of_file | Sys_error _) -> ()
  | request_line ->
    (* Drain the header block — we serve every request the same way
       regardless of headers, but leaving them unread would surface
       them as line-protocol garbage if the client pipelines. *)
    let rec drain () =
      match input_line ic with
      | exception (End_of_file | Sys_error _) -> ()
      | "" | "\r" -> ()
      | _ -> drain ()
    in
    drain ();
    output_string oc (render (respond ~metrics request_line));
    flush oc
