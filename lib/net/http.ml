(* A scrape endpoint, not a web server: just enough HTTP/1.0 to let
   Prometheus (or curl) GET /metrics from the same TCP port the line
   protocol listens on. One request per connection, always
   [Connection: close] — scrapes are periodic and cheap, keep-alive
   buys nothing and would complicate the session dispatch. *)

type response = {
  status : int;
  reason : string;
  content_type : string;
  body : string;
}

(* An HTTP request line is [METHOD SP target SP HTTP/x.y] — three
   tokens, version last. No line-protocol verb parses like that (their
   arguments never start with "HTTP/"), so dispatch on the first line
   is unambiguous. *)
let is_request line =
  match String.split_on_char ' ' (String.trim line) with
  | [ _; _; version ] ->
    String.length version >= 5 && String.sub version 0 5 = "HTTP/"
  | _ -> false

(* Sniff a freshly accepted socket: does the client open with an HTTP
   method? HTTP clients write their request immediately after connect,
   so a short wait suffices; a line-protocol client that is itself
   waiting for the READY banner sends nothing and we fall through at
   the timeout. MSG_PEEK leaves the bytes in the kernel buffer, so the
   session (either kind) still reads the stream from the start.

   Classification needs a COMPLETE method token ("GET " including the
   space). A peek that is merely a strict prefix of one ("G", "HE" —
   which a slow-to-write HELP client also produces) is inconclusive:
   we keep polling for more bytes until the token resolves or the
   timeout expires, and an expired timeout falls back to the protocol
   session — the banner-then-ERR path — never to an HTTP 400. *)
let methods = [ "GET "; "HEAD "; "POST "; "PUT "; "DELETE "; "OPTIONS " ]

let is_method s =
  List.exists
    (fun m -> String.length s >= String.length m && String.sub s 0 (String.length m) = m)
    methods

let is_method_prefix s =
  s <> ""
  && List.exists
       (fun m -> String.length s < String.length m && String.sub m 0 (String.length s) = s)
       methods

let sniff ?(timeout = 0.05) fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then false
    else
      match Unix.select [ fd ] [] [] remaining with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> false
      | [], _, _ -> false
      | _ -> (
        let buf = Bytes.create 8 in
        match Unix.recv fd buf 0 8 [ Unix.MSG_PEEK ] with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> false
        | 0 -> false (* peer closed without writing *)
        | n ->
          let s = Bytes.sub_string buf 0 n in
          if is_method s then true
          else if is_method_prefix s then begin
            (* select would return immediately (bytes ARE readable), so
               poll on a short delay for the next byte. *)
            Thread.delay 0.005;
            go ()
          end
          else false)
  in
  go ()

let content_type_metrics = "text/plain; version=0.0.4; charset=utf-8"

let text status reason body =
  { status; reason; content_type = "text/plain; charset=utf-8"; body }

(* %xx-decode a query value — label selectors arrive as
   [series=rebal_x%7Bshard%3D%220%22%7D] from well-behaved clients
   (curl passes braces and quotes through raw, which we also accept). *)
let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let n = String.length s in
  let rec go i =
    if i < n then
      match s.[i] with
      | '%' when i + 2 < n -> begin
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some h, Some l ->
          Buffer.add_char buf (Char.chr ((h * 16) + l));
          go (i + 3)
        | _ ->
          Buffer.add_char buf '%';
          go (i + 1)
      end
      | '+' ->
        Buffer.add_char buf ' ';
        go (i + 1)
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0;
  Buffer.contents buf

let query_params qs =
  String.split_on_char '&' qs
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | None -> Some (percent_decode kv, "")
           | Some eq ->
             Some
               ( percent_decode (String.sub kv 0 eq),
                 percent_decode (String.sub kv (eq + 1) (String.length kv - eq - 1)) ))

(* [metrics] is a thunk so the (comparatively expensive) registry merge
   and render run only for the one path that needs them. [alerts] and
   [tsdb] are present only on a telemetry-enabled daemon — without them
   the routes answer 404 like any other unknown path. *)
let respond ~metrics ?alerts ?tsdb request_line =
  match String.split_on_char ' ' (String.trim request_line) with
  | [ meth; target; _version ] -> begin
    let path, query =
      match String.index_opt target '?' with
      | None -> (target, "")
      | Some q ->
        (String.sub target 0 q, String.sub target (q + 1) (String.length target - q - 1))
    in
    match (meth, path) with
    | "GET", "/metrics" ->
      { status = 200; reason = "OK"; content_type = content_type_metrics; body = metrics () }
    | "GET", "/alerts" -> begin
      match alerts with
      | Some thunk -> text 200 "OK" (thunk ())
      | None -> text 404 "Not Found" "telemetry not enabled\n"
    end
    | "GET", "/tsdb" -> begin
      match tsdb with
      | None -> text 404 "Not Found" "telemetry not enabled\n"
      | Some query_fn -> begin
        let params = query_params query in
        match List.assoc_opt "series" params with
        | None | Some "" -> text 400 "Bad Request" "missing series= parameter\n"
        | Some series -> begin
          match query_fn ~series ~window:(List.assoc_opt "window" params) with
          | Ok body ->
            { status = 200; reason = "OK"; content_type = "application/json"; body }
          | Error e -> text 400 "Bad Request" (e ^ "\n")
        end
      end
    end
    | "GET", _ -> text 404 "Not Found" (Printf.sprintf "no route for %s\n" path)
    | _ -> text 405 "Method Not Allowed" "only GET is served here\n"
  end
  | _ -> text 400 "Bad Request" "malformed request line\n"

let render r =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    r.status r.reason r.content_type (String.length r.body) r.body

let handle ~metrics ?alerts ?tsdb ic oc =
  match input_line ic with
  | exception (End_of_file | Sys_error _) -> ()
  | request_line ->
    (* Drain the header block — we serve every request the same way
       regardless of headers, but leaving them unread would surface
       them as line-protocol garbage if the client pipelines. *)
    let rec drain () =
      match input_line ic with
      | exception (End_of_file | Sys_error _) -> ()
      | "" | "\r" -> ()
      | _ -> drain ()
    in
    drain ();
    output_string oc (render (respond ~metrics ?alerts ?tsdb request_line));
    flush oc
