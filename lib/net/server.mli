(** The multi-client TCP front-end: an accept loop handing each
    connection to its own session thread.

    Sessions speak whatever line protocol the [session] callback
    implements — the daemon passes {!Rebal_online.Protocol} sessions,
    so each connection gets the [READY] banner, per-session line
    numbering for [ERR], and free pipelining (a client may write many
    commands before reading; replies come back in order on its own
    connection because the session thread processes its input
    sequentially).

    Concurrency model: session threads are systhreads on the accepting
    domain — cheap, I/O-bound, and they park on the parallel cluster's
    reply cells, releasing the runtime lock, while shard worker
    domains do the compute. The server itself therefore assumes the
    target behind [session] is safe to drive from many threads (the
    daemon enforces [--tcp] implies [--domains]).

    Shutdown: a session returning [Stop] (the [SHUTDOWN] verb) or a
    call to {!request_stop} (the SIGTERM path) stops the accept loop;
    {!drain} then waits out live sessions for a grace period and shuts
    down the sockets of any stragglers — reusing the daemon's ordinary
    finalizer path (final snapshot, metrics dump, cluster shutdown)
    after it returns. *)

type t

val create : ?backlog:int -> addr:Unix.sockaddr -> unit -> t
(** Bind (with [SO_REUSEADDR]) and listen. Raises [Unix.Unix_error]
    if the address is unavailable. *)

val bound_addr : t -> Unix.sockaddr
(** The actual listening address — useful with port 0. *)

val run :
  t -> session:(in_channel -> out_channel -> Rebal_online.Protocol.verdict) -> unit
(** Accept until stopped. Each connection runs [session] on its own
    thread; a session's exceptions end only that session. Returns once
    a stop was requested (by a [Stop] verdict or {!request_stop});
    live sessions may still be running — follow with {!drain}. *)

val request_stop : t -> unit
(** Stop accepting new connections (idempotent, callable from any
    thread). In-flight sessions continue until {!drain}. *)

val session_count : t -> int

val drain : ?grace:float -> t -> unit
(** {!request_stop}, wait up to [grace] seconds (default 5) for live
    sessions to finish, force-shutdown the sockets of any that
    remain, and close the listener. *)
