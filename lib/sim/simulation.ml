module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Verify = Rebal_core.Verify
module Stats = Rebal_harness.Stats
module Metrics = Rebal_obs.Metrics
module Trace = Rebal_obs.Trace
module Control = Rebal_obs.Control
module Journal = Rebal_obs.Journal
module Timer = Rebal_harness.Timer

(* Move counters are labeled by the policy that drove the run, so a
   sweep over policies in one registry stays separable. *)
let policy_labels policy = [ ("policy", Policy.name policy) ]

let metric_steps policy =
  Metrics.counter ~labels:(policy_labels policy) ~help:"Simulation steps executed"
    "rebal_sim_steps_total"

let metric_moves policy kind =
  Metrics.counter
    ~labels:(("kind", kind) :: policy_labels policy)
    ~help:"Site migrations by kind: policy, failed, emergency" "rebal_sim_moves_total"

let metric_policy_latency policy =
  Metrics.histogram ~labels:(policy_labels policy)
    ~help:"Latency of one policy round in seconds" "rebal_sim_policy_latency_seconds"

type step = {
  time : int;
  makespan : int;
  average : float;
  imbalance : float;
  moves : int;
  failed_moves : int;
  emergency_moves : int;
  live_servers : int;
}

type recovery = { crash_time : int; steps_to_recover : int option }

type result = {
  steps : step array;
  total_moves : int;
  peak_makespan : int;
  mean_imbalance : float;
  p95_imbalance : float;
  final_placement : int array;
  failed_migrations : int;
  emergency_moves : int;
  fallbacks : int;
  downtime_weighted_makespan : float;
  recoveries : recovery list;
}

type config = {
  servers : int;
  period : int;
  policy : Policy.t;
}

(* Map the live servers onto a dense [0 .. live-1] range so policies see
   an ordinary instance: [map] takes compact index -> server id, [inv]
   takes server id -> compact index (-1 when dead). *)
let compact live =
  let m = Array.length live in
  let inv = Array.make m (-1) in
  let map = ref [] in
  let count = ref 0 in
  for s = 0 to m - 1 do
    if live.(s) then begin
      inv.(s) <- !count;
      map := s :: !map;
      incr count
    end
  done;
  (!count, Array.of_list (List.rev !map), inv)

let check_invariant ~servers ~live ~placement ~round_moves ~policy =
  match
    Verify.check_live_placement ~m:servers ~live ~placement ~round_moves
      ~budget:(Policy.budget policy)
  with
  | Ok () -> ()
  | Error msg -> failwith ("Simulation.run: step invariant violated: " ^ msg)

let run ?(fault = Fault.none) ?(recovery_threshold = 1.5) ?journal traffic
    { servers; period; policy } =
  if servers <= 0 then invalid_arg "Simulation.run: servers must be positive";
  if period <= 0 then invalid_arg "Simulation.run: period must be positive";
  let sites = Traffic.sites traffic in
  let horizon = Traffic.horizon traffic in
  let jemit kind fields =
    match journal with None -> () | Some sink -> Journal.emit sink ~kind fields
  in
  (match journal with
  | None -> ()
  | Some sink ->
    Journal.write_header sink ~journal:"rebal-sim"
      [
        ("servers", Journal.Int servers);
        ("period", Journal.Int period);
        ("policy", Journal.Str (Policy.name policy));
        ("sites", Journal.Int sites);
        ("horizon", Journal.Int horizon);
      ]);
  let m_steps = metric_steps policy in
  let m_policy_moves = metric_moves policy "policy" in
  let m_failed_moves = metric_moves policy "failed" in
  let m_emergency_moves = metric_moves policy "emergency" in
  let m_latency = metric_policy_latency policy in
  Trace.with_span "simulation.run"
    ~attrs:
      [
        ("policy", Trace.Str (Policy.name policy));
        ("servers", Trace.Int servers);
        ("sites", Trace.Int sites);
        ("horizon", Trace.Int horizon);
      ]
  @@ fun () ->
  let live_at time = Array.init servers (fun s -> Fault.is_live fault ~server:s ~time) in
  (* Initial placement: LPT on the rates at time 0, over the servers
     live at time 0. *)
  let placement =
    let live0 = live_at 0 in
    let live_n, map, _ = compact live0 in
    let rates0 = Traffic.rates_at traffic ~time:0 in
    let inst0 = Instance.create ~sizes:rates0 ~m:live_n (Array.make sites 0) in
    let lpt = Assignment.to_array (Rebal_algo.Lpt.solve inst0) in
    Array.map (fun p -> map.(p)) lpt
  in
  let steps =
    Array.make horizon
      {
        time = 0;
        makespan = 0;
        average = 0.0;
        imbalance = 1.0;
        moves = 0;
        failed_moves = 0;
        emergency_moves = 0;
        live_servers = servers;
      }
  in
  let total_moves = ref 0 in
  let total_failed = ref 0 in
  let total_emergency = ref 0 in
  let total_fallbacks = ref 0 in
  let prev_live = Array.make servers true in
  for time = 0 to horizon - 1 do
    let live = live_at time in
    (* Crash/recovery transitions, for replayable fault timelines. *)
    if journal <> None then
      Array.iteri
        (fun s now ->
          if now <> prev_live.(s) then
            jemit
              (if now then "sim_recover" else "sim_crash")
              [ ("time", Journal.Int time); ("server", Journal.Int s) ])
        live;
    Array.blit live 0 prev_live 0 servers;
    let rates = Traffic.rates_at traffic ~time in
    (* Forced evacuation: sites on a crashed server go to the least
       loaded live server. These are emergency moves, not policy moves. *)
    let emergency = ref 0 in
    let load = Array.make servers 0 in
    Array.iteri (fun s p -> load.(p) <- load.(p) + rates.(s)) placement;
    Array.iteri
      (fun site p ->
        if not live.(p) then begin
          let target = ref (-1) in
          for s = 0 to servers - 1 do
            if live.(s) && (!target < 0 || load.(s) < load.(!target)) then target := s
          done;
          load.(p) <- load.(p) - rates.(site);
          load.(!target) <- load.(!target) + rates.(site);
          jemit "sim_evacuate"
            [
              ("time", Journal.Int time);
              ("site", Journal.Int site);
              ("src", Journal.Int p);
              ("dst", Journal.Int !target);
              ("rate", Journal.Int rates.(site));
            ];
          placement.(site) <- !target;
          incr emergency
        end)
      placement;
    (* Policy round, over live servers only and on observed (possibly
       stale, noisy) rates. A failed migration leaves the site in place
       but still consumed a move of the round's budget. *)
    let moves, failed, fallbacks =
      if time > 0 && time mod period = 0 then begin
        let observed =
          Fault.observe fault ~time (fun t -> Traffic.rates_at traffic ~time:t)
        in
        let live_n, map, inv = compact live in
        let initial = Array.map (fun p -> inv.(p)) placement in
        let inst = Instance.create ~sizes:observed ~m:live_n initial in
        let next, fallbacks =
          if Control.enabled () then begin
            let start = Timer.now_ns () in
            let r = Policy.apply_count policy inst in
            Metrics.Histogram.observe_ns m_latency (Int64.sub (Timer.now_ns ()) start);
            r
          end
          else Policy.apply_count policy inst
        in
        let attempted = ref 0 and failed = ref 0 in
        for site = 0 to sites - 1 do
          let dst = map.(Assignment.processor next site) in
          if dst <> placement.(site) then begin
            incr attempted;
            if Fault.migration_fails fault ~time ~job:site then incr failed
            else placement.(site) <- dst
          end
        done;
        (!attempted, !failed, fallbacks)
      end
      else (0, 0, 0)
    in
    if moves > 0 || fallbacks > 0 then
      jemit "sim_round"
        [
          ("time", Journal.Int time);
          ("policy", Journal.Str (Policy.name policy));
          ("moves", Journal.Int moves);
          ("failed", Journal.Int failed);
          ("fallbacks", Journal.Int fallbacks);
        ];
    check_invariant ~servers ~live ~placement ~round_moves:moves ~policy;
    Metrics.Counter.inc m_steps;
    Metrics.Counter.add m_policy_moves moves;
    Metrics.Counter.add m_failed_moves failed;
    Metrics.Counter.add m_emergency_moves !emergency;
    total_moves := !total_moves + moves;
    total_failed := !total_failed + failed;
    total_emergency := !total_emergency + !emergency;
    total_fallbacks := !total_fallbacks + fallbacks;
    (* Metrics always use the true rates, never the observed ones. *)
    let load = Array.make servers 0 in
    Array.iteri (fun s p -> load.(p) <- load.(p) + rates.(s)) placement;
    let makespan = Array.fold_left max 0 load in
    let live_n = ref 0 in
    Array.iter (fun l -> if l then incr live_n) live;
    let total = Array.fold_left ( + ) 0 rates in
    let average = float_of_int total /. float_of_int !live_n in
    let imbalance = if average > 0.0 then float_of_int makespan /. average else 1.0 in
    jemit "sim_step"
      [
        ("time", Journal.Int time);
        ("makespan", Journal.Int makespan);
        ("imbalance", Journal.Float imbalance);
        ("moves", Journal.Int moves);
        ("failed", Journal.Int failed);
        ("emergency", Journal.Int !emergency);
        ("live", Journal.Int !live_n);
      ];
    steps.(time) <-
      {
        time;
        makespan;
        average;
        imbalance;
        moves;
        failed_moves = failed;
        emergency_moves = !emergency;
        live_servers = !live_n;
      }
  done;
  (* Idle steps (zero offered load) report imbalance 1.0 by convention;
     they carry no information, so the aggregates skip them. *)
  let active =
    Array.of_list
      (List.filter_map
         (fun s -> if s.average > 0.0 then Some s.imbalance else None)
         (Array.to_list steps))
  in
  let mean_imbalance =
    if Array.length active = 0 then 1.0
    else Array.fold_left ( +. ) 0.0 active /. float_of_int (Array.length active)
  in
  let downtime_weighted_makespan =
    (* Steps weighted by 1 + number of crashed servers: survival while
       degraded counts for more. Equals the plain mean when nothing
       crashes. *)
    let num = ref 0.0 and den = ref 0.0 in
    Array.iter
      (fun s ->
        let w = float_of_int (1 + servers - s.live_servers) in
        num := !num +. (w *. float_of_int s.makespan);
        den := !den +. w)
      steps;
    if !den = 0.0 then 0.0 else !num /. !den
  in
  let recoveries =
    let crash_times =
      List.sort_uniq compare (List.map fst (Fault.crash_events fault))
    in
    List.filter_map
      (fun crash_time ->
        if crash_time < 0 || crash_time >= horizon then None
        else begin
          let rec scan t =
            if t >= horizon then None
            else if steps.(t).imbalance <= recovery_threshold then
              Some (t - crash_time)
            else scan (t + 1)
          in
          Some { crash_time; steps_to_recover = scan crash_time }
        end)
      crash_times
  in
  Trace.add_attr "moves" (Trace.Int !total_moves);
  Trace.add_attr "emergency" (Trace.Int !total_emergency);
  {
    steps;
    total_moves = !total_moves;
    peak_makespan = Array.fold_left (fun acc s -> max acc s.makespan) 0 steps;
    mean_imbalance;
    p95_imbalance =
      (if Array.length active = 0 then 1.0 else Stats.percentile active 0.95);
    final_placement = placement;
    failed_migrations = !total_failed;
    emergency_moves = !total_emergency;
    fallbacks = !total_fallbacks;
    downtime_weighted_makespan;
    recoveries;
  }
