(** The web-server cluster simulation: a fixed set of sites whose request
    rates follow a [Traffic.t] trace, served by [servers] machines.
    Every [period] steps the configured policy may migrate sites, paying
    one move per migrated site; between rounds the placement is frozen
    while the rates keep drifting.

    An optional [Fault.t] plan injects server crashes (crashed servers
    are forcibly evacuated — emergency moves, metered separately — and
    policies only place sites on live servers), migration failures (a
    failed move leaves the site in place but still consumes the round's
    budget), and measurement staleness/noise (policies decide on the
    observed rates; all reported metrics use the true rates).

    The per-step metrics captured are the ones the rebalancing problem is
    about: the makespan (hottest server), the load average over the live
    servers (the ideal), their ratio (imbalance), and the cumulative
    number of migrations — plus, under faults, the emergency/failed move
    counts and recovery times.

    Every simulated step is checked against
    [Rebal_core.Verify.check_live_placement]: each site on exactly one
    live server, policy moves within the per-round budget. A violation
    is a simulator bug and raises [Failure]. *)

type step = {
  time : int;
  makespan : int;
  average : float;  (** total load / live servers *)
  imbalance : float;  (** makespan / average *)
  moves : int;
      (** policy migrations attempted this step, including failed ones
          (they consume budget); 0 between rounds *)
  failed_moves : int;  (** of [moves], how many failed *)
  emergency_moves : int;  (** forced evacuations off crashed servers *)
  live_servers : int;
}

type recovery = {
  crash_time : int;
  steps_to_recover : int option;
      (** steps until imbalance first returned below the recovery
          threshold, [None] if it never did within the horizon *)
}

type result = {
  steps : step array;
  total_moves : int;  (** cumulative policy moves (attempted) *)
  peak_makespan : int;
  mean_imbalance : float;
      (** over steps with non-zero offered load; idle steps are
          excluded from the aggregates *)
  p95_imbalance : float;  (** nearest-rank, same exclusion *)
  final_placement : int array;
  failed_migrations : int;
  emergency_moves : int;
  fallbacks : int;  (** times a [Policy.Failover] fell back *)
  downtime_weighted_makespan : float;
      (** mean makespan with each step weighted by [1 + crashed
          servers]: degraded steps count for more; equals the plain
          mean makespan on a fault-free run *)
  recoveries : recovery list;  (** one entry per distinct crash time *)
}

type config = {
  servers : int;
  period : int;  (** steps between rebalancing rounds; must be [>= 1] *)
  policy : Policy.t;
}

val run :
  ?fault:Fault.t ->
  ?recovery_threshold:float ->
  ?journal:Rebal_obs.Journal.sink ->
  Traffic.t ->
  config ->
  result
(** Simulate the whole trace horizon. The initial placement is an LPT
    balance of the rates at time 0 across the servers live at time 0
    (the cluster starts well-balanced and then drifts — the situation
    the paper's introduction describes). [fault] defaults to
    [Fault.none], under which the run is identical to a fault-free
    simulation. [recovery_threshold] (default 1.5) is the imbalance
    level below which the cluster counts as recovered after a crash.
    [journal] attaches a flight recorder (header ["rebal-sim"]): the run
    emits [sim_crash]/[sim_recover] on server transitions,
    [sim_evacuate] per forced evacuation, [sim_round] per policy round
    that moved or fell back, and [sim_step] per step — so a chaos run's
    crash-recovery timeline is a readable record (simulations replay via
    their seed; engine journals are the re-executable kind).
    @raise Invalid_argument on non-positive [servers] or [period].
    @raise Failure if a step violates the placement/budget invariant. *)
