module Rng = Rebal_workloads.Rng
module Metrics = Rebal_obs.Metrics

let metric_planned_crashes () =
  Metrics.counter ~help:"Server crashes planned by fault schedules"
    "rebal_fault_planned_crashes_total"

type t = {
  seed : int;
  servers : int;
  horizon : int;
  migration_fail : float;
  lag : int;
  noise : float;
  down : bool array array; (* down.(time).(server); [||] when no crashes *)
  events : (int * int) list; (* (time, server) crash transitions, time order *)
}

let none =
  {
    seed = 0;
    servers = 0;
    horizon = 0;
    migration_fail = 0.0;
    lag = 0;
    noise = 0.0;
    down = [||];
    events = [];
  }

let is_none t =
  t.down = [||] && t.migration_fail = 0.0 && t.lag = 0 && t.noise = 0.0

(* Per-(time, job) decisions are drawn from a generator seeded by mixing
   the plan seed with the coordinates, so queries are order-independent:
   splitmix's seed scrambler decorrelates adjacent seeds. *)
let draw_at t ~time ~job =
  Rng.create ((((t.seed * 1_000_003) + time) * 1_000_003) + job)

let create ~seed ~servers ~horizon ?(crash_rate = 0.0) ?(mttr = 10)
    ?(migration_fail = 0.0) ?(lag = 0) ?(noise = 0.0) () =
  if servers <= 0 then invalid_arg "Fault.create: servers must be positive";
  if horizon <= 0 then invalid_arg "Fault.create: horizon must be positive";
  if mttr <= 0 then invalid_arg "Fault.create: mttr must be positive";
  if crash_rate < 0.0 || crash_rate > 1.0 then
    invalid_arg "Fault.create: crash_rate must be in [0, 1]";
  if migration_fail < 0.0 || migration_fail > 1.0 then
    invalid_arg "Fault.create: migration_fail must be in [0, 1]";
  if lag < 0 then invalid_arg "Fault.create: lag must be non-negative";
  if noise < 0.0 then invalid_arg "Fault.create: noise must be non-negative";
  let down, events =
    if crash_rate = 0.0 then ([||], [])
    else begin
      let rng = Rng.create seed in
      let down_until = Array.make servers (-1) in
      let events = ref [] in
      let down =
        Array.init horizon (fun time ->
            (* Resolve this step's crashes first, then snapshot. *)
            for s = 0 to servers - 1 do
              if time > down_until.(s) && Rng.float rng 1.0 < crash_rate then begin
                let live =
                  let c = ref 0 in
                  for s' = 0 to servers - 1 do
                    if time > down_until.(s') then incr c
                  done;
                  !c
                in
                (* Never take the last live server down. *)
                if live > 1 then begin
                  (* Geometric outage length with mean [mttr]. *)
                  let duration =
                    max 1
                      (int_of_float
                         (Float.round (Rng.exponential rng ~mean:(float_of_int mttr))))
                  in
                  down_until.(s) <- time + duration - 1;
                  events := (time, s) :: !events
                end
              end
            done;
            Array.init servers (fun s -> time <= down_until.(s)))
      in
      (down, List.rev !events)
    end
  in
  Metrics.Counter.add (metric_planned_crashes ()) (List.length events);
  { seed; servers; horizon; migration_fail; lag; noise; down; events }

let is_live t ~server ~time =
  t.down = [||]
  || server < 0
  || server >= t.servers
  || time < 0
  || time >= t.horizon
  || not t.down.(time).(server)

let live_count t ~m ~time =
  let c = ref 0 in
  for s = 0 to m - 1 do
    if is_live t ~server:s ~time then incr c
  done;
  !c

let crashes_at t ~time = List.filter_map (fun (tm, s) -> if tm = time then Some s else None) t.events
let crash_events t = t.events
let lag t = t.lag

let migration_fails t ~time ~job =
  t.migration_fail > 0.0
  && Rng.float (draw_at t ~time ~job:(job + 1)) 1.0 < t.migration_fail

let observe t ~time rates_at =
  if t.lag = 0 && t.noise = 0.0 then rates_at time
  else begin
    let rates = rates_at (max 0 (time - t.lag)) in
    if t.noise = 0.0 then rates
    else
      Array.mapi
        (fun i r ->
          let u = Rng.float (draw_at t ~time ~job:(-i - 1)) 1.0 in
          let jitter = 1.0 +. (((2.0 *. u) -. 1.0) *. t.noise) in
          max 1 (int_of_float (float_of_int r *. jitter)))
        rates
  end
