type t =
  | No_rebalance
  | Greedy of int
  | M_partition of int
  | Local_search of int
  | Full_lpt
  | Triggered of { k : int; threshold : float }
  | Failover of { primary : t; fallback : t; deadline : float }

let rec name = function
  | No_rebalance -> "none"
  | Greedy k -> Printf.sprintf "greedy(k=%d)" k
  | M_partition k -> Printf.sprintf "m-partition(k=%d)" k
  | Local_search k -> Printf.sprintf "local-search(k=%d)" k
  | Full_lpt -> "full-lpt"
  | Triggered { k; threshold } -> Printf.sprintf "triggered(k=%d,t=%.2f)" k threshold
  | Failover { primary; fallback; deadline } ->
    Printf.sprintf "failover(%s->%s,%.0fms)" (name primary) (name fallback)
      (deadline *. 1000.0)

let rec budget = function
  | No_rebalance -> Some 0
  | Greedy k | M_partition k | Local_search k | Triggered { k; _ } -> Some k
  | Full_lpt -> None
  | Failover { primary; fallback; _ } -> begin
    (* Either branch may run, so the binding budget is the looser one. *)
    match (budget primary, budget fallback) with
    | Some a, Some b -> Some (max a b)
    | _ -> None
  end

let rec apply_count policy inst =
  match policy with
  | No_rebalance -> (Rebal_core.Assignment.identity inst, 0)
  | Greedy k -> (Rebal_algo.Greedy.solve inst ~k, 0)
  | M_partition k -> (Rebal_algo.M_partition.solve inst ~k, 0)
  | Local_search k -> (Rebal_algo.Local_search.solve inst ~k, 0)
  | Full_lpt -> (Rebal_algo.Lpt.solve inst, 0)
  | Triggered { k; threshold } ->
    let m = Rebal_core.Instance.m inst in
    let total = Rebal_core.Instance.total_size inst in
    let average = float_of_int total /. float_of_int m in
    let makespan = float_of_int (Rebal_core.Instance.initial_makespan inst) in
    if average > 0.0 && makespan /. average > threshold then
      (Rebal_algo.M_partition.solve inst ~k, 0)
    else (Rebal_core.Assignment.identity inst, 0)
  | Failover { primary; fallback; deadline } -> begin
    let outcome, elapsed =
      Rebal_harness.Timer.time (fun () ->
          try Ok (apply_count primary inst) with e -> Error e)
    in
    match outcome with
    | Ok result when elapsed <= deadline -> result
    | Ok _ | Error _ ->
      let a, fallbacks = apply_count fallback inst in
      (a, fallbacks + 1)
  end

let apply policy inst = fst (apply_count policy inst)
