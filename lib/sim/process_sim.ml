module Rng = Rebal_workloads.Rng
module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment

type lifetime =
  | Exponential_work of float
  | Pareto_work of { alpha : float; xmin : float }

type config = {
  cpus : int;
  arrival_rate : float;
  lifetime : lifetime;
  horizon : int;
  period : int;
  policy : Policy.t;
}

type result = {
  completed : int;
  mean_slowdown : float;
  p95_slowdown : float;
  mean_backlog_imbalance : float;
  migrations : int;
  residual : int;
  failed_migrations : int;
  emergency_moves : int;
  fallbacks : int;
}

(* One service unit = [scale] micro-units of work; integer arithmetic
   keeps runs bit-reproducible. *)
let scale = 1000

type proc = {
  mutable remaining : int; (* micro-units *)
  work : int;
  arrival : int;
  mutable cpu : int;
}

let validate cfg =
  if cfg.cpus <= 0 then invalid_arg "Process_sim: cpus must be positive";
  if cfg.horizon <= 0 then invalid_arg "Process_sim: horizon must be positive";
  if cfg.period <= 0 then invalid_arg "Process_sim: period must be positive";
  if cfg.arrival_rate <= 0.0 then invalid_arg "Process_sim: arrival rate must be positive";
  match cfg.lifetime with
  | Exponential_work mean ->
    if mean <= 0.0 then invalid_arg "Process_sim: non-positive mean work"
  | Pareto_work { alpha; xmin } ->
    if alpha <= 0.0 || xmin <= 0.0 then invalid_arg "Process_sim: bad Pareto parameters"

let poisson rng lambda =
  (* Knuth's method; fine for the small rates used here. *)
  let l = exp (-.lambda) in
  let rec draw k p =
    let p = p *. Rng.float rng 1.0 in
    if p > l then draw (k + 1) p else k
  in
  draw 0 1.0

let sample_work rng = function
  | Exponential_work mean ->
    max 1 (int_of_float (Rng.exponential rng ~mean *. float_of_int scale))
  | Pareto_work { alpha; xmin } ->
    let u = ref (Rng.float rng 1.0) in
    while !u <= 0.0 do
      u := Rng.float rng 1.0
    done;
    let w = xmin /. (!u ** (1.0 /. alpha)) in
    (* Cap at 10^4 service units so one sample cannot dwarf the horizon. *)
    let capped = Float.min w 10_000.0 in
    max 1 (int_of_float (capped *. float_of_int scale))

let run ?(fault = Fault.none) rng cfg =
  validate cfg;
  let alive = ref [] in
  let slowdowns = ref [] in
  let completed = ref 0 in
  let migrations = ref 0 in
  let failed_migrations = ref 0 in
  let emergency_moves = ref 0 in
  let fallbacks = ref 0 in
  let imbalance_sum = ref 0.0 in
  let imbalance_samples = ref 0 in
  let backlog = Array.make cfg.cpus 0 in
  let count = Array.make cfg.cpus 0 in
  for t = 0 to cfg.horizon - 1 do
    let live = Array.init cfg.cpus (fun s -> Fault.is_live fault ~server:s ~time:t) in
    let all_live = Array.for_all Fun.id live in
    (* Work in flight before this step's migrations; migrating a process
       must never create or destroy work. *)
    let work_before = List.fold_left (fun acc p -> acc + p.remaining) 0 !alive in
    (* Crashed CPUs are forcibly drained: their processes restart on the
       live CPU with the least backlog (emergency moves, not policy
       moves). *)
    if not all_live then begin
      Array.fill backlog 0 cfg.cpus 0;
      List.iter (fun p -> backlog.(p.cpu) <- backlog.(p.cpu) + p.remaining) !alive;
      List.iter
        (fun p ->
          if not live.(p.cpu) then begin
            let target = ref (-1) in
            for s = 0 to cfg.cpus - 1 do
              if live.(s) && (!target < 0 || backlog.(s) < backlog.(!target)) then
                target := s
            done;
            backlog.(p.cpu) <- backlog.(p.cpu) - p.remaining;
            backlog.(!target) <- backlog.(!target) + p.remaining;
            p.cpu <- !target;
            incr emergency_moves
          end)
        !alive
    end;
    (* Arrivals land on a uniformly random live CPU. *)
    let arrivals = poisson rng cfg.arrival_rate in
    let live_ids =
      if all_live then [||]
      else begin
        let ids = ref [] in
        for s = cfg.cpus - 1 downto 0 do
          if live.(s) then ids := s :: !ids
        done;
        Array.of_list !ids
      end
    in
    for _ = 1 to arrivals do
      let work = sample_work rng cfg.lifetime in
      let cpu =
        if all_live then Rng.int rng cfg.cpus
        else live_ids.(Rng.int rng (Array.length live_ids))
      in
      alive := { remaining = work; work; arrival = t; cpu } :: !alive
    done;
    (* Rebalancing round: remaining work is the job size, and the policy
       only sees (and only targets) live CPUs. A failed migration leaves
       the process in place but still consumed budget. *)
    let round_moves = ref 0 in
    if t > 0 && t mod cfg.period = 0 && !alive <> [] then begin
      let live_n = ref 0 in
      let inv = Array.make cfg.cpus (-1) in
      let map = ref [] in
      for s = 0 to cfg.cpus - 1 do
        if live.(s) then begin
          inv.(s) <- !live_n;
          map := s :: !map;
          incr live_n
        end
      done;
      let map = Array.of_list (List.rev !map) in
      let procs = Array.of_list !alive in
      let sizes = Array.map (fun p -> max 1 p.remaining) procs in
      let initial = Array.map (fun p -> inv.(p.cpu)) procs in
      let inst = Instance.create ~sizes ~m:!live_n initial in
      let next, fb = Policy.apply_count cfg.policy inst in
      fallbacks := !fallbacks + fb;
      Array.iteri
        (fun i p ->
          let dst = map.(Assignment.processor next i) in
          if dst <> p.cpu then begin
            incr migrations;
            incr round_moves;
            if Fault.migration_fails fault ~time:t ~job:i then incr failed_migrations
            else p.cpu <- dst
          end)
        procs
    end;
    (* Step invariants: every process on exactly one live CPU, the round
       within the policy budget, and no work created or lost by moves. *)
    let placement = Array.of_list (List.map (fun p -> p.cpu) !alive) in
    (match
       Rebal_core.Verify.check_live_placement ~m:cfg.cpus ~live ~placement
         ~round_moves:!round_moves ~budget:(Policy.budget cfg.policy)
     with
    | Ok () -> ()
    | Error msg -> failwith ("Process_sim.run: step invariant violated: " ^ msg));
    let work_after = List.fold_left (fun acc p -> acc + p.remaining) 0 !alive in
    let arrived_work =
      (* Arrivals this step are the only legitimate source of new work. *)
      List.fold_left
        (fun acc p -> if p.arrival = t then acc + p.remaining else acc)
        0 !alive
    in
    if work_after <> work_before + arrived_work then
      failwith "Process_sim.run: step invariant violated: work not conserved";
    (* Processor sharing: each CPU spreads [scale] micro-units across its
       residents. *)
    Array.fill count 0 cfg.cpus 0;
    Array.fill backlog 0 cfg.cpus 0;
    List.iter
      (fun p ->
        count.(p.cpu) <- count.(p.cpu) + 1;
        backlog.(p.cpu) <- backlog.(p.cpu) + p.remaining)
      !alive;
    let total_backlog = Array.fold_left ( + ) 0 backlog in
    if total_backlog > 0 then begin
      let mean = float_of_int total_backlog /. float_of_int cfg.cpus in
      let mx = float_of_int (Array.fold_left max 0 backlog) in
      imbalance_sum := !imbalance_sum +. (mx /. mean);
      incr imbalance_samples
    end;
    let survivors = ref [] in
    List.iter
      (fun p ->
        let share = scale / max 1 count.(p.cpu) in
        p.remaining <- p.remaining - share;
        if p.remaining <= 0 then begin
          incr completed;
          let sojourn = float_of_int (t + 1 - p.arrival) in
          let service = float_of_int p.work /. float_of_int scale in
          slowdowns := (sojourn /. Float.max service 1e-9) :: !slowdowns
        end
        else survivors := p :: !survivors)
      !alive;
    alive := !survivors
  done;
  let slow = Array.of_list !slowdowns in
  Array.sort compare slow;
  let n = Array.length slow in
  let mean_slowdown =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 slow /. float_of_int n
  in
  let p95_slowdown = if n = 0 then 0.0 else slow.(min (n - 1) (95 * n / 100)) in
  {
    completed = !completed;
    mean_slowdown;
    p95_slowdown;
    mean_backlog_imbalance =
      (if !imbalance_samples = 0 then 1.0
       else !imbalance_sum /. float_of_int !imbalance_samples);
    migrations = !migrations;
    residual = List.length !alive;
    failed_migrations = !failed_migrations;
    emergency_moves = !emergency_moves;
    fallbacks = !fallbacks;
  }
