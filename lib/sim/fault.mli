(** Deterministic fault injection for the simulators.

    A plan is generated once from a seed and then only queried, so a
    given [(seed, servers, horizon, knobs)] tuple always produces the
    same crash windows, the same migration failures and the same
    measurement noise — chaos runs are exactly as reproducible as
    fault-free ones.

    Three failure classes, all optional and independent:

    - {b crashes}: while a server is up it crashes with probability
      [crash_rate] per step and stays down for a geometric number of
      steps with mean [mttr]. The plan never takes the last live server
      down, so the cluster always has somewhere to put work. The
      simulator must evacuate a crashed server's jobs (emergency moves,
      metered separately from policy moves) and keep policies from
      placing work on it.
    - {b failed migrations}: each policy-proposed move independently
      fails with probability [migration_fail]. A failed move leaves the
      job where it was but still consumes the round's move budget —
      the operator paid for the attempt.
    - {b stale / noisy measurement}: policies observe the load vector
      from [lag] steps ago, each entry scaled by an independent
      multiplicative jitter uniform in [1 - noise, 1 + noise]. The
      simulator's own metrics always use the true loads. *)

type t

val none : t
(** The zero-fault plan: every server always live, no migration ever
    fails, observation is exact and instantaneous. Simulations run with
    [none] behave identically to fault-free runs. *)

val create :
  seed:int ->
  servers:int ->
  horizon:int ->
  ?crash_rate:float ->
  ?mttr:int ->
  ?migration_fail:float ->
  ?lag:int ->
  ?noise:float ->
  unit ->
  t
(** Generate a plan. Defaults are all-zero (no faults): [crash_rate = 0.],
    [mttr = 10], [migration_fail = 0.], [lag = 0], [noise = 0.].
    @raise Invalid_argument on non-positive [servers]/[horizon]/[mttr],
    probabilities outside [0, 1], negative [lag] or negative [noise]. *)

val is_none : t -> bool
(** True when the plan can inject no fault at all (the [none] plan or a
    [create] with all-zero knobs); simulators use this to keep the
    fault-free fast path untouched. *)

val is_live : t -> server:int -> time:int -> bool
(** Whether [server] is up at [time]. Servers outside the plan's range
    and times at or past its horizon are reported live. *)

val live_count : t -> m:int -> time:int -> int
(** Number of live servers among [0 .. m-1] at [time]; always >= 1. *)

val crashes_at : t -> time:int -> int list
(** Servers that transition from up to down exactly at [time],
    ascending. *)

val crash_events : t -> (int * int) list
(** All [(time, server)] crash transitions, in time order. *)

val migration_fails : t -> time:int -> job:int -> bool
(** Whether the move proposed for [job] in the rebalancing round at
    [time] fails. Deterministic in [(seed, time, job)] — independent of
    query order and of how many other queries were made. *)

val lag : t -> int

val observe : t -> time:int -> (int -> int array) -> int array
(** [observe t ~time rates_at] is what a policy sees at [time]: the
    vector [rates_at (max 0 (time - lag))] with per-entry multiplicative
    jitter, each entry clamped to at least 1. With [lag = 0] and
    [noise = 0.] this is exactly [rates_at time]. *)
