(** Process-migration simulator — the paper's other §1 motivation.

    A small cluster of CPUs runs a churning population of processes.
    Each CPU is processor-sharing: at every time step it delivers one
    unit of service, split equally among its resident processes. New
    processes arrive as a Poisson stream and land on a uniformly random
    CPU; each carries a total work requirement drawn from a configurable
    lifetime distribution and departs when served in full. Periodically a
    rebalancing policy may migrate at most its budget of processes,
    treating remaining work as the job size.

    The §1 literature disagrees about whether such migration is worth it:
    Harchol-Balter & Downey [6] argue yes because real process lifetimes
    are heavy-tailed (a few marathon processes dominate and are worth
    moving), Lazowska et al [9] argue the benefit is limited for
    well-behaved (exponential) workloads. Both positions are reproducible
    here by switching [lifetime] — experiment E13 does exactly that.

    The headline metric is the mean {e slowdown} of completed processes:
    (completion time − arrival time) / total work, i.e. how many times
    longer than its bare service requirement a process took. *)

type lifetime =
  | Exponential_work of float  (** mean work per process *)
  | Pareto_work of { alpha : float; xmin : float }
      (** heavy tail: [P(W > w) = (xmin / w)^alpha], the [6] model *)

type config = {
  cpus : int;
  arrival_rate : float;  (** expected process arrivals per time step *)
  lifetime : lifetime;
  horizon : int;  (** simulated time steps *)
  period : int;  (** steps between rebalancing rounds *)
  policy : Policy.t;
}

type result = {
  completed : int;
  mean_slowdown : float;
  p95_slowdown : float;
  mean_backlog_imbalance : float;
      (** time-average of (max CPU backlog / mean CPU backlog), sampled
          on steps where the system is non-empty *)
  migrations : int;
      (** policy migrations attempted (failed ones consume budget too) *)
  residual : int;  (** processes still running at the horizon *)
  failed_migrations : int;  (** of [migrations], how many failed *)
  emergency_moves : int;
      (** processes forcibly drained off crashed CPUs *)
  fallbacks : int;  (** times a [Policy.Failover] fell back *)
}

val run : ?fault:Fault.t -> Rebal_workloads.Rng.t -> config -> result
(** Simulate. Work quantities are tracked in integer micro-units
    internally, so results are exactly reproducible for a given seed.
    [fault] (default [Fault.none], under which the run is identical to
    a fault-free simulation) injects CPU crashes — crashed CPUs are
    drained onto the least-backlogged live CPU and receive no arrivals
    or placements while down — and per-migration failures. Every step
    asserts the [Rebal_core.Verify.check_live_placement] invariant plus
    work conservation: migrations never create or destroy work.
    @raise Invalid_argument on non-positive [cpus], [horizon] or
    [period], a non-positive arrival rate, or nonsense lifetime
    parameters.
    @raise Failure if a step violates an invariant. *)
