(** Rebalancing policies the simulator can run each rebalancing round.
    Each policy consumes a load-rebalancing instance (sites as jobs,
    current rates as sizes, the current placement as the initial
    assignment) and returns a new placement. *)

type t =
  | No_rebalance  (** leave everything where it is *)
  | Greedy of int  (** the paper's GREEDY with this per-round move budget *)
  | M_partition of int  (** the paper's M-PARTITION, per-round budget *)
  | Local_search of int  (** hill-climbing baseline, per-round budget *)
  | Full_lpt  (** rebalance from scratch, unbounded moves *)
  | Triggered of { k : int; threshold : float }
      (** run M-PARTITION with budget [k], but only when the measured
          imbalance (makespan / average) exceeds [threshold] — the
          hysteresis pattern real operators use to avoid churn *)
  | Failover of { primary : t; fallback : t; deadline : float }
      (** run [primary]; if it raises or takes longer than [deadline]
          wall-clock seconds ([Rebal_harness.Timer]), discard its answer
          and run [fallback] instead — the degraded-mode pattern a
          production rebalancer needs when its good algorithm cannot be
          trusted to answer in time under failure *)

val name : t -> string

val budget : t -> int option
(** The per-round move budget, when the policy has one. [Failover] may
    run either branch, so its budget is the looser of the two. *)

val apply : t -> Rebal_core.Instance.t -> Rebal_core.Assignment.t
(** Run one rebalancing round. The result moves at most the policy's
    budget (unbounded for [Full_lpt], zero for [No_rebalance]).
    [Triggered] compares the instance's initial imbalance against its
    threshold and returns the identity assignment when below it. *)

val apply_count : t -> Rebal_core.Instance.t -> Rebal_core.Assignment.t * int
(** Like [apply], also returning how many [Failover] fallbacks fired
    while producing the assignment (0 for every other policy). *)
