let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let maximum xs = Array.fold_left max neg_infinity xs
let minimum xs = Array.fold_left min infinity xs

let percentile xs p =
  (* Nearest-rank: the smallest value with at least a [p] fraction of
     the sample at or below it, i.e. index ceil(p*n) of the sorted
     sample (1-based). *)
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let mu = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.0)) 0.0 xs in
    sqrt (acc /. float_of_int (n - 1))
  end

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let summarize xs =
  {
    count = Array.length xs;
    mean = mean xs;
    min = (if Array.length xs = 0 then 0.0 else minimum xs);
    max = (if Array.length xs = 0 then 0.0 else maximum xs);
    p50 = percentile xs 0.5;
    p95 = percentile xs 0.95;
  }

let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f min=%.4f p50=%.4f p95=%.4f max=%.4f" s.count
    s.mean s.min s.p50 s.p95 s.max
