(** Monotonic time measurement. [time] backs the one-shot timings in the
    experiment tables; [now_ns] is the timestamp source for observability
    spans and latency histograms. Both read CLOCK_MONOTONIC, so elapsed
    values are immune to NTP adjustments and wall-clock steps (for
    statistically careful micro-benchmarks the bench executable uses
    Bechamel on the same clock). *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. Only differences are meaningful;
    the epoch is unspecified (typically boot time). *)

val ns_to_s : int64 -> float
(** Nanoseconds to seconds. *)

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed seconds (monotonic). *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** Run [repeats] times (default 5) and report the median elapsed
    seconds of the runs together with the last result. *)
