(* Monotonic clock (CLOCK_MONOTONIC via bechamel's stubs): timestamps
   survive NTP slews and wall-clock steps, which matters now that spans
   and latency histograms are built from differences of [now_ns]. *)
let now_ns () = Monotonic_clock.now ()

let ns_to_s ns = Int64.to_float ns *. 1e-9

let time f =
  let start = now_ns () in
  let result = f () in
  (result, ns_to_s (Int64.sub (now_ns ()) start))

let time_median ?(repeats = 5) f =
  let repeats = max 1 repeats in
  let times = Array.make repeats 0.0 in
  let result = ref None in
  for i = 0 to repeats - 1 do
    let r, dt = time f in
    result := Some r;
    times.(i) <- dt
  done;
  Array.sort compare times;
  (Option.get !result, times.(repeats / 2))
