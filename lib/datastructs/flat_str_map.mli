(** Open-addressing string -> int hash map with tombstone deletion and a
    preallocated same-size rehash buffer: once the table has grown to
    its working-set size, any interleaving of {!set} and {!remove} at
    constant population runs without allocating. Values must be
    non-negative — [-1] is the "absent" return of {!find}.

    Built for {!Rebal_online.Engine}'s id -> slot directory, where the
    per-event budget excludes the minor heap entirely; the per-proc and
    global orderings live in flat heaps, and this map is the only
    string-keyed structure left on the hot path. *)

type t

val create : int -> t
(** [create n] sizes the table for about [n] live entries (capacity is
    the next power of two above [2n], minimum 8).
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int
(** Number of live bindings. *)

val capacity : t -> int
(** Current slot-array size (a power of two). *)

val find : t -> string -> int
(** The value bound to the key, or [-1] when absent. Allocation-free. *)

val mem : t -> string -> bool

val set : t -> string -> int -> unit
(** Bind a key (replacing any existing binding). Allocation-free except
    when the live count reaches a new high-water mark, which doubles the
    arrays. Do not store negative values — they are indistinguishable
    from "absent". *)

val remove : t -> string -> unit
(** Unbind a key; no-op when absent. Allocation-free. *)

val reserve : t -> int -> unit
(** [reserve t n] grows the table (if needed) so [n] live entries fit
    without any further growth — pulls warm-up allocation forward.
    @raise Invalid_argument if [n < 0]. *)

val clear : t -> unit
(** Drop all bindings, keeping the current capacity. *)

val iter : (string -> int -> unit) -> t -> unit
(** Apply to every live binding, in unspecified order. *)
