(* Open-addressing string -> int map for the engine's flat core: the
   job-id directory must resolve external ids to slot indices without
   touching the minor heap on the steady-state path. [Hashtbl] allocates
   a bucket cell per add and a list spine per probe chain, so it is out;
   this table keeps keys and values in two parallel arrays and linear
   probes with [Hashtbl.hash] (a C stub — no allocation).

   Deletions leave tombstones. Tombstone slots are reused by the next
   insert that probes past them, and when tombstones (not live entries)
   push occupancy over the load factor the table rehashes into a
   same-size spare buffer kept around for exactly that purpose — so a
   steady add/remove churn at constant population never allocates.
   Only a genuine new high-water mark of live entries grows the arrays
   (doubling), which is warmup, not steady state. *)

(* Two physically-distinct zero-length strings: slot markers that can
   never be [==] to a caller's key (including a real "" key, which is a
   different block). All sentinel checks are physical equality. *)
let empty_slot = Bytes.unsafe_to_string (Bytes.create 0)
let tombstone = Bytes.unsafe_to_string (Bytes.create 0)

type t = {
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable keys : string array;
  mutable vals : int array;
  mutable spare_keys : string array; (* same capacity, for tombstone purges *)
  mutable spare_vals : int array;
  mutable live : int; (* real entries *)
  mutable used : int; (* real entries + tombstones *)
}

let rec pow2_above k n = if k >= n then k else pow2_above (k * 2) n

let create n =
  if n < 0 then invalid_arg "Flat_str_map.create: negative capacity";
  (* 2x headroom keeps the initial load factor under 1/2. *)
  let cap = pow2_above 8 (2 * max n 1) in
  {
    mask = cap - 1;
    keys = Array.make cap empty_slot;
    vals = Array.make cap 0;
    spare_keys = Array.make cap empty_slot;
    spare_vals = Array.make cap 0;
    live = 0;
    used = 0;
  }

let length t = t.live
let capacity t = t.mask + 1

let rec probe_find t key i =
  let s = t.keys.(i) in
  if s == empty_slot then -1
  else if s != tombstone && String.equal s key then t.vals.(i)
  else probe_find t key ((i + 1) land t.mask)

(* The value bound to [key], or -1 when absent. Callers store only
   non-negative values (slot indices), so -1 is unambiguous. *)
let find t key = probe_find t key (Hashtbl.hash key land t.mask)
let mem t key = find t key >= 0

(* Insert into a table known to lack [key] and to have no tombstones
   (freshly cleared target arrays) — the rehash loop's inner step. *)
let rec reinsert keys vals mask key v i =
  if keys.(i) == empty_slot then begin
    keys.(i) <- key;
    vals.(i) <- v
  end
  else reinsert keys vals mask key v ((i + 1) land mask)

(* Purge tombstones by rehashing live entries into the spare arrays,
   then swap the buffers. Same capacity, nothing allocated. *)
let purge t =
  Array.fill t.spare_keys 0 (t.mask + 1) empty_slot;
  for i = 0 to t.mask do
    let s = t.keys.(i) in
    if s != empty_slot && s != tombstone then
      reinsert t.spare_keys t.spare_vals t.mask s t.vals.(i)
        (Hashtbl.hash s land t.mask)
  done;
  let k = t.keys and v = t.vals in
  t.keys <- t.spare_keys;
  t.vals <- t.spare_vals;
  t.spare_keys <- k;
  t.spare_vals <- v;
  t.used <- t.live

(* Rebuild at a larger capacity (new live high-water mark — warmup
   path, or an explicit [reserve]). *)
let grow_to t cap =
  let old_keys = t.keys and old_vals = t.vals and old_mask = t.mask in
  t.mask <- cap - 1;
  t.keys <- Array.make cap empty_slot;
  t.vals <- Array.make cap 0;
  t.spare_keys <- Array.make cap empty_slot;
  t.spare_vals <- Array.make cap 0;
  for i = 0 to old_mask do
    let s = old_keys.(i) in
    if s != empty_slot && s != tombstone then
      reinsert t.keys t.vals t.mask s old_vals.(i) (Hashtbl.hash s land t.mask)
  done;
  t.used <- t.live

(* Keep occupancy (live + tombstones) under 1/2 so probe chains stay
   short: grow if live entries themselves are the pressure, otherwise
   just purge the tombstones in place. *)
let maybe_rehash t =
  if 2 * t.used > t.mask then
    if 2 * t.live > t.mask then grow_to t (2 * (t.mask + 1)) else purge t

let reserve t n =
  if n < 0 then invalid_arg "Flat_str_map.reserve: negative capacity";
  let want = pow2_above 8 (2 * max n 1) in
  if want > t.mask + 1 then grow_to t want

let rec probe_set t key v i first_tomb =
  let s = t.keys.(i) in
  if s == empty_slot then
    if first_tomb >= 0 then begin
      t.keys.(first_tomb) <- key;
      t.vals.(first_tomb) <- v;
      t.live <- t.live + 1
    end
    else begin
      t.keys.(i) <- key;
      t.vals.(i) <- v;
      t.live <- t.live + 1;
      t.used <- t.used + 1;
      maybe_rehash t
    end
  else if s == tombstone then
    probe_set t key v
      ((i + 1) land t.mask)
      (if first_tomb >= 0 then first_tomb else i)
  else if String.equal s key then t.vals.(i) <- v
  else probe_set t key v ((i + 1) land t.mask) first_tomb

(* Bind [key] to [v], replacing any previous binding. *)
let set t key v = probe_set t key v (Hashtbl.hash key land t.mask) (-1)

let rec probe_remove t key i =
  let s = t.keys.(i) in
  if s == empty_slot then ()
  else if s != tombstone && String.equal s key then begin
    t.keys.(i) <- tombstone;
    t.live <- t.live - 1
  end
  else probe_remove t key ((i + 1) land t.mask)

(* Unbind [key]; no-op when absent. The slot becomes a tombstone so
   later probes for colliding keys keep walking past it. *)
let remove t key = probe_remove t key (Hashtbl.hash key land t.mask)

let clear t =
  Array.fill t.keys 0 (t.mask + 1) empty_slot;
  t.live <- 0;
  t.used <- 0

let iter f t =
  for i = 0 to t.mask do
    let s = t.keys.(i) in
    if s != empty_slot && s != tombstone then f s t.vals.(i)
  done
