(** Min-heap over a fixed universe of integer keys [0 .. n-1] with integer
    priorities and support for changing the priority of a present key
    ("decrease-key" and "increase-key") in [O(log n)].

    Used by the web-server simulator to track server loads that change as
    sites are migrated, and by list-scheduling style placement loops where
    the same processor is re-keyed many times. Ties between equal
    priorities are broken by the smaller key, so iteration orders are
    deterministic. *)

type t

val create : int -> t
(** [create n] is an empty heap over keys [0 .. n-1].
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int
(** The size of the key universe [n]. *)

val length : t -> int
(** Number of keys currently present. *)

val is_empty : t -> bool

val mem : t -> int -> bool
(** Whether the key is present. *)

val priority : t -> int -> int option
(** Current priority of a key, if present. *)

val set : t -> int -> int -> unit
(** [set h key prio] inserts [key] with priority [prio], or updates its
    priority if already present.
    @raise Invalid_argument if [key] is outside [0 .. n-1]. *)

val remove : t -> int -> unit
(** Remove a key; no-op if absent. *)

val min : t -> (int * int) option
(** [(key, priority)] with the smallest priority (smallest key on ties). *)

val min_exn : t -> int * int
(** @raise Invalid_argument if empty. *)

val pop_min : t -> (int * int) option
(** Remove and return the minimum entry. *)

val entries : t -> (int * int) list
(** All present [(key, priority)] pairs, in heap-array order (the first
    entry is the minimum; the rest are unordered). Non-destructive:
    intended for snapshots, debugging and model-based tests. *)

val clear : t -> unit
