(** Min-heap over a fixed universe of integer keys [0 .. n-1] with integer
    priorities and support for changing the priority of a present key
    ("decrease-key" and "increase-key") in [O(log n)].

    Used by the web-server simulator to track server loads that change as
    sites are migrated, and by list-scheduling style placement loops where
    the same processor is re-keyed many times. Ties between equal
    priorities are broken by the smaller key, so iteration orders are
    deterministic. *)

type t

(** {2 Optional operation counters}

    A process-global hook for observability: when installed, every heap
    in the process attributes its operations and sift steps to the
    record, which the profiler flushes into the metrics registry. When
    absent (the default) each counting site is one ref load and branch —
    the heap stays dependency-free and effectively uninstrumented. *)

type counters = {
  mutable sets : int;  (** {!set} calls (inserts and priority updates) *)
  mutable removes : int;  (** {!remove} calls (including via {!pop_min}) *)
  mutable pops : int;  (** {!pop_min} calls that removed an entry *)
  mutable sift_up_steps : int;  (** swaps performed sifting up *)
  mutable sift_down_steps : int;  (** swaps performed sifting down *)
}

val fresh_counters : unit -> counters
val install_counters : counters -> unit
val installed_counters : unit -> counters option
val remove_counters : unit -> unit

val create : int -> t
(** [create n] is an empty heap over keys [0 .. n-1].
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int
(** The size of the key universe [n]. *)

val length : t -> int
(** Number of keys currently present. *)

val is_empty : t -> bool

val mem : t -> int -> bool
(** Whether the key is present. *)

val priority : t -> int -> int option
(** Current priority of a key, if present. *)

val set : t -> int -> int -> unit
(** [set h key prio] inserts [key] with priority [prio], or updates its
    priority if already present.
    @raise Invalid_argument if [key] is outside [0 .. n-1]. *)

val remove : t -> int -> unit
(** Remove a key; no-op if absent. *)

val min : t -> (int * int) option
(** [(key, priority)] with the smallest priority (smallest key on ties). *)

val min_exn : t -> int * int
(** @raise Invalid_argument if empty. *)

val min_key_exn : t -> int
(** Key of the minimum entry without allocating the tuple [min_exn]
    boxes — for per-event loops that must stay off the minor heap.
    @raise Invalid_argument if empty. *)

val min_prio_exn : t -> int
(** Priority of the minimum entry, allocation-free.
    @raise Invalid_argument if empty. *)

val pop_min : t -> (int * int) option
(** Remove and return the minimum entry. *)

val entries : t -> (int * int) list
(** All present [(key, priority)] pairs, in heap-array order (the first
    entry is the minimum; the rest are unordered). Non-destructive:
    intended for snapshots, debugging and model-based tests. *)

val clear : t -> unit
