(* Optional operation counters, shared by every heap in the process.
   [None] (the default) costs one ref load and branch per sift step;
   installing a record lets the observability layer attribute heap work
   to the solver that caused it without this library depending on it. *)
type counters = {
  mutable sets : int;
  mutable removes : int;
  mutable pops : int;
  mutable sift_up_steps : int;
  mutable sift_down_steps : int;
}

let fresh_counters () =
  { sets = 0; removes = 0; pops = 0; sift_up_steps = 0; sift_down_steps = 0 }

let hook : counters option ref = ref None
let install_counters c = hook := Some c
let installed_counters () = !hook
let remove_counters () = hook := None

type t = {
  n : int;
  heap : int array; (* heap.(i) = key at heap slot i *)
  pos : int array; (* pos.(key) = heap slot, or -1 if absent *)
  prio : int array; (* prio.(key), meaningful only if present *)
  mutable size : int;
}

let create n =
  if n < 0 then invalid_arg "Indexed_heap.create: negative capacity";
  { n; heap = Array.make (max n 1) (-1); pos = Array.make (max n 1) (-1); prio = Array.make (max n 1) 0; size = 0 }

let capacity h = h.n
let length h = h.size
let is_empty h = h.size = 0

let check_key h key =
  if key < 0 || key >= h.n then invalid_arg "Indexed_heap: key out of range"

let mem h key =
  check_key h key;
  h.pos.(key) >= 0

let priority h key =
  check_key h key;
  if h.pos.(key) >= 0 then Some h.prio.(key) else None

(* Lexicographic (priority, key) order makes extraction deterministic. *)
let before h k1 k2 =
  let p1 = h.prio.(k1) and p2 = h.prio.(k2) in
  p1 < p2 || (p1 = p2 && k1 < k2)

let swap h i j =
  let ki = h.heap.(i) and kj = h.heap.(j) in
  h.heap.(i) <- kj;
  h.heap.(j) <- ki;
  h.pos.(kj) <- i;
  h.pos.(ki) <- j

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h h.heap.(i) h.heap.(parent) then begin
      (match !hook with Some c -> c.sift_up_steps <- c.sift_up_steps + 1 | None -> ());
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let best = ref i in
  if l < h.size && before h h.heap.(l) h.heap.(!best) then best := l;
  if r < h.size && before h h.heap.(r) h.heap.(!best) then best := r;
  if !best <> i then begin
    (match !hook with Some c -> c.sift_down_steps <- c.sift_down_steps + 1 | None -> ());
    swap h i !best;
    sift_down h !best
  end

let set h key prio =
  check_key h key;
  (match !hook with Some c -> c.sets <- c.sets + 1 | None -> ());
  if h.pos.(key) >= 0 then begin
    let old = h.prio.(key) in
    h.prio.(key) <- prio;
    let i = h.pos.(key) in
    if prio < old then sift_up h i else sift_down h i
  end
  else begin
    h.prio.(key) <- prio;
    h.heap.(h.size) <- key;
    h.pos.(key) <- h.size;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)
  end

let remove h key =
  check_key h key;
  (match !hook with Some c -> c.removes <- c.removes + 1 | None -> ());
  let i = h.pos.(key) in
  if i >= 0 then begin
    h.size <- h.size - 1;
    h.pos.(key) <- -1;
    if i < h.size then begin
      let moved = h.heap.(h.size) in
      h.heap.(i) <- moved;
      h.pos.(moved) <- i;
      sift_up h i;
      sift_down h i
    end
  end

let min h =
  if h.size = 0 then None
  else begin
    let key = h.heap.(0) in
    Some (key, h.prio.(key))
  end

let min_exn h =
  match min h with
  | Some entry -> entry
  | None -> invalid_arg "Indexed_heap.min_exn: empty heap"

(* Component accessors for allocation-free hot paths: [min_exn] boxes a
   tuple on every call, which matters when the caller is a per-event
   loop that must not touch the minor heap. *)
let min_key_exn h =
  if h.size = 0 then invalid_arg "Indexed_heap.min_key_exn: empty heap";
  h.heap.(0)

let min_prio_exn h =
  if h.size = 0 then invalid_arg "Indexed_heap.min_prio_exn: empty heap";
  h.prio.(h.heap.(0))

let pop_min h =
  match min h with
  | None -> None
  | Some (key, _) as entry ->
    (match !hook with Some c -> c.pops <- c.pops + 1 | None -> ());
    remove h key;
    entry

let entries h =
  let out = ref [] in
  for i = h.size - 1 downto 0 do
    let key = h.heap.(i) in
    out := (key, h.prio.(key)) :: !out
  done;
  !out

let clear h =
  for i = 0 to h.size - 1 do
    h.pos.(h.heap.(i)) <- -1
  done;
  h.size <- 0
