module Instance = Rebal_core.Instance
module Budget = Rebal_core.Budget
module Lower_bounds = Rebal_core.Lower_bounds
module Sorted_jobs = Rebal_ds.Sorted_jobs
module Metrics = Rebal_obs.Metrics
module Trace = Rebal_obs.Trace

let algo_labels = [ ("algo", "m-partition") ]

let metric_solves () =
  Metrics.counter ~labels:algo_labels ~help:"Solver invocations" "rebal_solver_solves_total"

let metric_candidates () =
  Metrics.counter ~labels:algo_labels ~help:"Candidate thresholds enumerated"
    "rebal_mpartition_candidates_total"

let metric_tried () =
  Metrics.counter ~labels:algo_labels ~help:"Thresholds for which a plan was evaluated"
    "rebal_mpartition_thresholds_tried_total"

let metric_scan_steps () =
  Metrics.counter ~labels:algo_labels
    ~help:"Threshold-scan iterations (evaluated plus skipped below the lower bound)"
    "rebal_mpartition_scan_iterations_total"

let candidate_thresholds inst =
  let views = Instance.sorted_views inst in
  let acc = ref [] in
  for j = 0 to Instance.n inst - 1 do
    acc := (2 * Instance.size inst j) :: !acc
  done;
  Array.iter
    (fun v ->
      for l = 0 to Sorted_jobs.length v do
        let s = Sorted_jobs.suffix v l in
        acc := s :: (2 * s) :: !acc
      done)
    views;
  let arr = Array.of_list !acc in
  Array.sort compare arr;
  (* Deduplicate in place. *)
  let out = ref [] in
  Array.iter
    (fun t ->
      match !out with
      | last :: _ when last = t -> ()
      | _ -> out := t :: !out)
    arr;
  Array.of_list (List.rev !out)

type scan_stats = {
  candidates : int;
  tried : int;
  accepted : int;
  lower_bound : int;
}

let solve_with_stats inst ~k =
  if k < 0 then invalid_arg "M_partition: negative k";
  Metrics.Counter.inc (metric_solves ());
  Trace.with_span "m_partition.solve"
    ~attrs:
      [
        ("n", Trace.Int (Instance.n inst));
        ("m", Trace.Int (Instance.m inst));
        ("k", Trace.Int (min k (Instance.n inst)));
      ]
  @@ fun () ->
  let views = Instance.sorted_views inst in
  let lb = Lower_bounds.best inst ~budget:(Budget.Moves k) in
  let candidates =
    Trace.with_span "m_partition.candidates" (fun () ->
        let cs = candidate_thresholds inst in
        Trace.add_attr "candidates" (Trace.Int (Array.length cs));
        cs)
  in
  Metrics.Counter.add (metric_candidates ()) (Array.length candidates);
  let tried = ref 0 and scan_steps = ref 0 in
  let feasible t =
    incr tried;
    match Partition.plan inst ~views ~threshold:t with
    | Some plan when plan.Partition.moves <= k -> Some plan
    | Some _ | None -> None
  in
  let finish plan t =
    Metrics.Counter.add (metric_tried ()) !tried;
    Metrics.Counter.add (metric_scan_steps ()) !scan_steps;
    Trace.add_attr "tried" (Trace.Int !tried);
    Trace.add_attr "accepted" (Trace.Int t);
    ( Partition.build inst ~views plan,
      { candidates = Array.length candidates; tried = !tried; accepted = t; lower_bound = lb } )
  in
  Trace.with_span "m_partition.scan" @@ fun () ->
  (* Try the lower bound itself first (it need not be a candidate value),
     then every candidate above it in increasing order. The scan always
     terminates: at the initial makespan — which is a suffix sum, hence a
     candidate — the plan moves nothing. *)
  let rec scan i =
    if i >= Array.length candidates then
      failwith "M_partition: no feasible threshold (impossible)"
    else begin
      let t = candidates.(i) in
      incr scan_steps;
      if t < lb then scan (i + 1)
      else begin
        match feasible t with
        | Some plan -> finish plan t
        | None -> scan (i + 1)
      end
    end
  in
  match feasible lb with
  | Some plan -> finish plan lb
  | None -> scan 0

let solve_with_threshold inst ~k =
  let assignment, stats = solve_with_stats inst ~k in
  (assignment, stats.accepted)

let solve inst ~k = fst (solve_with_threshold inst ~k)
