module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Sorted_jobs = Rebal_ds.Sorted_jobs
module Indexed_heap = Rebal_ds.Indexed_heap
module Metrics = Rebal_obs.Metrics
module Trace = Rebal_obs.Trace

type insertion_order =
  | As_removed
  | Ascending
  | Descending

(* Metric handles are fetched once per solve (a registry lookup each, so
   [with_registry] scoping works); the loops below bump plain local ints
   and flush them in one [Counter.add] — nothing allocates per heap op. *)
let algo_labels = [ ("algo", "greedy") ]

let metric_solves () =
  Metrics.counter ~labels:algo_labels ~help:"Solver invocations" "rebal_solver_solves_total"

let metric_heap_pops () =
  Metrics.counter ~labels:algo_labels ~help:"Heap minimum extractions/reads"
    "rebal_solver_heap_pops_total"

let metric_heap_pushes () =
  Metrics.counter ~labels:algo_labels ~help:"Heap inserts and priority updates"
    "rebal_solver_heap_pushes_total"

let metric_comparisons () =
  Metrics.counter ~labels:algo_labels ~help:"Job comparisons in ordering phases"
    "rebal_solver_comparisons_total"

(* Step 1: remove, k times, the largest job from the most-loaded
   processor. Each processor consumes its descending-sorted job view in
   order, so a cursor per processor suffices; the most-loaded processor is
   the minimum of a heap keyed by negated load. Returns the removed jobs
   in removal order and the resulting loads. *)
let removal_phase inst ~k =
  if k < 0 then invalid_arg "Greedy: negative k";
  let m = Instance.m inst in
  let views = Instance.sorted_views inst in
  let cursor = Array.make m 0 in
  let load = Array.make m 0 in
  let heap = Indexed_heap.create m in
  let pops = ref 0 and pushes = ref 0 in
  for p = 0 to m - 1 do
    load.(p) <- Sorted_jobs.total views.(p);
    Indexed_heap.set heap p (-load.(p));
    incr pushes
  done;
  let removed = ref [] in
  (try
     for _ = 1 to min k (Instance.n inst) do
       let p, neg = Indexed_heap.min_exn heap in
       incr pops;
       if neg = 0 then raise Exit;
       let v = views.(p) in
       let job = Sorted_jobs.id v cursor.(p) in
       let size = Sorted_jobs.size v cursor.(p) in
       cursor.(p) <- cursor.(p) + 1;
       load.(p) <- load.(p) - size;
       Indexed_heap.set heap p (-load.(p));
       incr pushes;
       removed := (job, size) :: !removed
     done
   with Exit -> ());
  Metrics.Counter.add (metric_heap_pops ()) !pops;
  Metrics.Counter.add (metric_heap_pushes ()) !pushes;
  (List.rev !removed, load)

let removal_phase_makespan inst ~k =
  let _, load = removal_phase inst ~k in
  Array.fold_left max 0 load

let solve ?(order = Descending) inst ~k =
  Metrics.Counter.inc (metric_solves ());
  Trace.with_span "greedy.solve"
    ~attrs:
      [
        ("n", Trace.Int (Instance.n inst));
        ("m", Trace.Int (Instance.m inst));
        ("k", Trace.Int (min k (Instance.n inst)));
      ]
    (fun () ->
      let removed, load =
        Trace.with_span "greedy.removal" (fun () ->
            let removed, load = removal_phase inst ~k in
            Trace.add_attr "removed" (Trace.Int (List.length removed));
            (removed, load))
      in
      Trace.with_span "greedy.reinsert" (fun () ->
          let comparisons = ref 0 in
          let removed =
            match order with
            | As_removed -> removed
            | Ascending ->
              List.stable_sort
                (fun (_, s1) (_, s2) ->
                  incr comparisons;
                  compare s1 s2)
                removed
            | Descending ->
              List.stable_sort
                (fun (_, s1) (_, s2) ->
                  incr comparisons;
                  compare s2 s1)
                removed
          in
          let m = Instance.m inst in
          let heap = Indexed_heap.create m in
          let pops = ref 0 and pushes = ref 0 in
          Array.iteri
            (fun p l ->
              Indexed_heap.set heap p l;
              incr pushes)
            load;
          let assign = Instance.initial_assignment inst in
          List.iter
            (fun (job, size) ->
              let p, l = Indexed_heap.min_exn heap in
              incr pops;
              assign.(job) <- p;
              Indexed_heap.set heap p (l + size);
              incr pushes)
            removed;
          Metrics.Counter.add (metric_comparisons ()) !comparisons;
          Metrics.Counter.add (metric_heap_pops ()) !pops;
          Metrics.Counter.add (metric_heap_pushes ()) !pushes;
          Assignment.of_array ~m assign))
