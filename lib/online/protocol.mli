(** The line-delimited command protocol spoken by [rebalance serve].

    Requests, one per line, case-insensitive verbs:
    {v
    ADD <id> <size>      place a new job
    REMOVE <id>          retire a job
    RESIZE <id> <size>   change a job's size
    REBALANCE <k>        run a bounded-move repair pass
    STATS                one-line engine telemetry
    METRICS              Prometheus text exposition of the metrics registry
    JOURNAL [<n>]        tail of the flight-recorder journal (default 10)
    HELP                 list the commands
    QUIT                 end this client session
    SHUTDOWN             end this client session and stop the daemon
    v}

    Responses stream back one event per line: [PLACED]/[REMOVED]/[RESIZED]
    acknowledge single-job events and carry the current makespan; each
    relocation performed by a repair pass (manual or trigger-fired) is a
    [MOVE <id> <src> <dst>] line followed by a [REBALANCED] summary;
    malformed or inapplicable requests get [ERR <reason>] without
    disturbing the engine. [METRICS] exports the engine's live counters
    into the current metrics registry and streams the Prometheus text
    exposition, terminated by a literal [# EOF] line so clients know
    where the multi-line reply ends. [JOURNAL n] streams the last [n]
    flight-recorder lines from the engine's attached journal sink (an
    [ERR] when serve was started without [--journal]), framed by the
    same [# EOF]. Blank lines and lines starting with
    [#] are ignored. The module is pure string-in/strings-out so the
    daemon loop and the tests share one implementation. *)

type command =
  | Add of { id : string; size : int }
  | Remove of string
  | Resize of { id : string; size : int }
  | Rebalance of int
  | Stats
  | Metrics_dump
  | Journal_tail of int
  | Help
  | Quit
  | Shutdown

type verdict =
  | Continue  (** keep reading commands *)
  | Close  (** end this client session *)
  | Stop  (** end the session and shut the daemon down *)

val parse : string -> (command option, string) result
(** [Ok None] for blank/comment lines; [Error] explains a malformed
    request. *)

val execute : Engine.t -> command -> string list
(** Response lines for one command (never raises on user input). *)

val handle_line : Engine.t -> string -> string list * verdict
(** [parse] + [execute], turning parse errors into [ERR] lines. *)

val export_metrics : Engine.t -> unit
(** Export the engine's live stats into the current metrics registry as
    gauges and counters (idempotent — uses set, not add). [METRICS]
    replies and the daemon's [--metrics-file] dump both run this before
    rendering through [Rebal_obs.Expo]. *)

val metrics_lines : Engine.t -> string list
(** The [METRICS] reply: the engine's live stats exported into the
    current registry, then the Prometheus text exposition line by line,
    terminated by ["# EOF"]. Also used by the daemon's [--metrics-file]
    dump. *)

val greeting : Engine.t -> string
(** The [READY ...] banner sent when a session opens. *)
