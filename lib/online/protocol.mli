(** The line-delimited command protocol spoken by [rebalance serve].

    Requests, one per line, case-insensitive verbs:
    {v
    ADD <id> <size>      place a new job
    REMOVE <id>          retire a job
    RESIZE <id> <size>   change a job's size
    REBALANCE <k>        run a bounded-move repair pass
    STATS                one-line engine telemetry
    SHARDS               per-shard telemetry (sharded serve only)
    HEALTH               per-shard health and failover counters (supervised serve only)
    SNAPSHOT             write a state snapshot into the journal(s)
    METRICS              Prometheus text exposition of the metrics registry
    JOURNAL [<n>]        tail of the flight-recorder journal (default 10)
    TRACES [<n>]         span trees of the last n slow ops (default 10)
    ALERTS               alert rule states and transitions (telemetry serve only)
    TSDB <series> [<w>]  windowed time-series points (telemetry serve only)
    HELP                 list the commands
    QUIT                 end this client session
    SHUTDOWN             end this client session and stop the daemon
    v}

    Responses stream back one event per line: [PLACED]/[REMOVED]/[RESIZED]
    acknowledge single-job events and carry the current makespan; each
    relocation performed by a repair pass (manual or trigger-fired) is a
    [MOVE <id> <src> <dst>] line followed by a [REBALANCED] summary;
    malformed or inapplicable requests get [ERR <reason>] without
    disturbing the engine. Argument validation happens at parse time —
    a non-positive [ADD]/[RESIZE] size or a negative [REBALANCE] budget
    is a protocol error (prefixed ["line %d:"] when the daemon supplies
    the session line number), not an engine error. [METRICS] exports the
    live counters into the current metrics registry and streams the
    Prometheus text exposition, terminated by a literal [# EOF] line so
    clients know where the multi-line reply ends; a sharded serve
    exports one series per shard carrying a [shard="<i>"] label plus
    [rebal_cluster_*] aggregates. [SNAPSHOT] writes the current engine
    state into the attached journal(s) — the compaction point [compact]
    truncates to. [JOURNAL n] streams the last [n] flight-recorder lines
    (per shard, under [# shard <i>] markers, when sharded), framed by
    the same [# EOF]. [TRACES n] streams the causal span trees of the
    last [n] ops captured by the slow-op ring (see
    [Rebal_obs.Optrace]): per op a [# trace <id> verb=<v> duration=<d>]
    header, then one indented line per span, [# EOF] framed. A span
    whose records were evicted shows [# spans evicted] — truncation is
    visible, never silent. Blank lines and lines starting with [#] are
    ignored. The module is pure string-in/strings-out so the daemon loop
    and the tests share one implementation.

    A supervised serve ({!Supervised}) extends the replies
    {e append-only}: [STATS] gains health and failover counters after
    the cluster fields, each [SHARD] line gains [health=... weight=...],
    the [READY] banner gains [serving=<n>], and [HEALTH] answers a
    summary line plus one [HEALTH <i> <state> weight=... jobs=...] line
    per shard. Mutations are routed through the supervisor's watchdog
    and degraded-mode guards, so an op touching a job stranded on a
    down shard gets an [ERR] instead of reaching the dead engine. *)

type command =
  | Add of { id : string; size : int }
  | Remove of string
  | Resize of { id : string; size : int }
  | Rebalance of int
  | Stats
  | Shards_info
  | Health
  | Snapshot_now
  | Metrics_dump
  | Journal_tail of int
  | Traces of int
  | Alerts_status
  | Tsdb_query of { selector : string; window_s : float }
  | Help
  | Quit
  | Shutdown

type verdict =
  | Continue  (** keep reading commands *)
  | Close  (** end this client session *)
  | Stop  (** end the session and shut the daemon down *)

(** What the protocol operates: one engine, a shard router, a shard
    router under health supervision, or the domain-parallel cluster.
    A {!Parallel} target answers the same replies as {!Cluster} (the
    [READY] banner gains [domains=<d>], [METRICS] gains
    [rebal_cluster_domains] and the per-worker latency histograms) and
    is safe to drive from many sessions concurrently — every command
    is routed through the cluster's owner-domain mailboxes. *)
type target =
  | Single of Engine.t
  | Cluster of Shard.t
  | Supervised of Supervisor.t
  | Parallel of Cluster.t

val parse : string -> (command option, string) result
(** [Ok None] for blank/comment lines; [Error] explains a malformed
    request. Sizes must be positive and budgets non-negative — rejected
    here, before any engine is touched. *)

val execute : target -> command -> string list
(** Response lines for one command (never raises on user input). *)

val handle_line : ?line:int -> target -> string -> string list * verdict
(** [parse] + [execute], turning parse errors into [ERR] lines —
    prefixed ["line %d:"] when [line] (the 1-based session line number)
    is given. This is the op boundary: every parsed command runs under
    [Rebal_obs.Optrace.with_op] (head sampling plus slow-op tail
    capture) and lands one observation in the
    [rebal_session_latency_seconds{verb=...}] histogram of the calling
    thread's current registry. *)

val handle_lines : ?start_line:int -> target -> string list -> string list * verdict
(** {!handle_line} over a pipeline of lines, coalescing runs of
    consecutive mutating commands (ADD / REMOVE / RESIZE) into one
    [Engine.apply_bulk] (a {!Single} target) or [Cluster.apply_bulk]
    (a {!Parallel} target) call — one dispatch and one journal flush
    per run instead of per line. Replies come back in line order and
    are identical to the one-by-one path; a run of a single mutation
    takes exactly the unbatched path (same per-verb latency series),
    while a genuine pipeline runs under one [BATCH] span and one
    [verb="batch"] latency observation. {!Cluster} and {!Supervised}
    targets process every line individually. Processing stops at the
    first [QUIT]/[SHUTDOWN]; the returned verdict is that command's.
    [start_line] (default 1) numbers the first line for [ERR]
    prefixes. *)

val verb_name : command -> string
(** Lowercase metric-label name of a command ([add], [traces], ...). *)

val export_metrics : Engine.t -> unit
(** Export one engine's live stats into the current metrics registry as
    gauges and counters (idempotent — uses set, not add). *)

val export_target : target -> unit
(** {!export_metrics} for a whole target: a cluster exports per-shard
    series labeled [shard="<i>"] plus [rebal_cluster_*] aggregates.
    [METRICS] replies and the daemon's [--metrics-file] dump both run
    this before rendering through [Rebal_obs.Expo]. *)

val metrics_registry : target -> Rebal_obs.Metrics.Registry.t
(** The registry a metrics reply renders: for {!Parallel} a fresh
    registry holding the exported aggregates plus every worker
    domain's and the default registry merged in (fresh each call —
    merging into a reused registry would double count); otherwise the
    current registry after {!export_target}. *)

val metrics_lines : target -> string list
(** The [METRICS] reply: {!metrics_registry} rendered as Prometheus
    text line by line, terminated by ["# EOF"]. Also used by the
    daemon's [--metrics-file] dump. *)

val metrics_text : target -> string
(** {!metrics_registry} rendered as one Prometheus text blob (no
    [# EOF] trailer) — the body of the HTTP [GET /metrics] scrape. *)

val traces_lines : target -> int -> string list
(** The [TRACES n] reply (see the header). Worker-domain spans are
    collected on the workers via [Cluster.recorded_spans]; a shut-down
    cluster contributes none rather than raising. *)

val greeting : target -> string
(** The [READY ...] banner sent when a session opens. *)

val set_telemetry : ?alerts:Rebal_obs.Alerts.t -> Rebal_obs.Tsdb.t -> unit
(** Register the daemon's time-series store (and rule engine, if rules
    were loaded) as the backing for the [ALERTS] / [TSDB] verbs and the
    HTTP [/alerts] / [/tsdb] routes. Process-global, like the
    [Rebal_obs.Optrace] knobs: the daemon owns one telemetry pipeline.
    Without it both verbs answer [ERR telemetry not enabled]. *)

val clear_telemetry : unit -> unit

val alerts_status_lines : unit -> string list
(** The [ALERTS] reply ([# EOF]-framed; an [ERR] line when telemetry or
    rules are absent). Shared with the HTTP [/alerts] route. *)

val tsdb_query_lines : selector:string -> window_s:float -> string list
(** The [TSDB] reply, same contract. *)
