(** A bounded multi-producer single-consumer mailbox — the command
    channel between client threads and a shard worker domain.

    Backpressure is the point of the bound: {!send} blocks while the
    buffer is full, so a producer that outruns its consumer parks
    instead of growing an unbounded queue. {!close} is the shutdown
    handshake: senders arriving after close are refused, the consumer
    drains everything accepted before close and then sees
    end-of-stream — a successful {!send} is never dropped.

    All operations are domain-safe (one mutex, two condition
    variables); the single-consumer discipline is a usage convention,
    not enforced. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val send : 'a t -> 'a -> bool
(** Enqueue, blocking while full. [false] if the mailbox is (or
    becomes, while waiting) closed — the value was not enqueued. *)

val try_send : 'a t -> 'a -> [ `Sent | `Full | `Closed ]
(** Non-blocking {!send} — [`Full] instead of parking. *)

val recv : 'a t -> 'a option
(** Dequeue the oldest element, blocking while empty. [None] only
    after {!close} once every accepted element has been drained. *)

val close : 'a t -> unit
(** Refuse further sends and wake all blocked senders and receivers.
    Idempotent. *)

val length : 'a t -> int
val capacity : 'a t -> int
val is_closed : 'a t -> bool
