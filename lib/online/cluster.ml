module Metrics = Rebal_obs.Metrics
module Optrace = Rebal_obs.Optrace
module Timer = Rebal_harness.Timer

type move = Engine.move = {
  id : string;
  src : int;
  dst : int;
}

exception Shut_down

(* What the residency directory knows about an id. The transient
   states are per-id reservations: every mutating operation reserves
   its id before touching an engine and settles it afterwards, so two
   clients (or a client and the cross-shard mover) can never race the
   same id onto two shards. Operations arriving while an id is
   reserved wait on [dir_settled] — per-id linearization without any
   global stop-the-world. *)
type residency =
  | Resident of int  (* settled on a shard *)
  | Pending of int  (* an add is in flight; not on any engine yet *)
  | Busy of int  (* a remove/resize is in flight on its shard *)
  | Moving of {
      src : int;
      dst : int;
    }  (* a two-phase cross-shard transfer is in flight *)

(* What crosses a mailbox. Beyond the closure itself: the submit
   timestamp (queueing delay = dequeue minus submit, observed into the
   owner's wait histogram), the trace carrier when the originating op
   was sampled (worker-side spans parent into the op's trace), and the
   label/shard naming the work for those spans. *)
type envelope = {
  run : unit -> unit;
  enq_ns : int64;  (* set at submit, before the send can block *)
  carrier : Optrace.carrier option;
  label : string;
  shard : int;  (* -1 for domain-level (non-shard) tasks *)
}

type t = {
  engines : Engine.t array;
  offsets : int array;  (* shard i owns global procs [offsets.(i), ...) *)
  m : int;
  ring : Shard.ring;
  (* Shard i is owned by worker domain [owner.(i)]: all of shard i's
     engine work runs on that one domain, in mailbox order — per-shard
     FIFO and single-writer confinement (engine state, journal sink,
     metric handles) fall out of the ownership map. With
     domains = shards this is domain-per-shard; with fewer domains,
     shards are multiplexed round-robin. *)
  owner : int array;
  mailboxes : envelope Mailbox.t array;  (* one per worker domain *)
  workers : unit Domain.t array;
  registries : Metrics.Registry.t array;  (* one per worker domain *)
  (* Caller-side histograms, bound in the registry current at assembly
     time (the control domain's): senders are session systhreads of
     that one domain, so sharing the handles is within the Metrics
     confinement contract — the loadgen precedent. *)
  send_block : Metrics.Histogram.t array;  (* per worker domain *)
  reply_wait : Metrics.Histogram.t array;  (* per shard *)
  dir_mu : Mutex.t;
  dir_settled : Condition.t;
  directory : (string, residency) Hashtbl.t;
  mutable inter_moves : int;  (* under dir_mu *)
  mutable stopped : bool;  (* under dir_mu *)
}

let pf = Printf.sprintf

(* ----- worker domains and the synchronous call fabric ----- *)

(* A write-once cell the coordinator parks on until the owner domain
   has run its closure. *)
module Ivar = struct
  type 'a t = {
    mu : Mutex.t;
    cond : Condition.t;
    mutable v : 'a option;
  }

  let create () = { mu = Mutex.create (); cond = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.mu;
    t.v <- Some v;
    Condition.signal t.cond;
    Mutex.unlock t.mu

  let read t =
    Mutex.lock t.mu;
    let rec wait () =
      match t.v with
      | Some v -> v
      | None ->
        Condition.wait t.cond t.mu;
        wait ()
    in
    let v = wait () in
    Mutex.unlock t.mu;
    v
end

let worker_loop w registry mailbox =
  (* Scope the worker to its own registry so any handle bound on this
     domain (trace drop counters, late-bound histograms) lands where
     only this domain writes — including the queue/utilization gauges
     bound right here. *)
  Metrics.Registry.with_registry registry @@ fun () ->
  let labels = [ ("domain", string_of_int w) ] in
  let depth =
    Metrics.gauge ~labels ~help:"Commands waiting in this worker's mailbox"
      "rebal_mailbox_depth"
  in
  let wait =
    Metrics.histogram ~labels
      ~help:"Mailbox residency from submit to dequeue (includes send-block time) in seconds"
      "rebal_mailbox_wait_seconds"
  in
  let busy =
    Metrics.gauge ~labels ~help:"Cumulative seconds this worker spent executing tasks"
      "rebal_domain_busy_seconds"
  in
  let util =
    Metrics.gauge ~labels ~help:"Busy seconds over wall seconds since the worker started"
      "rebal_domain_utilization"
  in
  let started = Timer.now_ns () in
  let busy_ns = ref 0L in
  let rec loop () =
    match Mailbox.recv mailbox with
    | Some env ->
      let deq = Timer.now_ns () in
      Metrics.Gauge.set depth (float_of_int (Mailbox.length mailbox));
      let queued_ns = Int64.sub deq env.enq_ns in
      Metrics.Histogram.observe_ns wait queued_ns;
      (match env.carrier with
      | Some c ->
        let attrs =
          ("queue_us", pf "%.1f" (Int64.to_float queued_ns /. 1e3))
          :: (if env.shard >= 0 then [ ("shard", string_of_int env.shard) ] else [])
        in
        Optrace.with_span ~carrier:c ~attrs ("shard." ^ env.label) env.run
      | None -> env.run ());
      busy_ns := Int64.add !busy_ns (Int64.sub (Timer.now_ns ()) deq);
      let busy_s = Int64.to_float !busy_ns /. 1e9 in
      Metrics.Gauge.set busy busy_s;
      let wall = Int64.to_float (Int64.sub (Timer.now_ns ()) started) /. 1e9 in
      if wall > 0.0 then Metrics.Gauge.set util (busy_s /. wall);
      loop ()
    | None -> ()
  in
  loop ()

(* Submit an envelope to worker [w], timing how long the send blocked
   on a full mailbox (the backpressure signal).
   @raise Shut_down if the mailbox is closed. *)
let post t w env =
  let t0 = Timer.now_ns () in
  let accepted = Mailbox.send t.mailboxes.(w) env in
  Metrics.Histogram.observe_ns t.send_block.(w) (Int64.sub (Timer.now_ns ()) t0);
  if not accepted then raise Shut_down

(* Run [f] on shard [s]'s engine, on [s]'s owner domain, and wait for
   the result. Tasks never raise out of the worker (that would kill
   the domain and strand every later sender): exceptions are carried
   back and re-raised here, so a worker-side [failwith] or
   [Invalid_argument] surfaces on the calling thread exactly as it
   would on the sequential path. [label] names the worker-side span
   when the calling op is being traced.
   @raise Shut_down if the cluster has shut down. *)
let run ?(label = "task") t s f =
  let iv = Ivar.create () in
  let env =
    {
      run = (fun () -> Ivar.fill iv (match f t.engines.(s) with v -> Ok v | exception e -> Error e));
      enq_ns = Timer.now_ns ();
      carrier = Optrace.current_carrier ();
      label;
      shard = s;
    }
  in
  post t t.owner.(s) env;
  let t0 = Timer.now_ns () in
  let r = Ivar.read iv in
  Metrics.Histogram.observe_ns t.reply_wait.(s) (Int64.sub (Timer.now_ns ()) t0);
  match r with
  | Ok v -> v
  | Error e -> raise e

(* Fan [f] out to every shard — all tasks enqueued before any reply is
   awaited, so independent shards genuinely overlap. *)
let run_all ?(label = "task") t f =
  let carrier = Optrace.current_carrier () in
  let ivs =
    Array.init (Array.length t.engines) (fun s ->
        let iv = Ivar.create () in
        let env =
          {
            run =
              (fun () ->
                Ivar.fill iv (match f s t.engines.(s) with v -> Ok v | exception e -> Error e));
            enq_ns = Timer.now_ns ();
            carrier;
            label;
            shard = s;
          }
        in
        post t t.owner.(s) env;
        iv)
  in
  Array.map (fun iv -> match Ivar.read iv with Ok v -> v | Error e -> raise e) ivs

(* Run [f] once on every worker domain (not per shard — with fewer
   domains than shards a per-shard fan-out would visit a domain twice).
   The span-collection path. *)
let on_domains t f =
  let ivs =
    Array.mapi
      (fun w _ ->
        let iv = Ivar.create () in
        let env =
          {
            run = (fun () -> Ivar.fill iv (match f () with v -> Ok v | exception e -> Error e));
            enq_ns = Timer.now_ns ();
            carrier = None;
            label = "domain";
            shard = -1;
          }
        in
        post t w env;
        iv)
      t.mailboxes
  in
  Array.map (fun iv -> match Ivar.read iv with Ok v -> v | Error e -> raise e) ivs

(* ----- construction ----- *)

let offsets_of_engines engines =
  let offsets = Array.make (Array.length engines) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i e ->
      offsets.(i) <- !acc;
      acc := !acc + Engine.m e)
    engines;
  (offsets, !acc)

let resolve_domains ~shards = function
  | None -> shards
  | Some d ->
    if d < 1 then invalid_arg "Cluster: need at least one domain";
    min d shards

let assemble ~engines ~registries ~owner ~domains ~mailbox_capacity ~directory =
  let offsets, m = offsets_of_engines engines in
  let mailboxes = Array.init domains (fun _ -> Mailbox.create ~capacity:mailbox_capacity) in
  let workers =
    Array.mapi (fun w mb -> Domain.spawn (fun () -> worker_loop w registries.(w) mb)) mailboxes
  in
  let send_block =
    Array.init domains (fun w ->
        Metrics.histogram
          ~labels:[ ("domain", string_of_int w) ]
          ~help:"Seconds a sender blocked on a full mailbox (backpressure)"
          "rebal_mailbox_send_block_seconds")
  in
  let reply_wait =
    Array.init (Array.length engines) (fun s ->
        Metrics.histogram
          ~labels:[ ("shard", string_of_int s) ]
          ~help:"Seconds a caller parked on a reply cell waiting for the owner domain"
          "rebal_reply_wait_seconds")
  in
  {
    engines;
    offsets;
    m;
    ring = Shard.make_ring (Array.length engines);
    owner;
    mailboxes;
    workers;
    registries;
    send_block;
    reply_wait;
    dir_mu = Mutex.create ();
    dir_settled = Condition.create ();
    directory;
    inter_moves = 0;
    stopped = false;
  }

let create ?trigger ?clock ?journal_for ?(mailbox_capacity = 1024) ?domains ~m ~shards () =
  if shards < 1 then invalid_arg "Cluster.create: need at least one shard";
  if m < shards then invalid_arg "Cluster.create: need at least one processor per shard";
  if mailbox_capacity < 1 then invalid_arg "Cluster.create: need a positive mailbox capacity";
  let domains = resolve_domains ~shards domains in
  let registries = Array.init domains (fun _ -> Metrics.Registry.create ()) in
  let owner = Array.init shards (fun i -> i mod domains) in
  let engines =
    Array.init shards (fun i ->
        let m_i = (m / shards) + if i < m mod shards then 1 else 0 in
        (* Bind the engine's metric handles — and anything the journal
           factory binds, e.g. a resilient sink's drop counter — in the
           owner's registry, so only that worker domain mutates them. *)
        Metrics.Registry.with_registry registries.(owner.(i)) (fun () ->
            let journal = match journal_for with None -> None | Some f -> f i in
            Engine.create ?trigger ?clock ?journal ~m:m_i ()))
  in
  assemble ~engines ~registries ~owner ~domains ~mailbox_capacity ~directory:(Hashtbl.create 256)

let of_engines ?(mailbox_capacity = 1024) ?domains ~shards build =
  if shards < 1 then Error "Cluster.of_engines: need at least one engine"
  else if mailbox_capacity < 1 then Error "Cluster.of_engines: need a positive mailbox capacity"
  else begin
    let domains = resolve_domains ~shards domains in
    let registries = Array.init domains (fun _ -> Metrics.Registry.create ()) in
    let owner = Array.init shards (fun i -> i mod domains) in
    let engines =
      Array.init shards (fun i ->
          Metrics.Registry.with_registry registries.(owner.(i)) (fun () -> build i))
    in
    let directory = Hashtbl.create 256 in
    let exception Dup of string in
    match
      Array.iteri
        (fun i e ->
          Engine.fold_jobs e
            (fun () ~id ~size:_ ~proc:_ ->
              if Hashtbl.mem directory id then raise (Dup id);
              Hashtbl.replace directory id (Resident i))
            ())
        engines
    with
    | () -> Ok (assemble ~engines ~registries ~owner ~domains ~mailbox_capacity ~directory)
    | exception Dup id -> Error (pf "Cluster.of_engines: job %s lives in two shards" id)
  end

(* ----- simple accessors ----- *)

let shard_count t = Array.length t.engines
let domain_count t = Array.length t.workers
let m t = t.m
let offset t i = t.offsets.(i)
let global t i p = t.offsets.(i) + p

let translate t i moves =
  List.map (fun mv -> { mv with src = global t i mv.src; dst = global t i mv.dst }) moves

let with_dir t f =
  Mutex.lock t.dir_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.dir_mu) f

(* Under [dir_mu]: wait until [id] is in no transient state; the shard
   it settled on, if any. *)
let rec settled t id =
  if t.stopped then raise Shut_down;
  match Hashtbl.find_opt t.directory id with
  | None -> None
  | Some (Resident s) -> Some s
  | Some (Pending _ | Busy _ | Moving _) ->
    Condition.wait t.dir_settled t.dir_mu;
    settled t id

let job_count t = with_dir t (fun () -> Hashtbl.length t.directory)

let mem t id =
  try with_dir t (fun () -> settled t id) <> None with Shut_down -> false

let shard_of t id =
  try with_dir t (fun () -> settled t id) with Shut_down -> None

let route t id = Shard.ring_lookup t.ring (Shard.hash32 id)
let home_shard t id = match shard_of t id with Some s -> s | None -> route t id

(* Commit a settled state for [id] and wake every waiter. *)
let settle t id state =
  with_dir t (fun () ->
      (match state with
      | None -> Hashtbl.remove t.directory id
      | Some st -> Hashtbl.replace t.directory id st);
      Condition.broadcast t.dir_settled)

(* Run the engine half of an op whose id is reserved; on any exception
   (worker failure, shutdown mid-flight) roll the reservation back to
   [restore] so waiters are not stranded on a ghost reservation. *)
let run_reserved ?label t ~id ~restore s f =
  match run ?label t s f with
  | r -> r
  | exception e ->
    settle t id restore;
    raise e

(* ----- the operations ----- *)

let add_job t ~id ~size =
  try
    let reserved =
      with_dir t (fun () ->
          match settled t id with
          | Some _ -> Error (pf "job %s already present" id)
          | None ->
            let s = route t id in
            Hashtbl.replace t.directory id (Pending s);
            Ok s)
    in
    match reserved with
    | Error _ as e -> e
    | Ok s -> (
      let res = run_reserved ~label:"add" t ~id ~restore:None s (fun e -> Engine.add_job e ~id ~size) in
      settle t id (match res with Ok _ -> Some (Resident s) | Error _ -> None);
      match res with
      | Error _ as e -> e
      | Ok (p, moves) -> Ok (global t s p, translate t s moves))
  with Shut_down -> Error "cluster is shut down"

let remove_job t ~id =
  try
    let reserved =
      with_dir t (fun () ->
          match settled t id with
          | None -> Error (pf "job %s not found" id)
          | Some s ->
            Hashtbl.replace t.directory id (Busy s);
            Ok s)
    in
    match reserved with
    | Error _ as e -> e
    | Ok s -> (
      let res =
        run_reserved ~label:"remove" t ~id ~restore:(Some (Resident s)) s (fun e ->
            Engine.remove_job e ~id)
      in
      settle t id (match res with Ok _ -> None | Error _ -> Some (Resident s));
      match res with
      | Error _ as e -> e
      | Ok (p, moves) -> Ok (global t s p, translate t s moves))
  with Shut_down -> Error "cluster is shut down"

let resize_job t ~id ~size =
  try
    let reserved =
      with_dir t (fun () ->
          match settled t id with
          | None -> Error (pf "job %s not found" id)
          | Some s ->
            Hashtbl.replace t.directory id (Busy s);
            Ok s)
    in
    match reserved with
    | Error _ as e -> e
    | Ok s -> (
      let res =
        run_reserved ~label:"resize" t ~id ~restore:(Some (Resident s)) s (fun e ->
            Engine.resize_job e ~id ~size)
      in
      settle t id (Some (Resident s));
      match res with
      | Error _ as e -> e
      | Ok (p, moves) -> Ok (global t s p, translate t s moves))
  with Shut_down -> Error "cluster is shut down"

(* ----- batched application ----- *)

let op_id = function
  | Engine.Add { id; _ } | Engine.Remove { id } | Engine.Resize { id; _ } -> id

(* One batch of events, routed and dispatched as per-shard sub-batches:
   each involved shard gets a single mailbox task that runs
   [Engine.apply_bulk] over its share — one dispatch, one journal flush
   per shard per chunk — while distinct shards execute in parallel.
   Results are delivered to [on_result] in batch order.

   The batch is processed in chunks. A chunk ends where per-id ordering
   or deadlock-freedom demands a barrier: at a duplicate id (the second
   op must observe the first's effect), or at an id another client
   currently holds reserved. Only the first op of a chunk may *wait*
   for a reservation; later ops are probed non-blockingly — so this
   call never waits while holding reservations of its own, and two
   concurrent batches over overlapping ids chunk around each other
   instead of deadlocking. *)
let apply_bulk t ?on_result ops =
  let n = Array.length ops in
  let results = if on_result = None then [||] else Array.make n (Error "") in
  let record i r = if on_result <> None then results.(i) <- r in
  let emit lo hi =
    match on_result with
    | None -> ()
    | Some f ->
      for i = lo to hi - 1 do
        f i ops.(i) results.(i)
      done
  in
  let shut_down = Error "cluster is shut down" in
  let lo = ref 0 in
  while !lo < n do
    let chunk_lo = !lo in
    (* Reservation phase: claim ids until a barrier. [shard_for.(j)] is
       the shard op [chunk_lo + j] was reserved on, -1 when the op
       failed validation (already present / not found / shut down) and
       must not be dispatched. *)
    let seen = Hashtbl.create 64 in
    let shard_for = Array.make (n - chunk_lo) (-1) in
    let hi = ref chunk_lo in
    (try
       while !hi < n do
         let i = !hi in
         let id = op_id ops.(i) in
         if Hashtbl.mem seen id then raise Exit;
         let reserve () =
           match ops.(i) with
           | Engine.Add _ -> begin
             match settled t id with
             | Some _ ->
               record i (Error (pf "job %s already present" id));
               Some (-1)
             | None ->
               let s = route t id in
               Hashtbl.replace t.directory id (Pending s);
               Some s
           end
           | Engine.Remove _ | Engine.Resize _ -> begin
             match settled t id with
             | None ->
               record i (Error (pf "job %s not found" id));
               Some (-1)
             | Some s ->
               Hashtbl.replace t.directory id (Busy s);
               Some s
           end
         in
         (* First op of the chunk: wait out any foreign reservation
            (we hold none of our own yet). Later ops: probe without
            blocking — a busy id just ends the chunk. *)
         let reserved =
           with_dir t (fun () ->
               if i = chunk_lo then reserve ()
               else if t.stopped then raise Shut_down
               else
                 match Hashtbl.find_opt t.directory id with
                 | Some (Pending _ | Busy _ | Moving _) -> None
                 | Some (Resident _) | None -> reserve ())
         in
         match reserved with
         | None -> raise Exit
         | Some s ->
           shard_for.(i - chunk_lo) <- s;
           Hashtbl.add seen id ();
           incr hi
       done
     with
    | Exit -> ()
    | Shut_down ->
      for i = !hi to n - 1 do
        record i shut_down
      done;
      hi := n);
    (* The first op of a chunk always makes progress: it is either
       reserved or its validation failure is recorded before any Exit. *)
    let chunk_hi = max !hi (chunk_lo + 1) in
    (* Dispatch phase: one [Engine.apply_bulk] task per involved shard.
       All tasks are enqueued before any reply is awaited, so distinct
       shards overlap. *)
    let module M = Map.Make (Int) in
    let by_shard = ref M.empty in
    for i = chunk_lo to chunk_hi - 1 do
      let s = shard_for.(i - chunk_lo) in
      if s >= 0 then
        by_shard :=
          M.update s (function None -> Some [ i ] | Some l -> Some (i :: l)) !by_shard
    done;
    let tasks =
      M.fold
        (fun s rev_idx acc ->
          let idx = Array.of_list (List.rev rev_idx) in
          let sub = Array.map (fun i -> ops.(i)) idx in
          let sub_results = Array.make (Array.length sub) (Error "") in
          let iv = Ivar.create () in
          let env =
            {
              run =
                (fun () ->
                  Ivar.fill iv
                    (match
                       Engine.apply_bulk t.engines.(s)
                         ~on_result:(fun j _ r -> sub_results.(j) <- r)
                         sub
                     with
                    | () -> Ok ()
                    | exception e -> Error e));
              enq_ns = Timer.now_ns ();
              carrier = Optrace.current_carrier ();
              label = "apply_bulk";
              shard = s;
            }
          in
          match post t t.owner.(s) env with
          | () -> (s, idx, sub_results, Some iv) :: acc
          | exception Shut_down -> (s, idx, sub_results, None) :: acc)
        !by_shard []
    in
    (* Collect, translate to global processor indices, and settle every
       reservation — success or failure, no id is left in a transient
       state. *)
    let failure = ref None in
    List.iter
      (fun (s, idx, sub_results, iv) ->
        let outcome =
          match iv with
          | None -> Error Shut_down
          | Some iv -> ( match Ivar.read iv with Ok () -> Ok () | Error e -> Error e)
        in
        Array.iteri
          (fun j i ->
            let rolled_back, res =
              match outcome with
              | Ok () -> begin
                match sub_results.(j) with
                | Ok (p, moves) -> (false, Ok (global t s p, translate t s moves))
                | Error _ as e -> (true, e)
              end
              | Error e ->
                if !failure = None then failure := Some e;
                (true, shut_down)
            in
            let state =
              match (ops.(i), rolled_back) with
              | Engine.Add _, false -> Some (Resident s)
              | Engine.Add _, true -> None
              | Engine.Remove _, false -> None
              | Engine.Remove _, true -> Some (Resident s)
              | Engine.Resize _, _ -> Some (Resident s)
            in
            settle t (op_id ops.(i)) state;
            record i res)
          idx)
      tasks;
    emit chunk_lo chunk_hi;
    (match !failure with
    | Some Shut_down | None -> ()
    | Some e -> raise e);
    lo := chunk_hi
  done

let find t id =
  try
    match with_dir t (fun () -> settled t id) with
    | None -> None
    | Some s -> (
      match run ~label:"find" t s (fun e -> Engine.find e id) with
      | None -> None
      | Some (size, p) -> Some (size, global t s p))
  with Shut_down -> None

(* The two-phase cross-shard transfer — the only cross-shard write
   path, and deliberately stop-the-world-free. Phase 0 reserves the id
   as [Moving] (concurrent ops on it park; everything else proceeds).
   Phase 1 lifts it off [src] through the ordinary journaled remove;
   phase 2 lands it on [dst] through the ordinary journaled add; then
   the directory commits to [dst]. Each half is a plain single-shard
   event on that shard's own journal, so every per-shard journal stays
   individually replayable — replay never needs to order one shard's
   events against another's. If phase 2 fails (or [on_removed], the
   crash-injection hook for tests, raises between the phases), the job
   is re-added to [src] through the same journaled path and the
   reservation rolls back — again an ordinary event on src's journal. *)
let move ?(on_removed = fun () -> ()) t ~id ~dst =
  if dst < 0 || dst >= shard_count t then Error (pf "Cluster.move: no such shard %d" dst)
  else
    (* The whole transfer is one span on the session thread; the two
       engine halves become [shard.move.remove] / [shard.move.add]
       child spans on their owner domains (via the mailbox carrier),
       and the directory steps bracket them — so a traced cross-shard
       move reads session → mailbox → remove → add → commit. *)
    Optrace.with_span ~attrs:[ ("id", id); ("dst", string_of_int dst) ] "move"
    @@ fun () ->
    try
      let reserved =
        Optrace.with_span "move.reserve" @@ fun () ->
        with_dir t (fun () ->
            match settled t id with
            | None -> Error (pf "job %s not found" id)
            | Some src when src = dst -> Ok None
            | Some src ->
              Hashtbl.replace t.directory id (Moving { src; dst });
              Ok (Some src))
      in
      match reserved with
      | Error _ as e -> e
      | Ok None -> Ok [] (* already resident on [dst] *)
      | Ok (Some src) -> (
        (* Phase 1: size lookup + remove, atomically on src's owner. *)
        let lifted =
          run_reserved ~label:"move.remove" t ~id ~restore:(Some (Resident src)) src (fun e ->
              match Engine.find e id with
              | None -> Error (pf "job %s missing from shard %d" id src)
              | Some (size, _) -> (
                match Engine.remove_job e ~id with
                | Error _ as err -> err
                | Ok (p, auto) -> Ok (size, p, auto)))
        in
        match lifted with
        | Error e ->
          settle t id (Some (Resident src));
          Error e
        | Ok (size, psrc, auto_src) -> (
          (* Phase 2: land on dst. The hook fires at the crash point
             between the two halves. *)
          let landed =
            match
              on_removed ();
              run ~label:"move.add" t dst (fun e -> Engine.add_job e ~id ~size)
            with
            | r -> r
            | exception e -> Error (Printexc.to_string e)
          in
          match landed with
          | Ok (pdst, auto_dst) ->
            Optrace.with_span "move.commit" (fun () ->
                with_dir t (fun () ->
                    Hashtbl.replace t.directory id (Resident dst);
                    t.inter_moves <- t.inter_moves + 1;
                    Condition.broadcast t.dir_settled));
            Ok
              (translate t src auto_src
              @ ({ id; src = global t src psrc; dst = global t dst pdst }
                :: translate t dst auto_dst))
          | Error err -> (
            (* Roll back: re-add on src through the ordinary journaled
               path (placement there may differ from the original
               processor — that is fine, the journal records what
               actually happened). *)
            match run ~label:"move.rollback" t src (fun e -> Engine.add_job e ~id ~size) with
            | Ok _ ->
              settle t id (Some (Resident src));
              Error (pf "move of %s rolled back: %s" id err)
            | Error e2 ->
              settle t id None;
              Error (pf "move of %s failed (%s) and rollback failed (%s): job dropped" id err e2)
            | exception e2 ->
              settle t id None;
              raise e2)))
    with Shut_down -> Error "cluster is shut down"

(* Same shape as [Shard.rebalance]: every shard's own bounded GREEDY
   repair first — here genuinely in parallel, shards are independent —
   then up to [k] cross-shard transfers, each picked from a fresh
   synchronous probe of all shards (globally heaviest liftable job to
   the shard holding the least-loaded processor, only when it lands
   below the current peak) and executed as a two-phase [move]. On a
   quiescent cluster the probe loop makes the same decisions, in the
   same order, as the sequential router's [inter_pass]. A transfer
   beaten by a concurrent client op (the job vanished or moved) is
   skipped, not fatal; the next iteration re-probes. *)
let rebalance t ~k =
  if k < 0 then invalid_arg "Cluster.rebalance: negative k";
  try
    let internal =
      run_all ~label:"rebalance" t (fun s e -> translate t s (Engine.rebalance e ~k))
      |> Array.to_list
      |> List.concat
    in
    let inter = ref [] in
    (try
       for _ = 1 to k do
         let probes =
           run_all ~label:"probe" t (fun _ e ->
               (Engine.makespan e, Engine.peek_heaviest e, Engine.min_load e))
         in
         let ms i = let m, _, _ = probes.(i) in m in
         let a = ref (-1) in
         Array.iteri (fun i _ -> if !a < 0 || ms i > ms !a then a := i) probes;
         let a = !a in
         let lmax = ms a in
         if lmax = 0 then raise Exit;
         match (let _, h, _ = probes.(a) in h) with
         | None -> raise Exit
         | Some (id, size, _) ->
           let b = ref (-1) and best = ref max_int in
           Array.iteri
             (fun i (_, _, (_, l)) ->
               if i <> a && l < !best then begin
                 b := i;
                 best := l
               end)
             probes;
           if !b < 0 then raise Exit;
           if !best + size >= lmax then raise Exit;
           (match move t ~id ~dst:!b with
           | Ok mvs -> inter := List.rev_append mvs !inter
           | Error _ -> () (* lost to a concurrent op; re-probe *))
       done
     with Exit -> ());
    internal @ List.rev !inter
  with Shut_down -> []

(* ----- inspection ----- *)

let makespan t =
  try Array.fold_left max 0 (run_all ~label:"makespan" t (fun _ e -> Engine.makespan e))
  with Shut_down -> 0

let loads t =
  let out = Array.make t.m 0 in
  let per_shard = run_all ~label:"loads" t (fun _ e -> Engine.loads e) in
  Array.iteri (fun i l -> Array.blit l 0 out t.offsets.(i) (Array.length l)) per_shard;
  out

let stats t =
  let agg = run_all ~label:"stats" t (fun _ e -> (Engine.stats e, Engine.max_job_size e)) in
  let sum f = Array.fold_left (fun acc (s, _) -> acc + f s) 0 agg in
  let makespan = Array.fold_left (fun acc (s, _) -> max acc s.Engine.makespan) 0 agg in
  let max_job_size = Array.fold_left (fun acc (_, mx) -> max acc mx) 0 agg in
  let total_size = sum (fun s -> s.Engine.total_size) in
  let imbalance =
    if total_size = 0 then 1.0
    else begin
      let bound =
        Float.max (float_of_int total_size /. float_of_int t.m) (float_of_int max_job_size)
      in
      float_of_int makespan /. bound
    end
  in
  let jobs, inter_moves = with_dir t (fun () -> (Hashtbl.length t.directory, t.inter_moves)) in
  {
    Shard.shards = shard_count t;
    jobs;
    procs = t.m;
    makespan;
    total_size;
    imbalance;
    events = sum (fun s -> s.Engine.events);
    adds = sum (fun s -> s.Engine.adds);
    removes = sum (fun s -> s.Engine.removes);
    resizes = sum (fun s -> s.Engine.resizes);
    rebalances = sum (fun s -> s.Engine.rebalances);
    auto_rebalances = sum (fun s -> s.Engine.auto_rebalances);
    trigger_firings = sum (fun s -> s.Engine.trigger_firings);
    moved = sum (fun s -> s.Engine.moved);
    inter_moves;
    consistency_checks = sum (fun s -> s.Engine.consistency_checks);
    consistency_failures = sum (fun s -> s.Engine.consistency_failures);
  }

let shard_stats t = run_all ~label:"stats" t (fun _ e -> Engine.stats e)

let check_consistency t ~k =
  let ids =
    run_all ~label:"check" t (fun _ e ->
        Engine.fold_jobs e (fun acc ~id ~size:_ ~proc:_ -> id :: acc) [])
  in
  let resident = Hashtbl.create 256 in
  Array.iteri (fun s l -> List.iter (fun id -> Hashtbl.replace resident id s) l) ids;
  let directory_ok =
    with_dir t (fun () ->
        Hashtbl.length t.directory = Hashtbl.length resident
        && Hashtbl.fold
             (fun id st acc ->
               acc
               &&
               match st with
               | Resident s -> Hashtbl.find_opt resident id = Some s
               | Pending _ | Busy _ | Moving _ -> false)
             t.directory true)
  in
  directory_ok
  && Array.for_all Fun.id (run_all ~label:"check" t (fun _ e -> Engine.check_consistency e ~k))

let journal_snapshot t =
  try
    let attached = run_all ~label:"snapshot" t (fun _ e -> Engine.journal e <> None) in
    let missing = ref [] in
    Array.iteri (fun i a -> if not a then missing := i :: !missing) attached;
    match !missing with
    | _ :: _ ->
      Error
        (pf "no journal attached to shard %s"
           (String.concat ", " (List.rev_map string_of_int !missing)))
    | [] ->
      let seqs = run_all ~label:"snapshot" t (fun _ e -> Engine.journal_snapshot e) in
      Ok
        (Array.to_list
           (Array.mapi
              (fun i seq ->
                match seq with
                | Ok seq -> (i, seq)
                | Error e -> failwith ("Cluster.journal_snapshot: " ^ e))
              seqs))
  with Shut_down -> Error "cluster is shut down"

let query t s f =
  if s < 0 || s >= shard_count t then invalid_arg "Cluster.query: no such shard";
  run ~label:"query" t s f

let recorded_spans t =
  Array.to_list (on_domains t Optrace.recorded) |> List.concat

let merge_metrics t ~into = Array.iter (fun reg -> Metrics.merge ~into reg) t.registries

(* ----- shutdown ----- *)

let shutdown t =
  let first =
    with_dir t (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          (* Wake clients parked in [settled]; they observe [stopped]
             and fail their op with "cluster is shut down". *)
          Condition.broadcast t.dir_settled;
          true
        end)
  in
  if first then begin
    (* Workers drain every accepted task, then exit — in-flight ops
       still get their replies before the domains are joined. *)
    Array.iter Mailbox.close t.mailboxes;
    Array.iter Domain.join t.workers
  end

let engine t i =
  if i < 0 || i >= shard_count t then invalid_arg "Cluster.engine: no such shard";
  t.engines.(i)
