(** The parallel cluster: the shard router scaled across OCaml 5
    domains. Each shard's engine runs confined to one worker domain
    behind a bounded MPSC command {!Mailbox}; client threads submit
    closures and park on a reply cell, so every operation is
    synchronous at the call site while independent shards execute
    genuinely in parallel.

    {b Ownership and confinement.} Shard [i] is owned by worker domain
    [i mod domains]. All of a shard's engine work — state mutation,
    journal writes, metric-handle updates — runs on its owner, in
    mailbox order. That single-writer discipline is what lets the
    engines, their journal sinks and their per-domain metric
    registries stay completely unsynchronized: the only locks in the
    system are the mailboxes and the residency directory. With
    [domains = shards] (the default) this is domain-per-shard; with
    fewer domains, shards are multiplexed round-robin.

    {b The directory.} Job residency lives in one mutex-guarded
    directory. Every mutating operation {e reserves} its id there
    before touching an engine and settles it afterwards; operations
    arriving while an id is reserved wait. That per-id reservation is
    the only cross-shard synchronization point — there is no global
    stop-the-world, and shards never wait on each other.

    {b Two-phase moves.} Cross-shard transfers ({!move}, and
    {!rebalance}'s inter-shard pass) reserve the id, lift it off the
    source through the ordinary journaled remove, land it on the
    destination through the ordinary journaled add, then commit the
    directory. Each half is a plain single-shard event on that shard's
    own journal, so {b every per-shard journal stays individually
    replayable} — [Replay.resume] works per shard, unchanged. A failed
    second half rolls back by re-adding on the source (again an
    ordinary journaled event).

    {b Routing} uses the same consistent-hash ring as {!Shard}
    (unweighted), so a quiescent cluster places, repairs and reports
    bit-identically to the sequential router — the equivalence
    property the test suite checks for every domain count. *)

type move = Engine.move = {
  id : string;
  src : int;
  dst : int;
}

exception Shut_down
(** Raised by inspection entry points ({!query}, {!stats}, {!loads},
    {!shard_stats}, {!check_consistency}) called after {!shutdown}.
    The result-returning operations catch it and report
    ["cluster is shut down"] instead. *)

type t

val create :
  ?trigger:Engine.trigger ->
  ?clock:(unit -> float) ->
  ?journal_for:(int -> Rebal_obs.Journal.sink option) ->
  ?mailbox_capacity:int ->
  ?domains:int ->
  m:int ->
  shards:int ->
  unit ->
  t
(** [m] processors split over [shards] engines exactly as
    {!Shard.create} splits them, each engine bound (metric handles and
    all) to its owner domain's private registry. [domains] defaults to
    [shards] and is clamped to it; [mailbox_capacity] (default 1024)
    bounds each worker's command queue — senders block when it fills,
    which is the backpressure. Worker domains are spawned here; pair
    with {!shutdown}.
    @raise Invalid_argument on a non-positive domain or capacity
    count, [shards < 1] or [m < shards]. *)

val of_engines :
  ?mailbox_capacity:int ->
  ?domains:int ->
  shards:int ->
  (int -> Engine.t) ->
  (t, string) result
(** Assemble a cluster around restored engines — the restart path.
    [build i] is called once per shard, {e under the owner domain's
    registry}, so resumed engines bind their metric handles where only
    their worker writes (this is why the builder is a function, not an
    array). The residency directory is rebuilt from the engines' live
    jobs; [Error] if an id appears in two engines. *)

val shard_count : t -> int
val domain_count : t -> int

val m : t -> int
(** Total processors across all shards. *)

val offset : t -> int -> int
(** First global processor index owned by shard [i]. *)

val job_count : t -> int
val makespan : t -> int

val loads : t -> int array
(** Global load vector (length [m]), shard ranges concatenated. *)

val mem : t -> string -> bool
val shard_of : t -> string -> int option
val find : t -> string -> (int * int) option
(** [(size, global processor)]. Waits for any in-flight operation on
    the id to settle first. *)

val home_shard : t -> string -> int
(** Where [id] resides, or (for a new id) where the ring would route
    it. *)

val add_job : t -> id:string -> size:int -> (int * move list, string) result
(** Route by consistent hash, reserve, place greedily on the owner
    domain. Returns the global processor and any automatic-repair
    moves. Blocks while the shard's mailbox is full — backpressure,
    not failure. *)

val remove_job : t -> id:string -> (int * move list, string) result
val resize_job : t -> id:string -> size:int -> (int * move list, string) result

val apply_bulk :
  t ->
  ?on_result:(int -> Engine.op -> (int * move list, string) result -> unit) ->
  Engine.op array ->
  unit
(** Apply a batch of events, amortizing dispatch and journal flushing:
    the batch is routed into per-shard sub-batches and each involved
    shard runs one [Engine.apply_bulk] task on its owner domain —
    distinct shards execute in parallel, and each shard's journal is
    flushed once per sub-batch instead of once per event. Per-id
    semantics match the one-by-one operations: ids are reserved in the
    residency directory for the duration of their sub-batch, results
    (global processor indices, auto-repair moves, engine error
    strings) are identical, and [on_result] sees them in batch order.

    Ordering barriers are honored by chunking: a duplicate id inside
    the batch, or an id currently reserved by a concurrent client,
    ends the current chunk — later ops wait for the earlier effect
    rather than race it. Only the first op of a chunk ever blocks on a
    foreign reservation, so two concurrent batches over overlapping
    ids chunk around each other instead of deadlocking. After
    {!shutdown} every result is ["cluster is shut down"]. *)

val move : ?on_removed:(unit -> unit) -> t -> id:string -> dst:int -> (move list, string) result
(** Two-phase cross-shard transfer of one job (see the header). Moving
    a job to its current shard is a no-op ([Ok []]). [on_removed] is
    the crash-injection hook for tests: it fires after the journaled
    remove and before the journaled add; if it raises, the transfer
    rolls back (re-add on the source) and reports [Error]. *)

val rebalance : t -> k:int -> move list
(** Per-shard bounded GREEDY repair (budget [k] each, all shards in
    parallel), then up to [k] two-phase cross-shard transfers, each
    chosen from a fresh probe of every shard. Quiescent, this makes
    the same decisions in the same order as {!Shard.rebalance}; under
    concurrent traffic a transfer beaten by a client operation is
    skipped and the next iteration re-probes.
    @raise Invalid_argument if [k < 0]. *)

val stats : t -> Shard.stats
val shard_stats : t -> Engine.stats array

val check_consistency : t -> k:int -> bool
(** Directory integrity (every entry settled and resident exactly
    where its engine holds it) plus [Engine.check_consistency ~k] per
    shard. Meaningful on a quiescent cluster — in-flight reservations
    count as failures by design. *)

val journal_snapshot : t -> ((int * int) list, string) result
(** Emit a snapshot event into every shard's journal (on its owner
    domain); [(shard, event seq)] pairs. [Error] (emitting nothing) if
    any shard lacks a journal. *)

val query : t -> int -> (Engine.t -> 'a) -> 'a
(** Run a read-only closure on shard [i]'s engine, {e on its owner
    domain}, and wait for the answer — the safe way to inspect a live
    engine (e.g. its journal tail).
    @raise Shut_down after {!shutdown}. *)

val recorded_spans : t -> Rebal_obs.Optrace.span list
(** Every worker domain's recorded op spans (one collection task per
    {e domain}, not per shard), concatenated. The caller's own domain
    is not included — combine with [Optrace.recorded ()] for the full
    picture.
    @raise Shut_down after {!shutdown}. *)

val merge_metrics : t -> into:Rebal_obs.Metrics.Registry.t -> unit
(** Fold every worker domain's metrics registry into [into] — call at
    exposition time with a fresh registry (merging twice into the same
    registry double-counts). *)

val shutdown : t -> unit
(** Stop accepting work, drain every accepted task (in-flight
    operations still get replies), close the mailboxes and join the
    worker domains. Idempotent from one thread; afterwards operations
    report ["cluster is shut down"] and inspection raises
    {!Shut_down}. *)

val engine : t -> int -> Engine.t
(** Shard [i]'s backing engine, {e without} domain confinement — only
    safe once the cluster is {!shutdown} (the replay-audit path in
    tests and benches). For a live cluster use {!query}. *)
