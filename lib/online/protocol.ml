module Metrics = Rebal_obs.Metrics
module Expo = Rebal_obs.Expo
module Optrace = Rebal_obs.Optrace
module Timer = Rebal_harness.Timer

type command =
  | Add of { id : string; size : int }
  | Remove of string
  | Resize of { id : string; size : int }
  | Rebalance of int
  | Stats
  | Shards_info
  | Health
  | Snapshot_now
  | Metrics_dump
  | Journal_tail of int
  | Traces of int
  | Alerts_status
  | Tsdb_query of { selector : string; window_s : float }
  | Help
  | Quit
  | Shutdown

type verdict =
  | Continue
  | Close
  | Stop

type target =
  | Single of Engine.t
  | Cluster of Shard.t
  | Supervised of Supervisor.t
  | Parallel of Cluster.t

(* Read-only paths (stats, journals, snapshots, metrics) see a
   supervised cluster as the underlying router; only mutations and the
   health report go through the supervisor. *)
let as_cluster = function
  | Supervised sup -> Cluster (Supervisor.cluster sup)
  | t -> t

let pf = Printf.sprintf

let tokens line =
  String.split_on_char ' ' (String.trim line)
  |> List.filter (fun s -> s <> "")

let int_arg what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (pf "%s must be an integer, got %S" what s)

(* Validation is done here, at parse time, so an invalid request is a
   protocol error naming the offending line — it never reaches an
   engine. *)
let positive_arg what s =
  Result.bind (int_arg what s) (fun v ->
      if v > 0 then Ok v else Error (pf "%s must be positive, got %d" what v))

let non_negative_arg what s =
  Result.bind (int_arg what s) (fun v ->
      if v >= 0 then Ok v else Error (pf "%s must be non-negative, got %d" what v))

let parse line =
  match tokens line with
  | [] -> Ok None
  | word :: _ when String.length word > 0 && word.[0] = '#' -> Ok None
  | verb :: args -> begin
    match (String.uppercase_ascii verb, args) with
    | "ADD", [ id; size ] ->
      Result.map (fun size -> Some (Add { id; size })) (positive_arg "size" size)
    | "ADD", _ -> Error "usage: ADD <id> <size>"
    | "REMOVE", [ id ] -> Ok (Some (Remove id))
    | "REMOVE", _ -> Error "usage: REMOVE <id>"
    | "RESIZE", [ id; size ] ->
      Result.map (fun size -> Some (Resize { id; size })) (positive_arg "size" size)
    | "RESIZE", _ -> Error "usage: RESIZE <id> <size>"
    | "REBALANCE", [ k ] -> Result.map (fun k -> Some (Rebalance k)) (non_negative_arg "k" k)
    | "REBALANCE", [] -> Ok (Some (Rebalance max_int))
    | "REBALANCE", _ -> Error "usage: REBALANCE [<k>]"
    | "STATS", [] -> Ok (Some Stats)
    | "SHARDS", [] -> Ok (Some Shards_info)
    | "SHARDS", _ -> Error "usage: SHARDS"
    | "HEALTH", [] -> Ok (Some Health)
    | "HEALTH", _ -> Error "usage: HEALTH"
    | "SNAPSHOT", [] -> Ok (Some Snapshot_now)
    | "SNAPSHOT", _ -> Error "usage: SNAPSHOT"
    | "METRICS", [] -> Ok (Some Metrics_dump)
    | "METRICS", _ -> Error "usage: METRICS"
    | "JOURNAL", [] -> Ok (Some (Journal_tail 10))
    | "JOURNAL", [ n ] -> Result.map (fun n -> Some (Journal_tail n)) (non_negative_arg "n" n)
    | "JOURNAL", _ -> Error "usage: JOURNAL [<n>]"
    | "TRACES", [] -> Ok (Some (Traces 10))
    | "TRACES", [ n ] -> Result.map (fun n -> Some (Traces n)) (positive_arg "n" n)
    | "TRACES", _ -> Error "usage: TRACES [<n>]"
    | "ALERTS", [] -> Ok (Some Alerts_status)
    | "ALERTS", _ -> Error "usage: ALERTS"
    | "TSDB", [ selector ] -> Ok (Some (Tsdb_query { selector; window_s = 60. }))
    | "TSDB", [ selector; window ] ->
      Result.map
        (fun window_s -> Some (Tsdb_query { selector; window_s }))
        (Rebal_obs.Tsdb.parse_duration window)
    | "TSDB", _ -> Error "usage: TSDB <series> [<window>]"
    | "HELP", [] -> Ok (Some Help)
    | "QUIT", [] | "EXIT", [] -> Ok (Some Quit)
    | "SHUTDOWN", [] -> Ok (Some Shutdown)
    | v, _ -> Error (pf "unknown command %S (try HELP)" v)
  end

(* ----- dispatch over the two serving shapes ----- *)

let makespan = function
  | Single e -> Engine.makespan e
  | Cluster s -> Shard.makespan s
  | Supervised sup -> Shard.makespan (Supervisor.cluster sup)
  | Parallel c -> Cluster.makespan c

let add_job t ~id ~size =
  match t with
  | Single e -> Engine.add_job e ~id ~size
  | Cluster s -> Shard.add_job s ~id ~size
  | Supervised sup -> Supervisor.add_job sup ~id ~size
  | Parallel c -> Cluster.add_job c ~id ~size

let remove_job t ~id =
  match t with
  | Single e -> Engine.remove_job e ~id
  | Cluster s -> Shard.remove_job s ~id
  | Supervised sup -> Supervisor.remove_job sup ~id
  | Parallel c -> Cluster.remove_job c ~id

let resize_job t ~id ~size =
  match t with
  | Single e -> Engine.resize_job e ~id ~size
  | Cluster s -> Shard.resize_job s ~id ~size
  | Supervised sup -> Supervisor.resize_job sup ~id ~size
  | Parallel c -> Cluster.resize_job c ~id ~size

let rebalance t ~k =
  match t with
  | Single e -> Engine.rebalance e ~k
  | Cluster s -> Shard.rebalance s ~k
  | Supervised sup -> Supervisor.rebalance sup ~k
  | Parallel c -> Cluster.rebalance c ~k

let move_lines moves =
  List.map (fun mv -> pf "MOVE %s %d %d" mv.Engine.id mv.Engine.src mv.Engine.dst) moves

(* Automatic repairs fired by the engine's trigger policy ride along with
   the event acknowledgement that caused them. *)
let auto_lines t = function
  | [] -> []
  | moves ->
    move_lines moves
    @ [ pf "REBALANCED auto moves=%d makespan=%d" (List.length moves) (makespan t) ]

let help_lines =
  [
    "OK commands:";
    "OK   ADD <id> <size>      place a new job";
    "OK   REMOVE <id>          retire a job";
    "OK   RESIZE <id> <size>   change a job's size";
    "OK   REBALANCE [<k>]      repair pass with move budget k (default: unbounded)";
    "OK   STATS                engine telemetry";
    "OK   SHARDS               per-shard telemetry (sharded serve only)";
    "OK   HEALTH               per-shard health and failover counters (supervised serve only)";
    "OK   SNAPSHOT             write a state snapshot into the journal (compaction point)";
    "OK   METRICS              Prometheus text exposition, ends with '# EOF'";
    "OK   JOURNAL [<n>]        last n flight-recorder events (default 10), ends with '# EOF'";
    "OK   TRACES [<n>]         span trees of the last n slow ops (default 10), ends with '# EOF'";
    "OK   HELP                 this text";
    "OK   QUIT                 end this session";
    "OK   SHUTDOWN             stop the daemon";
  ]

let engine_stats_line s =
  pf
    "jobs=%d procs=%d makespan=%d total=%d imbalance=%.3f events=%d adds=%d \
     removes=%d resizes=%d rebalances=%d auto=%d auto_triggers=%d moved=%d \
     last_rebalance_moves=%d checks=%d failures=%d"
    s.Engine.jobs s.Engine.procs s.Engine.makespan s.Engine.total_size s.Engine.imbalance
    s.Engine.events s.Engine.adds s.Engine.removes s.Engine.resizes s.Engine.rebalances
    s.Engine.auto_rebalances s.Engine.trigger_firings s.Engine.moved
    s.Engine.last_rebalance_moves s.Engine.consistency_checks s.Engine.consistency_failures

let cluster_stats_line st =
  pf
    "STATS shards=%d jobs=%d procs=%d makespan=%d total=%d imbalance=%.3f events=%d \
     adds=%d removes=%d resizes=%d rebalances=%d auto=%d auto_triggers=%d moved=%d \
     inter_moves=%d checks=%d failures=%d"
    st.Shard.shards st.Shard.jobs st.Shard.procs st.Shard.makespan st.Shard.total_size
    st.Shard.imbalance st.Shard.events st.Shard.adds st.Shard.removes st.Shard.resizes
    st.Shard.rebalances st.Shard.auto_rebalances st.Shard.trigger_firings st.Shard.moved
    st.Shard.inter_moves st.Shard.consistency_checks st.Shard.consistency_failures

(* The supervised STATS line is the cluster line with health fields
   appended — consumers matching on the existing prefix keep working. *)
let stats_line = function
  | Single e -> "STATS " ^ engine_stats_line (Engine.stats e)
  | Cluster s -> cluster_stats_line (Shard.stats s)
  | Parallel c -> cluster_stats_line (Cluster.stats c)
  | Supervised sup ->
    let h = Supervisor.stats sup in
    cluster_stats_line (Shard.stats (Supervisor.cluster sup))
    ^ pf
        " healthy=%d suspect=%d down=%d recovering=%d evacuations=%d evacuated=%d \
         stranded=%d readmissions=%d probe_failures=%d watchdog_trips=%d rejections=%d"
        h.Supervisor.healthy h.Supervisor.suspect h.Supervisor.down h.Supervisor.recovering
        h.Supervisor.evacuations h.Supervisor.evacuated_jobs h.Supervisor.stranded_jobs
        h.Supervisor.readmissions h.Supervisor.probe_failures h.Supervisor.watchdog_trips
        h.Supervisor.degraded_rejections

let shard_line ~offset i (st : Engine.stats) =
  pf "SHARD %d offset=%d procs=%d jobs=%d makespan=%d imbalance=%.3f" i offset
    st.Engine.procs st.Engine.jobs st.Engine.makespan st.Engine.imbalance

let shards_lines = function
  | Single _ -> [ "ERR not sharded (serve started without --shards)" ]
  | Cluster s ->
    Array.to_list
      (Array.mapi (fun i st -> shard_line ~offset:(Shard.offset s i) i st) (Shard.shard_stats s))
  | Parallel c ->
    Array.to_list
      (Array.mapi
         (fun i st -> shard_line ~offset:(Cluster.offset c i) i st)
         (Cluster.shard_stats c))
  | Supervised sup ->
    (* Same SHARD lines, with health and routing weight appended. *)
    let s = Supervisor.cluster sup in
    Array.to_list
      (Array.mapi
         (fun i st ->
           shard_line ~offset:(Shard.offset s i) i st
           ^ pf " health=%s weight=%.2f"
               (Supervisor.health_name (Supervisor.health sup i))
               (Shard.weight s i))
         (Shard.shard_stats s))

let health_lines = function
  | Single _ | Cluster _ | Parallel _ ->
    [ "ERR not supervised (serve started without --supervise)" ]
  | Supervised sup ->
    let h = Supervisor.stats sup in
    let s = Supervisor.cluster sup in
    pf
      "HEALTH shards=%d healthy=%d suspect=%d down=%d recovering=%d evacuations=%d \
       evacuated=%d stranded=%d readmissions=%d probe_failures=%d watchdog_trips=%d \
       rejections=%d"
      h.Supervisor.shards h.Supervisor.healthy h.Supervisor.suspect h.Supervisor.down
      h.Supervisor.recovering h.Supervisor.evacuations h.Supervisor.evacuated_jobs
      h.Supervisor.stranded_jobs h.Supervisor.readmissions h.Supervisor.probe_failures
      h.Supervisor.watchdog_trips h.Supervisor.degraded_rejections
    :: List.init (Supervisor.shard_count sup) (fun i ->
           pf "HEALTH %d %s weight=%.2f jobs=%d" i
             (Supervisor.health_name (Supervisor.health sup i))
             (Shard.weight s i)
             (Engine.job_count (Shard.engine s i)))

(* Engine counters live in the engine record, not the registry; METRICS
   exports them into the current registry right before rendering — the
   collector pattern, inlined, so replies always reflect live state. *)
let export_engine_stats ?(labels = []) (s : Engine.stats) =
  let gauge name help v = Metrics.Gauge.set (Metrics.gauge ~labels ~help name) v in
  let count name help v = Metrics.Counter.set (Metrics.counter ~labels ~help name) v in
  gauge "rebal_engine_jobs" "Live jobs" (float_of_int s.Engine.jobs);
  gauge "rebal_engine_procs" "Processors" (float_of_int s.Engine.procs);
  gauge "rebal_engine_makespan" "Current maximum processor load"
    (float_of_int s.Engine.makespan);
  gauge "rebal_engine_total_size" "Sum of live job sizes" (float_of_int s.Engine.total_size);
  gauge "rebal_engine_imbalance" "Makespan over the batch lower bound" s.Engine.imbalance;
  gauge "rebal_engine_last_rebalance_moves" "Jobs relocated by the most recent repair pass"
    (float_of_int s.Engine.last_rebalance_moves);
  count "rebal_engine_events_total" "Mutating events processed" s.Engine.events;
  count "rebal_engine_adds_total" "ADD events" s.Engine.adds;
  count "rebal_engine_removes_total" "REMOVE events" s.Engine.removes;
  count "rebal_engine_resizes_total" "RESIZE events" s.Engine.resizes;
  count "rebal_engine_rebalances_total" "Repair passes run" s.Engine.rebalances;
  count "rebal_engine_auto_rebalances_total" "Repair passes fired by the trigger"
    s.Engine.auto_rebalances;
  count "rebal_engine_trigger_firings_total" "Trigger policy firings" s.Engine.trigger_firings;
  count "rebal_engine_moved_total" "Jobs relocated by repair passes" s.Engine.moved;
  count "rebal_engine_consistency_checks_total" "Batch-consistency checks run"
    s.Engine.consistency_checks;
  count "rebal_engine_consistency_failures_total" "Batch-consistency checks that failed"
    s.Engine.consistency_failures

let export_metrics e = export_engine_stats (Engine.stats e)

let export_supervisor sup =
  let h = Supervisor.stats sup in
  let s = Supervisor.cluster sup in
  (* One 0/1 gauge per (shard, state) pair plus the routing weight, so
     dashboards can plot a health timeline without value decoding. *)
  for i = 0 to Supervisor.shard_count sup - 1 do
    let current = Supervisor.health_name (Supervisor.health sup i) in
    List.iter
      (fun state ->
        Metrics.Gauge.set
          (Metrics.gauge
             ~labels:[ ("shard", string_of_int i); ("state", state) ]
             ~help:"1 when the shard is in this health state" "rebal_shard_health")
          (if state = current then 1.0 else 0.0))
      [ "healthy"; "suspect"; "down"; "recovering" ];
    Metrics.Gauge.set
      (Metrics.gauge
         ~labels:[ ("shard", string_of_int i) ]
         ~help:"Routing weight (fraction of ring replicas active)" "rebal_shard_weight")
      (Shard.weight s i)
  done;
  let count name help v = Metrics.Counter.set (Metrics.counter ~help name) v in
  count "rebal_evacuations_total" "Down transitions that ran an evacuation" h.Supervisor.evacuations;
  count "rebal_evacuated_jobs_total" "Jobs re-homed off dead shards" h.Supervisor.evacuated_jobs;
  count "rebal_stranded_jobs_total" "Jobs left on dead shards by budget or lack of survivors"
    h.Supervisor.stranded_jobs;
  count "rebal_readmissions_total" "Shards readmitted after recovery" h.Supervisor.readmissions;
  count "rebal_probe_failures_total" "Failed liveness probes and failure reports"
    h.Supervisor.probe_failures;
  count "rebal_watchdog_trips_total" "Supervised operations that blew the deadline"
    h.Supervisor.watchdog_trips;
  count "rebal_degraded_rejections_total" "Operations refused because of a down shard"
    h.Supervisor.degraded_rejections

(* One labeled series per shard plus cluster-level aggregates; a
   sum() over the shard label reproduces the additive aggregates. *)
let export_sharded ~shard_stats ~(stats : Shard.stats) =
  Array.iteri
    (fun i st -> export_engine_stats ~labels:[ ("shard", string_of_int i) ] st)
    shard_stats;
  let st = stats in
  let gauge name help v = Metrics.Gauge.set (Metrics.gauge ~help name) v in
  gauge "rebal_cluster_shards" "Shards served" (float_of_int st.Shard.shards);
  gauge "rebal_cluster_jobs" "Live jobs across all shards" (float_of_int st.Shard.jobs);
  gauge "rebal_cluster_procs" "Processors across all shards" (float_of_int st.Shard.procs);
  gauge "rebal_cluster_makespan" "Global maximum processor load"
    (float_of_int st.Shard.makespan);
  gauge "rebal_cluster_imbalance" "Global makespan over the global batch lower bound"
    st.Shard.imbalance;
  Metrics.Counter.set
    (Metrics.counter ~help:"Cross-shard job transfers performed by rebalancing"
       "rebal_cluster_inter_moves_total")
    st.Shard.inter_moves

let rec export_target = function
  | Single e -> export_metrics e
  | Supervised sup ->
    export_target (as_cluster (Supervised sup));
    export_supervisor sup
  | Cluster s -> export_sharded ~shard_stats:(Shard.shard_stats s) ~stats:(Shard.stats s)
  | Parallel c ->
    export_sharded ~shard_stats:(Cluster.shard_stats c) ~stats:(Cluster.stats c);
    Metrics.Gauge.set
      (Metrics.gauge ~help:"Worker domains serving the shards" "rebal_cluster_domains")
      (float_of_int (Cluster.domain_count c))

let render_registry reg =
  let text = Expo.prometheus reg in
  let lines = String.split_on_char '\n' text in
  let lines = List.filter (fun l -> l <> "") lines in
  lines @ [ "# EOF" ]

let metrics_registry t =
  match t with
  | Parallel c ->
    (* The worker domains hold their own registries (handle mutation is
       confined to one domain); exposition builds a fresh registry each
       time — exported aggregates first, then every worker registry and
       the main domain's merged in. Fresh-per-reply matters: merge adds
       counters, so folding twice into a reused registry would double
       count. *)
    let export = Metrics.Registry.create () in
    Metrics.Registry.with_registry export (fun () -> export_target t);
    Cluster.merge_metrics c ~into:export;
    Metrics.merge ~into:export Metrics.Registry.default;
    export
  | _ ->
    export_target t;
    Metrics.Registry.current ()

let metrics_lines t = render_registry (metrics_registry t)
let metrics_text t = Expo.prometheus (metrics_registry t)

let engine_journal_tail i e n =
  match Engine.journal e with
  | None -> Error i
  | Some sink -> Ok (Rebal_obs.Journal.tail sink n)

let sharded_journal_lines parts =
  match List.find_opt Result.is_error parts with
  | Some (Error i) -> [ pf "ERR no journal attached to shard %d" i ]
  | _ ->
    List.concat
      (List.mapi
         (fun i part ->
           (pf "# shard %d" i) :: (match part with Ok lines -> lines | Error _ -> []))
         parts)
    @ [ "# EOF" ]

let journal_lines t n =
  match as_cluster t with
  | Supervised _ -> assert false (* as_cluster never returns Supervised *)
  | Single e -> begin
    match engine_journal_tail 0 e n with
    | Error _ -> [ "ERR no journal attached (start serve with --journal FILE)" ]
    | Ok lines -> lines @ [ "# EOF" ]
  end
  | Cluster s ->
    sharded_journal_lines
      (List.init (Shard.shard_count s) (fun i -> engine_journal_tail i (Shard.engine s i) n))
  | Parallel c ->
    (* Tails are read on each shard's owner domain — a journal sink is
       single-writer state, so the query fabric is the safe path in. *)
    sharded_journal_lines
      (List.init (Cluster.shard_count c) (fun i ->
           Cluster.query c i (fun e -> engine_journal_tail i e n)))

let sharded_snapshot_lines = function
  | Error e -> [ "ERR " ^ e ^ " (start serve with --journal FILE)" ]
  | Ok seqs -> List.map (fun (i, seq) -> pf "SNAPSHOTTED shard=%d seq=%d" i seq) seqs

let snapshot_lines t =
  match as_cluster t with
  | Supervised _ -> assert false (* as_cluster never returns Supervised *)
  | Single e -> begin
    match Engine.journal_snapshot e with
    | Error e -> [ "ERR " ^ e ^ " (start serve with --journal FILE)" ]
    | Ok seq -> [ pf "SNAPSHOTTED seq=%d" seq ]
  end
  | Cluster s -> sharded_snapshot_lines (Shard.journal_snapshot s)
  | Parallel c -> sharded_snapshot_lines (Cluster.journal_snapshot c)

(* TRACES: span trees for the last [n] slow ops, newest last. Spans
   come from the calling domain's ring plus (in parallel serve) every
   worker domain's — collected on the workers themselves, since rings
   are domain-private. An op that outlived its spans (ring eviction, or
   a slow-but-unsampled op whose children were never recorded) still
   shows its header and whatever survives; truncation is visible, not
   silent. *)
let last n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let traces_lines t n =
  match last n (Optrace.slow_ops ()) with
  | [] -> [ "# no slow ops captured"; "# EOF" ]
  | slow ->
    let worker_spans =
      match t with
      | Parallel c -> ( try Cluster.recorded_spans c with Cluster.Shut_down -> [])
      | _ -> []
    in
    let trees = Optrace.assemble (Optrace.recorded () @ worker_spans) in
    List.concat_map
      (fun (op : Optrace.slow_op) ->
        pf "# trace %d verb=%s duration=%s" op.Optrace.slow_trace op.Optrace.slow_verb
          (Optrace.render_duration op.Optrace.slow_duration_ns)
        ::
        (match Optrace.trees_for ~trace_id:op.Optrace.slow_trace trees with
        | [] -> [ "# spans evicted" ]
        | ts ->
          List.concat_map
            (fun tr ->
              String.split_on_char '\n' (Optrace.render_tree tr)
              |> List.filter (fun l -> l <> ""))
            ts))
      slow
    @ [ "# EOF" ]

(* The telemetry surfaces. The store and the rule engine are owned by
   the daemon's sampler loop, not by the protocol target, so the daemon
   registers them here (process-global, like the Optrace knobs); a
   serve without --telemetry-* leaves them unset and the verbs answer
   ERR without touching anything. *)
let telemetry : (Rebal_obs.Tsdb.t * Rebal_obs.Alerts.t option) option ref = ref None
let set_telemetry ?alerts tsdb = telemetry := Some (tsdb, alerts)
let clear_telemetry () = telemetry := None

let alerts_status_lines () =
  match !telemetry with
  | Some (_, Some alerts) -> Rebal_obs.Alerts.status_lines alerts @ [ "# EOF" ]
  | Some (_, None) -> [ "ERR no alert rules loaded (serve --alert-rules FILE)" ]
  | None -> [ "ERR telemetry not enabled (serve --telemetry-interval)" ]

let tsdb_query_lines ~selector ~window_s =
  match !telemetry with
  | None -> [ "ERR telemetry not enabled (serve --telemetry-interval)" ]
  | Some (tsdb, _) -> (
    match Rebal_obs.Tsdb.render_lines tsdb ~selector ~window_s with
    | Error e -> [ "ERR " ^ e ]
    | Ok lines -> lines @ [ "# EOF" ])

let execute t = function
  | Add { id; size } -> begin
    match add_job t ~id ~size with
    | Error e -> [ "ERR " ^ e ]
    | Ok (p, auto) -> pf "PLACED %s %d makespan=%d" id p (makespan t) :: auto_lines t auto
  end
  | Remove id -> begin
    match remove_job t ~id with
    | Error e -> [ "ERR " ^ e ]
    | Ok (p, auto) -> pf "REMOVED %s %d makespan=%d" id p (makespan t) :: auto_lines t auto
  end
  | Resize { id; size } -> begin
    match resize_job t ~id ~size with
    | Error e -> [ "ERR " ^ e ]
    | Ok (p, auto) -> pf "RESIZED %s %d makespan=%d" id p (makespan t) :: auto_lines t auto
  end
  | Rebalance k ->
    let moves = rebalance t ~k in
    move_lines moves
    @ [ pf "REBALANCED moves=%d makespan=%d" (List.length moves) (makespan t) ]
  | Stats -> [ stats_line t ]
  | Shards_info -> shards_lines t
  | Health -> health_lines t
  | Snapshot_now -> snapshot_lines t
  | Metrics_dump -> metrics_lines t
  | Journal_tail n -> journal_lines t n
  | Traces n -> traces_lines t n
  | Alerts_status -> alerts_status_lines ()
  | Tsdb_query { selector; window_s } -> tsdb_query_lines ~selector ~window_s
  | Help -> help_lines
  | Quit -> [ "BYE" ]
  | Shutdown -> [ "BYE" ]

let verb_name = function
  | Add _ -> "add"
  | Remove _ -> "remove"
  | Resize _ -> "resize"
  | Rebalance _ -> "rebalance"
  | Stats -> "stats"
  | Shards_info -> "shards"
  | Health -> "health"
  | Snapshot_now -> "snapshot"
  | Metrics_dump -> "metrics"
  | Journal_tail _ -> "journal"
  | Traces _ -> "traces"
  | Alerts_status -> "alerts"
  | Tsdb_query _ -> "tsdb"
  | Help -> "help"
  | Quit -> "quit"
  | Shutdown -> "shutdown"

let session_hist verb =
  (* Interning the handle per call is deliberate — sessions are
     systhreads sharing the control domain's registry, and
     [Metrics.histogram] returns the existing handle on
     re-registration. *)
  Metrics.histogram
    ~labels:[ ("verb", verb) ]
    ~help:"Protocol op service time at the session boundary (seconds)"
    "rebal_session_latency_seconds"

(* The op boundary: every parsed command opens a trace (subject to
   head sampling and tail capture) and lands one latency observation
   in the session histogram. *)
let run_command t cmd =
  let verb = verb_name cmd in
  let hist = session_hist verb in
  let t0 = Timer.now_ns () in
  let reply =
    Optrace.with_op ~verb:(String.uppercase_ascii verb) (fun () -> execute t cmd)
  in
  Metrics.Histogram.observe_ns hist (Int64.sub (Timer.now_ns ()) t0);
  reply

let verdict_of = function
  | Quit -> Close
  | Shutdown -> Stop
  | _ -> Continue

let handle_line ?line:lineno t line =
  match parse line with
  | Error e ->
    let where = match lineno with None -> "" | Some n -> pf "line %d: " n in
    ([ "ERR " ^ where ^ e ], Continue)
  | Ok None -> ([], Continue)
  | Ok (Some cmd) -> (run_command t cmd, verdict_of cmd)

(* ----- batched sessions ----- *)

let command_op = function
  | Add { id; size } -> Some (Engine.Add { id; size })
  | Remove id -> Some (Engine.Remove { id })
  | Resize { id; size } -> Some (Engine.Resize { id; size })
  | _ -> None

(* The reply for one batched mutation. [makespan t] is read inside the
   batch's [on_result] callback: on a [Single] engine that fires after
   each op and before the next, so the value is exactly the
   intermediate makespan the one-by-one path reports; on a [Parallel]
   cluster results surface when the op's chunk completes, so the value
   reflects the chunk — indistinguishable from the interleavings
   concurrent sessions already produce. *)
let bulk_reply t op result =
  match result with
  | Error e -> [ "ERR " ^ e ]
  | Ok (p, auto) ->
    let verb, id =
      match op with
      | Engine.Add { id; _ } -> ("PLACED", id)
      | Engine.Remove { id } -> ("REMOVED", id)
      | Engine.Resize { id; _ } -> ("RESIZED", id)
    in
    pf "%s %s %d makespan=%d" verb id p (makespan t) :: auto_lines t auto

let handle_lines ?(start_line = 1) t lines =
  let bulk_capable = match t with Single _ | Parallel _ -> true | _ -> false in
  let out = ref [] in
  let push ls = out := List.rev_append ls !out in
  let pending = ref [] in
  (* Apply the queued run of mutations. A run of one goes through
     [run_command] — byte- and metric-identical to the unbatched path;
     only a genuine pipeline (>= 2) pays the batch machinery, under one
     BATCH span and one batch-verb latency observation. *)
  let flush_pending () =
    match List.rev !pending with
    | [] -> ()
    | [ cmd ] ->
      pending := [];
      push (run_command t cmd)
    | cmds ->
      pending := [];
      let ops = Array.of_list (List.filter_map command_op cmds) in
      let on_result _ op r = push (bulk_reply t op r) in
      let hist = session_hist "batch" in
      let t0 = Timer.now_ns () in
      Optrace.with_op ~verb:"BATCH" (fun () ->
          match t with
          | Single e -> Engine.apply_bulk e ~on_result ops
          | Parallel c -> Cluster.apply_bulk c ~on_result ops
          | Cluster _ | Supervised _ -> assert false (* never queued *));
      Metrics.Histogram.observe_ns hist (Int64.sub (Timer.now_ns ()) t0)
  in
  let verdict = ref Continue in
  let rec go lineno = function
    | [] -> flush_pending ()
    | line :: rest -> begin
      match parse line with
      | Error e ->
        flush_pending ();
        push [ "ERR " ^ pf "line %d: " lineno ^ e ];
        go (lineno + 1) rest
      | Ok None -> go (lineno + 1) rest
      | Ok (Some cmd) when bulk_capable && command_op cmd <> None ->
        pending := cmd :: !pending;
        go (lineno + 1) rest
      | Ok (Some cmd) -> begin
        flush_pending ();
        push (run_command t cmd);
        match verdict_of cmd with
        | Continue -> go (lineno + 1) rest
        | v -> verdict := v (* drop anything pipelined after QUIT/SHUTDOWN *)
      end
    end
  in
  go start_line lines;
  (List.rev !out, !verdict)

let greeting = function
  | Single e ->
    pf "READY rebalance-serve procs=%d jobs=%d makespan=%d" (Engine.m e)
      (Engine.job_count e) (Engine.makespan e)
  | Cluster s ->
    pf "READY rebalance-serve shards=%d procs=%d jobs=%d makespan=%d" (Shard.shard_count s)
      (Shard.m s) (Shard.job_count s) (Shard.makespan s)
  | Supervised sup ->
    let s = Supervisor.cluster sup in
    pf "READY rebalance-serve shards=%d procs=%d jobs=%d makespan=%d serving=%d"
      (Shard.shard_count s) (Shard.m s) (Shard.job_count s) (Shard.makespan s)
      (Supervisor.serving_shards sup)
  | Parallel c ->
    pf "READY rebalance-serve shards=%d domains=%d procs=%d jobs=%d makespan=%d"
      (Cluster.shard_count c) (Cluster.domain_count c) (Cluster.m c) (Cluster.job_count c)
      (Cluster.makespan c)
