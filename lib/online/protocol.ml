module Metrics = Rebal_obs.Metrics
module Expo = Rebal_obs.Expo

type command =
  | Add of { id : string; size : int }
  | Remove of string
  | Resize of { id : string; size : int }
  | Rebalance of int
  | Stats
  | Metrics_dump
  | Journal_tail of int
  | Help
  | Quit
  | Shutdown

type verdict =
  | Continue
  | Close
  | Stop

let pf = Printf.sprintf

let tokens line =
  String.split_on_char ' ' (String.trim line)
  |> List.filter (fun s -> s <> "")

let int_arg what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (pf "%s must be an integer, got %S" what s)

let parse line =
  match tokens line with
  | [] -> Ok None
  | word :: _ when String.length word > 0 && word.[0] = '#' -> Ok None
  | verb :: args -> begin
    match (String.uppercase_ascii verb, args) with
    | "ADD", [ id; size ] ->
      Result.map (fun size -> Some (Add { id; size })) (int_arg "size" size)
    | "ADD", _ -> Error "usage: ADD <id> <size>"
    | "REMOVE", [ id ] -> Ok (Some (Remove id))
    | "REMOVE", _ -> Error "usage: REMOVE <id>"
    | "RESIZE", [ id; size ] ->
      Result.map (fun size -> Some (Resize { id; size })) (int_arg "size" size)
    | "RESIZE", _ -> Error "usage: RESIZE <id> <size>"
    | "REBALANCE", [ k ] -> Result.map (fun k -> Some (Rebalance k)) (int_arg "k" k)
    | "REBALANCE", [] -> Ok (Some (Rebalance max_int))
    | "REBALANCE", _ -> Error "usage: REBALANCE [<k>]"
    | "STATS", [] -> Ok (Some Stats)
    | "METRICS", [] -> Ok (Some Metrics_dump)
    | "METRICS", _ -> Error "usage: METRICS"
    | "JOURNAL", [] -> Ok (Some (Journal_tail 10))
    | "JOURNAL", [ n ] -> Result.map (fun n -> Some (Journal_tail n)) (int_arg "n" n)
    | "JOURNAL", _ -> Error "usage: JOURNAL [<n>]"
    | "HELP", [] -> Ok (Some Help)
    | "QUIT", [] | "EXIT", [] -> Ok (Some Quit)
    | "SHUTDOWN", [] -> Ok (Some Shutdown)
    | v, _ -> Error (pf "unknown command %S (try HELP)" v)
  end

let move_lines moves =
  List.map (fun mv -> pf "MOVE %s %d %d" mv.Engine.id mv.Engine.src mv.Engine.dst) moves

(* Automatic repairs fired by the engine's trigger policy ride along with
   the event acknowledgement that caused them. *)
let auto_lines t = function
  | [] -> []
  | moves ->
    move_lines moves
    @ [ pf "REBALANCED auto moves=%d makespan=%d" (List.length moves) (Engine.makespan t) ]

let help_lines =
  [
    "OK commands:";
    "OK   ADD <id> <size>      place a new job";
    "OK   REMOVE <id>          retire a job";
    "OK   RESIZE <id> <size>   change a job's size";
    "OK   REBALANCE [<k>]      repair pass with move budget k (default: unbounded)";
    "OK   STATS                engine telemetry";
    "OK   METRICS              Prometheus text exposition, ends with '# EOF'";
    "OK   JOURNAL [<n>]        last n flight-recorder events (default 10), ends with '# EOF'";
    "OK   HELP                 this text";
    "OK   QUIT                 end this session";
    "OK   SHUTDOWN             stop the daemon";
  ]

let stats_line t =
  let s = Engine.stats t in
  pf
    "STATS jobs=%d procs=%d makespan=%d total=%d imbalance=%.3f events=%d adds=%d \
     removes=%d resizes=%d rebalances=%d auto=%d auto_triggers=%d moved=%d \
     last_rebalance_moves=%d checks=%d failures=%d"
    s.Engine.jobs s.Engine.procs s.Engine.makespan s.Engine.total_size s.Engine.imbalance
    s.Engine.events s.Engine.adds s.Engine.removes s.Engine.resizes s.Engine.rebalances
    s.Engine.auto_rebalances s.Engine.trigger_firings s.Engine.moved
    s.Engine.last_rebalance_moves s.Engine.consistency_checks s.Engine.consistency_failures

(* Engine counters live in the engine record, not the registry; METRICS
   exports them into the current registry right before rendering — the
   collector pattern, inlined, so replies always reflect live state. *)
let export_metrics t =
  let s = Engine.stats t in
  let gauge name help v = Metrics.Gauge.set (Metrics.gauge ~help name) v in
  let count name help v = Metrics.Counter.set (Metrics.counter ~help name) v in
  gauge "rebal_engine_jobs" "Live jobs" (float_of_int s.Engine.jobs);
  gauge "rebal_engine_procs" "Processors" (float_of_int s.Engine.procs);
  gauge "rebal_engine_makespan" "Current maximum processor load"
    (float_of_int s.Engine.makespan);
  gauge "rebal_engine_total_size" "Sum of live job sizes" (float_of_int s.Engine.total_size);
  gauge "rebal_engine_imbalance" "Makespan over the batch lower bound" s.Engine.imbalance;
  gauge "rebal_engine_last_rebalance_moves" "Jobs relocated by the most recent repair pass"
    (float_of_int s.Engine.last_rebalance_moves);
  count "rebal_engine_events_total" "Mutating events processed" s.Engine.events;
  count "rebal_engine_adds_total" "ADD events" s.Engine.adds;
  count "rebal_engine_removes_total" "REMOVE events" s.Engine.removes;
  count "rebal_engine_resizes_total" "RESIZE events" s.Engine.resizes;
  count "rebal_engine_rebalances_total" "Repair passes run" s.Engine.rebalances;
  count "rebal_engine_auto_rebalances_total" "Repair passes fired by the trigger"
    s.Engine.auto_rebalances;
  count "rebal_engine_trigger_firings_total" "Trigger policy firings" s.Engine.trigger_firings;
  count "rebal_engine_moved_total" "Jobs relocated by repair passes" s.Engine.moved;
  count "rebal_engine_consistency_checks_total" "Batch-consistency checks run"
    s.Engine.consistency_checks;
  count "rebal_engine_consistency_failures_total" "Batch-consistency checks that failed"
    s.Engine.consistency_failures

let metrics_lines t =
  export_metrics t;
  let text = Expo.prometheus (Metrics.Registry.current ()) in
  let lines = String.split_on_char '\n' text in
  let lines = List.filter (fun l -> l <> "") lines in
  lines @ [ "# EOF" ]

let journal_lines t n =
  match Engine.journal t with
  | None -> [ "ERR no journal attached (start serve with --journal FILE)" ]
  | Some sink ->
    if n < 0 then [ "ERR n must be non-negative" ]
    else Rebal_obs.Journal.tail sink n @ [ "# EOF" ]

let execute t = function
  | Add { id; size } -> begin
    match Engine.add_job t ~id ~size with
    | Error e -> [ "ERR " ^ e ]
    | Ok (p, auto) ->
      pf "PLACED %s %d makespan=%d" id p (Engine.makespan t) :: auto_lines t auto
  end
  | Remove id -> begin
    match Engine.remove_job t ~id with
    | Error e -> [ "ERR " ^ e ]
    | Ok (p, auto) ->
      pf "REMOVED %s %d makespan=%d" id p (Engine.makespan t) :: auto_lines t auto
  end
  | Resize { id; size } -> begin
    match Engine.resize_job t ~id ~size with
    | Error e -> [ "ERR " ^ e ]
    | Ok (p, auto) ->
      pf "RESIZED %s %d makespan=%d" id p (Engine.makespan t) :: auto_lines t auto
  end
  | Rebalance k ->
    if k < 0 then [ "ERR k must be non-negative" ]
    else begin
      let moves = Engine.rebalance t ~k in
      move_lines moves
      @ [ pf "REBALANCED moves=%d makespan=%d" (List.length moves) (Engine.makespan t) ]
    end
  | Stats -> [ stats_line t ]
  | Metrics_dump -> metrics_lines t
  | Journal_tail n -> journal_lines t n
  | Help -> help_lines
  | Quit -> [ "BYE" ]
  | Shutdown -> [ "BYE" ]

let handle_line t line =
  match parse line with
  | Error e -> ([ "ERR " ^ e ], Continue)
  | Ok None -> ([], Continue)
  | Ok (Some cmd) ->
    let verdict =
      match cmd with
      | Quit -> Close
      | Shutdown -> Stop
      | _ -> Continue
    in
    (execute t cmd, verdict)

let greeting t =
  pf "READY rebalance-serve procs=%d jobs=%d makespan=%d" (Engine.m t) (Engine.job_count t)
    (Engine.makespan t)
