(** The online rebalancing engine: the batch problem of the paper turned
    into a stream of decisions. Jobs arrive, depart and resize
    continuously; the engine keeps the current placement in mutable
    indexed-heap-backed state so that every single-event update is an
    [O(log m)] greedy placement, and [rebalance ~k] is a bounded-move
    repair pass — the k-move GREEDY of Theorem 1 run over the live state
    instead of a from-scratch solve.

    Consistency with the batch solver is a checked invariant, not a hope:
    the repair pass uses exactly the removal order (most-loaded processor
    first, largest job first, ties by smallest index) and reinsertion
    order (descending size into the least-loaded processor) of
    [Rebal_algo.Greedy.solve ~order:Descending], so after [rebalance ~k]
    the engine's makespan equals the batch makespan on the materialized
    instance. [check_consistency] verifies this bit-match on demand and
    keeps counters that [stats] exposes.

    Observability: every engine binds histogram handles
    ([rebal_engine_op_latency_seconds{op=...}],
    [rebal_engine_moves_per_rebalance]) in the registry current at
    {!create} time. Moves-per-rebalance is always observed (no clock
    involved); per-op latency needs two monotonic clock reads and is
    recorded only while [Rebal_obs.Control.enabled ()] is true.

    The flight recorder: attach a [Rebal_obs.Journal] sink (at {!create}
    or with {!set_journal}) and the engine writes a ["rebal-engine"]
    header plus one event per operation — [add] / [remove] / [resize]
    (id, size, chosen processor, load after, makespan), [trigger] (which
    policy fired, budget, imbalance at decision time), [rebalance]
    (budget, lifted count, makespan and imbalance before/after, and
    per-move provenance: id, size, source/destination and their loads
    before/after) and [check] (batch vs repair makespan). With no sink
    attached every site is a single [None] branch — near-zero cost.
    [Rebal_online.Replay] re-executes these journals and verifies
    bit-exact reconstruction. *)

type t

(** When the engine pays for a repair pass on its own. [Manual] never
    repairs; the caller invokes {!rebalance}. The other policies fire
    after a mutating event: when enough events have accumulated since the
    last repair, when the imbalance (makespan / average load) exceeds a
    threshold, or when enough wall-clock time has passed. Each carries the
    move budget [k] spent per automatic repair. *)
type trigger =
  | Manual
  | Every_events of { events : int; k : int }
  | Imbalance_above of { threshold : float; k : int }
  | Every_seconds of { seconds : float; k : int }

type move = {
  id : string;
  src : int;
  dst : int;
}

(** One mutating event, for {!apply_bulk}. Mirrors {!add_job},
    {!remove_job} and {!resize_job} exactly — validation, counters,
    trigger evaluation and journal events included. *)
type op =
  | Add of { id : string; size : int }
  | Remove of { id : string }
  | Resize of { id : string; size : int }

type stats = {
  jobs : int;
  procs : int;
  makespan : int;
  total_size : int;
  imbalance : float;
      (** makespan / max (average load, largest job); 1.0 when empty *)
  events : int;  (** adds + removes + resizes processed *)
  adds : int;
  removes : int;
  resizes : int;
  rebalances : int;  (** repair passes run (manual + automatic) *)
  auto_rebalances : int;  (** repair passes fired by the trigger policy *)
  trigger_firings : int;
      (** times the trigger policy asked for a repair (currently equal to
          [auto_rebalances]; kept separate so a future policy may decline
          or coalesce firings without changing the counter's meaning) *)
  moved : int;  (** jobs relocated by repair passes, cumulative *)
  last_rebalance_moves : int;  (** jobs relocated by the most recent repair pass *)
  consistency_checks : int;
  consistency_failures : int;
}

val create :
  ?trigger:trigger ->
  ?clock:(unit -> float) ->
  ?journal:Rebal_obs.Journal.sink ->
  m:int ->
  unit ->
  t
(** An empty engine over [m] processors. [trigger] defaults to [Manual];
    [clock] (used only by [Every_seconds]) defaults to
    [Unix.gettimeofday]. [journal] attaches a flight-recorder sink (the
    header line is written immediately).
    @raise Invalid_argument if [m < 1]. *)

val trigger_name : trigger -> string
(** The journal/exposition tag: ["manual"], ["every_events"],
    ["imbalance_above"] or ["every_seconds"]. *)

val trigger_to_json : trigger -> Rebal_obs.Journal.json
(** The full trigger configuration (kind plus its parameters) as a JSON
    object — what journal headers and snapshots record so a replay can
    re-arm the same policy. *)

val trigger_of_json : Rebal_obs.Journal.json -> (trigger, string) result

val trigger : t -> trigger

val set_trigger : t -> trigger -> unit
(** Swap the trigger policy on a live engine (used when resuming a
    journaled engine: the recorded config is re-armed after replay).
    Restarts the wall-clock epoch; the events-since-repair backlog is
    kept. *)

val journal : t -> Rebal_obs.Journal.sink option

val set_journal : t -> Rebal_obs.Journal.sink option -> unit
(** Attach (writing the header if the sink has none yet) or detach the
    flight recorder. *)

val m : t -> int
val job_count : t -> int

val makespan : t -> int
(** Maximum processor load, maintained incrementally — [O(1)]. *)

val loads : t -> int array
(** Fresh copy of the per-processor load vector. *)

val max_job_size : t -> int
(** Largest live job size (0 when empty), maintained incrementally. *)

val imbalance : t -> float
(** The trigger metric: makespan divided by the batch lower bound
    [max (average load, largest job)] — the same ratio [Verify] reports.
    Dividing by the average alone would make one oversized job read as
    permanent imbalance no repair can fix, and a threshold trigger would
    thrash on it. 1.0 when no jobs. *)

val min_load : t -> int * int
(** [(processor, load)] of the least-loaded processor (ties: smallest
    index) — [O(1)]. Where the next arrival would be placed. *)

val peek_heaviest : t -> (string * int * int) option
(** [(id, size, processor)] of the largest job on the most-loaded
    processor — the job a repair pass would lift first. [None] when all
    loads are zero. Used by the cross-shard move pass. *)

val fold_jobs : t -> ('a -> id:string -> size:int -> proc:int -> 'a) -> 'a -> 'a
(** Fold over live jobs in unspecified order. *)

val mem : t -> string -> bool

val find : t -> string -> (int * int) option
(** [(size, processor)] of a job, if present. *)

val add_job : t -> id:string -> size:int -> (int * move list, string) result
(** Place a new job on the least-loaded processor ([O(log m)] placement
    plus [O(log n)] size-multiset bookkeeping). Returns
    the chosen processor and any moves performed by an automatic repair
    the event triggered. [Error] if the id is already present or the size
    is not positive. *)

val remove_job : t -> id:string -> (int * move list, string) result
(** Remove a job, freeing its processor's load. Returns the processor it
    was on, plus automatic-repair moves. [Error] if absent. *)

val resize_job : t -> id:string -> size:int -> (int * move list, string) result
(** Change a job's size in place (it stays on its processor until a
    repair pass decides otherwise). Returns its processor, plus
    automatic-repair moves. [Error] if absent or the size is not
    positive. *)

val apply_bulk :
  t ->
  ?on_result:(int -> op -> (int * move list, string) result -> unit) ->
  op array ->
  unit
(** Apply a batch of events in order, amortizing dispatch and journal
    flushing: the trigger policy is still evaluated after every single
    event (so automatic repairs fire at exactly the points one-by-one
    application would fire them), but the journal sink is written once
    for the whole batch and per-op latency histograms are skipped.
    State, stats and journal bytes are bit-identical to applying the
    same ops through {!add_job} / {!remove_job} / {!resize_job}.

    [on_result] receives the batch index, the op and its result
    (including any auto-repair moves) as each op completes — protocol
    sessions use it to format replies against the correct intermediate
    state. Without it no per-op result is materialized, and a batch of
    valid ops under a non-firing trigger with no journal attached runs
    with zero minor-heap allocation (after {!reserve} or warm-up).
    Invalid ops change no state; with no consumer they are skipped
    silently. *)

val reserve : t -> jobs:int -> unit
(** Pre-size every internal structure for [jobs] live jobs (worst-case
    skew included), so later operations never grow an array. Takes
    warm-up allocation out of latency-sensitive windows; the allocation
    benchmark (E24) calls this before measuring.
    @raise Invalid_argument if [jobs < 0]. *)

val rebalance : t -> k:int -> move list
(** The bounded-move repair pass: remove (up to) the [k] largest jobs
    from the most-loaded processors exactly as GREEDY's removal phase
    does, then reinsert them in descending size order onto the
    least-loaded processors. [O((k + m) log m + k log k)] — no
    from-scratch solve. Returns the jobs that actually changed processor.
    Resets the trigger epoch.
    @raise Invalid_argument if [k < 0]. *)

val stats : t -> stats

val to_instance : t -> Rebal_core.Instance.t * string array
(** Materialize the current state as a batch instance whose initial
    assignment is the live placement, with jobs in ascending id order.
    The array maps the instance's job indices back to engine ids. *)

val copy : t -> t
(** Deep, independent copy (used by {!check_consistency}; also handy for
    what-if probes). *)

val check_consistency : t -> k:int -> bool
(** Does a repair pass with budget [k] reach exactly the makespan of
    [Rebal_algo.Greedy.solve ~k] on the materialized instance? Runs on a
    copy — the engine itself is not perturbed — and records the outcome
    in the [consistency_checks] / [consistency_failures] counters. *)

(** {2 State snapshots}

    A snapshot is the engine's complete logical state as one versioned
    JSON object: processors, trigger config, every live job with its
    internal sequence number (so repair tie-breaks survive the round
    trip), the next sequence number, and all stats counters.
    [of_snapshot (snapshot t)] reconstructs an engine that bit-matches
    [t]: same loads, makespan, stats and future repair decisions.
    Snapshots are the compaction record of the flight recorder: a
    ["snapshot"] journal event carries one in its ["state"] field, and
    replay resumes from it instead of genesis. *)

val snapshot_version : int
(** The snapshot format version this build writes (1). *)

val snapshot : t -> Rebal_obs.Journal.json

val of_snapshot :
  ?trigger:trigger ->
  ?clock:(unit -> float) ->
  ?journal:Rebal_obs.Journal.sink ->
  Rebal_obs.Journal.json ->
  (t, string) result
(** Rebuild an engine from a snapshot. [trigger] overrides the recorded
    trigger config (replay passes [Manual] so recorded auto-repairs are
    re-applied explicitly rather than re-fired); by default the recorded
    config is armed. Validates version, processor ranges, positive
    sizes, and id/seq uniqueness. *)

val journal_snapshot : t -> (int, string) result
(** Emit a ["snapshot"] event carrying the current state into the
    attached journal and return its sequence number — the compaction
    point. [Error] if no journal is attached. *)
