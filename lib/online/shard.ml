module Journal = Rebal_obs.Journal

type move = Engine.move = {
  id : string;
  src : int;
  dst : int;
}

type stats = {
  shards : int;
  jobs : int;
  procs : int;
  makespan : int;
  total_size : int;
  imbalance : float;
  events : int;
  adds : int;
  removes : int;
  resizes : int;
  rebalances : int;
  auto_rebalances : int;
  trigger_firings : int;
  moved : int;
  inter_moves : int;
  consistency_checks : int;
  consistency_failures : int;
}

type t = {
  shards : Engine.t array;
  offsets : int array;  (* shard i owns global procs [offsets.(i), offsets.(i) + m_i) *)
  m : int;
  (* Consistent-hash ring: sorted (point, shard) pairs; a job id hashes
     to the first point at or after its hash (wrapping). Virtual nodes
     smooth the split so no shard owns a disproportionate arc. *)
  ring : (int * int) array;
  (* id -> shard. Placement starts as pure hashing, but inter-shard
     moves break hash residency, so membership is authoritative here;
     the ring only decides where a *new* id lands. *)
  directory : (string, int) Hashtbl.t;
  mutable inter_moves : int;
}

(* FNV-1a, 32-bit, finished with murmur3's fmix32 avalanche: stable
   across runs and OCaml versions, unlike [Hashtbl.hash] which is
   documented to vary. Raw FNV-1a clusters badly on short sequential
   ids ("j0".."j9999" share their high bits), which skews both the
   vnode arcs and the job placement; the finalizer disperses them. *)
let hash32 s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  let h = ref (!h lxor (!h lsr 16)) in
  h := !h * 0x85ebca6b land 0xFFFFFFFF;
  h := !h lxor (!h lsr 13);
  h := !h * 0xc2b2ae35 land 0xFFFFFFFF;
  !h lxor (!h lsr 16)

let ring_points_per_shard = 64

let make_ring shards =
  let points = Array.init (shards * ring_points_per_shard) (fun i ->
      let shard = i / ring_points_per_shard and replica = i mod ring_points_per_shard in
      (hash32 (Printf.sprintf "shard:%d:%d" shard replica), shard))
  in
  Array.sort compare points;
  points

let ring_lookup ring h =
  (* Binary search for the first point with hash >= h, wrapping to the
     first point past the top of the ring. *)
  let n = Array.length ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  snd ring.(if !lo = n then 0 else !lo)

let offsets_of_engines engines =
  let offsets = Array.make (Array.length engines) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i e ->
      offsets.(i) <- !acc;
      acc := !acc + Engine.m e)
    engines;
  (offsets, !acc)

let create ?trigger ?clock ?journal_for ~m ~shards () =
  if shards < 1 then invalid_arg "Shard.create: need at least one shard";
  if m < shards then invalid_arg "Shard.create: need at least one processor per shard";
  let engines =
    Array.init shards (fun i ->
        let m_i = (m / shards) + if i < m mod shards then 1 else 0 in
        let journal = match journal_for with None -> None | Some f -> f i in
        Engine.create ?trigger ?clock ?journal ~m:m_i ())
  in
  let offsets, total = offsets_of_engines engines in
  assert (total = m);
  {
    shards = engines;
    offsets;
    m;
    ring = make_ring shards;
    directory = Hashtbl.create 256;
    inter_moves = 0;
  }

let of_engines engines =
  let ( let* ) = Result.bind in
  let* () =
    if Array.length engines >= 1 then Ok () else Error "Shard.of_engines: need at least one engine"
  in
  let offsets, m = offsets_of_engines engines in
  let directory = Hashtbl.create 256 in
  let* () =
    let exception Dup of string in
    try
      Array.iteri
        (fun i e ->
          Engine.fold_jobs e
            (fun () ~id ~size:_ ~proc:_ ->
              if Hashtbl.mem directory id then raise (Dup id);
              Hashtbl.replace directory id i)
            ())
        engines;
      Ok ()
    with Dup id -> Error (Printf.sprintf "Shard.of_engines: job %s lives in two shards" id)
  in
  Ok
    {
      shards = engines;
      offsets;
      m;
      ring = make_ring (Array.length engines);
      directory;
      inter_moves = 0;
    }

let shard_count t = Array.length t.shards
let m t = t.m
let engine t i = t.shards.(i)
let offset t i = t.offsets.(i)
let job_count t = Hashtbl.length t.directory
let shard_of t id = Hashtbl.find_opt t.directory id

let home_shard t id =
  match Hashtbl.find_opt t.directory id with
  | Some s -> s
  | None -> ring_lookup t.ring (hash32 id)

let global t i p = t.offsets.(i) + p
let translate t i moves = List.map (fun mv -> { mv with src = global t i mv.src; dst = global t i mv.dst }) moves

let makespan t = Array.fold_left (fun acc e -> max acc (Engine.makespan e)) 0 t.shards

let loads t =
  let out = Array.make t.m 0 in
  Array.iteri
    (fun i e -> Array.blit (Engine.loads e) 0 out t.offsets.(i) (Engine.m e))
    t.shards;
  out

let total_size t = Array.fold_left (fun acc e -> acc + (Engine.stats e).Engine.total_size) 0 t.shards
let max_job_size t = Array.fold_left (fun acc e -> max acc (Engine.max_job_size e)) 0 t.shards

(* Same ratio as [Engine.imbalance], over the global state: makespan /
   max (average load across all m processors, largest live job). *)
let imbalance t =
  let total = total_size t in
  if total = 0 then 1.0
  else begin
    let bound =
      Float.max (float_of_int total /. float_of_int t.m) (float_of_int (max_job_size t))
    in
    float_of_int (makespan t) /. bound
  end

let mem t id = Hashtbl.mem t.directory id

let find t id =
  match Hashtbl.find_opt t.directory id with
  | None -> None
  | Some s ->
    (match Engine.find t.shards.(s) id with
    | None -> None
    | Some (size, p) -> Some (size, global t s p))

let add_job t ~id ~size =
  if Hashtbl.mem t.directory id then Error (Printf.sprintf "job %s already present" id)
  else begin
    let s = home_shard t id in
    match Engine.add_job t.shards.(s) ~id ~size with
    | Error _ as e -> e
    | Ok (p, moves) ->
      Hashtbl.replace t.directory id s;
      Ok (global t s p, translate t s moves)
  end

let remove_job t ~id =
  match Hashtbl.find_opt t.directory id with
  | None -> Error (Printf.sprintf "job %s not found" id)
  | Some s ->
    (match Engine.remove_job t.shards.(s) ~id with
    | Error _ as e -> e
    | Ok (p, moves) ->
      Hashtbl.remove t.directory id;
      Ok (global t s p, translate t s moves))

let resize_job t ~id ~size =
  match Hashtbl.find_opt t.directory id with
  | None -> Error (Printf.sprintf "job %s not found" id)
  | Some s ->
    (match Engine.resize_job t.shards.(s) ~id ~size with
    | Error _ as e -> e
    | Ok (p, moves) -> Ok (global t s p, translate t s moves))

(* The bounded cross-shard pass. Per-shard GREEDY repair cannot lower a
   peak held by a shard whose every processor is hot, so up to [k]
   times: lift the job a repair pass would lift first (largest job on
   the globally most-loaded processor) and hand it to the least-loaded
   processor of any *other* shard, but only when that actually lands
   below the current peak. Transfers go through the ordinary
   remove/add path, so per-shard journals stay replayable and the
   directory is the single source of residency truth. *)
let inter_pass t ~k =
  let moves = ref [] in
  (try
     for _ = 1 to k do
       let a = ref 0 in
       Array.iteri
         (fun i e -> if Engine.makespan e > Engine.makespan t.shards.(!a) then a := i)
         t.shards;
       let a = !a in
       let lmax = Engine.makespan t.shards.(a) in
       if lmax = 0 then raise Exit;
       match Engine.peek_heaviest t.shards.(a) with
       | None -> raise Exit
       | Some (id, size, psrc) ->
         let b = ref (-1) and best = ref max_int in
         Array.iteri
           (fun i e ->
             if i <> a then begin
               let _, l = Engine.min_load e in
               if l < !best then begin
                 b := i;
                 best := l
               end
             end)
           t.shards;
         if !b < 0 then raise Exit;
         if !best + size >= lmax then raise Exit;
         let auto_a =
           match Engine.remove_job t.shards.(a) ~id with
           | Ok (_, auto) -> auto
           | Error e -> failwith ("Shard.rebalance: transfer remove: " ^ e)
         in
         let pdst, auto_b =
           match Engine.add_job t.shards.(!b) ~id ~size with
           | Ok (p, auto) -> (p, auto)
           | Error e -> failwith ("Shard.rebalance: transfer add: " ^ e)
         in
         Hashtbl.replace t.directory id !b;
         t.inter_moves <- t.inter_moves + 1;
         moves :=
           List.rev_append
             (translate t !b auto_b)
             ({ id; src = global t a psrc; dst = global t !b pdst }
             :: List.rev_append (translate t a auto_a) !moves)
     done
   with Exit -> ());
  List.rev !moves

let rebalance t ~k =
  if k < 0 then invalid_arg "Shard.rebalance: negative k";
  let internal = ref [] in
  Array.iteri
    (fun i e -> internal := List.rev_append (translate t i (Engine.rebalance e ~k)) !internal)
    t.shards;
  List.rev !internal @ inter_pass t ~k

let stats t =
  let agg = Array.map Engine.stats t.shards in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 agg in
  {
    shards = Array.length t.shards;
    jobs = job_count t;
    procs = t.m;
    makespan = makespan t;
    total_size = sum (fun s -> s.Engine.total_size);
    imbalance = imbalance t;
    events = sum (fun s -> s.Engine.events);
    adds = sum (fun s -> s.Engine.adds);
    removes = sum (fun s -> s.Engine.removes);
    resizes = sum (fun s -> s.Engine.resizes);
    rebalances = sum (fun s -> s.Engine.rebalances);
    auto_rebalances = sum (fun s -> s.Engine.auto_rebalances);
    trigger_firings = sum (fun s -> s.Engine.trigger_firings);
    moved = sum (fun s -> s.Engine.moved);
    inter_moves = t.inter_moves;
    consistency_checks = sum (fun s -> s.Engine.consistency_checks);
    consistency_failures = sum (fun s -> s.Engine.consistency_failures);
  }

let shard_stats t = Array.map Engine.stats t.shards

let check_consistency t ~k =
  (* Directory integrity first: every directory entry must live in the
     shard it names, and no shard may hold a job the directory missed. *)
  let directory_ok =
    Hashtbl.fold (fun id s acc -> acc && Engine.mem t.shards.(s) id) t.directory true
    && Hashtbl.length t.directory
       = Array.fold_left (fun acc e -> acc + Engine.job_count e) 0 t.shards
  in
  directory_ok
  && Array.for_all (fun e -> Engine.check_consistency e ~k) t.shards

let journal_snapshot t =
  let missing = ref [] in
  Array.iteri
    (fun i e -> if Engine.journal e = None then missing := i :: !missing)
    t.shards;
  match !missing with
  | _ :: _ ->
    Error
      (Printf.sprintf "no journal attached to shard %s"
         (String.concat ", " (List.rev_map string_of_int !missing)))
  | [] ->
    Ok
      (Array.to_list
         (Array.mapi
            (fun i e ->
              match Engine.journal_snapshot e with
              | Ok seq -> (i, seq)
              | Error e -> failwith ("Shard.journal_snapshot: " ^ e))
            t.shards))
