module Journal = Rebal_obs.Journal

type move = Engine.move = {
  id : string;
  src : int;
  dst : int;
}

type stats = {
  shards : int;
  jobs : int;
  procs : int;
  makespan : int;
  total_size : int;
  imbalance : float;
  events : int;
  adds : int;
  removes : int;
  resizes : int;
  rebalances : int;
  auto_rebalances : int;
  trigger_firings : int;
  moved : int;
  inter_moves : int;
  consistency_checks : int;
  consistency_failures : int;
}

type t = {
  shards : Engine.t array;
  offsets : int array;  (* shard i owns global procs [offsets.(i), offsets.(i) + m_i) *)
  m : int;
  (* Consistent-hash ring: sorted (point, shard, replica) triples; a
     job id hashes to the first point at or after its hash (wrapping).
     Virtual nodes smooth the split so no shard owns a
     disproportionate arc; the replica index is kept so per-shard
     weights can activate a prefix of a shard's virtual nodes. *)
  ring : (int * int * int) array;
  (* Routing weight per shard in [0, 1]: the fraction of its virtual
     nodes that accept new placements. 0 takes a shard out of the ring
     (a Down shard stops receiving routes); a Recovering shard ramps
     back gradually. Residency and lookups of existing jobs are never
     affected — only where a *new* id lands. *)
  weights : float array;
  (* id -> shard. Placement starts as pure hashing, but inter-shard
     moves break hash residency, so membership is authoritative here;
     the ring only decides where a *new* id lands. *)
  directory : (string, int) Hashtbl.t;
  mutable inter_moves : int;
}

(* FNV-1a, 32-bit, finished with murmur3's fmix32 avalanche: stable
   across runs and OCaml versions, unlike [Hashtbl.hash] which is
   documented to vary. Raw FNV-1a clusters badly on short sequential
   ids ("j0".."j9999" share their high bits), which skews both the
   vnode arcs and the job placement; the finalizer disperses them. *)
let hash32 s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  let h = ref (!h lxor (!h lsr 16)) in
  h := !h * 0x85ebca6b land 0xFFFFFFFF;
  h := !h lxor (!h lsr 13);
  h := !h * 0xc2b2ae35 land 0xFFFFFFFF;
  !h lxor (!h lsr 16)

let ring_points_per_shard = 64

type ring = (int * int * int) array

let make_ring shards =
  let points = Array.init (shards * ring_points_per_shard) (fun i ->
      let shard = i / ring_points_per_shard and replica = i mod ring_points_per_shard in
      (hash32 (Printf.sprintf "shard:%d:%d" shard replica), shard, replica))
  in
  Array.sort compare points;
  points

(* A shard with weight [w] keeps its first [ceil (w * 64)] replicas
   active: weight 1 is the full ring (bit-identical routing to the
   unweighted router), weight 0 is none. Activating a prefix rather
   than rescaling hashes means ramping a weight up or down only flips
   that shard's own arcs — other shards' points never move. *)
let active_replicas w =
  if w <= 0.0 then 0
  else min ring_points_per_shard (int_of_float (ceil (w *. float_of_int ring_points_per_shard)))

let ring_lookup ?weights ring h =
  (* Binary search for the first point with hash >= h, wrapping to the
     first point past the top of the ring; with weights, walk forward
     (wrapping) past points whose shard has deactivated that replica. *)
  let n = Array.length ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let p, _, _ = ring.(mid) in
    if p < h then lo := mid + 1 else hi := mid
  done;
  let start = if !lo = n then 0 else !lo in
  match weights with
  | None ->
    let _, s, _ = ring.(start) in
    s
  | Some w ->
    let rec walk i remaining =
      if remaining = 0 then begin
        (* Every shard weighted to zero: fall back to the unweighted
           ring so routing still answers (the supervisor layer is the
           one that refuses service on an all-down cluster). *)
        let _, s, _ = ring.(start) in
        s
      end
      else begin
        let _, s, replica = ring.(i) in
        if replica < active_replicas w.(s) then s
        else walk (if i + 1 = n then 0 else i + 1) (remaining - 1)
      end
    in
    walk start n

let offsets_of_engines engines =
  let offsets = Array.make (Array.length engines) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i e ->
      offsets.(i) <- !acc;
      acc := !acc + Engine.m e)
    engines;
  (offsets, !acc)

let create ?trigger ?clock ?journal_for ~m ~shards () =
  if shards < 1 then invalid_arg "Shard.create: need at least one shard";
  if m < shards then invalid_arg "Shard.create: need at least one processor per shard";
  let engines =
    Array.init shards (fun i ->
        let m_i = (m / shards) + if i < m mod shards then 1 else 0 in
        let journal = match journal_for with None -> None | Some f -> f i in
        Engine.create ?trigger ?clock ?journal ~m:m_i ())
  in
  let offsets, total = offsets_of_engines engines in
  assert (total = m);
  {
    shards = engines;
    offsets;
    m;
    ring = make_ring shards;
    weights = Array.make shards 1.0;
    directory = Hashtbl.create 256;
    inter_moves = 0;
  }

let of_engines engines =
  let ( let* ) = Result.bind in
  let* () =
    if Array.length engines >= 1 then Ok () else Error "Shard.of_engines: need at least one engine"
  in
  let offsets, m = offsets_of_engines engines in
  let directory = Hashtbl.create 256 in
  let* () =
    let exception Dup of string in
    try
      Array.iteri
        (fun i e ->
          Engine.fold_jobs e
            (fun () ~id ~size:_ ~proc:_ ->
              if Hashtbl.mem directory id then raise (Dup id);
              Hashtbl.replace directory id i)
            ())
        engines;
      Ok ()
    with Dup id -> Error (Printf.sprintf "Shard.of_engines: job %s lives in two shards" id)
  in
  Ok
    {
      shards = engines;
      offsets;
      m;
      ring = make_ring (Array.length engines);
      weights = Array.make (Array.length engines) 1.0;
      directory;
      inter_moves = 0;
    }

let shard_count t = Array.length t.shards
let m t = t.m
let engine t i = t.shards.(i)
let offset t i = t.offsets.(i)
let job_count t = Hashtbl.length t.directory
let shard_of t id = Hashtbl.find_opt t.directory id

let weight t i = t.weights.(i)

let set_weight t i w =
  if not (Float.is_finite w) || w < 0.0 || w > 1.0 then
    invalid_arg "Shard.set_weight: weight must be in [0, 1]";
  t.weights.(i) <- w

let home_shard t id =
  match Hashtbl.find_opt t.directory id with
  | Some s -> s
  | None -> ring_lookup ~weights:t.weights t.ring (hash32 id)

let global t i p = t.offsets.(i) + p
let translate t i moves = List.map (fun mv -> { mv with src = global t i mv.src; dst = global t i mv.dst }) moves

let makespan t = Array.fold_left (fun acc e -> max acc (Engine.makespan e)) 0 t.shards

let loads t =
  let out = Array.make t.m 0 in
  Array.iteri
    (fun i e -> Array.blit (Engine.loads e) 0 out t.offsets.(i) (Engine.m e))
    t.shards;
  out

let total_size t = Array.fold_left (fun acc e -> acc + (Engine.stats e).Engine.total_size) 0 t.shards
let max_job_size t = Array.fold_left (fun acc e -> max acc (Engine.max_job_size e)) 0 t.shards

(* Same ratio as [Engine.imbalance], over the global state: makespan /
   max (average load across all m processors, largest live job). *)
let imbalance t =
  let total = total_size t in
  if total = 0 then 1.0
  else begin
    let bound =
      Float.max (float_of_int total /. float_of_int t.m) (float_of_int (max_job_size t))
    in
    float_of_int (makespan t) /. bound
  end

let mem t id = Hashtbl.mem t.directory id

let find t id =
  match Hashtbl.find_opt t.directory id with
  | None -> None
  | Some s ->
    (match Engine.find t.shards.(s) id with
    | None -> None
    | Some (size, p) -> Some (size, global t s p))

let add_job t ~id ~size =
  if Hashtbl.mem t.directory id then Error (Printf.sprintf "job %s already present" id)
  else begin
    let s = home_shard t id in
    match Engine.add_job t.shards.(s) ~id ~size with
    | Error _ as e -> e
    | Ok (p, moves) ->
      Hashtbl.replace t.directory id s;
      Ok (global t s p, translate t s moves)
  end

let remove_job t ~id =
  match Hashtbl.find_opt t.directory id with
  | None -> Error (Printf.sprintf "job %s not found" id)
  | Some s ->
    (match Engine.remove_job t.shards.(s) ~id with
    | Error _ as e -> e
    | Ok (p, moves) ->
      Hashtbl.remove t.directory id;
      Ok (global t s p, translate t s moves))

let resize_job t ~id ~size =
  match Hashtbl.find_opt t.directory id with
  | None -> Error (Printf.sprintf "job %s not found" id)
  | Some s ->
    (match Engine.resize_job t.shards.(s) ~id ~size with
    | Error _ as e -> e
    | Ok (p, moves) -> Ok (global t s p, translate t s moves))

(* The bounded cross-shard pass. Per-shard GREEDY repair cannot lower a
   peak held by a shard whose every processor is hot, so up to [k]
   times: lift the job a repair pass would lift first (largest job on
   the globally most-loaded processor) and hand it to the least-loaded
   processor of any *other* shard, but only when that actually lands
   below the current peak. Transfers go through the ordinary
   remove/add path, so per-shard journals stay replayable and the
   directory is the single source of residency truth. Zero-weight
   shards sit the pass out entirely — a Down shard neither receives
   transfers (it stopped taking routes) nor gives any up (its engine
   is presumed unreachable; {!evacuate} is the sanctioned drain). *)
let inter_pass t ~k =
  let moves = ref [] in
  (try
     for _ = 1 to k do
       let a = ref (-1) in
       Array.iteri
         (fun i e ->
           if
             t.weights.(i) > 0.0
             && (!a < 0 || Engine.makespan e > Engine.makespan t.shards.(!a))
           then a := i)
         t.shards;
       if !a < 0 then raise Exit;
       let a = !a in
       let lmax = Engine.makespan t.shards.(a) in
       if lmax = 0 then raise Exit;
       match Engine.peek_heaviest t.shards.(a) with
       | None -> raise Exit
       | Some (id, size, psrc) ->
         let b = ref (-1) and best = ref max_int in
         Array.iteri
           (fun i e ->
             if i <> a && t.weights.(i) > 0.0 then begin
               let _, l = Engine.min_load e in
               if l < !best then begin
                 b := i;
                 best := l
               end
             end)
           t.shards;
         if !b < 0 then raise Exit;
         if !best + size >= lmax then raise Exit;
         let auto_a =
           match Engine.remove_job t.shards.(a) ~id with
           | Ok (_, auto) -> auto
           | Error e -> failwith ("Shard.rebalance: transfer remove: " ^ e)
         in
         let pdst, auto_b =
           match Engine.add_job t.shards.(!b) ~id ~size with
           | Ok (p, auto) -> (p, auto)
           | Error e -> failwith ("Shard.rebalance: transfer add: " ^ e)
         in
         Hashtbl.replace t.directory id !b;
         t.inter_moves <- t.inter_moves + 1;
         moves :=
           List.rev_append
             (translate t !b auto_b)
             ({ id; src = global t a psrc; dst = global t !b pdst }
             :: List.rev_append (translate t a auto_a) !moves)
     done
   with Exit -> ());
  List.rev !moves

let rebalance t ~k =
  if k < 0 then invalid_arg "Shard.rebalance: negative k";
  let internal = ref [] in
  Array.iteri
    (fun i e ->
      if t.weights.(i) > 0.0 then
        internal := List.rev_append (translate t i (Engine.rebalance e ~k)) !internal)
    t.shards;
  List.rev !internal @ inter_pass t ~k

(* Failover: re-home up to [budget] jobs off a dead shard. Transfers
   take the same remove/add path as [inter_pass] — each half is an
   ordinary journaled event on its engine, so every surviving journal
   stays replayable and the directory stays authoritative. Jobs leave
   largest-first (the jobs that hurt the makespan most if stranded);
   each lands on the shard holding the globally least-loaded processor
   among routable (positive-weight) survivors, i.e. exactly where the
   batch GREEDY would put it. *)
let evacuate t ~from ~budget =
  if from < 0 || from >= Array.length t.shards then Error "Shard.evacuate: no such shard"
  else if budget < 0 then Error "Shard.evacuate: negative budget"
  else begin
    let jobs =
      Engine.fold_jobs t.shards.(from)
        (fun acc ~id ~size ~proc:_ -> (id, size) :: acc)
        []
    in
    let jobs =
      List.sort (fun (ida, sa) (idb, sb) -> if sa <> sb then compare sb sa else compare ida idb) jobs
    in
    let survivors =
      Array.exists (fun i -> i) (Array.mapi (fun i _ -> i <> from && t.weights.(i) > 0.0) t.shards)
    in
    if jobs <> [] && not survivors then Error "Shard.evacuate: no routable surviving shard"
    else begin
      let moves = ref [] and moved = ref 0 in
      (try
         List.iter
           (fun (id, size) ->
             if !moved >= budget then raise Exit;
             let b = ref (-1) and best = ref max_int in
             Array.iteri
               (fun i e ->
                 if i <> from && t.weights.(i) > 0.0 then begin
                   let _, l = Engine.min_load e in
                   if l < !best then begin
                     b := i;
                     best := l
                   end
                 end)
               t.shards;
             let psrc =
               match Engine.remove_job t.shards.(from) ~id with
               | Ok (p, _) -> p
               | Error e -> failwith ("Shard.evacuate: remove: " ^ e)
             in
             let pdst, auto =
               match Engine.add_job t.shards.(!b) ~id ~size with
               | Ok (p, auto) -> (p, auto)
               | Error e -> failwith ("Shard.evacuate: add: " ^ e)
             in
             Hashtbl.replace t.directory id !b;
             t.inter_moves <- t.inter_moves + 1;
             incr moved;
             moves :=
               List.rev_append
                 (translate t !b auto)
                 ({ id; src = global t from psrc; dst = global t !b pdst } :: !moves))
           jobs
       with Exit -> ());
      Ok (List.rev !moves, List.length jobs - !moved)
    end
  end

(* Re-admission: swap a fresh engine (restored from the shard's own
   snapshot + journal tail) in behind the router. The swap is only
   sound when the replacement agrees with the directory about exactly
   which jobs shard [i] owns — after a full evacuation both sides are
   empty, so a journal-restored engine (whose journal recorded the
   evacuation removes) passes. *)
let replace_engine t i eng =
  if i < 0 || i >= Array.length t.shards then Error "Shard.replace_engine: no such shard"
  else if Engine.m eng <> Engine.m t.shards.(i) then
    Error
      (Printf.sprintf "Shard.replace_engine: engine has %d processors, shard %d owns %d"
         (Engine.m eng) i (Engine.m t.shards.(i)))
  else begin
    let expected =
      Hashtbl.fold (fun id s acc -> if s = i then id :: acc else acc) t.directory []
    in
    let actual = Engine.fold_jobs eng (fun acc ~id ~size:_ ~proc:_ -> id :: acc) [] in
    let sorted = List.sort compare in
    if sorted expected <> sorted actual then
      Error
        (Printf.sprintf
           "Shard.replace_engine: engine holds %d job(s) but the directory maps %d to shard %d"
           (List.length actual) (List.length expected) i)
    else begin
      t.shards.(i) <- eng;
      Ok ()
    end
  end

let stats t =
  let agg = Array.map Engine.stats t.shards in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 agg in
  {
    shards = Array.length t.shards;
    jobs = job_count t;
    procs = t.m;
    makespan = makespan t;
    total_size = sum (fun s -> s.Engine.total_size);
    imbalance = imbalance t;
    events = sum (fun s -> s.Engine.events);
    adds = sum (fun s -> s.Engine.adds);
    removes = sum (fun s -> s.Engine.removes);
    resizes = sum (fun s -> s.Engine.resizes);
    rebalances = sum (fun s -> s.Engine.rebalances);
    auto_rebalances = sum (fun s -> s.Engine.auto_rebalances);
    trigger_firings = sum (fun s -> s.Engine.trigger_firings);
    moved = sum (fun s -> s.Engine.moved);
    inter_moves = t.inter_moves;
    consistency_checks = sum (fun s -> s.Engine.consistency_checks);
    consistency_failures = sum (fun s -> s.Engine.consistency_failures);
  }

let shard_stats t = Array.map Engine.stats t.shards

let check_consistency t ~k =
  (* Directory integrity first: every directory entry must live in the
     shard it names, and no shard may hold a job the directory missed. *)
  let directory_ok =
    Hashtbl.fold (fun id s acc -> acc && Engine.mem t.shards.(s) id) t.directory true
    && Hashtbl.length t.directory
       = Array.fold_left (fun acc e -> acc + Engine.job_count e) 0 t.shards
  in
  directory_ok
  && Array.for_all (fun e -> Engine.check_consistency e ~k) t.shards

let journal_snapshot t =
  let missing = ref [] in
  Array.iteri
    (fun i e -> if Engine.journal e = None then missing := i :: !missing)
    t.shards;
  match !missing with
  | _ :: _ ->
    Error
      (Printf.sprintf "no journal attached to shard %s"
         (String.concat ", " (List.rev_map string_of_int !missing)))
  | [] ->
    Ok
      (Array.to_list
         (Array.mapi
            (fun i e ->
              match Engine.journal_snapshot e with
              | Ok seq -> (i, seq)
              | Error e -> failwith ("Shard.journal_snapshot: " ^ e))
            t.shards))
