(** The self-healing layer: per-shard health supervision over a
    {!Shard} router, with automatic failover and re-admission.

    Each shard carries a health state machine

    {v Healthy -> Suspect -> Down -> Recovering -> Healthy v}

    driven by two failure signals: an injectable {e probe} (polled by
    {!tick} — in production a liveness check, in tests and the chaos
    harness a seeded fault plan) and a {e watchdog} on every supervised
    operation (an op slower than [op_deadline] counts against the shard
    that served it). [suspect_after] consecutive failures mark a shard
    Suspect (still serving, flagged in health reports); [down_after]
    mark it Down.

    The Down transition is the failover: the shard's routing weight
    drops to 0 (new placements stop landing there — see
    {!Shard.set_weight}), and up to [evac_budget] of its jobs are
    re-homed onto the survivors through the router's ordinary
    remove/add path, so every journal stays replayable and the
    directory stays authoritative ({!Shard.evacuate}). An informational
    ["evacuation"] event in the dead shard's journal records the
    trigger ([probe], [watchdog], [report] or [manual]), the job count
    and the budget — provenance for the burst of removes that follows.

    Re-admission reverses it: the operator restores an engine from the
    shard's latest snapshot plus journal tail ({!Replay.resume}) and
    hands it to {!readmit}; the shard re-enters as Recovering and each
    successful probe ramps its routing weight back by
    [1 / recovery_steps] until it is Healthy at full weight. A failure
    mid-ramp sends it straight back Down (evacuating whatever it
    accumulated).

    Degraded mode: while any shard is Down the cluster keeps serving
    from the survivors. Operations touching a job stranded on a dead
    shard (left behind by the evacuation budget) are rejected rather
    than routed into the corpse, and {!stats} exposes the full health
    census for STATS/SHARDS/HEALTH reporting. *)

type move = Engine.move = {
  id : string;
  src : int;
  dst : int;
}

type health =
  | Healthy
  | Suspect  (** failing probes, still serving *)
  | Down  (** evacuated, weight 0, rejecting *)
  | Recovering  (** readmitted, ramping weight back *)

val health_name : health -> string
(** Lowercase wire name: ["healthy"], ["suspect"], ["down"],
    ["recovering"]. *)

type config = {
  suspect_after : int;  (** consecutive failures before Suspect (>= 1) *)
  down_after : int;  (** consecutive failures before Down (>= suspect_after) *)
  op_deadline : float;  (** watchdog limit per supervised op, seconds *)
  evac_budget : int;  (** max jobs re-homed per evacuation *)
  recovery_steps : int;  (** successful probes to ramp weight 0 -> 1 *)
}

val default_config : config
(** [suspect_after = 1], [down_after = 3], [op_deadline = 1.0],
    [evac_budget = max_int], [recovery_steps = 4]. *)

type stats = {
  shards : int;
  healthy : int;
  suspect : int;
  down : int;
  recovering : int;
  evacuations : int;  (** Down transitions that ran an evacuation *)
  evacuated_jobs : int;  (** jobs re-homed across all evacuations *)
  stranded_jobs : int;  (** jobs left behind by budget or lack of survivors *)
  readmissions : int;
  probe_failures : int;  (** failed probes + external {!fail} reports *)
  watchdog_trips : int;  (** ops that blew [op_deadline] *)
  degraded_rejections : int;  (** ops refused because of a Down shard *)
}

type t

val create :
  ?config:config -> ?probe:(int -> bool) -> ?clock:(unit -> float) -> Shard.t -> t
(** Supervise [cluster]. [probe i] (default: always alive) answers
    whether shard [i] looks live — inject the fault source here.
    [clock] (default [Unix.gettimeofday]) feeds the watchdog; inject a
    fake for deterministic deadline tests. All shards start Healthy.
    @raise Invalid_argument on a nonsensical [config]. *)

val cluster : t -> Shard.t
(** The supervised router. Mutating it directly bypasses health
    guards and the watchdog — use the supervised operations. *)

val config : t -> config
val shard_count : t -> int
val health : t -> int -> health
val is_serving : t -> int -> bool
(** [true] unless Down. *)

val serving_shards : t -> int

val tick : t -> move list
(** One supervision round: probe every non-Down shard and apply the
    state machine. A probe success resets the failure streak (Suspect
    heals to Healthy; Recovering ramps one step). A probe failure
    counts toward Suspect/Down; the moves of any evacuation this
    triggers are returned (global indices). Call it from the serving
    loop's idle path or a timer. *)

val fail : ?reason:string -> t -> int -> move list
(** An external failure report against shard [i] — same effect as one
    failed probe (returns evacuation moves if it tips the shard Down).
    [reason] (default ["report"]) is the provenance recorded in the
    evacuation journal event if this report tips the shard Down — the
    telemetry loop passes ["alert:<rule>"] here, so a post-mortem can
    tie the evacuation back to the alert that caused it.
    @raise Invalid_argument if [i] is out of range. *)

val mark_down : t -> int -> move list
(** Operator override: force shard [i] Down now (no effect if already
    Down), returning the evacuation moves. *)

val readmit : t -> int -> Engine.t -> (unit, string) result
(** Swap a restored engine in for Down shard [i] and start the
    recovery ramp at weight 0. The engine must hold exactly the jobs
    the directory still maps to shard [i] — an engine resumed from the
    shard's own journal does, because the evacuation removes were
    journaled ({!Shard.replace_engine}). [Error] if the shard is not
    Down or the engine disagrees with the directory. *)

val add_job : t -> id:string -> size:int -> (int * move list, string) result
(** {!Shard.add_job} under the watchdog. Rejected when no shard is
    serving or the id is stranded on a Down shard. *)

val remove_job : t -> id:string -> (int * move list, string) result
val resize_job : t -> id:string -> size:int -> (int * move list, string) result

val rebalance : t -> k:int -> move list
(** {!Shard.rebalance} on the cluster (Down shards hold no weight and,
    after evacuation, at most stranded jobs). *)

val stats : t -> stats
