(* A bounded multi-producer single-consumer queue over a circular
   buffer, built on a mutex and two conditions — the command channel
   between client threads and a shard worker domain. [send] blocking
   while the buffer is full is the backpressure mechanism: a client
   that outruns its shard parks on [not_full] instead of growing an
   unbounded queue. Closing wakes everyone; the consumer drains what
   was accepted before seeing end-of-stream, so a successful [send]
   is never silently dropped. *)

type 'a t = {
  buf : 'a option array;
  mutable head : int;  (* index of the oldest element when size > 0 *)
  mutable size : int;
  mu : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Mailbox.create: need a positive capacity";
  {
    buf = Array.make capacity None;
    head = 0;
    size = 0;
    mu = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false;
  }

let capacity t = Array.length t.buf

let length t =
  Mutex.lock t.mu;
  let n = t.size in
  Mutex.unlock t.mu;
  n

let is_closed t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c

(* Under [t.mu], with room guaranteed. *)
let push t v =
  t.buf.((t.head + t.size) mod Array.length t.buf) <- Some v;
  t.size <- t.size + 1;
  Condition.signal t.not_empty

let send t v =
  Mutex.lock t.mu;
  while t.size = Array.length t.buf && not t.closed do
    Condition.wait t.not_full t.mu
  done;
  let accepted = not t.closed in
  if accepted then push t v;
  Mutex.unlock t.mu;
  accepted

let try_send t v =
  Mutex.lock t.mu;
  let r =
    if t.closed then `Closed
    else if t.size = Array.length t.buf then `Full
    else begin
      push t v;
      `Sent
    end
  in
  Mutex.unlock t.mu;
  r

let recv t =
  Mutex.lock t.mu;
  while t.size = 0 && not t.closed do
    Condition.wait t.not_empty t.mu
  done;
  let r =
    if t.size = 0 then None (* closed and drained *)
    else begin
      let v = t.buf.(t.head) in
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod Array.length t.buf;
      t.size <- t.size - 1;
      Condition.signal t.not_full;
      v
    end
  in
  Mutex.unlock t.mu;
  r

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mu
