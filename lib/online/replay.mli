(** Deterministic re-execution of engine flight-recorder journals.

    {!run} replays a parsed ["rebal-engine"] journal against a fresh
    [Manual]-trigger engine: every recorded [add] / [remove] / [resize]
    is re-applied and its recorded placement and makespan verified;
    every recorded [rebalance] — including the automatic ones a live
    trigger fired — is re-applied as an explicit repair with the
    recorded budget and its recorded makespan and move count verified;
    recorded [trigger] events are informational (replay never consults a
    wall clock, which is what makes [Every_seconds] sessions
    replayable); recorded [check] events re-run [check_consistency] and
    compare verdicts. A recorded [snapshot] event at sequence 0 (a
    compacted journal) replaces genesis — replay resumes from its state
    instead of re-executing history; a mid-journal snapshot is verified
    structurally against the replayed state. A divergence is an [Error]
    naming the journal line, in the [Rebal_core.Io] style. After the
    last event the replay runs a full-budget [Engine.check_consistency],
    so a clean [run] certifies that the journal reconstructs a state
    whose makespan, loads and placement are bit-identical to what the
    recorder saw. Finally the trigger config recorded in the header is
    re-armed on the replayed engine, so a journal recorded under
    [--auto-*] does not silently come back as [Manual].

    The [explain_*] functions are the other consumer: they render
    decision provenance straight from the parsed journal, no engine
    needed. *)

module Journal = Rebal_obs.Journal

type outcome = {
  header : Journal.header;
  m : int;
  events : int;  (** journal events applied (triggers and snapshots included) *)
  final_jobs : int;
  final_makespan : int;
  rebalances : int;  (** repair passes re-executed *)
  moves : int;  (** relocations across all re-executed repairs *)
  checks : int;  (** recorded [check] events re-verified *)
  snapshots : int;  (** [snapshot] events seen (resume point included) *)
  resumed : bool;  (** true when the journal opened with a snapshot *)
  trigger : Engine.trigger;  (** the re-armed recorded trigger config *)
  consistency_ok : bool;  (** the final full-budget [check_consistency] *)
}

val run : Journal.header * Journal.event list -> (outcome, string) result
(** Replay an already-parsed journal. [Error] on a wrong producer tag or
    version, malformed fields, or any divergence from the recording —
    all ["line %d: ..."]. *)

val resume :
  Journal.header * Journal.event list -> (Engine.t * outcome, string) result
(** Like {!run}, but also hands back the replayed engine — verified,
    trigger re-armed, journal-detached — ready to be put back into
    service ([serve --journal] restarts through this). *)

val trigger_of_header : Journal.header -> (Engine.trigger, string) result
(** The trigger config recorded in the header's [trigger_config] field;
    [Manual] for journals that predate it. *)

val compact : Journal.header * Journal.event list -> (string list * int * int, string) result
(** Compact a journal: drop every event before the latest recorded
    [snapshot] (sequence numbers renumbered from 0), or — when none was
    recorded — replay the whole journal (verifying it) and emit a single
    snapshot of the final state. Returns the rendered lines of the
    compacted journal (header first, no trailing newlines) plus the
    number of events dropped and kept. *)

val run_file : string -> (outcome, string) result
(** [Journal.parse_file] then {!run}. *)

val summary : outcome -> string
(** One human-readable paragraph for the CLI. *)

(** {2 Decision provenance views} *)

val explain_summary : Journal.header * Journal.event list -> string
(** The whole journal as a table: one row per event with its makespan
    trail. *)

val explain_job : Journal.header * Journal.event list -> id:string -> (string, string) result
(** Life of one job: its add/remove/resize events and every rebalance
    move that relocated it, with source/destination loads.
    [Error] if the id never appears. *)

val explain_rebalance :
  Journal.header * Journal.event list -> seq:int -> (string, string) result
(** One rebalance decision in full: which trigger fired, imbalance at
    decision time, budget spent, and the per-move provenance table.
    [Error] if [seq] is not a rebalance event. *)
