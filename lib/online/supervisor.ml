module Journal = Rebal_obs.Journal

type move = Engine.move = {
  id : string;
  src : int;
  dst : int;
}

type health =
  | Healthy
  | Suspect
  | Down
  | Recovering

let health_name = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Down -> "down"
  | Recovering -> "recovering"

type config = {
  suspect_after : int;
  down_after : int;
  op_deadline : float;
  evac_budget : int;
  recovery_steps : int;
}

let default_config =
  { suspect_after = 1; down_after = 3; op_deadline = 1.0; evac_budget = max_int; recovery_steps = 4 }

let validate_config c =
  if c.suspect_after < 1 then invalid_arg "Supervisor: suspect_after must be >= 1";
  if c.down_after < c.suspect_after then
    invalid_arg "Supervisor: down_after must be >= suspect_after";
  if not (Float.is_finite c.op_deadline) || c.op_deadline <= 0.0 then
    invalid_arg "Supervisor: op_deadline must be positive";
  if c.evac_budget < 0 then invalid_arg "Supervisor: evac_budget must be >= 0";
  if c.recovery_steps < 1 then invalid_arg "Supervisor: recovery_steps must be >= 1"

type shard_state = {
  mutable health : health;
  mutable fails : int;  (* consecutive failure signals since the last success *)
  mutable ramp : int;  (* recovery progress, 0..recovery_steps *)
}

type stats = {
  shards : int;
  healthy : int;
  suspect : int;
  down : int;
  recovering : int;
  evacuations : int;
  evacuated_jobs : int;
  stranded_jobs : int;
  readmissions : int;
  probe_failures : int;
  watchdog_trips : int;
  degraded_rejections : int;
}

type t = {
  cluster : Shard.t;
  config : config;
  probe : int -> bool;
  clock : unit -> float;
  states : shard_state array;
  mutable evacuations : int;
  mutable evacuated_jobs : int;
  mutable stranded_jobs : int;
  mutable readmissions : int;
  mutable probe_failures : int;
  mutable watchdog_trips : int;
  mutable degraded_rejections : int;
}

let create ?(config = default_config) ?(probe = fun _ -> true) ?(clock = Unix.gettimeofday)
    cluster =
  validate_config config;
  {
    cluster;
    config;
    probe;
    clock;
    states =
      Array.init (Shard.shard_count cluster) (fun _ ->
          { health = Healthy; fails = 0; ramp = 0 });
    evacuations = 0;
    evacuated_jobs = 0;
    stranded_jobs = 0;
    readmissions = 0;
    probe_failures = 0;
    watchdog_trips = 0;
    degraded_rejections = 0;
  }

let cluster t = t.cluster
let config t = t.config
let shard_count t = Array.length t.states

let check_shard t i =
  if i < 0 || i >= Array.length t.states then invalid_arg "Supervisor: no such shard"

let health t i =
  check_shard t i;
  t.states.(i).health

let is_serving t i =
  check_shard t i;
  t.states.(i).health <> Down

let serving_shards t =
  Array.fold_left (fun acc s -> if s.health <> Down then acc + 1 else acc) 0 t.states

(* The Down transition: stop routing to the shard, then re-home its
   jobs onto the survivors through the router's ordinary remove/add
   path (both halves journaled, directory updated). The provenance
   event lands in the evacuated shard's own journal — it explains the
   burst of removes that follows nothing the workload did — and is
   informational on replay, so the journal stays replayable. *)
let transition_down t i ~reason =
  let st = t.states.(i) in
  st.health <- Down;
  st.ramp <- 0;
  Shard.set_weight t.cluster i 0.0;
  let before = Engine.job_count (Shard.engine t.cluster i) in
  let moves, leftover =
    match Shard.evacuate t.cluster ~from:i ~budget:t.config.evac_budget with
    | Ok (moves, leftover) -> (moves, leftover)
    | Error _ ->
      (* No routable survivor: the jobs stay stranded on the dead
         shard until a survivor comes back or the shard is readmitted.
         Degraded-mode guards keep callers from touching them. *)
      ([], before)
  in
  t.evacuations <- t.evacuations + 1;
  t.evacuated_jobs <- t.evacuated_jobs + (before - leftover);
  t.stranded_jobs <- t.stranded_jobs + leftover;
  (match Engine.journal (Shard.engine t.cluster i) with
  | None -> ()
  | Some sink ->
    Journal.emit sink ~kind:"evacuation"
      [
        ("shard", Journal.Int i);
        ("reason", Journal.Str reason);
        ("jobs", Journal.Int (before - leftover));
        ("leftover", Journal.Int leftover);
        ("budget",
         Journal.Int (if t.config.evac_budget = max_int then -1 else t.config.evac_budget));
      ]);
  moves

let note_failure t i ~reason =
  let st = t.states.(i) in
  match st.health with
  | Down -> []
  | Recovering ->
    (* A failure while ramping back sends the shard straight down
       again — anything it accumulated during the ramp is evacuated. *)
    transition_down t i ~reason
  | Healthy | Suspect ->
    st.fails <- st.fails + 1;
    if st.fails >= t.config.down_after then transition_down t i ~reason
    else begin
      if st.fails >= t.config.suspect_after then st.health <- Suspect;
      []
    end

let note_success t i =
  let st = t.states.(i) in
  match st.health with
  | Down -> ()
  | Healthy | Suspect ->
    st.fails <- 0;
    st.health <- Healthy
  | Recovering ->
    st.fails <- 0;
    st.ramp <- min t.config.recovery_steps (st.ramp + 1);
    let w = float_of_int st.ramp /. float_of_int t.config.recovery_steps in
    Shard.set_weight t.cluster i w;
    if st.ramp >= t.config.recovery_steps then st.health <- Healthy

let tick t =
  let moves = ref [] in
  Array.iteri
    (fun i st ->
      if st.health <> Down then begin
        if t.probe i then note_success t i
        else begin
          t.probe_failures <- t.probe_failures + 1;
          moves := List.rev_append (List.rev (note_failure t i ~reason:"probe")) !moves
        end
      end)
    t.states;
  List.rev !moves

let fail ?(reason = "report") t i =
  check_shard t i;
  t.probe_failures <- t.probe_failures + 1;
  note_failure t i ~reason

let mark_down t i =
  check_shard t i;
  if t.states.(i).health = Down then [] else transition_down t i ~reason:"manual"

let readmit t i eng =
  check_shard t i;
  let st = t.states.(i) in
  if st.health <> Down then
    Error (Printf.sprintf "shard %d is %s, not down" i (health_name st.health))
  else
    match Shard.replace_engine t.cluster i eng with
    | Error _ as e -> e
    | Ok () ->
      st.health <- Recovering;
      st.fails <- 0;
      st.ramp <- 0;
      Shard.set_weight t.cluster i 0.0;
      t.readmissions <- t.readmissions + 1;
      Ok ()

(* The watchdog: every supervised operation is timed against
   [op_deadline]; a blown deadline counts as a failure signal against
   the shard that served the op (the transition itself happens
   synchronously via [note_failure] — a deadline blown hard enough to
   cross [down_after] evacuates immediately). The op's own result is
   returned either way; any moves an evacuation produces are appended
   to the op's move list. *)
let timed t f =
  let t0 = t.clock () in
  let result = f () in
  (result, t.clock () -. t0)

let watchdog_check t i dt =
  if dt > t.config.op_deadline then begin
    t.watchdog_trips <- t.watchdog_trips + 1;
    note_failure t i ~reason:"watchdog"
  end
  else []

let reject t msg =
  t.degraded_rejections <- t.degraded_rejections + 1;
  Error msg

let add_job t ~id ~size =
  if serving_shards t = 0 then reject t "no serving shards"
  else begin
    match Shard.shard_of t.cluster id with
    | Some s when t.states.(s).health = Down ->
      (* A stranded duplicate: the id is resident on a dead shard the
         evacuation budget did not cover. *)
      reject t (Printf.sprintf "job %s is stranded on down shard %d" id s)
    | _ ->
      (* Weight-aware routing never picks a Down shard while any
         serving shard remains, so the home shard is safe to touch.
         Attribution happens after the op — routing decides the shard
         during the add. *)
      let result, dt = timed t (fun () -> Shard.add_job t.cluster ~id ~size) in
      (match result with
      | Error _ as e -> e
      | Ok (p, moves) ->
        let extra =
          match Shard.shard_of t.cluster id with
          | Some s -> watchdog_check t s dt
          | None -> []
        in
        Ok (p, moves @ extra))
  end

let remove_job t ~id =
  match Shard.shard_of t.cluster id with
  | Some s when t.states.(s).health = Down ->
    reject t (Printf.sprintf "job %s is stranded on down shard %d" id s)
  | Some s ->
    let result, dt = timed t (fun () -> Shard.remove_job t.cluster ~id) in
    let extra = watchdog_check t s dt in
    (match result with Ok (p, moves) -> Ok (p, moves @ extra) | Error _ as e -> e)
  | None -> Error (Printf.sprintf "job %s not found" id)

let resize_job t ~id ~size =
  match Shard.shard_of t.cluster id with
  | Some s when t.states.(s).health = Down ->
    reject t (Printf.sprintf "job %s is stranded on down shard %d" id s)
  | Some s ->
    let result, dt = timed t (fun () -> Shard.resize_job t.cluster ~id ~size) in
    let extra = watchdog_check t s dt in
    (match result with Ok (p, moves) -> Ok (p, moves @ extra) | Error _ as e -> e)
  | None -> Error (Printf.sprintf "job %s not found" id)

let rebalance t ~k = Shard.rebalance t.cluster ~k

let stats t =
  let count h = Array.fold_left (fun acc s -> if s.health = h then acc + 1 else acc) 0 t.states in
  {
    shards = Array.length t.states;
    healthy = count Healthy;
    suspect = count Suspect;
    down = count Down;
    recovering = count Recovering;
    evacuations = t.evacuations;
    evacuated_jobs = t.evacuated_jobs;
    stranded_jobs = t.stranded_jobs;
    readmissions = t.readmissions;
    probe_failures = t.probe_failures;
    watchdog_trips = t.watchdog_trips;
    degraded_rejections = t.degraded_rejections;
  }
