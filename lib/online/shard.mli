(** A shard router: the online engine scaled out. Processors are
    partitioned into [S] shards, each backed by its own {!Engine} (with
    its own trigger and, optionally, its own flight-recorder journal);
    jobs are placed by consistent hashing over their ids, so the
    id-to-shard map survives restarts without coordination and adding a
    shard only remaps an arc of the ring.

    Processor numbering is global: shard [i] owns the contiguous range
    [[offset t i, offset t i + Engine.m (engine t i))], and every move
    list or processor this module returns uses global indices.

    Residency: hashing decides where a {e new} id lands, but
    {!rebalance}'s cross-shard pass may migrate jobs off their home
    shard, so an id-to-shard directory is authoritative for lookups —
    consistent hashing is a placement heuristic here, not an invariant.

    [rebalance ~k] composes the per-shard guarantee of the paper with a
    cross-shard repair: first every shard runs its own bounded GREEDY
    repair (each shard's makespan then bit-matches the batch GREEDY on
    its sub-instance — the composition view of per-machine bounds), then
    a bounded top-k pass migrates the globally heaviest liftable job to
    the least-loaded processor of another shard whenever that lands
    below the current global peak. *)

type move = Engine.move = {
  id : string;
  src : int;
  dst : int;
}

type stats = {
  shards : int;
  jobs : int;
  procs : int;
  makespan : int;  (** max over all shards *)
  total_size : int;
  imbalance : float;
      (** global makespan / max (global average load, largest live job) *)
  events : int;
  adds : int;  (** includes the add half of cross-shard transfers *)
  removes : int;  (** includes the remove half of cross-shard transfers *)
  resizes : int;
  rebalances : int;
  auto_rebalances : int;
  trigger_firings : int;
  moved : int;  (** intra-shard repair relocations, summed *)
  inter_moves : int;  (** cross-shard transfers performed by this router *)
  consistency_checks : int;
  consistency_failures : int;
}

type t

val create :
  ?trigger:Engine.trigger ->
  ?clock:(unit -> float) ->
  ?journal_for:(int -> Rebal_obs.Journal.sink option) ->
  m:int ->
  shards:int ->
  unit ->
  t
(** [m] processors split as evenly as possible over [shards] engines
    (the first [m mod shards] shards get one extra). [trigger] and
    [clock] are handed to every engine; [journal_for i] supplies shard
    [i]'s flight-recorder sink.
    @raise Invalid_argument if [shards < 1] or [m < shards]. *)

val of_engines : Engine.t array -> (t, string) result
(** Assemble a router around existing engines — the restart path: each
    shard's engine is resumed from its own journal, then the router is
    rebuilt on top. The residency directory is reconstructed from the
    engines' live jobs; [Error] if an id appears in two engines. The
    [inter_moves] counter starts at zero (it belongs to the router, not
    the persisted engine state). *)

val shard_count : t -> int
val m : t -> int
(** Total processors across all shards. *)

val engine : t -> int -> Engine.t
(** Shard [i]'s backing engine (e.g. for journal access). Mutating it
    directly bypasses the residency directory — use the router's
    operations for anything that adds or removes jobs. *)

val offset : t -> int -> int
(** First global processor index owned by shard [i]. *)

val job_count : t -> int
val makespan : t -> int
val loads : t -> int array
(** Global load vector (length [m]), shard ranges concatenated. *)

val max_job_size : t -> int
val imbalance : t -> float
val mem : t -> string -> bool

val shard_of : t -> string -> int option
(** The shard a live job currently resides in. *)

val weight : t -> int -> float
(** Shard [i]'s routing weight (1.0 unless changed). *)

val set_weight : t -> int -> float -> unit
(** Set shard [i]'s routing weight in [[0, 1]]: the fraction of its
    virtual nodes accepting {e new} placements (weight [w] keeps
    [ceil (w * 64)] of its 64 replicas active, so weight 1 routes
    bit-identically to the unweighted ring). Weight 0 takes the shard
    out of the ring — a Down shard stops receiving routes; a
    Recovering shard ramps back gradually. Residency and lookups of
    jobs already placed are never affected. When {e every} shard is
    weighted to 0, routing falls back to the unweighted ring (refusing
    service on an all-down cluster is the supervisor's job, not the
    router's).
    @raise Invalid_argument if [w] is outside [[0, 1]] or not finite. *)

val evacuate : t -> from:int -> budget:int -> (move list * int, string) result
(** Re-home up to [budget] jobs off shard [from] onto the other
    positive-weight shards, largest job first, each landing on the
    shard holding the globally least-loaded processor. Transfers use
    the ordinary remove/add path — both halves are journaled on their
    engines and the directory is updated — and count as [inter_moves].
    Returns the moves (global indices) and how many jobs were {e left}
    on [from] because the budget ran out. Typically called with weight
    0 already set on [from] (the supervisor's Down transition), but
    this function does not require or change weights. [Error] if
    [from] is out of range, [budget] is negative, or jobs remain and
    no other shard has positive weight. *)

val replace_engine : t -> int -> Engine.t -> (unit, string) result
(** Swap shard [i]'s backing engine for [eng] — the re-admission path:
    a Recovering shard restores an engine from its latest snapshot plus
    journal tail and hands it back to the router. Refuses (leaving the
    router untouched) unless [eng] has the same processor count and
    holds exactly the jobs the directory maps to shard [i] (after a
    full evacuation, both are empty). *)

val find : t -> string -> (int * int) option
(** [(size, global processor)] of a job, if present. *)

val add_job : t -> id:string -> size:int -> (int * move list, string) result
(** Route by consistent hash, place greedily inside the chosen shard.
    Returns the global processor and any automatic-repair moves. *)

val remove_job : t -> id:string -> (int * move list, string) result
val resize_job : t -> id:string -> size:int -> (int * move list, string) result

val rebalance : t -> k:int -> move list
(** Per-shard bounded GREEDY repair (budget [k] each), then the bounded
    cross-shard pass (up to [k] transfers). Returns all moves in global
    indices, intra-shard repairs first. Zero-weight shards are skipped
    entirely — their engines are presumed unreachable, and transfers
    never target them.
    @raise Invalid_argument if [k < 0]. *)

val stats : t -> stats
val shard_stats : t -> Engine.stats array

val check_consistency : t -> k:int -> bool
(** Residency-directory integrity (every entry resolves, no stray jobs)
    plus [Engine.check_consistency ~k] on every shard. *)

val journal_snapshot : t -> ((int * int) list, string) result
(** Emit a snapshot event into every shard's journal; returns
    [(shard, event seq)] pairs. [Error] (emitting nothing) if any shard
    has no journal attached. *)

(** {2 Ring internals}

    The consistent-hash machinery, exposed so the parallel {!Cluster}
    routes new ids bit-identically to this router (the sequential-
    equivalence property the cluster tests rely on). *)

type ring

val hash32 : string -> int
(** FNV-1a 32-bit with a murmur3 fmix32 finalizer — stable across runs
    and OCaml versions. *)

val make_ring : int -> ring
(** The sorted virtual-node ring for [shards] shards (64 points each). *)

val ring_lookup : ?weights:float array -> ring -> int -> int
(** Shard owning the first ring point at or after the hash (wrapping).
    Without [weights], equivalent to all weights 1. *)
