module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Indexed_heap = Rebal_ds.Indexed_heap
module Metrics = Rebal_obs.Metrics
module Trace = Rebal_obs.Trace
module Control = Rebal_obs.Control
module Journal = Rebal_obs.Journal
module Timer = Rebal_harness.Timer

(* Per-processor job set ordered by (size ascending, sequence number
   descending), so [max_elt] yields the largest job, smallest sequence
   number on ties — a deterministic extraction order mirroring the
   descending sorted views the batch GREEDY consumes. *)
module Job_set = Set.Make (struct
  type t = int * int (* size, seq *)

  let compare (s1, q1) (s2, q2) = if s1 <> s2 then compare s1 s2 else compare q2 q1
end)

type job = {
  ext : string;
  seq : int;
  mutable size : int;
  mutable proc : int;
}

type trigger =
  | Manual
  | Every_events of { events : int; k : int }
  | Imbalance_above of { threshold : float; k : int }
  | Every_seconds of { seconds : float; k : int }

type move = {
  id : string;
  src : int;
  dst : int;
}

type counters = {
  mutable events : int;
  mutable adds : int;
  mutable removes : int;
  mutable resizes : int;
  mutable rebalances : int;
  mutable auto_rebalances : int;
  mutable trigger_firings : int;
  mutable moved : int;
  mutable last_rebalance_moves : int;
  mutable consistency_checks : int;
  mutable consistency_failures : int;
}

(* Histogram handles bound to the registry current at [create] time, so
   a serve daemon's engine and a test's [with_registry]-scoped engine
   never share series. Observing when disabled would still be cheap, but
   latency observations need two clock reads — those are gated on
   [Control.enabled] so the engine stays on the fast path by default. *)
type obs = {
  lat_add : Metrics.histogram;
  lat_remove : Metrics.histogram;
  lat_resize : Metrics.histogram;
  lat_rebalance : Metrics.histogram;
  moves_per_rebalance : Metrics.histogram;
}

let make_obs () =
  let lat op =
    Metrics.histogram
      ~labels:[ ("op", op) ]
      ~help:"Engine operation latency in seconds" "rebal_engine_op_latency_seconds"
  in
  {
    lat_add = lat "add";
    lat_remove = lat "remove";
    lat_resize = lat "resize";
    lat_rebalance = lat "rebalance";
    moves_per_rebalance =
      Metrics.histogram ~help:"Jobs relocated per repair pass"
        ~buckets:[| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]
        "rebal_engine_moves_per_rebalance";
  }

let timed hist f =
  if Control.enabled () then begin
    let start = Timer.now_ns () in
    let r = f () in
    Metrics.Histogram.observe_ns hist (Int64.sub (Timer.now_ns ()) start);
    r
  end
  else f ()

type stats = {
  jobs : int;
  procs : int;
  makespan : int;
  total_size : int;
  imbalance : float;
  events : int;
  adds : int;
  removes : int;
  resizes : int;
  rebalances : int;
  auto_rebalances : int;
  trigger_firings : int;
  moved : int;
  last_rebalance_moves : int;
  consistency_checks : int;
  consistency_failures : int;
}

type t = {
  m : int;
  mutable trigger : trigger;
  clock : unit -> float;
  jobs : (string, job) Hashtbl.t;
  by_seq : (int, job) Hashtbl.t;
  per_proc : Job_set.t array;
  load : int array;
  (* Two views of the same load vector: [min_heap] keyed by load answers
     "least-loaded processor" for greedy placement, [max_heap] keyed by
     negated load answers "most-loaded processor" for the repair pass and
     makes [makespan] O(1). Both are updated on every load change. *)
  min_heap : Indexed_heap.t;
  max_heap : Indexed_heap.t;
  mutable next_seq : int;
  mutable total_size : int;
  (* Global size multiset so the largest live job — hence the batch lower
     bound max(avg, max size) — is maintained under removals and resizes. *)
  mutable size_set : Job_set.t;
  mutable events_since_repair : int;
  mutable last_repair : float;
  c : counters;
  obs : obs;
  (* The flight recorder. Gating is sink presence: every emission site is
     one [match] on [journal] when off, and field lists are only built in
     the [Some] branch. *)
  mutable journal : Journal.sink option;
}

let trigger_name = function
  | Manual -> "manual"
  | Every_events _ -> "every_events"
  | Imbalance_above _ -> "imbalance_above"
  | Every_seconds _ -> "every_seconds"

let trigger_to_json trigger =
  let kind = ("kind", Journal.Str (trigger_name trigger)) in
  match trigger with
  | Manual -> Journal.Obj [ kind ]
  | Every_events { events; k } ->
    Journal.Obj [ kind; ("events", Journal.Int events); ("k", Journal.Int k) ]
  | Imbalance_above { threshold; k } ->
    Journal.Obj [ kind; ("threshold", Journal.Float threshold); ("k", Journal.Int k) ]
  | Every_seconds { seconds; k } ->
    Journal.Obj [ kind; ("seconds", Journal.Float seconds); ("k", Journal.Int k) ]

let trigger_of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Journal.Obj fields ->
    let str name =
      match List.assoc_opt name fields with
      | Some (Journal.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "trigger: missing string field %S" name)
    in
    let int name =
      match List.assoc_opt name fields with
      | Some (Journal.Int i) -> Ok i
      | _ -> Error (Printf.sprintf "trigger: missing integer field %S" name)
    in
    let num name =
      match List.assoc_opt name fields with
      | Some (Journal.Float f) -> Ok f
      | Some (Journal.Int i) -> Ok (float_of_int i)
      | _ -> Error (Printf.sprintf "trigger: missing numeric field %S" name)
    in
    let* kind = str "kind" in
    (match kind with
    | "manual" -> Ok Manual
    | "every_events" ->
      let* events = int "events" in
      let* k = int "k" in
      Ok (Every_events { events; k })
    | "imbalance_above" ->
      let* threshold = num "threshold" in
      let* k = int "k" in
      Ok (Imbalance_above { threshold; k })
    | "every_seconds" ->
      let* seconds = num "seconds" in
      let* k = int "k" in
      Ok (Every_seconds { seconds; k })
    | other -> Error (Printf.sprintf "trigger: unknown kind %S" other))
  | _ -> Error "trigger: expected an object"

let journal_header t sink =
  Journal.write_header sink ~journal:"rebal-engine"
    [
      ("m", Journal.Int t.m);
      ("trigger", Journal.Str (trigger_name t.trigger));
      ("trigger_config", trigger_to_json t.trigger);
    ]

let create ?(trigger = Manual) ?(clock = Unix.gettimeofday) ?journal ~m () =
  if m < 1 then invalid_arg "Engine.create: need at least one processor";
  let min_heap = Indexed_heap.create m in
  let max_heap = Indexed_heap.create m in
  for p = 0 to m - 1 do
    Indexed_heap.set min_heap p 0;
    Indexed_heap.set max_heap p 0
  done;
  {
    m;
    trigger;
    clock;
    jobs = Hashtbl.create 64;
    by_seq = Hashtbl.create 64;
    per_proc = Array.make m Job_set.empty;
    load = Array.make m 0;
    min_heap;
    max_heap;
    next_seq = 0;
    total_size = 0;
    size_set = Job_set.empty;
    events_since_repair = 0;
    last_repair = clock ();
    c =
      {
        events = 0;
        adds = 0;
        removes = 0;
        resizes = 0;
        rebalances = 0;
        auto_rebalances = 0;
        trigger_firings = 0;
        moved = 0;
        last_rebalance_moves = 0;
        consistency_checks = 0;
        consistency_failures = 0;
      };
    obs = make_obs ();
    journal;
  }
  |> fun t ->
  (match journal with Some sink -> journal_header t sink | None -> ());
  t

let m t = t.m
let journal t = t.journal
let trigger t = t.trigger

let set_trigger t trigger =
  t.trigger <- trigger;
  (* A fresh policy should not fire off stale state: restart the
     wall-clock epoch, but keep events_since_repair — an Every_events
     policy armed mid-stream still owes a repair for the backlog. *)
  t.last_repair <- t.clock ()

let set_journal t sink =
  t.journal <- sink;
  match sink with Some s -> journal_header t s | None -> ()
let job_count t = Hashtbl.length t.jobs

let makespan t =
  let _, neg = Indexed_heap.min_exn t.max_heap in
  -neg

let loads t = Array.copy t.load

let max_job_size t =
  match Job_set.max_elt_opt t.size_set with
  | None -> 0
  | Some (size, _) -> size

(* Makespan over the batch lower bound max(average load, largest job) —
   the same ratio Verify reports. Using the average alone would make a
   single oversized job read as permanent imbalance no repair can fix,
   and an imbalance trigger would thrash on it. *)
let imbalance t =
  if t.total_size = 0 then 1.0
  else begin
    let bound =
      Float.max
        (float_of_int t.total_size /. float_of_int t.m)
        (float_of_int (max_job_size t))
    in
    float_of_int (makespan t) /. bound
  end

let min_load t = Indexed_heap.min_exn t.min_heap

let peek_heaviest t =
  let p, neg = Indexed_heap.min_exn t.max_heap in
  if neg = 0 then None
  else begin
    let size, seq = Job_set.max_elt t.per_proc.(p) in
    let job = Hashtbl.find t.by_seq seq in
    Some (job.ext, size, p)
  end

let fold_jobs t f acc =
  Hashtbl.fold (fun _ j acc -> f acc ~id:j.ext ~size:j.size ~proc:j.proc) t.jobs acc

let mem t id = Hashtbl.mem t.jobs id

let find t id =
  match Hashtbl.find_opt t.jobs id with
  | None -> None
  | Some j -> Some (j.size, j.proc)

let set_load t p l =
  t.load.(p) <- l;
  Indexed_heap.set t.min_heap p l;
  Indexed_heap.set t.max_heap p (-l)

(* ----- the bounded-move repair pass ----- *)

let repair ~auto t ~k =
  if k < 0 then invalid_arg "Engine.rebalance: negative k";
  Trace.with_span "engine.repair"
    ~attrs:[ ("k", Trace.Int k); ("auto", Trace.Bool auto) ]
  @@ fun () ->
  (* Decision-time context for the journal, captured before any load
     changes. Both reads are O(1); skipped entirely when not journaling. *)
  let decision =
    match t.journal with
    | None -> None
    | Some sink -> Some (sink, makespan t, imbalance t)
  in
  (* Removal phase = GREEDY step 1 on the live state: k times, take the
     largest job off the most-loaded processor (ties: smaller index).
     Each lift records where the job came from and the source load
     before/after — the "why this job" half of the provenance. *)
  let removed = ref [] in
  (try
     for _ = 1 to min k (Hashtbl.length t.jobs) do
       let p, neg = Indexed_heap.min_exn t.max_heap in
       if neg = 0 then raise Exit;
       let ((size, seq) as elt) = Job_set.max_elt t.per_proc.(p) in
       t.per_proc.(p) <- Job_set.remove elt t.per_proc.(p);
       let src_before = t.load.(p) in
       set_load t p (src_before - size);
       removed := (seq, size, p, src_before) :: !removed
     done
   with Exit -> ());
  let lifted = List.length !removed in
  (* Reinsertion phase = GREEDY step 2: descending size (stable in
     removal order) onto the least-loaded processor. *)
  let removed =
    List.stable_sort
      (fun (_, s1, _, _) (_, s2, _, _) -> compare s2 s1)
      (List.rev !removed)
  in
  let moves = ref [] in
  let provenance = ref [] in
  List.iter
    (fun (seq, size, src, src_before) ->
      let job = Hashtbl.find t.by_seq seq in
      let p, l = Indexed_heap.min_exn t.min_heap in
      t.per_proc.(p) <- Job_set.add (size, seq) t.per_proc.(p);
      set_load t p (l + size);
      if p <> job.proc then begin
        moves := { id = job.ext; src = job.proc; dst = p } :: !moves;
        if decision <> None then
          provenance :=
            Journal.Obj
              [
                ("id", Journal.Str job.ext);
                ("size", Journal.Int size);
                ("src", Journal.Int src);
                ("dst", Journal.Int p);
                ("src_load_before", Journal.Int src_before);
                ("src_load_after", Journal.Int (src_before - size));
                ("dst_load_before", Journal.Int l);
                ("dst_load_after", Journal.Int (l + size));
              ]
            :: !provenance;
        job.proc <- p
      end)
    removed;
  let moves = List.rev !moves in
  let n_moves = List.length moves in
  t.c.rebalances <- t.c.rebalances + 1;
  if auto then t.c.auto_rebalances <- t.c.auto_rebalances + 1;
  t.c.moved <- t.c.moved + n_moves;
  t.c.last_rebalance_moves <- n_moves;
  Metrics.Histogram.observe t.obs.moves_per_rebalance (float_of_int n_moves);
  Trace.add_attr "moves" (Trace.Int n_moves);
  t.events_since_repair <- 0;
  t.last_repair <- t.clock ();
  (match decision with
  | None -> ()
  | Some (sink, makespan_before, imbalance_before) ->
    Journal.emit sink ~kind:"rebalance"
      [
        ("k", Journal.Int k);
        ("auto", Journal.Bool auto);
        ("trigger", Journal.Str (trigger_name t.trigger));
        ("imbalance_before", Journal.Float imbalance_before);
        ("makespan_before", Journal.Int makespan_before);
        ("makespan_after", Journal.Int (makespan t));
        ("lifted", Journal.Int lifted);
        ("n_moves", Journal.Int n_moves);
        ("moves", Journal.List (List.rev !provenance));
      ]);
  moves

let rebalance t ~k = timed t.obs.lat_rebalance (fun () -> repair ~auto:false t ~k)

(* ----- trigger policy ----- *)

let trigger_budget t =
  match t.trigger with
  | Manual -> None
  | Every_events { events; k } ->
    if t.events_since_repair >= events then Some k else None
  | Imbalance_above { threshold; k } -> if imbalance t > threshold then Some k else None
  | Every_seconds { seconds; k } ->
    if t.clock () -. t.last_repair >= seconds then Some k else None

let after_event t =
  t.c.events <- t.c.events + 1;
  t.events_since_repair <- t.events_since_repair + 1;
  match trigger_budget t with
  | None -> []
  | Some k ->
    t.c.trigger_firings <- t.c.trigger_firings + 1;
    (match t.journal with
    | None -> ()
    | Some sink ->
      Journal.emit sink ~kind:"trigger"
        [
          ("trigger", Journal.Str (trigger_name t.trigger));
          ("k", Journal.Int k);
          ("imbalance", Journal.Float (imbalance t));
          ("events_since_repair", Journal.Int t.events_since_repair);
        ]);
    timed t.obs.lat_rebalance (fun () -> repair ~auto:true t ~k)

(* ----- single-event updates, all O(log m) ----- *)

let add_job t ~id ~size =
  timed t.obs.lat_add @@ fun () ->
  if size <= 0 then Error (Printf.sprintf "job %s: size must be positive" id)
  else if Hashtbl.mem t.jobs id then Error (Printf.sprintf "job %s already present" id)
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let p, l = Indexed_heap.min_exn t.min_heap in
    let job = { ext = id; seq; size; proc = p } in
    Hashtbl.replace t.jobs id job;
    Hashtbl.replace t.by_seq seq job;
    t.per_proc.(p) <- Job_set.add (size, seq) t.per_proc.(p);
    t.size_set <- Job_set.add (size, seq) t.size_set;
    set_load t p (l + size);
    t.total_size <- t.total_size + size;
    t.c.adds <- t.c.adds + 1;
    (match t.journal with
    | None -> ()
    | Some sink ->
      Journal.emit sink ~kind:"add"
        [
          ("id", Journal.Str id);
          ("size", Journal.Int size);
          ("proc", Journal.Int p);
          ("load_after", Journal.Int t.load.(p));
          ("makespan", Journal.Int (makespan t));
        ]);
    Ok (p, after_event t)
  end

let remove_job t ~id =
  timed t.obs.lat_remove @@ fun () ->
  match Hashtbl.find_opt t.jobs id with
  | None -> Error (Printf.sprintf "job %s not found" id)
  | Some job ->
    let p = job.proc in
    t.per_proc.(p) <- Job_set.remove (job.size, job.seq) t.per_proc.(p);
    t.size_set <- Job_set.remove (job.size, job.seq) t.size_set;
    set_load t p (t.load.(p) - job.size);
    t.total_size <- t.total_size - job.size;
    Hashtbl.remove t.jobs id;
    Hashtbl.remove t.by_seq job.seq;
    t.c.removes <- t.c.removes + 1;
    (match t.journal with
    | None -> ()
    | Some sink ->
      Journal.emit sink ~kind:"remove"
        [
          ("id", Journal.Str id);
          ("size", Journal.Int job.size);
          ("proc", Journal.Int p);
          ("load_after", Journal.Int t.load.(p));
          ("makespan", Journal.Int (makespan t));
        ]);
    Ok (p, after_event t)

let resize_job t ~id ~size =
  timed t.obs.lat_resize @@ fun () ->
  if size <= 0 then Error (Printf.sprintf "job %s: size must be positive" id)
  else
    match Hashtbl.find_opt t.jobs id with
    | None -> Error (Printf.sprintf "job %s not found" id)
    | Some job ->
      let p = job.proc in
      t.per_proc.(p) <-
        Job_set.add (size, job.seq) (Job_set.remove (job.size, job.seq) t.per_proc.(p));
      t.size_set <- Job_set.add (size, job.seq) (Job_set.remove (job.size, job.seq) t.size_set);
      set_load t p (t.load.(p) - job.size + size);
      t.total_size <- t.total_size - job.size + size;
      let old_size = job.size in
      job.size <- size;
      t.c.resizes <- t.c.resizes + 1;
      (match t.journal with
      | None -> ()
      | Some sink ->
        Journal.emit sink ~kind:"resize"
          [
            ("id", Journal.Str id);
            ("size", Journal.Int size);
            ("old_size", Journal.Int old_size);
            ("proc", Journal.Int p);
            ("load_after", Journal.Int t.load.(p));
            ("makespan", Journal.Int (makespan t));
          ]);
      Ok (p, after_event t)

(* ----- snapshots and the consistency-with-batch invariant ----- *)

let stats t =
  {
    jobs = Hashtbl.length t.jobs;
    procs = t.m;
    makespan = makespan t;
    total_size = t.total_size;
    imbalance = imbalance t;
    events = t.c.events;
    adds = t.c.adds;
    removes = t.c.removes;
    resizes = t.c.resizes;
    rebalances = t.c.rebalances;
    auto_rebalances = t.c.auto_rebalances;
    trigger_firings = t.c.trigger_firings;
    moved = t.c.moved;
    last_rebalance_moves = t.c.last_rebalance_moves;
    consistency_checks = t.c.consistency_checks;
    consistency_failures = t.c.consistency_failures;
  }

let to_instance t =
  let jobs = Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs [] in
  let jobs = List.sort (fun a b -> compare a.ext b.ext) jobs in
  let ids = Array.of_list (List.map (fun j -> j.ext) jobs) in
  let sizes = Array.of_list (List.map (fun j -> j.size) jobs) in
  let initial = Array.of_list (List.map (fun j -> j.proc) jobs) in
  (Instance.create ~sizes ~m:t.m initial, ids)

let copy t =
  let jobs = Hashtbl.create (max 64 (Hashtbl.length t.jobs)) in
  let by_seq = Hashtbl.create (max 64 (Hashtbl.length t.jobs)) in
  Hashtbl.iter
    (fun id j ->
      let j' = { j with size = j.size } in
      Hashtbl.replace jobs id j';
      Hashtbl.replace by_seq j'.seq j')
    t.jobs;
  let min_heap = Indexed_heap.create t.m in
  let max_heap = Indexed_heap.create t.m in
  for p = 0 to t.m - 1 do
    Indexed_heap.set min_heap p t.load.(p);
    Indexed_heap.set max_heap p (-t.load.(p))
  done;
  (* size_set and per_proc hold immutable sets, so sharing the values is
     fine; only the containers are copied. The copy never journals: a
     probe repair (check_consistency) writing into the original's journal
     would record a rebalance that never happened to the live engine and
     break replay. *)
  {
    t with
    jobs;
    by_seq;
    per_proc = Array.copy t.per_proc;
    load = Array.copy t.load;
    min_heap;
    max_heap;
    c = { t.c with events = t.c.events };
    journal = None;
  }

(* ----- versioned state snapshots ----- *)

let snapshot_version = 1

let snapshot t =
  let jobs = Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs [] in
  (* Canonical order: ascending sequence number. Job seqs are preserved
     so the (size, seq) repair tie-breaks — hence future move lists —
     survive the round trip bit-exactly. *)
  let jobs = List.sort (fun a b -> compare a.seq b.seq) jobs in
  Journal.Obj
    [
      ("snapshot", Journal.Str "rebal-engine");
      ("version", Journal.Int snapshot_version);
      ("m", Journal.Int t.m);
      ("trigger", trigger_to_json t.trigger);
      ("next_seq", Journal.Int t.next_seq);
      ("events_since_repair", Journal.Int t.events_since_repair);
      ( "jobs",
        Journal.List
          (List.map
             (fun j ->
               Journal.Obj
                 [
                   ("id", Journal.Str j.ext);
                   ("seq", Journal.Int j.seq);
                   ("size", Journal.Int j.size);
                   ("proc", Journal.Int j.proc);
                 ])
             jobs) );
      ( "counters",
        Journal.Obj
          [
            ("events", Journal.Int t.c.events);
            ("adds", Journal.Int t.c.adds);
            ("removes", Journal.Int t.c.removes);
            ("resizes", Journal.Int t.c.resizes);
            ("rebalances", Journal.Int t.c.rebalances);
            ("auto_rebalances", Journal.Int t.c.auto_rebalances);
            ("trigger_firings", Journal.Int t.c.trigger_firings);
            ("moved", Journal.Int t.c.moved);
            ("last_rebalance_moves", Journal.Int t.c.last_rebalance_moves);
            ("consistency_checks", Journal.Int t.c.consistency_checks);
            ("consistency_failures", Journal.Int t.c.consistency_failures);
          ] );
    ]

let of_snapshot ?trigger ?clock ?journal json =
  let ( let* ) = Result.bind in
  let fields = match json with Journal.Obj fields -> fields | _ -> [] in
  let int name =
    match List.assoc_opt name fields with
    | Some (Journal.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "snapshot: missing integer field %S" name)
  in
  let* () =
    match List.assoc_opt "snapshot" fields with
    | Some (Journal.Str "rebal-engine") -> Ok ()
    | Some (Journal.Str other) ->
      Error (Printf.sprintf "snapshot: producer %S, wanted \"rebal-engine\"" other)
    | _ -> Error "snapshot: not a rebal-engine snapshot object"
  in
  let* version = int "version" in
  let* () =
    if version = snapshot_version then Ok ()
    else Error (Printf.sprintf "snapshot: version %d, this build reads %d" version snapshot_version)
  in
  let* m = int "m" in
  let* () = if m >= 1 then Ok () else Error "snapshot: need at least one processor" in
  let* recorded_trigger =
    match List.assoc_opt "trigger" fields with
    | Some json -> trigger_of_json json
    | None -> Error "snapshot: missing trigger"
  in
  let* next_seq = int "next_seq" in
  let* events_since_repair = int "events_since_repair" in
  let* jobs =
    match List.assoc_opt "jobs" fields with
    | Some (Journal.List jobs) -> Ok jobs
    | _ -> Error "snapshot: missing jobs list"
  in
  let trigger = match trigger with Some t -> t | None -> recorded_trigger in
  let t = create ~trigger ?clock ?journal ~m () in
  let* () =
    List.fold_left
      (fun acc job ->
        let* () = acc in
        let jf = match job with Journal.Obj jf -> jf | _ -> [] in
        let jint name =
          match List.assoc_opt name jf with
          | Some (Journal.Int i) -> Ok i
          | _ -> Error (Printf.sprintf "snapshot job: missing integer field %S" name)
        in
        let* id =
          match List.assoc_opt "id" jf with
          | Some (Journal.Str id) -> Ok id
          | _ -> Error "snapshot job: missing id"
        in
        let* seq = jint "seq" in
        let* size = jint "size" in
        let* proc = jint "proc" in
        if size <= 0 then Error (Printf.sprintf "snapshot job %s: size must be positive" id)
        else if proc < 0 || proc >= m then
          Error (Printf.sprintf "snapshot job %s: processor %d out of range" id proc)
        else if seq < 0 || seq >= next_seq then
          Error (Printf.sprintf "snapshot job %s: seq %d out of range" id seq)
        else if Hashtbl.mem t.jobs id then
          Error (Printf.sprintf "snapshot job %s: duplicate id" id)
        else if Hashtbl.mem t.by_seq seq then
          Error (Printf.sprintf "snapshot job %s: duplicate seq %d" id seq)
        else begin
          let job = { ext = id; seq; size; proc } in
          Hashtbl.replace t.jobs id job;
          Hashtbl.replace t.by_seq seq job;
          t.per_proc.(proc) <- Job_set.add (size, seq) t.per_proc.(proc);
          t.size_set <- Job_set.add (size, seq) t.size_set;
          set_load t proc (t.load.(proc) + size);
          t.total_size <- t.total_size + size;
          Ok ()
        end)
      (Ok ()) jobs
  in
  t.next_seq <- next_seq;
  t.events_since_repair <- events_since_repair;
  (match List.assoc_opt "counters" fields with
  | Some (Journal.Obj cf) ->
    let get name dflt =
      match List.assoc_opt name cf with Some (Journal.Int i) -> i | _ -> dflt
    in
    t.c.events <- get "events" 0;
    t.c.adds <- get "adds" 0;
    t.c.removes <- get "removes" 0;
    t.c.resizes <- get "resizes" 0;
    t.c.rebalances <- get "rebalances" 0;
    t.c.auto_rebalances <- get "auto_rebalances" 0;
    t.c.trigger_firings <- get "trigger_firings" 0;
    t.c.moved <- get "moved" 0;
    t.c.last_rebalance_moves <- get "last_rebalance_moves" 0;
    t.c.consistency_checks <- get "consistency_checks" 0;
    t.c.consistency_failures <- get "consistency_failures" 0
  | _ -> ());
  Ok t

let journal_snapshot t =
  match t.journal with
  | None -> Error "no journal attached"
  | Some sink ->
    let seq = Journal.events_written sink in
    Journal.emit sink ~kind:"snapshot" [ ("state", snapshot t) ];
    Ok seq

let check_consistency t ~k =
  let inst, _ = to_instance t in
  let batch = Assignment.makespan inst (Rebal_algo.Greedy.solve inst ~k) in
  let probe = copy t in
  ignore (repair ~auto:false probe ~k);
  let ok = makespan probe = batch in
  t.c.consistency_checks <- t.c.consistency_checks + 1;
  if not ok then t.c.consistency_failures <- t.c.consistency_failures + 1;
  (match t.journal with
  | None -> ()
  | Some sink ->
    Journal.emit sink ~kind:"check"
      [
        ("k", Journal.Int k);
        ("ok", Journal.Bool ok);
        ("batch_makespan", Journal.Int batch);
        ("repair_makespan", Journal.Int (makespan probe));
      ]);
  ok
