module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Indexed_heap = Rebal_ds.Indexed_heap
module Flat_str_map = Rebal_ds.Flat_str_map
module Metrics = Rebal_obs.Metrics
module Trace = Rebal_obs.Trace
module Control = Rebal_obs.Control
module Journal = Rebal_obs.Journal
module Timer = Rebal_harness.Timer

(* The flat core. Every job lives in a slot of a set of parallel int
   arrays (plus one string array for the external id); slots are
   recycled through a free-list, so once the arrays have grown to the
   workload's high-water mark a steady add/remove/resize churn performs
   zero minor-heap allocation. The orderings the repair pass consumes
   are flat binary heaps of slot indices:

   - one per-processor heap ordered (size desc, seq asc), whose root is
     exactly the element [Job_set.max_elt] used to yield — the largest
     job, smallest sequence number on ties;
   - one global heap in the same order, whose root gives the largest
     live job for the imbalance lower bound;
   - the two [Indexed_heap]s over processor loads, unchanged.

   The id -> slot directory is an open-addressing [Flat_str_map], the
   only string-keyed structure left on the hot path. *)

type trigger =
  | Manual
  | Every_events of { events : int; k : int }
  | Imbalance_above of { threshold : float; k : int }
  | Every_seconds of { seconds : float; k : int }

type move = {
  id : string;
  src : int;
  dst : int;
}

type op =
  | Add of { id : string; size : int }
  | Remove of { id : string }
  | Resize of { id : string; size : int }

type counters = {
  mutable events : int;
  mutable adds : int;
  mutable removes : int;
  mutable resizes : int;
  mutable rebalances : int;
  mutable auto_rebalances : int;
  mutable trigger_firings : int;
  mutable moved : int;
  mutable last_rebalance_moves : int;
  mutable consistency_checks : int;
  mutable consistency_failures : int;
}

(* Histogram handles bound to the registry current at [create] time, so
   a serve daemon's engine and a test's [with_registry]-scoped engine
   never share series. Observing when disabled would still be cheap, but
   latency observations need two clock reads — those are gated on
   [Control.enabled] so the engine stays on the fast path by default. *)
type obs = {
  lat_add : Metrics.histogram;
  lat_remove : Metrics.histogram;
  lat_resize : Metrics.histogram;
  lat_rebalance : Metrics.histogram;
  moves_per_rebalance : Metrics.histogram;
}

let make_obs () =
  let lat op =
    Metrics.histogram
      ~labels:[ ("op", op) ]
      ~help:"Engine operation latency in seconds" "rebal_engine_op_latency_seconds"
  in
  {
    lat_add = lat "add";
    lat_remove = lat "remove";
    lat_resize = lat "resize";
    lat_rebalance = lat "rebalance";
    moves_per_rebalance =
      Metrics.histogram ~help:"Jobs relocated per repair pass"
        ~buckets:[| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]
        "rebal_engine_moves_per_rebalance";
  }

let timed hist f =
  if Control.enabled () then begin
    let start = Timer.now_ns () in
    let r = f () in
    Metrics.Histogram.observe_ns hist (Int64.sub (Timer.now_ns ()) start);
    r
  end
  else f ()

type stats = {
  jobs : int;
  procs : int;
  makespan : int;
  total_size : int;
  imbalance : float;
  events : int;
  adds : int;
  removes : int;
  resizes : int;
  rebalances : int;
  auto_rebalances : int;
  trigger_firings : int;
  moved : int;
  last_rebalance_moves : int;
  consistency_checks : int;
  consistency_failures : int;
}

(* Placeholder id for free slots: assigning it releases the reference to
   the departed job's id string. Never compared physically. *)
let no_id = ""

type t = {
  m : int;
  mutable trigger : trigger;
  clock : unit -> float;
  dir : Flat_str_map.t; (* external id -> slot *)
  (* ----- the slot table: parallel arrays indexed by slot ----- *)
  mutable cap : int;
  mutable job_ext : string array;
  mutable job_size : int array;
  mutable job_seq : int array;
  mutable job_proc : int array; (* -1 marks a free slot *)
  mutable job_hpos : int array; (* position in its processor's heap *)
  mutable job_gpos : int array; (* position in the global size heap *)
  mutable free : int array; (* stack of recycled slots below [hw] *)
  mutable free_len : int;
  mutable hw : int; (* slots ever handed out (the scan bound) *)
  mutable live : int;
  (* per-processor heaps of slots, ordered (size desc, seq asc) *)
  pheap : int array array;
  plen : int array;
  (* global size heap in the same order — replaces the size multiset *)
  mutable gheap : int array;
  mutable glen : int;
  load : int array;
  (* Two views of the same load vector: [min_heap] keyed by load answers
     "least-loaded processor" for greedy placement, [max_heap] keyed by
     negated load answers "most-loaded processor" for the repair pass and
     makes [makespan] O(1). Both are updated on every load change. *)
  min_heap : Indexed_heap.t;
  max_heap : Indexed_heap.t;
  mutable next_seq : int;
  mutable total_size : int;
  mutable events_since_repair : int;
  mutable last_repair : float;
  (* repair scratch, sized [cap] so the removal phase never allocates *)
  mutable scr_slot : int array;
  mutable scr_src : int array;
  mutable scr_before : int array;
  mutable scr_ord : int array;
  c : counters;
  obs : obs;
  (* The flight recorder. Gating is sink presence: every emission site is
     one [match] on [journal] when off, and field lists are only built in
     the [Some] branch. *)
  mutable journal : Journal.sink option;
}

let trigger_name = function
  | Manual -> "manual"
  | Every_events _ -> "every_events"
  | Imbalance_above _ -> "imbalance_above"
  | Every_seconds _ -> "every_seconds"

let trigger_to_json trigger =
  let kind = ("kind", Journal.Str (trigger_name trigger)) in
  match trigger with
  | Manual -> Journal.Obj [ kind ]
  | Every_events { events; k } ->
    Journal.Obj [ kind; ("events", Journal.Int events); ("k", Journal.Int k) ]
  | Imbalance_above { threshold; k } ->
    Journal.Obj [ kind; ("threshold", Journal.Float threshold); ("k", Journal.Int k) ]
  | Every_seconds { seconds; k } ->
    Journal.Obj [ kind; ("seconds", Journal.Float seconds); ("k", Journal.Int k) ]

let trigger_of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Journal.Obj fields ->
    let str name =
      match List.assoc_opt name fields with
      | Some (Journal.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "trigger: missing string field %S" name)
    in
    let int name =
      match List.assoc_opt name fields with
      | Some (Journal.Int i) -> Ok i
      | _ -> Error (Printf.sprintf "trigger: missing integer field %S" name)
    in
    let num name =
      match List.assoc_opt name fields with
      | Some (Journal.Float f) -> Ok f
      | Some (Journal.Int i) -> Ok (float_of_int i)
      | _ -> Error (Printf.sprintf "trigger: missing numeric field %S" name)
    in
    let* kind = str "kind" in
    (match kind with
    | "manual" -> Ok Manual
    | "every_events" ->
      let* events = int "events" in
      let* k = int "k" in
      Ok (Every_events { events; k })
    | "imbalance_above" ->
      let* threshold = num "threshold" in
      let* k = int "k" in
      Ok (Imbalance_above { threshold; k })
    | "every_seconds" ->
      let* seconds = num "seconds" in
      let* k = int "k" in
      Ok (Every_seconds { seconds; k })
    | other -> Error (Printf.sprintf "trigger: unknown kind %S" other))
  | _ -> Error "trigger: expected an object"

let journal_header t sink =
  Journal.write_header sink ~journal:"rebal-engine"
    [
      ("m", Journal.Int t.m);
      ("trigger", Journal.Str (trigger_name t.trigger));
      ("trigger_config", trigger_to_json t.trigger);
    ]

let initial_cap = 64

let create ?(trigger = Manual) ?(clock = Unix.gettimeofday) ?journal ~m () =
  if m < 1 then invalid_arg "Engine.create: need at least one processor";
  let min_heap = Indexed_heap.create m in
  let max_heap = Indexed_heap.create m in
  for p = 0 to m - 1 do
    Indexed_heap.set min_heap p 0;
    Indexed_heap.set max_heap p 0
  done;
  {
    m;
    trigger;
    clock;
    dir = Flat_str_map.create initial_cap;
    cap = initial_cap;
    job_ext = Array.make initial_cap no_id;
    job_size = Array.make initial_cap 0;
    job_seq = Array.make initial_cap 0;
    job_proc = Array.make initial_cap (-1);
    job_hpos = Array.make initial_cap 0;
    job_gpos = Array.make initial_cap 0;
    free = Array.make initial_cap 0;
    free_len = 0;
    hw = 0;
    live = 0;
    pheap = Array.init m (fun _ -> Array.make 8 0);
    plen = Array.make m 0;
    gheap = Array.make initial_cap 0;
    glen = 0;
    load = Array.make m 0;
    min_heap;
    max_heap;
    next_seq = 0;
    total_size = 0;
    events_since_repair = 0;
    last_repair = clock ();
    scr_slot = Array.make initial_cap 0;
    scr_src = Array.make initial_cap 0;
    scr_before = Array.make initial_cap 0;
    scr_ord = Array.make initial_cap 0;
    c =
      {
        events = 0;
        adds = 0;
        removes = 0;
        resizes = 0;
        rebalances = 0;
        auto_rebalances = 0;
        trigger_firings = 0;
        moved = 0;
        last_rebalance_moves = 0;
        consistency_checks = 0;
        consistency_failures = 0;
      };
    obs = make_obs ();
    journal;
  }
  |> fun t ->
  (match journal with Some sink -> journal_header t sink | None -> ());
  t

let m t = t.m
let journal t = t.journal
let trigger t = t.trigger

let set_trigger t trigger =
  t.trigger <- trigger;
  (* A fresh policy should not fire off stale state: restart the
     wall-clock epoch, but keep events_since_repair — an Every_events
     policy armed mid-stream still owes a repair for the backlog. *)
  t.last_repair <- t.clock ()

let set_journal t sink =
  t.journal <- sink;
  match sink with Some s -> journal_header t s | None -> ()

let job_count t = t.live
let makespan t = -Indexed_heap.min_prio_exn t.max_heap
let loads t = Array.copy t.load
let max_job_size t = if t.glen = 0 then 0 else t.job_size.(t.gheap.(0))

(* Makespan over the batch lower bound max(average load, largest job) —
   the same ratio Verify reports. Using the average alone would make a
   single oversized job read as permanent imbalance no repair can fix,
   and an imbalance trigger would thrash on it. *)
let imbalance t =
  if t.total_size = 0 then 1.0
  else begin
    let bound =
      Float.max
        (float_of_int t.total_size /. float_of_int t.m)
        (float_of_int (max_job_size t))
    in
    float_of_int (makespan t) /. bound
  end

let min_load t = Indexed_heap.min_exn t.min_heap

let peek_heaviest t =
  let p = Indexed_heap.min_key_exn t.max_heap in
  if t.load.(p) = 0 then None
  else begin
    let slot = t.pheap.(p).(0) in
    Some (t.job_ext.(slot), t.job_size.(slot), p)
  end

let fold_jobs t f acc =
  let acc = ref acc in
  for slot = 0 to t.hw - 1 do
    if t.job_proc.(slot) >= 0 then
      acc :=
        f !acc ~id:t.job_ext.(slot) ~size:t.job_size.(slot)
          ~proc:t.job_proc.(slot)
  done;
  !acc

let mem t id = Flat_str_map.mem t.dir id

let find t id =
  let slot = Flat_str_map.find t.dir id in
  if slot < 0 then None else Some (t.job_size.(slot), t.job_proc.(slot))

let set_load t p l =
  t.load.(p) <- l;
  Indexed_heap.set t.min_heap p l;
  Indexed_heap.set t.max_heap p (-l)

(* ----- flat heaps of slots, ordered (size desc, seq asc) ----- *)

(* [a] extracts before [b]: strictly larger, or same size and earlier
   arrival — exactly the order the batch GREEDY consumes. *)
let slot_before t a b =
  let sa = t.job_size.(a) and sb = t.job_size.(b) in
  sa > sb || (sa = sb && t.job_seq.(a) < t.job_seq.(b))

let rec jsift_up t heap pos i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let si = heap.(i) and sp = heap.(parent) in
    if slot_before t si sp then begin
      heap.(i) <- sp;
      heap.(parent) <- si;
      pos.(sp) <- i;
      pos.(si) <- parent;
      jsift_up t heap pos parent
    end
  end

let rec jsift_down t heap pos len i =
  let l = (2 * i) + 1 in
  if l < len then begin
    let r = l + 1 in
    let best = if r < len && slot_before t heap.(r) heap.(l) then r else l in
    if slot_before t heap.(best) heap.(i) then begin
      let sb = heap.(best) and si = heap.(i) in
      heap.(i) <- sb;
      heap.(best) <- si;
      pos.(sb) <- i;
      pos.(si) <- best;
      jsift_down t heap pos len best
    end
  end

let pheap_push t p slot =
  let n = t.plen.(p) in
  (if n >= Array.length t.pheap.(p) then begin
     let bigger = Array.make (2 * Array.length t.pheap.(p)) 0 in
     Array.blit t.pheap.(p) 0 bigger 0 n;
     t.pheap.(p) <- bigger
   end);
  let h = t.pheap.(p) in
  h.(n) <- slot;
  t.job_hpos.(slot) <- n;
  t.plen.(p) <- n + 1;
  jsift_up t h t.job_hpos n

(* Standard last-element replacement (same pattern as
   [Indexed_heap.remove]): the replacement sifts up or down, and the one
   that doesn't apply is a no-op. *)
let pheap_remove t p slot =
  let h = t.pheap.(p) in
  let i = t.job_hpos.(slot) in
  let last = t.plen.(p) - 1 in
  t.plen.(p) <- last;
  if i < last then begin
    let moved = h.(last) in
    h.(i) <- moved;
    t.job_hpos.(moved) <- i;
    jsift_up t h t.job_hpos i;
    jsift_down t h t.job_hpos last i
  end

(* After a resize only one direction can be violated: a grown job
   extracts earlier (sift up), a shrunk one later (sift down). *)
let pheap_reorder t p slot ~up =
  let h = t.pheap.(p) in
  if up then jsift_up t h t.job_hpos t.job_hpos.(slot)
  else jsift_down t h t.job_hpos t.plen.(p) t.job_hpos.(slot)

let gheap_push t slot =
  let n = t.glen in
  t.gheap.(n) <- slot;
  t.job_gpos.(slot) <- n;
  t.glen <- n + 1;
  jsift_up t t.gheap t.job_gpos n

let gheap_remove t slot =
  let i = t.job_gpos.(slot) in
  let last = t.glen - 1 in
  t.glen <- last;
  if i < last then begin
    let moved = t.gheap.(last) in
    t.gheap.(i) <- moved;
    t.job_gpos.(moved) <- i;
    jsift_up t t.gheap t.job_gpos i;
    jsift_down t t.gheap t.job_gpos last i
  end

let gheap_reorder t slot ~up =
  if up then jsift_up t t.gheap t.job_gpos t.job_gpos.(slot)
  else jsift_down t t.gheap t.job_gpos t.glen t.job_gpos.(slot)

(* ----- slot allocation ----- *)

let grow_slots_to t cap =
  if cap > t.cap then begin
    let exts = Array.make cap no_id in
    Array.blit t.job_ext 0 exts 0 t.cap;
    t.job_ext <- exts;
    let grown a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 t.cap;
      b
    in
    t.job_size <- grown t.job_size;
    t.job_seq <- grown t.job_seq;
    let procs = Array.make cap (-1) in
    Array.blit t.job_proc 0 procs 0 t.cap;
    t.job_proc <- procs;
    t.job_hpos <- grown t.job_hpos;
    t.job_gpos <- grown t.job_gpos;
    t.free <- grown t.free;
    t.gheap <- grown t.gheap;
    t.scr_slot <- Array.make cap 0;
    t.scr_src <- Array.make cap 0;
    t.scr_before <- Array.make cap 0;
    t.scr_ord <- Array.make cap 0;
    t.cap <- cap
  end

let alloc_slot t =
  if t.free_len > 0 then begin
    t.free_len <- t.free_len - 1;
    t.free.(t.free_len)
  end
  else begin
    if t.hw >= t.cap then grow_slots_to t (2 * t.cap);
    let slot = t.hw in
    t.hw <- t.hw + 1;
    slot
  end

let rec pow2_above k n = if k >= n then k else pow2_above (k * 2) n

(* Pre-size every structure for [jobs] live jobs so that no later
   operation allocates even in the worst placement skew (all jobs on one
   processor). Latency-sensitive callers and the allocation benchmark
   use this to take growth out of the measured window. *)
let reserve t ~jobs =
  if jobs < 0 then invalid_arg "Engine.reserve: negative job count";
  grow_slots_to t (pow2_above initial_cap jobs);
  Flat_str_map.reserve t.dir jobs;
  for p = 0 to t.m - 1 do
    if Array.length t.pheap.(p) < jobs then begin
      let bigger = Array.make (max jobs 8) 0 in
      Array.blit t.pheap.(p) 0 bigger 0 t.plen.(p);
      t.pheap.(p) <- bigger
    end
  done

(* ----- the bounded-move repair pass ----- *)

let repair ~auto t ~k =
  if k < 0 then invalid_arg "Engine.rebalance: negative k";
  Trace.with_span "engine.repair"
    ~attrs:[ ("k", Trace.Int k); ("auto", Trace.Bool auto) ]
  @@ fun () ->
  (* Decision-time context for the journal, captured before any load
     changes. Both reads are O(1); skipped entirely when not journaling. *)
  let decision =
    match t.journal with
    | None -> None
    | Some sink -> Some (sink, makespan t, imbalance t)
  in
  let journaling = match decision with None -> false | Some _ -> true in
  (* Removal phase = GREEDY step 1 on the live state: k times, take the
     largest job off the most-loaded processor (ties: smaller index).
     Each lift records where the job came from and the source load
     before/after — the "why this job" half of the provenance. *)
  let lifted = ref 0 in
  let limit = min k t.live in
  (try
     while !lifted < limit do
       let p = Indexed_heap.min_key_exn t.max_heap in
       if t.load.(p) = 0 then raise Exit;
       let slot = t.pheap.(p).(0) in
       let size = t.job_size.(slot) in
       pheap_remove t p slot;
       let src_before = t.load.(p) in
       set_load t p (src_before - size);
       t.scr_slot.(!lifted) <- slot;
       t.scr_src.(!lifted) <- p;
       t.scr_before.(!lifted) <- src_before;
       t.scr_ord.(!lifted) <- !lifted;
       incr lifted
     done
   with Exit -> ());
  let lifted = !lifted in
  (* Reinsertion phase = GREEDY step 2: descending size, stable in
     removal order, onto the least-loaded processor. The (size desc,
     removal-order asc) key is a total order, so this in-place insertion
     sort yields exactly the permutation the old stable sort did. *)
  for i = 1 to lifted - 1 do
    let slot = t.scr_slot.(i)
    and src = t.scr_src.(i)
    and before = t.scr_before.(i)
    and ord = t.scr_ord.(i) in
    let size = t.job_size.(slot) in
    let j = ref (i - 1) in
    while
      !j >= 0
      &&
      let sj = t.job_size.(t.scr_slot.(!j)) in
      sj < size || (sj = size && t.scr_ord.(!j) > ord)
    do
      t.scr_slot.(!j + 1) <- t.scr_slot.(!j);
      t.scr_src.(!j + 1) <- t.scr_src.(!j);
      t.scr_before.(!j + 1) <- t.scr_before.(!j);
      t.scr_ord.(!j + 1) <- t.scr_ord.(!j);
      decr j
    done;
    t.scr_slot.(!j + 1) <- slot;
    t.scr_src.(!j + 1) <- src;
    t.scr_before.(!j + 1) <- before;
    t.scr_ord.(!j + 1) <- ord
  done;
  let moves = ref [] in
  let provenance = ref [] in
  for i = 0 to lifted - 1 do
    let slot = t.scr_slot.(i) in
    let size = t.job_size.(slot) in
    let p = Indexed_heap.min_key_exn t.min_heap in
    let l = t.load.(p) in
    pheap_push t p slot;
    set_load t p (l + size);
    if p <> t.job_proc.(slot) then begin
      moves := { id = t.job_ext.(slot); src = t.job_proc.(slot); dst = p } :: !moves;
      if journaling then
        provenance :=
          Journal.Obj
            [
              ("id", Journal.Str t.job_ext.(slot));
              ("size", Journal.Int size);
              ("src", Journal.Int t.scr_src.(i));
              ("dst", Journal.Int p);
              ("src_load_before", Journal.Int t.scr_before.(i));
              ("src_load_after", Journal.Int (t.scr_before.(i) - size));
              ("dst_load_before", Journal.Int l);
              ("dst_load_after", Journal.Int (l + size));
            ]
          :: !provenance;
      t.job_proc.(slot) <- p
    end
  done;
  let moves = List.rev !moves in
  let n_moves = List.length moves in
  t.c.rebalances <- t.c.rebalances + 1;
  if auto then t.c.auto_rebalances <- t.c.auto_rebalances + 1;
  t.c.moved <- t.c.moved + n_moves;
  t.c.last_rebalance_moves <- n_moves;
  Metrics.Histogram.observe t.obs.moves_per_rebalance (float_of_int n_moves);
  Trace.add_attr "moves" (Trace.Int n_moves);
  t.events_since_repair <- 0;
  t.last_repair <- t.clock ();
  (match decision with
  | None -> ()
  | Some (sink, makespan_before, imbalance_before) ->
    Journal.emit sink ~kind:"rebalance"
      [
        ("k", Journal.Int k);
        ("auto", Journal.Bool auto);
        ("trigger", Journal.Str (trigger_name t.trigger));
        ("imbalance_before", Journal.Float imbalance_before);
        ("makespan_before", Journal.Int makespan_before);
        ("makespan_after", Journal.Int (makespan t));
        ("lifted", Journal.Int lifted);
        ("n_moves", Journal.Int n_moves);
        ("moves", Journal.List (List.rev !provenance));
      ]);
  moves

let rebalance t ~k = timed t.obs.lat_rebalance (fun () -> repair ~auto:false t ~k)

(* ----- trigger policy ----- *)

let trigger_budget t =
  match t.trigger with
  | Manual -> None
  | Every_events { events; k } ->
    if t.events_since_repair >= events then Some k else None
  | Imbalance_above { threshold; k } -> if imbalance t > threshold then Some k else None
  | Every_seconds { seconds; k } ->
    if t.clock () -. t.last_repair >= seconds then Some k else None

let after_event t =
  t.c.events <- t.c.events + 1;
  t.events_since_repair <- t.events_since_repair + 1;
  match trigger_budget t with
  | None -> []
  | Some k ->
    t.c.trigger_firings <- t.c.trigger_firings + 1;
    (match t.journal with
    | None -> ()
    | Some sink ->
      Journal.emit sink ~kind:"trigger"
        [
          ("trigger", Journal.Str (trigger_name t.trigger));
          ("k", Journal.Int k);
          ("imbalance", Journal.Float (imbalance t));
          ("events_since_repair", Journal.Int t.events_since_repair);
        ]);
    timed t.obs.lat_rebalance (fun () -> repair ~auto:true t ~k)

(* ----- single-event kernels, all O(log m) and allocation-free -----

   The kernels assume validated input (positive size, presence checked
   by the caller), mutate the flat state, bump counters and journal;
   the public wrappers and [apply_bulk] share them, so a batch leaves
   state, stats and journal bytes identical to one-by-one application. *)

let add_slot t id size =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let p = Indexed_heap.min_key_exn t.min_heap in
  let l = t.load.(p) in
  let slot = alloc_slot t in
  t.job_ext.(slot) <- id;
  t.job_size.(slot) <- size;
  t.job_seq.(slot) <- seq;
  t.job_proc.(slot) <- p;
  Flat_str_map.set t.dir id slot;
  pheap_push t p slot;
  gheap_push t slot;
  set_load t p (l + size);
  t.total_size <- t.total_size + size;
  t.live <- t.live + 1;
  t.c.adds <- t.c.adds + 1;
  (match t.journal with
  | None -> ()
  | Some sink ->
    (* Streamed: same bytes as [Journal.emit], no field-list alloc. *)
    Journal.Emit.start sink ~kind:"add" ~fields:5;
    Journal.Emit.str sink "id" id;
    Journal.Emit.int sink "size" size;
    Journal.Emit.int sink "proc" p;
    Journal.Emit.int sink "load_after" t.load.(p);
    Journal.Emit.int sink "makespan" (makespan t);
    Journal.Emit.finish sink);
  p

let remove_slot t slot =
  let id = t.job_ext.(slot) in
  let size = t.job_size.(slot) in
  let p = t.job_proc.(slot) in
  pheap_remove t p slot;
  gheap_remove t slot;
  set_load t p (t.load.(p) - size);
  t.total_size <- t.total_size - size;
  Flat_str_map.remove t.dir id;
  t.job_proc.(slot) <- -1;
  t.job_ext.(slot) <- no_id;
  t.free.(t.free_len) <- slot;
  t.free_len <- t.free_len + 1;
  t.live <- t.live - 1;
  t.c.removes <- t.c.removes + 1;
  (match t.journal with
  | None -> ()
  | Some sink ->
    Journal.Emit.start sink ~kind:"remove" ~fields:5;
    Journal.Emit.str sink "id" id;
    Journal.Emit.int sink "size" size;
    Journal.Emit.int sink "proc" p;
    Journal.Emit.int sink "load_after" t.load.(p);
    Journal.Emit.int sink "makespan" (makespan t);
    Journal.Emit.finish sink);
  p

let resize_slot t slot size =
  let p = t.job_proc.(slot) in
  let old_size = t.job_size.(slot) in
  t.job_size.(slot) <- size;
  pheap_reorder t p slot ~up:(size > old_size);
  gheap_reorder t slot ~up:(size > old_size);
  set_load t p (t.load.(p) - old_size + size);
  t.total_size <- t.total_size - old_size + size;
  t.c.resizes <- t.c.resizes + 1;
  (match t.journal with
  | None -> ()
  | Some sink ->
    Journal.Emit.start sink ~kind:"resize" ~fields:6;
    Journal.Emit.str sink "id" t.job_ext.(slot);
    Journal.Emit.int sink "size" size;
    Journal.Emit.int sink "old_size" old_size;
    Journal.Emit.int sink "proc" p;
    Journal.Emit.int sink "load_after" t.load.(p);
    Journal.Emit.int sink "makespan" (makespan t);
    Journal.Emit.finish sink);
  p

(* ----- public single-event updates ----- *)

let add_job t ~id ~size =
  timed t.obs.lat_add @@ fun () ->
  if size <= 0 then Error (Printf.sprintf "job %s: size must be positive" id)
  else if Flat_str_map.mem t.dir id then
    Error (Printf.sprintf "job %s already present" id)
  else begin
    let p = add_slot t id size in
    Ok (p, after_event t)
  end

let remove_job t ~id =
  timed t.obs.lat_remove @@ fun () ->
  let slot = Flat_str_map.find t.dir id in
  if slot < 0 then Error (Printf.sprintf "job %s not found" id)
  else begin
    let p = remove_slot t slot in
    Ok (p, after_event t)
  end

let resize_job t ~id ~size =
  timed t.obs.lat_resize @@ fun () ->
  if size <= 0 then Error (Printf.sprintf "job %s: size must be positive" id)
  else begin
    let slot = Flat_str_map.find t.dir id in
    if slot < 0 then Error (Printf.sprintf "job %s not found" id)
    else begin
      let p = resize_slot t slot size in
      Ok (p, after_event t)
    end
  end

(* ----- batched application ----- *)

let apply_op t op =
  match op with
  | Add { id; size } ->
    if size <= 0 then Error (Printf.sprintf "job %s: size must be positive" id)
    else if Flat_str_map.mem t.dir id then
      Error (Printf.sprintf "job %s already present" id)
    else begin
      let p = add_slot t id size in
      Ok (p, after_event t)
    end
  | Remove { id } ->
    let slot = Flat_str_map.find t.dir id in
    if slot < 0 then Error (Printf.sprintf "job %s not found" id)
    else begin
      let p = remove_slot t slot in
      Ok (p, after_event t)
    end
  | Resize { id; size } ->
    if size <= 0 then Error (Printf.sprintf "job %s: size must be positive" id)
    else begin
      let slot = Flat_str_map.find t.dir id in
      if slot < 0 then Error (Printf.sprintf "job %s not found" id)
      else begin
        let p = resize_slot t slot size in
        Ok (p, after_event t)
      end
    end

(* The two loops differ only in whether per-op results are materialized:
   without a consumer, building [Ok (p, moves)] per op would be the one
   remaining steady-state allocation. Invalid ops change no state in
   either path (exactly like their one-by-one counterparts), so silently
   skipping them in the quiet loop is state-identical. *)
let apply_bulk_loop t on_result ops =
  match on_result with
  | None ->
    for i = 0 to Array.length ops - 1 do
      match ops.(i) with
      | Add { id; size } ->
        if size > 0 && Flat_str_map.find t.dir id < 0 then begin
          let _p : int = add_slot t id size in
          ignore (after_event t)
        end
      | Remove { id } ->
        let slot = Flat_str_map.find t.dir id in
        if slot >= 0 then begin
          let _p : int = remove_slot t slot in
          ignore (after_event t)
        end
      | Resize { id; size } ->
        if size > 0 then begin
          let slot = Flat_str_map.find t.dir id in
          if slot >= 0 then begin
            let _p : int = resize_slot t slot size in
            ignore (after_event t)
          end
        end
    done
  | Some f ->
    for i = 0 to Array.length ops - 1 do
      f i ops.(i) (apply_op t ops.(i))
    done

let apply_bulk t ?on_result ops =
  match t.journal with
  | None -> apply_bulk_loop t on_result ops
  | Some sink ->
    (* One sink write for the whole batch; the bytes are identical to
       per-op writes, so replay and tail see the same journal. *)
    Journal.begin_batch sink;
    Fun.protect
      ~finally:(fun () -> Journal.end_batch sink)
      (fun () -> apply_bulk_loop t on_result ops)

(* ----- snapshots and the consistency-with-batch invariant ----- *)

let stats t =
  {
    jobs = t.live;
    procs = t.m;
    makespan = makespan t;
    total_size = t.total_size;
    imbalance = imbalance t;
    events = t.c.events;
    adds = t.c.adds;
    removes = t.c.removes;
    resizes = t.c.resizes;
    rebalances = t.c.rebalances;
    auto_rebalances = t.c.auto_rebalances;
    trigger_firings = t.c.trigger_firings;
    moved = t.c.moved;
    last_rebalance_moves = t.c.last_rebalance_moves;
    consistency_checks = t.c.consistency_checks;
    consistency_failures = t.c.consistency_failures;
  }

let live_slots t =
  let slots = ref [] in
  for slot = t.hw - 1 downto 0 do
    if t.job_proc.(slot) >= 0 then slots := slot :: !slots
  done;
  !slots

let to_instance t =
  let slots =
    List.sort
      (fun a b -> compare t.job_ext.(a) t.job_ext.(b))
      (live_slots t)
  in
  let ids = Array.of_list (List.map (fun s -> t.job_ext.(s)) slots) in
  let sizes = Array.of_list (List.map (fun s -> t.job_size.(s)) slots) in
  let initial = Array.of_list (List.map (fun s -> t.job_proc.(s)) slots) in
  (Instance.create ~sizes ~m:t.m initial, ids)

let copy t =
  let dir = Flat_str_map.create (max initial_cap t.live) in
  for slot = 0 to t.hw - 1 do
    if t.job_proc.(slot) >= 0 then Flat_str_map.set dir t.job_ext.(slot) slot
  done;
  let min_heap = Indexed_heap.create t.m in
  let max_heap = Indexed_heap.create t.m in
  for p = 0 to t.m - 1 do
    Indexed_heap.set min_heap p t.load.(p);
    Indexed_heap.set max_heap p (-t.load.(p))
  done;
  (* The copy never journals: a probe repair (check_consistency) writing
     into the original's journal would record a rebalance that never
     happened to the live engine and break replay. *)
  {
    t with
    dir;
    job_ext = Array.copy t.job_ext;
    job_size = Array.copy t.job_size;
    job_seq = Array.copy t.job_seq;
    job_proc = Array.copy t.job_proc;
    job_hpos = Array.copy t.job_hpos;
    job_gpos = Array.copy t.job_gpos;
    free = Array.copy t.free;
    pheap = Array.map Array.copy t.pheap;
    plen = Array.copy t.plen;
    gheap = Array.copy t.gheap;
    load = Array.copy t.load;
    min_heap;
    max_heap;
    scr_slot = Array.copy t.scr_slot;
    scr_src = Array.copy t.scr_src;
    scr_before = Array.copy t.scr_before;
    scr_ord = Array.copy t.scr_ord;
    c = { t.c with events = t.c.events };
    journal = None;
  }

(* ----- versioned state snapshots ----- *)

let snapshot_version = 1

let snapshot t =
  (* Canonical order: ascending sequence number. Job seqs are preserved
     so the (size, seq) repair tie-breaks — hence future move lists —
     survive the round trip bit-exactly. *)
  let slots =
    List.sort (fun a b -> compare t.job_seq.(a) t.job_seq.(b)) (live_slots t)
  in
  Journal.Obj
    [
      ("snapshot", Journal.Str "rebal-engine");
      ("version", Journal.Int snapshot_version);
      ("m", Journal.Int t.m);
      ("trigger", trigger_to_json t.trigger);
      ("next_seq", Journal.Int t.next_seq);
      ("events_since_repair", Journal.Int t.events_since_repair);
      ( "jobs",
        Journal.List
          (List.map
             (fun s ->
               Journal.Obj
                 [
                   ("id", Journal.Str t.job_ext.(s));
                   ("seq", Journal.Int t.job_seq.(s));
                   ("size", Journal.Int t.job_size.(s));
                   ("proc", Journal.Int t.job_proc.(s));
                 ])
             slots) );
      ( "counters",
        Journal.Obj
          [
            ("events", Journal.Int t.c.events);
            ("adds", Journal.Int t.c.adds);
            ("removes", Journal.Int t.c.removes);
            ("resizes", Journal.Int t.c.resizes);
            ("rebalances", Journal.Int t.c.rebalances);
            ("auto_rebalances", Journal.Int t.c.auto_rebalances);
            ("trigger_firings", Journal.Int t.c.trigger_firings);
            ("moved", Journal.Int t.c.moved);
            ("last_rebalance_moves", Journal.Int t.c.last_rebalance_moves);
            ("consistency_checks", Journal.Int t.c.consistency_checks);
            ("consistency_failures", Journal.Int t.c.consistency_failures);
          ] );
    ]

(* Place a job at an explicit (seq, proc) — snapshot restore, where the
   recorded placement overrides greedy choice. *)
let restore_slot t ~id ~seq ~size ~proc =
  let slot = alloc_slot t in
  t.job_ext.(slot) <- id;
  t.job_size.(slot) <- size;
  t.job_seq.(slot) <- seq;
  t.job_proc.(slot) <- proc;
  Flat_str_map.set t.dir id slot;
  pheap_push t proc slot;
  gheap_push t slot;
  set_load t proc (t.load.(proc) + size);
  t.total_size <- t.total_size + size;
  t.live <- t.live + 1

let of_snapshot ?trigger ?clock ?journal json =
  let ( let* ) = Result.bind in
  let fields = match json with Journal.Obj fields -> fields | _ -> [] in
  let int name =
    match List.assoc_opt name fields with
    | Some (Journal.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "snapshot: missing integer field %S" name)
  in
  let* () =
    match List.assoc_opt "snapshot" fields with
    | Some (Journal.Str "rebal-engine") -> Ok ()
    | Some (Journal.Str other) ->
      Error (Printf.sprintf "snapshot: producer %S, wanted \"rebal-engine\"" other)
    | _ -> Error "snapshot: not a rebal-engine snapshot object"
  in
  let* version = int "version" in
  let* () =
    if version = snapshot_version then Ok ()
    else Error (Printf.sprintf "snapshot: version %d, this build reads %d" version snapshot_version)
  in
  let* m = int "m" in
  let* () = if m >= 1 then Ok () else Error "snapshot: need at least one processor" in
  let* recorded_trigger =
    match List.assoc_opt "trigger" fields with
    | Some json -> trigger_of_json json
    | None -> Error "snapshot: missing trigger"
  in
  let* next_seq = int "next_seq" in
  let* events_since_repair = int "events_since_repair" in
  let* jobs =
    match List.assoc_opt "jobs" fields with
    | Some (Journal.List jobs) -> Ok jobs
    | _ -> Error "snapshot: missing jobs list"
  in
  let trigger = match trigger with Some t -> t | None -> recorded_trigger in
  let t = create ~trigger ?clock ?journal ~m () in
  let seen_seq = Hashtbl.create 64 in
  let* () =
    List.fold_left
      (fun acc job ->
        let* () = acc in
        let jf = match job with Journal.Obj jf -> jf | _ -> [] in
        let jint name =
          match List.assoc_opt name jf with
          | Some (Journal.Int i) -> Ok i
          | _ -> Error (Printf.sprintf "snapshot job: missing integer field %S" name)
        in
        let* id =
          match List.assoc_opt "id" jf with
          | Some (Journal.Str id) -> Ok id
          | _ -> Error "snapshot job: missing id"
        in
        let* seq = jint "seq" in
        let* size = jint "size" in
        let* proc = jint "proc" in
        if size <= 0 then Error (Printf.sprintf "snapshot job %s: size must be positive" id)
        else if proc < 0 || proc >= m then
          Error (Printf.sprintf "snapshot job %s: processor %d out of range" id proc)
        else if seq < 0 || seq >= next_seq then
          Error (Printf.sprintf "snapshot job %s: seq %d out of range" id seq)
        else if Flat_str_map.mem t.dir id then
          Error (Printf.sprintf "snapshot job %s: duplicate id" id)
        else if Hashtbl.mem seen_seq seq then
          Error (Printf.sprintf "snapshot job %s: duplicate seq %d" id seq)
        else begin
          Hashtbl.replace seen_seq seq ();
          restore_slot t ~id ~seq ~size ~proc;
          Ok ()
        end)
      (Ok ()) jobs
  in
  t.next_seq <- next_seq;
  t.events_since_repair <- events_since_repair;
  (match List.assoc_opt "counters" fields with
  | Some (Journal.Obj cf) ->
    let get name dflt =
      match List.assoc_opt name cf with Some (Journal.Int i) -> i | _ -> dflt
    in
    t.c.events <- get "events" 0;
    t.c.adds <- get "adds" 0;
    t.c.removes <- get "removes" 0;
    t.c.resizes <- get "resizes" 0;
    t.c.rebalances <- get "rebalances" 0;
    t.c.auto_rebalances <- get "auto_rebalances" 0;
    t.c.trigger_firings <- get "trigger_firings" 0;
    t.c.moved <- get "moved" 0;
    t.c.last_rebalance_moves <- get "last_rebalance_moves" 0;
    t.c.consistency_checks <- get "consistency_checks" 0;
    t.c.consistency_failures <- get "consistency_failures" 0
  | _ -> ());
  Ok t

let journal_snapshot t =
  match t.journal with
  | None -> Error "no journal attached"
  | Some sink ->
    let seq = Journal.events_written sink in
    Journal.emit sink ~kind:"snapshot" [ ("state", snapshot t) ];
    Ok seq

let check_consistency t ~k =
  let inst, _ = to_instance t in
  let batch = Assignment.makespan inst (Rebal_algo.Greedy.solve inst ~k) in
  let probe = copy t in
  ignore (repair ~auto:false probe ~k);
  let ok = makespan probe = batch in
  t.c.consistency_checks <- t.c.consistency_checks + 1;
  if not ok then t.c.consistency_failures <- t.c.consistency_failures + 1;
  (match t.journal with
  | None -> ()
  | Some sink ->
    Journal.emit sink ~kind:"check"
      [
        ("k", Journal.Int k);
        ("ok", Journal.Bool ok);
        ("batch_makespan", Journal.Int batch);
        ("repair_makespan", Journal.Int (makespan probe));
      ]);
  ok
