module Journal = Rebal_obs.Journal
module Table = Rebal_harness.Table

type outcome = {
  header : Journal.header;
  m : int;
  events : int;
  final_jobs : int;
  final_makespan : int;
  rebalances : int;
  moves : int;
  checks : int;
  snapshots : int;
  resumed : bool;
  trigger : Engine.trigger;
  consistency_ok : bool;
}

exception Fail of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Fail msg)) fmt
let faill line fmt = Printf.ksprintf (fun msg -> raise (Fail (Printf.sprintf "line %d: %s" line msg))) fmt

let get = function Ok v -> v | Error msg -> raise (Fail msg)

(* ----- reading the provenance sub-objects ----- *)

let move_of_json line j =
  match j with
  | Journal.Obj kvs -> (
    match
      ( List.assoc_opt "id" kvs,
        List.assoc_opt "src" kvs,
        List.assoc_opt "dst" kvs )
    with
    | Some (Journal.Str id), Some (Journal.Int src), Some (Journal.Int dst) ->
      { Engine.id; src; dst }
    | _ -> faill line "rebalance event: malformed move object")
  | _ -> faill line "rebalance event: moves must be objects"

(* ----- replay ----- *)

let engine_of_header (header : Journal.header) =
  if header.journal <> "rebal-engine" then
    fail "not an engine journal (producer %S, wanted \"rebal-engine\")" header.journal;
  if header.version <> Journal.current_version then
    fail "unsupported journal version %d (this library reads %d)" header.version
      Journal.current_version;
  match List.assoc_opt "m" header.meta with
  | Some (Journal.Int m) when m >= 1 -> Engine.create ~m ()
  | _ -> fail "header is missing a positive integer \"m\" field"

(* The trigger config the journal was recorded under. Headers written
   before the config was recorded (only the policy name) fall back to
   Manual — there is nothing to re-arm. *)
let trigger_of_header (header : Journal.header) =
  match List.assoc_opt "trigger_config" header.meta with
  | None -> Ok Engine.Manual
  | Some json -> Engine.trigger_of_json json

let verify_makespan eng (ev : Journal.event) key =
  let want = get (Journal.int_field ev key) in
  let got = Engine.makespan eng in
  if got <> want then
    faill ev.line "replay diverged: makespan %d, journal recorded %d" got want

(* Makespan alone can miss a divergence that happens off the hottest
   processor (e.g. a tampered size on a cold one); the recorded per-event
   [load_after] pins the touched processor's exact load. *)
let verify_load eng (ev : Journal.event) p =
  let want = get (Journal.int_field ev "load_after") in
  let got = (Engine.loads eng).(p) in
  if got <> want then
    faill ev.line "replay diverged: processor %d load %d, journal recorded %d" p got want

(* A mid-journal snapshot must be a faithful picture of the replayed
   state: compare the structural fields of a freshly taken snapshot
   against the recorded one. Counters are skipped — a recording made
   under a live trigger counts auto-rebalances that replay re-executes
   as manual ones. *)
let verify_snapshot eng (ev : Journal.event) state =
  let live = Engine.snapshot eng in
  let get json name =
    match json with Journal.Obj kvs -> List.assoc_opt name kvs | _ -> None
  in
  List.iter
    (fun key ->
      if get live key <> get state key then
        faill ev.line "replay diverged: snapshot field %S does not match the replayed state"
          key)
    [ "m"; "next_seq"; "events_since_repair"; "jobs" ]

let apply eng_ref (ev : Journal.event) st =
  let eng = !eng_ref in
  let rebalances, moves, checks, snapshots, resumed = st in
  match ev.kind with
  | "snapshot" ->
    let state =
      match Journal.field ev "state" with
      | Some state -> state
      | None -> faill ev.line "snapshot event: missing state"
    in
    if ev.seq = 0 then begin
      (* A compacted journal: the snapshot replaces genesis. Replay on a
         Manual engine — recorded auto-repairs are re-applied explicitly
         below, never re-fired. *)
      match Engine.of_snapshot ~trigger:Engine.Manual state with
      | Error msg -> faill ev.line "snapshot event: %s" msg
      | Ok resumed_eng ->
        if Engine.m resumed_eng <> Engine.m eng then
          faill ev.line "snapshot event: snapshot has m=%d, header recorded m=%d"
            (Engine.m resumed_eng) (Engine.m eng);
        eng_ref := resumed_eng;
        (rebalances, moves, checks, snapshots + 1, true)
    end
    else begin
      verify_snapshot eng ev state;
      (rebalances, moves, checks, snapshots + 1, resumed)
    end
  | "add" ->
    let id = get (Journal.str_field ev "id") in
    let size = get (Journal.int_field ev "size") in
    let want_proc = get (Journal.int_field ev "proc") in
    (match Engine.add_job eng ~id ~size with
    | Error msg -> faill ev.line "replay diverged: %s" msg
    | Ok (p, _) ->
      if p <> want_proc then
        faill ev.line "replay diverged: %s placed on processor %d, journal recorded %d" id p
          want_proc;
      verify_load eng ev p);
    verify_makespan eng ev "makespan";
    st
  | "remove" ->
    let id = get (Journal.str_field ev "id") in
    let want_proc = get (Journal.int_field ev "proc") in
    (match Engine.remove_job eng ~id with
    | Error msg -> faill ev.line "replay diverged: %s" msg
    | Ok (p, _) ->
      if p <> want_proc then
        faill ev.line "replay diverged: %s removed from processor %d, journal recorded %d" id
          p want_proc;
      verify_load eng ev p);
    verify_makespan eng ev "makespan";
    st
  | "resize" ->
    let id = get (Journal.str_field ev "id") in
    let size = get (Journal.int_field ev "size") in
    let want_proc = get (Journal.int_field ev "proc") in
    (match Engine.resize_job eng ~id ~size with
    | Error msg -> faill ev.line "replay diverged: %s" msg
    | Ok (p, _) ->
      if p <> want_proc then
        faill ev.line "replay diverged: %s resized on processor %d, journal recorded %d" id p
          want_proc;
      verify_load eng ev p);
    verify_makespan eng ev "makespan";
    st
  | "trigger" ->
    (* Informational: the recorded rebalance that follows carries the
       budget. Replay never re-evaluates trigger policies — that is what
       makes wall-clock-triggered sessions replayable. *)
    st
  | "evacuation" ->
    (* Informational provenance from the shard supervisor: the remove
       (on the evacuated shard) and add (on the survivors) halves of
       each re-homing are ordinary journaled events replayed like any
       other; this record only explains why they happened. *)
    st
  | "rebalance" ->
    let k = get (Journal.int_field ev "k") in
    let want_moves = List.map (move_of_json ev.line) (get (Journal.list_field ev "moves")) in
    let got_moves = Engine.rebalance eng ~k in
    if List.length got_moves <> List.length want_moves then
      faill ev.line "replay diverged: repair made %d moves, journal recorded %d"
        (List.length got_moves) (List.length want_moves);
    List.iteri
      (fun i ((got : Engine.move), want) ->
        if got <> want then
          faill ev.line
            "replay diverged: move %d relocated %s %d->%d, journal recorded %s %d->%d" i
            got.Engine.id got.Engine.src got.Engine.dst want.Engine.id want.Engine.src
            want.Engine.dst)
      (List.combine got_moves want_moves);
    verify_makespan eng ev "makespan_after";
    (rebalances + 1, moves + List.length got_moves, checks, snapshots, resumed)
  | "check" ->
    let k = get (Journal.int_field ev "k") in
    let want_ok = get (Journal.bool_field ev "ok") in
    let got_ok = Engine.check_consistency eng ~k in
    if got_ok <> want_ok then
      faill ev.line "replay diverged: consistency check %b, journal recorded %b" got_ok
        want_ok;
    (rebalances, moves, checks + 1, snapshots, resumed)
  | kind -> faill ev.line "unknown event kind %S" kind

let run_engine (header, evs) =
  try
    let eng = ref (engine_of_header header) in
    let rebalances, moves, checks, snapshots, resumed =
      List.fold_left (fun st ev -> apply eng ev st) (0, 0, 0, 0, false) evs
    in
    let eng = !eng in
    let final_jobs = Engine.job_count eng in
    let consistency_ok =
      final_jobs = 0 || Engine.check_consistency eng ~k:final_jobs
    in
    if not consistency_ok then
      fail "replayed state fails check_consistency against the batch solver";
    (* Re-arm the recorded trigger config: a journal recorded under
       --auto-* must not silently come back as Manual when the replayed
       engine is put back into service. *)
    let trigger = get (trigger_of_header header) in
    Engine.set_trigger eng trigger;
    Ok
      ( eng,
        {
          header;
          m = Engine.m eng;
          events = List.length evs;
          final_jobs;
          final_makespan = Engine.makespan eng;
          rebalances;
          moves;
          checks;
          snapshots;
          resumed;
          trigger;
          consistency_ok;
        } )
  with Fail msg -> Error msg

let run parsed = Result.map snd (run_engine parsed)
let resume = run_engine

let run_file path =
  (* Auto-detect: replay verifies binary journals just like JSONL. *)
  match Journal.load_file path with
  | Error msg -> Error msg
  | Ok parsed -> run parsed

let summary o =
  Printf.sprintf
    "replay OK: %d events over m=%d%s -> %d jobs, makespan %d; re-executed %d rebalances \
     (%d moves), re-verified %d recorded checks, final check_consistency passed%s"
    o.events o.m
    (if o.resumed then " (resumed from snapshot)" else "")
    o.final_jobs o.final_makespan o.rebalances o.moves o.checks
    (match o.trigger with
    | Engine.Manual -> ""
    | t -> Printf.sprintf "; re-armed %s trigger" (Engine.trigger_name t))

(* ----- compaction ----- *)

let compact (header, evs) =
  let is_snapshot (ev : Journal.event) = ev.kind = "snapshot" in
  let renumber evs =
    List.mapi (fun i (ev : Journal.event) -> { ev with Journal.seq = i }) evs
  in
  let rendered header evs =
    Journal.render_header header :: List.map Journal.render_event evs
  in
  if List.exists is_snapshot evs then begin
    (* Keep the suffix from the latest snapshot on; everything before it
       is reconstructible from the snapshot itself. *)
    let rec split dropped = function
      | [] -> assert false
      | ev :: rest when is_snapshot ev && not (List.exists is_snapshot rest) ->
        (dropped, ev :: rest)
      | _ :: rest -> split (dropped + 1) rest
    in
    let dropped, kept = split 0 evs in
    Ok (rendered header (renumber kept), dropped, List.length kept)
  end
  else
    (* No snapshot recorded: replay (verifying the whole journal) and
       compact to a single snapshot of the final state. *)
    match run_engine (header, evs) with
    | Error msg -> Error msg
    | Ok (eng, _) ->
      let ts_ns =
        match List.rev evs with [] -> 0 | last :: _ -> last.Journal.ts_ns
      in
      let snap =
        {
          Journal.seq = 0;
          ts_ns;
          kind = "snapshot";
          fields = [ ("state", Engine.snapshot eng) ];
          line = 0;
        }
      in
      Ok (rendered header [ snap ], List.length evs, 1)

(* ----- provenance views ----- *)

let fmt_imb f = Printf.sprintf "%.3f" f

let event_detail (ev : Journal.event) =
  let istr key = match Journal.int_field ev key with Ok v -> string_of_int v | Error _ -> "?" in
  let sstr key = match Journal.str_field ev key with Ok v -> v | Error _ -> "?" in
  match ev.kind with
  | "add" -> Printf.sprintf "%s (%s) -> p%s" (sstr "id") (istr "size") (istr "proc")
  | "remove" -> Printf.sprintf "%s (%s) off p%s" (sstr "id") (istr "size") (istr "proc")
  | "resize" ->
    Printf.sprintf "%s %s->%s on p%s" (sstr "id") (istr "old_size") (istr "size")
      (istr "proc")
  | "trigger" ->
    let imb = match Journal.float_field ev "imbalance" with Ok f -> fmt_imb f | Error _ -> "?" in
    Printf.sprintf "%s k=%s imbalance=%s" (sstr "trigger") (istr "k") imb
  | "rebalance" ->
    Printf.sprintf "k=%s lifted=%s moves=%s (%s) makespan %s->%s" (istr "k")
      (istr "lifted") (istr "n_moves")
      (if sstr "trigger" = "manual" then "manual" else "auto:" ^ sstr "trigger")
      (istr "makespan_before") (istr "makespan_after")
  | "check" ->
    Printf.sprintf "k=%s batch=%s repair=%s %s" (istr "k") (istr "batch_makespan")
      (istr "repair_makespan")
      (match Journal.bool_field ev "ok" with
      | Ok true -> "ok"
      | Ok false -> "FAILED"
      | Error _ -> "?")
  | "evacuation" ->
    Printf.sprintf "shard %s %s: %s job(s) re-homed, %s left (budget %s)" (istr "shard")
      (sstr "reason") (istr "jobs") (istr "leftover") (istr "budget")
  | _ -> "?"

let event_makespan (ev : Journal.event) =
  let key = if ev.kind = "rebalance" then "makespan_after" else "makespan" in
  match Journal.int_field ev key with Ok v -> string_of_int v | Error _ -> ""

let explain_summary ((header : Journal.header), evs) =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "journal %s v%d (%d events)" header.journal header.version
           (List.length evs))
      ~columns:[ "seq"; "event"; "detail"; "makespan" ]
  in
  List.iter
    (fun (ev : Journal.event) ->
      Table.add_row tbl
        [ string_of_int ev.seq; ev.kind; event_detail ev; event_makespan ev ])
    evs;
  Table.render tbl

let moves_of_event (ev : Journal.event) =
  match Journal.list_field ev "moves" with
  | Error _ -> []
  | Ok l -> List.filter_map (function Journal.Obj kvs -> Some kvs | _ -> None) l

let assoc_int kvs key = match List.assoc_opt key kvs with Some (Journal.Int v) -> string_of_int v | _ -> "?"
let assoc_str kvs key = match List.assoc_opt key kvs with Some (Journal.Str v) -> v | _ -> "?"

let explain_job (_, evs) ~id =
  let tbl =
    Table.create
      ~title:(Printf.sprintf "decision history of job %s" id)
      ~columns:[ "seq"; "event"; "detail"; "makespan" ]
  in
  let hits = ref 0 in
  List.iter
    (fun (ev : Journal.event) ->
      match ev.kind with
      | "add" | "remove" | "resize" ->
        if Journal.str_field ev "id" = Ok id then begin
          incr hits;
          Table.add_row tbl
            [ string_of_int ev.seq; ev.kind; event_detail ev; event_makespan ev ]
        end
      | "rebalance" ->
        List.iter
          (fun kvs ->
            if assoc_str kvs "id" = id then begin
              incr hits;
              Table.add_row tbl
                [
                  string_of_int ev.seq;
                  "move";
                  Printf.sprintf "p%s -> p%s (src load %s->%s, dst load %s->%s)"
                    (assoc_int kvs "src") (assoc_int kvs "dst")
                    (assoc_int kvs "src_load_before") (assoc_int kvs "src_load_after")
                    (assoc_int kvs "dst_load_before") (assoc_int kvs "dst_load_after");
                  event_makespan ev;
                ]
            end)
          (moves_of_event ev)
      | _ -> ())
    evs;
  if !hits = 0 then Error (Printf.sprintf "job %s does not appear in this journal" id)
  else Ok (Table.render tbl)

let explain_rebalance (_, evs) ~seq =
  match List.find_opt (fun (ev : Journal.event) -> ev.seq = seq) evs with
  | None -> Error (Printf.sprintf "no event with sequence number %d" seq)
  | Some ev when ev.kind <> "rebalance" ->
    Error
      (Printf.sprintf "event %d is %S, not a rebalance (see explain with no --rebalance)"
         seq ev.kind)
  | Some ev ->
    let istr key = match Journal.int_field ev key with Ok v -> string_of_int v | Error _ -> "?" in
    let sstr key = match Journal.str_field ev key with Ok v -> v | Error _ -> "?" in
    let imb = match Journal.float_field ev "imbalance_before" with Ok f -> fmt_imb f | Error _ -> "?" in
    let head =
      Printf.sprintf
        "rebalance seq=%d: trigger=%s budget k=%s lifted=%s imbalance=%s makespan %s -> %s\n"
        ev.seq (sstr "trigger") (istr "k") (istr "lifted") imb (istr "makespan_before")
        (istr "makespan_after")
    in
    let tbl =
      Table.create
        ~title:(Printf.sprintf "moves of rebalance seq=%d" ev.seq)
        ~columns:[ "job"; "size"; "src"; "dst"; "src load"; "dst load" ]
    in
    List.iter
      (fun kvs ->
        Table.add_row tbl
          [
            assoc_str kvs "id";
            assoc_int kvs "size";
            "p" ^ assoc_int kvs "src";
            "p" ^ assoc_int kvs "dst";
            Printf.sprintf "%s->%s" (assoc_int kvs "src_load_before")
              (assoc_int kvs "src_load_after");
            Printf.sprintf "%s->%s" (assoc_int kvs "dst_load_before")
              (assoc_int kvs "dst_load_after");
          ])
      (moves_of_event ev);
    Ok (head ^ Table.render tbl)
