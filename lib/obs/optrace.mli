(** Cross-domain request tracing with head sampling and tail capture.

    {!Trace} records a stack of nested spans per domain — right for the
    single-threaded solvers, useless for a protocol op whose work hops
    from a session thread over a mailbox to a worker domain (or two, for
    a cross-shard move). Spans here are {e flat records} with explicit
    [trace_id]/[span_id]/[parent_id] links: each domain records into its
    own bounded ring, a {!carrier} travels inside mailbox envelopes to
    link worker-side spans to the originating op, and {!assemble}
    stitches the flat records back into causal trees at exposition time.

    {b Sampling.} {!with_op} opens a trace at the op boundary. With head
    sampling at 1-in-N ({!set_sample_every}), every Nth op records its
    full span tree. Independently, ops slower than the tail threshold
    ({!set_slow_threshold_ns}) land in a bounded slow-op ring whether or
    not they were sampled — an unsampled slow op keeps only its root
    span, since the children were never recorded. With both knobs off
    (the default) [with_op] is [f ()] behind two atomic loads, and
    {!with_span} is [f ()] behind a context lookup that answers [None].

    {b Concurrency contract.} Span rings are per-domain (mutex-guarded,
    because session systhreads share the control domain's ring); the
    slow-op ring and the id counters are global. The current trace
    context is keyed by [(domain, thread)] — {e not} plain DLS — so
    concurrent sessions on the control domain cannot leak context into
    one another. {!recorded} reads the {e calling} domain's ring; a
    coordinator wanting worker spans must collect them on the workers
    (the cluster's [recorded_spans] does exactly this). *)

type span = {
  trace_id : int;
  span_id : int;  (** globally unique across domains *)
  parent_id : int;  (** [0] when the span is a trace root *)
  name : string;
  domain : int;  (** domain the span ran on *)
  start_ns : int64;
  mutable stop_ns : int64;
  attrs : (string * string) list;
}

type carrier = {
  trace : int;
  parent : int;
}
(** What crosses a mailbox: enough to parent a worker-side span into
    the originating op's trace. A carrier exists only for sampled ops —
    presence is the sampling decision. *)

type slow_op = {
  slow_trace : int;
  slow_verb : string;
  slow_duration_ns : int64;
  slow_finished_ns : int64;
}

(** {2 Configuration} *)

val set_sample_every : int -> unit
(** Head-sample 1 op in [n]; [n <= 0] disables head sampling (the
    default). *)

val sampling_every : unit -> int

val set_slow_threshold_ns : int -> unit
(** Capture ops slower than this into the slow-op ring; negative
    disables tail capture (the default). [0] captures every op. *)

val slow_threshold_ns : unit -> int

val set_ring_capacity : int -> unit
(** Resize (and clear) the {e calling} domain's span ring (default
    4096 spans). @raise Invalid_argument if not positive. *)

val set_slow_capacity : int -> unit
(** Resize (and clear) the global slow-op ring (default 256).
    @raise Invalid_argument if not positive. *)

val set_clock : (unit -> int64) -> unit
(** Test hook: replace the monotonic clock (global, all domains).
    Restore with [set_clock Rebal_harness.Timer.now_ns]. *)

(** {2 Recording} *)

val with_op : verb:string -> (unit -> 'a) -> 'a
(** Open a trace at the op boundary: allocates a trace id, applies the
    head-sampling decision, times [f], and — when sampled or slower
    than the tail threshold — records the root span (overwrites count
    into [rebal_trace_dropped_total{kind="op_span"}]; slow-ring
    overwrites under [kind="slow_op"]). Sets the current context for
    the duration of [f] so nested {!with_span} calls attach.
    Exception-safe. *)

val with_span :
  ?carrier:carrier -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Record a child span. The parent comes from [?carrier] (the
    mailbox-crossing case) or, absent that, the calling thread's
    current context; with neither, [f] runs untraced. Sets the context
    for the duration of [f], so nesting works on worker domains too. *)

val current_carrier : unit -> carrier option
(** The calling thread's context, to be captured into an envelope at
    the send site. [None] unless inside a sampled op. *)

(** {2 Collection and assembly} *)

val recorded : unit -> span list
(** The calling domain's ring, oldest first. *)

val slow_ops : unit -> slow_op list
(** The global slow-op ring, oldest first. *)

val reset : unit -> unit
(** Clear the calling domain's ring, the slow-op ring, and the
    head-sampling phase (other domains' rings are untouched). *)

type tree = {
  span : span;
  children : tree list;  (** in start order *)
}

val assemble : span list -> tree list
(** Stitch flat spans (from any number of domains) into trees, roots in
    start order. A span whose parent was evicted from a ring — or is
    missing entirely — is promoted to a root rather than dropped, so
    truncation is visible instead of silent. *)

val trees_for : trace_id:int -> tree list -> tree list

(** {2 Rendering} *)

val duration_ns : span -> int64
val pp_tree : Format.formatter -> tree -> unit
val render_tree : tree -> string

val render_duration : int64 -> string
(** Human units, e.g. ["1.24ms"]. *)
