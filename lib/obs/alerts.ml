(* The rule engine. Parsing is token-based (whitespace-split), the
   expression atom [func(selector[window])] contains no spaces so it is
   one token; evaluation delegates every windowed read to Tsdb. *)

type state = Inactive | Pending | Firing | Resolved

let state_name = function
  | Inactive -> "inactive"
  | Pending -> "pending"
  | Firing -> "firing"
  | Resolved -> "resolved"

let all_states = [ Inactive; Pending; Firing; Resolved ]

type cmp = Gt | Ge | Lt | Le

let cmp_name = function Gt -> ">" | Ge -> ">=" | Lt -> "<" | Le -> "<="

let cmp_of_string = function
  | ">" -> Ok Gt
  | ">=" -> Ok Ge
  | "<" -> Ok Lt
  | "<=" -> Ok Le
  | s -> Error (Printf.sprintf "unknown comparator %S (>|>=|<|<=)" s)

let cmp_apply c v bound =
  match c with Gt -> v > bound | Ge -> v >= bound | Lt -> v < bound | Le -> v <= bound

type condition =
  | Threshold of {
      func : Tsdb.func;
      series : string;
      labels : Metrics.labels;
      window_s : float;
      cmp : cmp;
      bound : float;
    }
  | Burnrate of {
      bad : string * Metrics.labels;
      total : string * Metrics.labels;
      budget : float;
      factor : float;
      short_s : float;
      long_s : float;
    }

type rule = {
  rule_name : string;
  condition : condition;
  for_s : float;
  suspect : int option;
}

let expr_string = function
  | Threshold { func; series; labels; window_s; cmp; bound } ->
    let sel = Tsdb.selector_string series labels in
    let windowed =
      match func with
      | Tsdb.Value -> sel
      | _ -> Printf.sprintf "%s[%s]" sel (Tsdb.duration_string window_s)
    in
    Printf.sprintf "%s(%s) %s %g" (Tsdb.func_name func) windowed (cmp_name cmp) bound
  | Burnrate { bad = bn, bl; total = tn, tl; budget; factor; short_s; long_s } ->
    Printf.sprintf "burnrate(%s/%s) > %g*%g over %s,%s"
      (Tsdb.selector_string bn bl) (Tsdb.selector_string tn tl) factor budget
      (Tsdb.duration_string short_s) (Tsdb.duration_string long_s)

(* [func(selector[window])] — split on the outer parens, then the
   optional trailing [window] bracket. *)
let parse_expr token =
  let ( let* ) = Result.bind in
  match String.index_opt token '(' with
  | None -> Error (Printf.sprintf "expected func(series[window]), got %S" token)
  | Some lp ->
    if token.[String.length token - 1] <> ')' then
      Error (Printf.sprintf "expression %S: missing ')'" token)
    else
      let* func = Tsdb.func_of_string (String.sub token 0 lp) in
      let inner = String.sub token (lp + 1) (String.length token - lp - 2) in
      let* sel, window_s =
        if String.length inner > 0 && inner.[String.length inner - 1] = ']' then
          match String.rindex_opt inner '[' with
          | None -> Error (Printf.sprintf "expression %S: ']' without '['" token)
          | Some lb ->
            let* w =
              Tsdb.parse_duration
                (String.sub inner (lb + 1) (String.length inner - lb - 2))
            in
            Ok (String.sub inner 0 lb, w)
        else Ok (inner, 0.)
      in
      let* series, labels = Tsdb.parse_selector sel in
      (match func with
      | Tsdb.Value -> Ok (func, series, labels, window_s)
      | _ when window_s <= 0. ->
        Error
          (Printf.sprintf "%s needs a window, e.g. %s(%s[30s])"
             (Tsdb.func_name func) (Tsdb.func_name func) sel)
      | _ -> Ok (func, series, labels, window_s))

let parse_suspect = function
  | [] -> Ok None
  | [ "suspect"; shard ] -> (
    match int_of_string_opt shard with
    | Some i when i >= 0 -> Ok (Some i)
    | _ -> Error (Printf.sprintf "invalid suspect shard %S" shard))
  | rest -> Error (Printf.sprintf "trailing garbage: %s" (String.concat " " rest))

let parse_threshold name tokens =
  let ( let* ) = Result.bind in
  match tokens with
  | expr :: op :: bound :: "for" :: dur :: rest ->
    let* func, series, labels, window_s = parse_expr expr in
    let* cmp = cmp_of_string op in
    let* bound =
      match float_of_string_opt bound with
      | Some v when Float.is_finite v -> Ok v
      | _ -> Error (Printf.sprintf "invalid threshold %S" bound)
    in
    let* for_s = Tsdb.parse_duration dur in
    let* suspect = parse_suspect rest in
    Ok
      {
        rule_name = name;
        condition = Threshold { func; series; labels; window_s; cmp; bound };
        for_s;
        suspect;
      }
  | _ ->
    Error "threshold rule: expected <expr> <op> <value> for <dur> [suspect <shard>]"

let parse_burnrate name tokens =
  let ( let* ) = Result.bind in
  let kv = Hashtbl.create 8 in
  let* () =
    List.fold_left
      (fun acc tok ->
        let* () = acc in
        match String.index_opt tok '=' with
        | Some eq when eq > 0 ->
          let k = String.sub tok 0 eq in
          let v = String.sub tok (eq + 1) (String.length tok - eq - 1) in
          if Hashtbl.mem kv k then Error (Printf.sprintf "duplicate %s=" k)
          else (Hashtbl.add kv k v; Ok ())
        | _ -> Error (Printf.sprintf "expected key=value, got %S" tok))
      (Ok ()) tokens
  in
  let get k = Hashtbl.find_opt kv k in
  let require k =
    match get k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "burnrate rule: missing %s=" k)
  in
  let known = [ "bad"; "total"; "budget"; "factor"; "short"; "long"; "for"; "suspect" ] in
  let* () =
    Hashtbl.fold
      (fun k _ acc ->
        let* () = acc in
        if List.mem k known then Ok ()
        else Error (Printf.sprintf "burnrate rule: unknown key %s=" k))
      kv (Ok ())
  in
  let* bad = Result.bind (require "bad") Tsdb.parse_selector in
  let* total = Result.bind (require "total") Tsdb.parse_selector in
  let pos_float k =
    let* v = require k in
    match float_of_string_opt v with
    | Some f when Float.is_finite f && f > 0. -> Ok f
    | _ -> Error (Printf.sprintf "invalid %s=%s" k v)
  in
  let* budget = pos_float "budget" in
  let* factor = pos_float "factor" in
  let* short_s = Result.bind (require "short") Tsdb.parse_duration in
  let* long_s = Result.bind (require "long") Tsdb.parse_duration in
  let* () =
    if short_s <= 0. || long_s < short_s then
      Error "burnrate rule: need 0 < short <= long"
    else Ok ()
  in
  let* for_s =
    match get "for" with None -> Ok 0. | Some d -> Tsdb.parse_duration d
  in
  let* suspect =
    match get "suspect" with
    | None -> Ok None
    | Some s -> parse_suspect [ "suspect"; s ]
  in
  Ok
    {
      rule_name = name;
      condition = Burnrate { bad; total; budget; factor; short_s; long_s };
      for_s;
      suspect;
    }

let valid_rule_name s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       s

let parse_rule line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' (String.trim line)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  with
  | [] -> Ok None
  | kind :: name :: rest when valid_rule_name name -> (
    match String.lowercase_ascii kind with
    | "alert" -> Result.map Option.some (parse_threshold name rest)
    | "burnrate" -> Result.map Option.some (parse_burnrate name rest)
    | k -> Error (Printf.sprintf "unknown rule kind %S (alert|burnrate)" k))
  | kind :: name :: _ when String.lowercase_ascii kind = "alert"
                           || String.lowercase_ascii kind = "burnrate" ->
    Error (Printf.sprintf "invalid rule name %S" name)
  | kind :: _ -> Error (Printf.sprintf "unknown rule kind %S (alert|burnrate)" kind)

let parse_rules text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc seen = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_rule line with
      | Error e -> Error (Printf.sprintf "line %d: %s" n e)
      | Ok None -> go (n + 1) acc seen rest
      | Ok (Some r) ->
        if List.mem r.rule_name seen then
          Error (Printf.sprintf "line %d: duplicate rule name %S" n r.rule_name)
        else go (n + 1) (r :: acc) (r.rule_name :: seen) rest)
  in
  go 1 [] [] lines

let parse_rules_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
    match parse_rules text with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok rules -> Ok rules)

(* ------------------------------------------------------------------ *)
(* The state machine.                                                  *)

type transition = {
  t_rule : string;
  t_from : state;
  t_to : state;
  t_at_ns : int;
  t_value : float option;
  t_expr : string;
}

type rule_state = {
  rule : rule;
  mutable st : state;
  mutable pending_since_ns : int;
  mutable observed : float option;
  state_gauges : (state * Metrics.gauge) list;
  transition_counters : (state * Metrics.counter) list;
}

type t = {
  tsdb : Tsdb.t;
  states : rule_state list;
  ring : transition option array;
  mutable ring_written : int;
  sink : Journal.sink option;
  lock : Mutex.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(transition_capacity = 256) ?registry ?sink ~rules tsdb =
  if transition_capacity < 1 then invalid_arg "Alerts.create: transition_capacity < 1";
  let registry =
    match registry with Some r -> r | None -> Metrics.Registry.current ()
  in
  let names = List.map (fun r -> r.rule_name) rules in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Alerts.create: duplicate rule names";
  let states =
    List.map
      (fun rule ->
        let state_gauges =
          List.map
            (fun s ->
              ( s,
                Metrics.gauge ~registry ~help:"Alert rule state (one-hot)"
                  ~labels:[ ("rule", rule.rule_name); ("state", state_name s) ]
                  "rebal_alert_state" ))
            all_states
        in
        let transition_counters =
          List.map
            (fun s ->
              ( s,
                Metrics.counter ~registry ~help:"Alert state transitions"
                  ~labels:[ ("rule", rule.rule_name); ("to", state_name s) ]
                  "rebal_alert_transitions_total" ))
            all_states
        in
        List.iter
          (fun (s, g) -> Metrics.Gauge.set g (if s = Inactive then 1. else 0.))
          state_gauges;
        {
          rule;
          st = Inactive;
          pending_since_ns = 0;
          observed = None;
          state_gauges;
          transition_counters;
        })
      rules
  in
  {
    tsdb;
    states;
    ring = Array.make transition_capacity None;
    ring_written = 0;
    sink;
    lock = Mutex.create ();
  }

let rules t = List.map (fun rs -> rs.rule) t.states

let observe tsdb = function
  | Threshold { func; series; labels; window_s; _ } ->
    Tsdb.eval tsdb func ~labels ~window_s series
  | Burnrate { bad = bn, bl; total = tn, tl; short_s; _ } ->
    (* Observed value = the short-window bad fraction. *)
    let ratio w =
      match
        ( Tsdb.eval tsdb Tsdb.Rate ~labels:bl ~window_s:w bn,
          Tsdb.eval tsdb Tsdb.Rate ~labels:tl ~window_s:w tn )
      with
      | Some b, Some tot when tot > 0. -> Some (b /. tot)
      | _ -> None
    in
    ratio short_s

let holds tsdb cond value =
  match (cond, value) with
  | _, None -> false
  | Threshold { cmp; bound; _ }, Some v -> cmp_apply cmp v bound
  | Burnrate { bad = bn, bl; total = tn, tl; budget; factor; long_s; _ }, Some short ->
    let target = factor *. budget in
    short > target
    &&
    (match
       ( Tsdb.eval tsdb Tsdb.Rate ~labels:bl ~window_s:long_s bn,
         Tsdb.eval tsdb Tsdb.Rate ~labels:tl ~window_s:long_s tn )
     with
    | Some b, Some tot when tot > 0. -> b /. tot > target
    | _ -> false)

let record t rs ~from_ ~to_ ~now ~value =
  let tr =
    {
      t_rule = rs.rule.rule_name;
      t_from = from_;
      t_to = to_;
      t_at_ns = now;
      t_value = value;
      t_expr = expr_string rs.rule.condition;
    }
  in
  t.ring.(t.ring_written mod Array.length t.ring) <- Some tr;
  t.ring_written <- t.ring_written + 1;
  List.iter
    (fun (s, g) -> Metrics.Gauge.set g (if s = to_ then 1. else 0.))
    rs.state_gauges;
  Metrics.Counter.inc (List.assoc to_ rs.transition_counters);
  (match t.sink with
  | None -> ()
  | Some sink ->
    Journal.emit sink ~kind:"alert"
      [
        ("rule", Journal.Str rs.rule.rule_name);
        ("from", Journal.Str (state_name from_));
        ("to", Journal.Str (state_name to_));
        ("at_ns", Journal.Int now);
        ( "value",
          match value with
          | Some v when Float.is_finite v -> Journal.Float v
          | _ -> Journal.Null );
        ("expr", Journal.Str tr.t_expr);
      ]);
  tr

let eval t =
  locked t (fun () ->
      let now = Tsdb.last_sample_ns t.tsdb in
      List.filter_map
        (fun rs ->
          let value = observe t.tsdb rs.rule.condition in
          rs.observed <- value;
          let active = holds t.tsdb rs.rule.condition value in
          let for_ns = int_of_float (rs.rule.for_s *. 1e9) in
          let goto to_ =
            let from_ = rs.st in
            rs.st <- to_;
            Some (record t rs ~from_ ~to_ ~now ~value)
          in
          match (rs.st, active) with
          | (Inactive | Resolved), true ->
            if for_ns <= 0 then goto Firing
            else begin
              rs.pending_since_ns <- now;
              goto Pending
            end
          | Pending, true ->
            if now - rs.pending_since_ns >= for_ns then goto Firing else None
          | Firing, true -> None
          | Pending, false -> goto Inactive
          | Firing, false -> goto Resolved
          | (Inactive | Resolved), false -> None)
        t.states)

let find t name = List.find_opt (fun rs -> rs.rule.rule_name = name) t.states
let state t name = locked t (fun () -> Option.map (fun rs -> rs.st) (find t name))

let last_value t name =
  locked t (fun () -> Option.bind (find t name) (fun rs -> rs.observed))

let firing t =
  locked t (fun () ->
      List.filter_map
        (fun rs -> if rs.st = Firing then Some (rs.rule, rs.observed) else None)
        t.states)

let transitions t =
  locked t (fun () ->
      let n = min t.ring_written (Array.length t.ring) in
      List.filter_map
        (fun i -> t.ring.((t.ring_written - n + i) mod Array.length t.ring))
        (List.init n Fun.id))

let fmt_value = function None -> "na" | Some v -> Printf.sprintf "%.9g" v

let status_lines t =
  locked t (fun () ->
      let count st = List.length (List.filter (fun rs -> rs.st = st) t.states) in
      let summary =
        Printf.sprintf
          "ALERTS rules=%d firing=%d pending=%d resolved=%d inactive=%d \
           transitions=%d"
          (List.length t.states) (count Firing) (count Pending) (count Resolved)
          (count Inactive) t.ring_written
      in
      let rule_lines =
        List.map
          (fun rs ->
            Printf.sprintf "ALERT %s state=%s value=%s for=%s%s expr=\"%s\""
              rs.rule.rule_name (state_name rs.st) (fmt_value rs.observed)
              (Tsdb.duration_string rs.rule.for_s)
              (match rs.rule.suspect with
              | None -> ""
              | Some i -> Printf.sprintf " suspect=%d" i)
              (expr_string rs.rule.condition))
          t.states
      in
      let n = min t.ring_written (Array.length t.ring) in
      let trans_lines =
        List.filter_map
          (fun i ->
            match t.ring.((t.ring_written - n + i) mod Array.length t.ring) with
            | None -> None
            | Some tr ->
              Some
                (Printf.sprintf "TRANS %s %s->%s at_ns=%d value=%s" tr.t_rule
                   (state_name tr.t_from) (state_name tr.t_to) tr.t_at_ns
                   (fmt_value tr.t_value)))
          (List.init n Fun.id)
      in
      (summary :: rule_lines) @ trans_lines)
