module Timer = Rebal_harness.Timer

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let current_version = 1

(* A journal that cannot be read back is worse than no journal: the
   text renderer used to emit [null] for nan/inf (["nan"] is not JSON),
   so a non-finite metric value was written "successfully" and only
   discovered when replay failed on the mangled field. Both codecs now
   reject non-finite floats at encode time; {!emit} wraps the failure
   with the line/seq/kind context so the producer is pointed at. *)
exception Encode_error of string

let reject_non_finite f =
  if not (Float.is_finite f) then
    raise
      (Encode_error
         (Printf.sprintf "non-finite float %s has no journal encoding"
            (Float.to_string f)))

(* ----- rendering ----- *)

(* The byte writer under both codecs. [Buffer] pays a bounds check and
   an out-of-line call per byte, which at ~100-150 bytes per journal
   event was the single largest cost on the emit path. This writer
   ensures capacity in coarse per-token steps and pokes bytes with
   [unsafe_set]; every [put_byte] below is preceded by an [ensure] that
   covers it. *)
module Fb = struct
  type t = {
    mutable b : Bytes.t;
    mutable pos : int;
  }

  let create n = { b = Bytes.create (max 16 n); pos = 0 }
  let clear t = t.pos <- 0

  let ensure t n =
    let need = t.pos + n in
    if need > Bytes.length t.b then begin
      let cap = ref (2 * Bytes.length t.b) in
      while !cap < need do
        cap := 2 * !cap
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.b 0 nb 0 t.pos;
      t.b <- nb
    end

  (* capacity must already be ensured *)
  let put_byte t c =
    Bytes.unsafe_set t.b t.pos (Char.unsafe_chr c);
    t.pos <- t.pos + 1

  let put_char t c =
    Bytes.unsafe_set t.b t.pos c;
    t.pos <- t.pos + 1

  let put_string t s =
    let len = String.length s in
    ensure t len;
    Bytes.blit_string s 0 t.b t.pos len;
    t.pos <- t.pos + len

  (* Decimal render without the [string_of_int] allocation; emits the
     same bytes. Digits are generated from the negative absolute value
     so [min_int] needs no special case, then reversed in place. *)
  let put_int t n =
    ensure t 20;
    if n < 0 then begin
      Bytes.unsafe_set t.b t.pos '-';
      t.pos <- t.pos + 1
    end;
    let m = ref (if n > 0 then -n else n) in
    let d0 = t.pos in
    let p = ref t.pos in
    let continue = ref true in
    while !continue do
      (* OCaml [mod] follows the dividend's sign: [!m mod 10] <= 0 *)
      Bytes.unsafe_set t.b !p (Char.unsafe_chr (Char.code '0' - (!m mod 10)));
      incr p;
      m := !m / 10;
      if !m = 0 then continue := false
    done;
    t.pos <- !p;
    let i = ref d0 and j = ref (!p - 1) in
    while !i < !j do
      let c = Bytes.unsafe_get t.b !i in
      Bytes.unsafe_set t.b !i (Bytes.unsafe_get t.b !j);
      Bytes.unsafe_set t.b !j c;
      incr i;
      decr j
    done

  let contents t = Bytes.sub_string t.b 0 t.pos
end

let escape_string b s =
  (* worst case every char escapes to [\uXXXX]: 6 bytes, plus quotes *)
  Fb.ensure b ((6 * String.length s) + 2);
  Fb.put_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' ->
        Fb.put_char b '\\';
        Fb.put_char b '"'
      | '\\' ->
        Fb.put_char b '\\';
        Fb.put_char b '\\'
      | '\n' ->
        Fb.put_char b '\\';
        Fb.put_char b 'n'
      | '\t' ->
        Fb.put_char b '\\';
        Fb.put_char b 't'
      | '\r' ->
        Fb.put_char b '\\';
        Fb.put_char b 'r'
      | c when Char.code c < 0x20 ->
        String.iter (Fb.put_char b) (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Fb.put_char b c)
    s;
  Fb.put_char b '"'

let rec render_into b = function
  | Null -> Fb.put_string b "null"
  | Bool v -> Fb.put_string b (if v then "true" else "false")
  | Int i -> Fb.put_int b i
  | Float f ->
    reject_non_finite f;
    (* %.17g round-trips every finite binary64 through
       [float_of_string] exactly. *)
    let s = Printf.sprintf "%.17g" f in
    Fb.put_string b s;
    (* "2" would parse back as Int; force a float marker. *)
    if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
      Fb.put_string b ".0"
  | Str s -> escape_string b s
  | List xs ->
    Fb.ensure b 1;
    Fb.put_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then begin
          Fb.ensure b 1;
          Fb.put_char b ','
        end;
        render_into b x)
      xs;
    Fb.ensure b 1;
    Fb.put_char b ']'
  | Obj kvs ->
    Fb.ensure b 1;
    Fb.put_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin
          Fb.ensure b 1;
          Fb.put_char b ','
        end;
        escape_string b k;
        Fb.ensure b 1;
        Fb.put_char b ':';
        render_into b v)
      kvs;
    Fb.ensure b 1;
    Fb.put_char b '}'

let render_json v =
  let b = Fb.create 128 in
  render_into b v;
  Fb.contents b

(* ----- parsing ----- *)

exception Parse_error of string

let parse_json_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos >= n || s.[!pos] <> c then fail "expected %C at offset %d" c !pos;
    advance ()
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape %S" hex
          in
          (* The journal only ever escapes control characters this way;
             decode the BMP code point as UTF-8 so foreign journals with
             plain \uXXXX escapes still parse. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end;
          pos := !pos + 4
        | c -> fail "bad escape \\%c" c);
        advance ();
        loop ()
      | c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S" text
    else begin
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number %S" text)
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}' at offset %d" !pos
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' at offset %d" !pos
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C at offset %d" c !pos
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

let json_of_string s =
  match parse_json_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ----- headers and events ----- *)

type header = {
  journal : string;
  version : int;
  meta : (string * json) list;
}

type event = {
  seq : int;
  ts_ns : int;
  kind : string;
  fields : (string * json) list;
  line : int;
}

let reserved = [ "seq"; "ts_ns"; "ev" ]

let header_obj h =
  Obj (("journal", Str h.journal) :: ("version", Int h.version) :: h.meta)

let event_obj e =
  let fields = List.filter (fun (k, _) -> not (List.mem k reserved)) e.fields in
  Obj (("seq", Int e.seq) :: ("ts_ns", Int e.ts_ns) :: ("ev", Str e.kind) :: fields)

let render_header h = render_json (header_obj h)
let render_event e = render_json (event_obj e)

(* ----- binary frame codec -----

   Length-prefixed binary frames, the journal's fast on-disk form. The
   file opens with the 6-byte magic ["RBJB\x01\n"], then one frame per
   logical journal line:

     +-------------------+---------------------------+
     | u32 LE payload len| payload (one value below) |
     +-------------------+---------------------------+

   A payload is one tag-prefixed value:

     0x00  null
     0x01  bool    1 byte (0x00 / 0x01)
     0x02  int     zigzag LEB128 varint
     0x03  float   8-byte IEEE 754 binary64, little-endian
     0x04  str     uvarint byte length, raw bytes
     0x05  list    uvarint count, then the values
     0x06  obj     uvarint count, then (uvarint key len, key, value)*

   Frame 1 carries the header object, later frames the events, with the
   same reserved fields and ordering as the JSONL form — the two codecs
   carry identical objects and convert both ways without loss. Floats
   travel as raw bits (bit-exact, no Printf on the hot path); non-finite
   floats are rejected at encode time exactly like the text codec. *)

let binary_magic = "RBJB\x01\n"

(* capacity for the varint must be ensured by the caller (10 bytes) *)
let put_uvarint b n =
  let n = ref n in
  while !n land lnot 0x7f <> 0 do
    Fb.put_byte b (0x80 lor (!n land 0x7f));
    n := !n lsr 7
  done;
  Fb.put_byte b !n

let put_key b k =
  Fb.ensure b 10;
  put_uvarint b (String.length k);
  Fb.put_string b k

let rec encode_value b = function
  | Null ->
    Fb.ensure b 1;
    Fb.put_byte b 0x00
  | Bool v ->
    Fb.ensure b 2;
    Fb.put_byte b 0x01;
    Fb.put_byte b (if v then 0x01 else 0x00)
  | Int i ->
    (* Zigzag maps the sign bit into bit 0 so small magnitudes of either
       sign stay one byte. *)
    Fb.ensure b 11;
    Fb.put_byte b 0x02;
    put_uvarint b ((i lsl 1) lxor (i asr 62))
  | Float f ->
    reject_non_finite f;
    Fb.ensure b 9;
    Fb.put_byte b 0x03;
    Bytes.set_int64_le b.Fb.b b.Fb.pos (Int64.bits_of_float f);
    b.Fb.pos <- b.Fb.pos + 8
  | Str s ->
    Fb.ensure b 10;
    Fb.put_byte b 0x04;
    put_uvarint b (String.length s);
    Fb.put_string b s
  | List xs ->
    Fb.ensure b 11;
    Fb.put_byte b 0x05;
    put_uvarint b (List.length xs);
    List.iter (encode_value b) xs
  | Obj kvs ->
    Fb.ensure b 11;
    Fb.put_byte b 0x06;
    put_uvarint b (List.length kvs);
    List.iter
      (fun (k, v) ->
        put_key b k;
        encode_value b v)
      kvs

let frame_of_payload payload =
  let len = String.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.unsafe_to_string b

let decode_payload s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt in
  let byte () =
    if !pos >= n then fail "truncated frame"
    else begin
      let c = Char.code s.[!pos] in
      incr pos;
      c
    end
  in
  let uvarint () =
    let rec go shift acc =
      let c = byte () in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0
  in
  let take len =
    if len < 0 || !pos + len > n then fail "truncated frame"
    else begin
      let r = String.sub s !pos len in
      pos := !pos + len;
      r
    end
  in
  let rec value () =
    match byte () with
    | 0x00 -> Null
    | 0x01 -> Bool (byte () <> 0)
    | 0x02 ->
      let zz = uvarint () in
      Int ((zz lsr 1) lxor (- (zz land 1)))
    | 0x03 -> Float (Int64.float_of_bits (String.get_int64_le (take 8) 0))
    | 0x04 -> Str (take (uvarint ()))
    | 0x05 ->
      let count = uvarint () in
      List (values count [])
    | 0x06 ->
      let count = uvarint () in
      Obj (members count [])
    | tag -> fail "unknown value tag 0x%02x" tag
  and values k acc =
    if k = 0 then List.rev acc
    else begin
      let v = value () in
      values (k - 1) (v :: acc)
    end
  and members k acc =
    if k = 0 then List.rev acc
    else begin
      let key = take (uvarint ()) in
      let v = value () in
      members (k - 1) ((key, v) :: acc)
    end
  in
  let v = value () in
  if !pos <> n then fail "trailing bytes in frame";
  v

let encode_payload json =
  let b = Fb.create 128 in
  encode_value b json;
  Fb.contents b

(* ----- the emit fast path -----

   [emit] runs once per engine event; building an [event] record, an
   [event_obj] and its filtered field list just to tear them down again
   dominated journaling cost (measured ~2x of the whole emit). These
   encoders write the reserved triple and the caller's fields straight
   into the writer — byte-identical to [encode_value (event_obj e)] /
   [render_into (event_obj e)], which the codec tests pin down.

   [is_reserved] dispatches on the first character before paying for a
   full string compare: three compares per field added up to ~20% of
   emit on a five-field event, and no engine field key starts the same
   way as a reserved one beyond its first letter. *)

let is_reserved k =
  String.length k > 0
  && (match String.unsafe_get k 0 with
     | 's' -> k = "seq"
     | 't' -> k = "ts_ns"
     | 'e' -> k = "ev"
     | _ -> false)

let count_unreserved fields =
  let rec go n = function
    | [] -> n
    | (k, _) :: tl -> go (if is_reserved k then n else n + 1) tl
  in
  go 0 fields

let encode_event_prelude b ~seq ~ts_ns ~kind ~count =
  Fb.ensure b 64;
  Fb.put_byte b 0x06;
  put_uvarint b (3 + count);
  put_uvarint b 3;
  Fb.put_string b "seq";
  Fb.ensure b 11;
  Fb.put_byte b 0x02;
  put_uvarint b ((seq lsl 1) lxor (seq asr 62));
  Fb.ensure b 6;
  put_uvarint b 5;
  Fb.put_string b "ts_ns";
  Fb.ensure b 11;
  Fb.put_byte b 0x02;
  put_uvarint b ((ts_ns lsl 1) lxor (ts_ns asr 62));
  Fb.ensure b 3;
  put_uvarint b 2;
  Fb.put_string b "ev";
  Fb.ensure b 10;
  Fb.put_byte b 0x04;
  put_uvarint b (String.length kind);
  Fb.put_string b kind

let encode_event_into b ~seq ~ts_ns ~kind fields =
  encode_event_prelude b ~seq ~ts_ns ~kind ~count:(count_unreserved fields);
  let rec go = function
    | [] -> ()
    | (k, v) :: tl ->
      if not (is_reserved k) then begin
        put_key b k;
        encode_value b v
      end;
      go tl
  in
  go fields

let render_event_prelude b ~seq ~ts_ns ~kind =
  Fb.put_string b "{\"seq\":";
  Fb.put_int b seq;
  Fb.put_string b ",\"ts_ns\":";
  Fb.put_int b ts_ns;
  Fb.put_string b ",\"ev\":";
  escape_string b kind

let render_event_into b ~seq ~ts_ns ~kind fields =
  render_event_prelude b ~seq ~ts_ns ~kind;
  let rec go = function
    | [] -> ()
    | (k, v) :: tl ->
      if not (is_reserved k) then begin
        Fb.ensure b 1;
        Fb.put_char b ',';
        escape_string b k;
        Fb.ensure b 1;
        Fb.put_char b ':';
        render_into b v
      end;
      go tl
  in
  go fields;
  Fb.ensure b 1;
  Fb.put_char b '}'

(* ----- sinks ----- *)

type format =
  | Jsonl
  | Binary

type sink = {
  format : format;
  write : string -> unit;
  clock_ns : unit -> int64;
  mutable next_seq : int;
  mutable header_written : bool;
  (* Rendered JSONL lines, or binary frame payloads (length prefix
     stripped) — [tail] decodes the latter back to JSONL text. *)
  ring : string array;
  mutable ring_written : int;
  scratch : Fb.t; (* encode scratch, reused per event *)
  batch : Buffer.t; (* deferred bytes while [batching > 0] *)
  mutable batching : int;
  (* One streamed event (see [Emit]) may be open at a time; it owns
     [scratch] until [Emit.finish] commits it or an encode error
     aborts it. *)
  mutable stream_open : bool;
  mutable stream_left : int; (* declared fields not yet written *)
  mutable stream_seq : int;
  mutable stream_kind : string;
}

let create ?(format = Jsonl) ?(tail_capacity = 512) ?(start_seq = 0) ?header_written
    ?clock_ns ~write () =
  if tail_capacity < 1 then invalid_arg "Journal.create: need a positive tail capacity";
  if start_seq < 0 then invalid_arg "Journal.create: negative start_seq";
  let clock_ns = match clock_ns with Some c -> c | None -> Timer.now_ns in
  {
    format;
    write;
    clock_ns;
    next_seq = start_seq;
    (* A sink resuming an existing journal appends to a file whose
       header line is already on disk: writing a second one would
       corrupt it. Resuming right after a header with no events yet
       needs the explicit override, since start_seq is 0 there too. *)
    header_written = (match header_written with Some b -> b | None -> start_seq > 0);
    ring = Array.make tail_capacity "";
    ring_written = 0;
    scratch = Fb.create 256;
    batch = Buffer.create 256;
    batching = 0;
    stream_open = false;
    stream_left = 0;
    stream_seq = 0;
    stream_kind = "";
  }

let to_channel ?format ?tail_capacity ?start_seq ?header_written ?(line_flush = false)
    oc =
  create ?format ?tail_capacity ?start_seq ?header_written
    ~write:(fun line ->
      output_string oc line;
      if line_flush then flush oc)
    ()

(* A journal append must never take the daemon down with it: a full
   disk or a yanked volume raises [Sys_error] from deep inside a serve
   session, long after anyone can handle it sensibly. [resilient]
   wraps a raw write with bounded retry-with-exponential-backoff;
   when the retries are exhausted the line is dropped from durable
   storage (it is still in the sink's tail ring — [push_line] records
   it before the write runs) and the drop is counted in
   [rebal_journal_dropped_total{journal=...}] so the gap is loud.
   This is a fail-open policy: serving continues, and the hole in the
   on-disk journal is detected by replay's contiguous-seq check. *)
let resilient ?(retries = 3) ?(backoff = 0.01) ?(sleep = Unix.sleepf)
    ?(label = "journal") write =
  let dropped =
    Metrics.counter
      ~labels:[ ("journal", label) ]
      ~help:"Journal lines dropped after write retries were exhausted"
      "rebal_journal_dropped_total"
  in
  fun line ->
    let rec attempt n delay =
      match write line with
      | () -> ()
      | exception Sys_error msg ->
        if n >= retries then begin
          Metrics.Counter.inc dropped;
          Printf.eprintf
            "rebal journal %s: append failed after %d retries (%s); line dropped (kept in tail ring)\n%!"
            label retries msg
        end
        else begin
          sleep delay;
          attempt (n + 1) (delay *. 2.0)
        end
    in
    attempt 0 backoff

(* All sink bytes funnel through here so a bulk batch can defer the
   actual write: while [batching > 0] the bytes accumulate and are
   handed to [write] in one call at [end_batch] — byte-identical to
   per-event writes, so replay and resume see the same journal. *)
let sink_out sink s =
  if sink.batching > 0 then Buffer.add_string sink.batch s else sink.write s

let begin_batch sink = sink.batching <- sink.batching + 1

let end_batch sink =
  if sink.batching > 0 then begin
    sink.batching <- sink.batching - 1;
    if sink.batching = 0 && Buffer.length sink.batch > 0 then begin
      let out = Buffer.contents sink.batch in
      Buffer.clear sink.batch;
      sink.write out
    end
  end

(* When a batch is open the line/frame bytes go straight into the batch
   buffer — same bytes, one copy fewer than building the framed string
   first. Unbatched sinks still get exactly one [write] per line. *)
let push_line sink line =
  sink.ring.(sink.ring_written mod Array.length sink.ring) <- line;
  sink.ring_written <- sink.ring_written + 1;
  if sink.batching > 0 then begin
    Buffer.add_string sink.batch line;
    Buffer.add_char sink.batch '\n'
  end
  else sink.write (line ^ "\n")

let push_payload sink payload =
  sink.ring.(sink.ring_written mod Array.length sink.ring) <- payload;
  sink.ring_written <- sink.ring_written + 1;
  if sink.batching > 0 then begin
    Buffer.add_int32_le sink.batch (Int32.of_int (String.length payload));
    Buffer.add_string sink.batch payload
  end
  else sink.write (frame_of_payload payload)

let write_header sink ~journal meta =
  if sink.stream_open then
    invalid_arg "Journal.write_header: a streamed event is open on this sink";
  if not sink.header_written then begin
    sink.header_written <- true;
    let h = { journal; version = current_version; meta } in
    match sink.format with
    | Jsonl -> push_line sink (render_header h)
    | Binary ->
      sink_out sink binary_magic;
      Fb.clear sink.scratch;
      encode_value sink.scratch (header_obj h);
      push_payload sink (Fb.contents sink.scratch)
  end

let emit sink ~kind fields =
  if sink.stream_open then
    invalid_arg "Journal.emit: a streamed event is open on this sink";
  let seq = sink.next_seq in
  let ts_ns = Int64.to_int (sink.clock_ns ()) in
  (* Encode before committing the sequence number: a rejected event (a
     non-finite float) leaves the sink unperturbed instead of burning a
     seq and tearing a hole replay would trip on. *)
  let payload =
    try
      Fb.clear sink.scratch;
      (match sink.format with
      | Jsonl -> render_event_into sink.scratch ~seq ~ts_ns ~kind fields
      | Binary -> encode_event_into sink.scratch ~seq ~ts_ns ~kind fields);
      Fb.contents sink.scratch
    with Encode_error msg ->
      raise
        (Encode_error
           (Printf.sprintf "line %d (event seq %d, ev %S): %s"
              (sink.ring_written + 1) seq kind msg))
  in
  sink.next_seq <- seq + 1;
  match sink.format with
  | Jsonl -> push_line sink payload
  | Binary -> push_payload sink payload

(* ----- streamed emission -----

   [emit] still allocates its argument: a [(string * value) list] with a
   boxed [value] per field, built once per event and immediately
   garbage. On the engine's per-op hot path that list is most of the
   remaining journaling cost. [Emit] writes fields straight into the
   sink's scratch writer instead — the caller declares the field count
   up front (it goes in the binary object header) and then pushes each
   field with a monomorphic call, so a steady-state event allocates
   nothing but the final payload string.

   Byte identity with [emit] is pinned by the codec tests: the prelude
   comes from the same [encode_event_prelude]/[render_event_prelude],
   and each field encoder mirrors the corresponding [encode_value] /
   [render_into] branch exactly.

   Contract: [start] .. exactly [fields] field calls .. [finish].
   Misuse (double start, wrong arity, reserved key) raises
   [Invalid_argument]. A non-finite float raises [Encode_error] with
   line/seq context, aborts the whole event and burns no seq — the
   same recovery story as [emit]. *)

let stream_error sink msg =
  sink.stream_open <- false;
  raise
    (Encode_error
       (Printf.sprintf "line %d (event seq %d, ev %S): %s"
          (sink.ring_written + 1) sink.stream_seq sink.stream_kind msg))

module Emit = struct
  let start sink ~kind ~fields =
    if sink.stream_open then
      invalid_arg "Journal.Emit.start: a streamed event is already open";
    if fields < 0 then invalid_arg "Journal.Emit.start: negative field count";
    sink.stream_open <- true;
    sink.stream_left <- fields;
    sink.stream_seq <- sink.next_seq;
    sink.stream_kind <- kind;
    let ts_ns = Int64.to_int (sink.clock_ns ()) in
    let b = sink.scratch in
    Fb.clear b;
    match sink.format with
    | Binary ->
      encode_event_prelude b ~seq:sink.stream_seq ~ts_ns ~kind ~count:fields
    | Jsonl -> render_event_prelude b ~seq:sink.stream_seq ~ts_ns ~kind

  (* Writes the field separator + key; the caller appends the value. *)
  let field_key sink k =
    if not sink.stream_open then
      invalid_arg "Journal.Emit: no streamed event is open";
    if sink.stream_left = 0 then
      invalid_arg "Journal.Emit: more fields than declared in start";
    if is_reserved k then
      invalid_arg "Journal.Emit: reserved key (seq/ts_ns/ev)";
    sink.stream_left <- sink.stream_left - 1;
    let b = sink.scratch in
    match sink.format with
    | Binary -> put_key b k
    | Jsonl ->
      Fb.ensure b 1;
      Fb.put_char b ',';
      escape_string b k;
      Fb.ensure b 1;
      Fb.put_char b ':'

  let int sink k v =
    field_key sink k;
    let b = sink.scratch in
    match sink.format with
    | Binary ->
      Fb.ensure b 11;
      Fb.put_byte b 0x02;
      put_uvarint b ((v lsl 1) lxor (v asr 62))
    | Jsonl -> Fb.put_int b v

  let str sink k v =
    field_key sink k;
    let b = sink.scratch in
    match sink.format with
    | Binary ->
      Fb.ensure b 10;
      Fb.put_byte b 0x04;
      put_uvarint b (String.length v);
      Fb.put_string b v
    | Jsonl -> escape_string b v

  let bool sink k v =
    field_key sink k;
    let b = sink.scratch in
    match sink.format with
    | Binary ->
      Fb.ensure b 2;
      Fb.put_byte b 0x01;
      Fb.put_byte b (if v then 1 else 0)
    | Jsonl -> Fb.put_string b (if v then "true" else "false")

  let float sink k v =
    if not (Float.is_finite v) then
      stream_error sink
        (Printf.sprintf "non-finite float %s has no journal encoding"
           (Float.to_string v));
    field_key sink k;
    let b = sink.scratch in
    match sink.format with
    | Binary ->
      Fb.ensure b 9;
      Fb.put_byte b 0x03;
      Bytes.set_int64_le b.Fb.b b.Fb.pos (Int64.bits_of_float v);
      b.Fb.pos <- b.Fb.pos + 8
    | Jsonl ->
      let s = Printf.sprintf "%.17g" v in
      Fb.put_string b s;
      if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
        Fb.put_string b ".0"

  let finish sink =
    if not sink.stream_open then
      invalid_arg "Journal.Emit.finish: no streamed event is open";
    if sink.stream_left <> 0 then
      invalid_arg "Journal.Emit.finish: fewer fields than declared in start";
    sink.stream_open <- false;
    let b = sink.scratch in
    (match sink.format with
    | Jsonl ->
      Fb.ensure b 1;
      Fb.put_char b '}'
    | Binary -> ());
    let payload = Fb.contents b in
    sink.next_seq <- sink.stream_seq + 1;
    match sink.format with
    | Jsonl -> push_line sink payload
    | Binary -> push_payload sink payload
end

let events_written sink = sink.next_seq

let tail sink n =
  let cap = Array.length sink.ring in
  let total = sink.ring_written in
  let avail = min total cap in
  let take = max 0 (min n avail) in
  List.init take (fun j ->
      let entry = sink.ring.((total - take + j) mod cap) in
      match sink.format with
      | Jsonl -> entry
      | Binary -> render_json (decode_payload entry))

(* ----- whole-journal parsing ----- *)

let err lineno fmt = Printf.ksprintf (fun msg -> Error (Printf.sprintf "line %d: %s" lineno msg)) fmt

let parse_header_obj lineno kvs =
  match (List.assoc_opt "journal" kvs, List.assoc_opt "version" kvs) with
  | Some (Str journal), Some (Int version) ->
    let meta = List.filter (fun (k, _) -> k <> "journal" && k <> "version") kvs in
    Ok { journal; version; meta }
  | None, _ -> err lineno "header is missing the \"journal\" field"
  | _, None -> err lineno "header is missing the \"version\" field"
  | _ -> err lineno "header \"journal\"/\"version\" fields have the wrong type"

let parse_event_obj lineno ~expect_seq kvs =
  match
    ( List.assoc_opt "seq" kvs,
      List.assoc_opt "ts_ns" kvs,
      List.assoc_opt "ev" kvs )
  with
  | Some (Int seq), Some (Int ts_ns), Some (Str kind) ->
    if seq <> expect_seq then
      err lineno "sequence number %d, expected %d (truncated or tampered journal)" seq
        expect_seq
    else begin
      let fields = List.filter (fun (k, _) -> not (List.mem k reserved)) kvs in
      Ok { seq; ts_ns; kind; fields; line = lineno }
    end
  | None, _, _ -> err lineno "event is missing the \"seq\" field"
  | _, None, _ -> err lineno "event is missing the \"ts_ns\" field"
  | _, _, None -> err lineno "event is missing the \"ev\" field"
  | _ -> err lineno "event \"seq\"/\"ts_ns\"/\"ev\" fields have the wrong type"

let parse_lines lines =
  let rec go lineno ~header ~expect_seq acc = function
    | [] -> (
      match header with
      | None -> Error "empty journal: missing header line"
      | Some h -> Ok (h, List.rev acc))
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) ~header ~expect_seq acc rest
      else begin
        match json_of_string line with
        | Error msg -> err lineno "%s" msg
        | Ok (Obj kvs) -> (
          match header with
          | None -> (
            match parse_header_obj lineno kvs with
            | Error _ as e -> e
            | Ok h -> go (lineno + 1) ~header:(Some h) ~expect_seq acc rest)
          | Some _ -> (
            match parse_event_obj lineno ~expect_seq kvs with
            | Error _ as e -> e
            | Ok ev -> go (lineno + 1) ~header ~expect_seq:(expect_seq + 1) (ev :: acc) rest))
        | Ok _ -> err lineno "expected a JSON object"
      end
  in
  go 1 ~header:None ~expect_seq:0 [] lines

let parse_string s = parse_lines (String.split_on_char '\n' s)

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec loop acc =
          match input_line ic with
          | line -> loop (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        parse_lines (loop []))

(* ----- binary journals ----- *)

let starts_with_magic s =
  String.length s >= String.length binary_magic
  && String.sub s 0 (String.length binary_magic) = binary_magic

(* Same discipline as [parse_lines] — header first, contiguous sequence
   numbers, "line %d" errors (a frame is a line here: the header is
   line 1, the first event line 2, matching the JSONL rendering). *)
let parse_binary_string s =
  if not (starts_with_magic s) then Error "not a binary journal (bad magic)"
  else begin
    let n = String.length s in
    let rec go pos lineno ~header ~expect_seq acc =
      if pos >= n then
        match header with
        | None -> Error "empty journal: missing header frame"
        | Some h -> Ok (h, List.rev acc)
      else if pos + 4 > n then err lineno "truncated frame length"
      else begin
        let len = Int32.to_int (String.get_int32_le s pos) in
        if len < 0 || pos + 4 + len > n then err lineno "truncated frame"
        else begin
          let payload = String.sub s (pos + 4) len in
          match decode_payload payload with
          | exception Parse_error msg -> err lineno "%s" msg
          | Obj kvs -> (
            let next = pos + 4 + len in
            match header with
            | None -> (
              match parse_header_obj lineno kvs with
              | Error _ as e -> e
              | Ok h -> go next (lineno + 1) ~header:(Some h) ~expect_seq acc)
            | Some _ -> (
              match parse_event_obj lineno ~expect_seq kvs with
              | Error _ as e -> e
              | Ok ev ->
                go next (lineno + 1) ~header ~expect_seq:(expect_seq + 1) (ev :: acc)))
          | _ -> err lineno "expected an object frame"
        end
      end
    in
    go (String.length binary_magic) 1 ~header:None ~expect_seq:0 []
  end

let read_whole_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Ok (In_channel.input_all ic))

module Binary = struct
  let magic = binary_magic
  let encode_header h = frame_of_payload (encode_payload (header_obj h))
  let encode_event e = frame_of_payload (encode_payload (event_obj e))
  let parse_string = parse_binary_string

  let parse_file path =
    Result.bind (read_whole_file path) parse_binary_string
end

(* Auto-detecting loaders: a binary journal announces itself with the
   magic, anything else is treated as JSONL text. Every consumer that
   accepts user-supplied journal paths (replay, snapshot, compact,
   explain, convert, serve resume) goes through these. *)
let load_string s =
  if starts_with_magic s then parse_binary_string s else parse_string s

let load_file path = Result.bind (read_whole_file path) load_string

(* ----- typed field access ----- *)

let field e key = List.assoc_opt key e.fields

let field_err e key what =
  Error (Printf.sprintf "line %d: %s event: field %S missing or not %s" e.line e.kind key what)

let int_field e key =
  match field e key with
  | Some (Int v) -> Ok v
  | _ -> field_err e key "an integer"

let str_field e key =
  match field e key with
  | Some (Str v) -> Ok v
  | _ -> field_err e key "a string"

let float_field e key =
  match field e key with
  | Some (Float v) -> Ok v
  | Some (Int v) -> Ok (float_of_int v)
  | _ -> field_err e key "a number"

let bool_field e key =
  match field e key with
  | Some (Bool v) -> Ok v
  | _ -> field_err e key "a boolean"

let list_field e key =
  match field e key with
  | Some (List v) -> Ok v
  | _ -> field_err e key "a list"
