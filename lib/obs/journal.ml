module Timer = Rebal_harness.Timer

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let current_version = 1

(* ----- rendering ----- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec render_into b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      (* %.17g round-trips every finite binary64 through
         [float_of_string] exactly. *)
      let s = Printf.sprintf "%.17g" f in
      Buffer.add_string b s;
      (* "2" would parse back as Int; force a float marker. *)
      if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
        Buffer.add_string b ".0"
    end
    else Buffer.add_string b "null"
  | Str s -> escape_string b s
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        render_into b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        render_into b v)
      kvs;
    Buffer.add_char b '}'

let render_json v =
  let b = Buffer.create 128 in
  render_into b v;
  Buffer.contents b

(* ----- parsing ----- *)

exception Parse_error of string

let parse_json_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos >= n || s.[!pos] <> c then fail "expected %C at offset %d" c !pos;
    advance ()
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape %S" hex
          in
          (* The journal only ever escapes control characters this way;
             decode the BMP code point as UTF-8 so foreign journals with
             plain \uXXXX escapes still parse. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end;
          pos := !pos + 4
        | c -> fail "bad escape \\%c" c);
        advance ();
        loop ()
      | c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S" text
    else begin
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number %S" text)
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}' at offset %d" !pos
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' at offset %d" !pos
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C at offset %d" c !pos
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

let json_of_string s =
  match parse_json_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ----- headers and events ----- *)

type header = {
  journal : string;
  version : int;
  meta : (string * json) list;
}

type event = {
  seq : int;
  ts_ns : int;
  kind : string;
  fields : (string * json) list;
  line : int;
}

let reserved = [ "seq"; "ts_ns"; "ev" ]

let render_header h =
  render_json
    (Obj (("journal", Str h.journal) :: ("version", Int h.version) :: h.meta))

let render_event e =
  let fields = List.filter (fun (k, _) -> not (List.mem k reserved)) e.fields in
  render_json
    (Obj (("seq", Int e.seq) :: ("ts_ns", Int e.ts_ns) :: ("ev", Str e.kind) :: fields))

(* ----- sinks ----- *)

type sink = {
  write : string -> unit;
  clock_ns : unit -> int64;
  mutable next_seq : int;
  mutable header_written : bool;
  ring : string array;
  mutable ring_written : int;
}

let create ?(tail_capacity = 512) ?(start_seq = 0) ?header_written ?clock_ns ~write () =
  if tail_capacity < 1 then invalid_arg "Journal.create: need a positive tail capacity";
  if start_seq < 0 then invalid_arg "Journal.create: negative start_seq";
  let clock_ns = match clock_ns with Some c -> c | None -> Timer.now_ns in
  {
    write;
    clock_ns;
    next_seq = start_seq;
    (* A sink resuming an existing journal appends to a file whose
       header line is already on disk: writing a second one would
       corrupt it. Resuming right after a header with no events yet
       needs the explicit override, since start_seq is 0 there too. *)
    header_written = (match header_written with Some b -> b | None -> start_seq > 0);
    ring = Array.make tail_capacity "";
    ring_written = 0;
  }

let to_channel ?tail_capacity ?start_seq ?header_written ?(line_flush = false) oc =
  create ?tail_capacity ?start_seq ?header_written
    ~write:(fun line ->
      output_string oc line;
      if line_flush then flush oc)
    ()

(* A journal append must never take the daemon down with it: a full
   disk or a yanked volume raises [Sys_error] from deep inside a serve
   session, long after anyone can handle it sensibly. [resilient]
   wraps a raw write with bounded retry-with-exponential-backoff;
   when the retries are exhausted the line is dropped from durable
   storage (it is still in the sink's tail ring — [push_line] records
   it before the write runs) and the drop is counted in
   [rebal_journal_dropped_total{journal=...}] so the gap is loud.
   This is a fail-open policy: serving continues, and the hole in the
   on-disk journal is detected by replay's contiguous-seq check. *)
let resilient ?(retries = 3) ?(backoff = 0.01) ?(sleep = Unix.sleepf)
    ?(label = "journal") write =
  let dropped =
    Metrics.counter
      ~labels:[ ("journal", label) ]
      ~help:"Journal lines dropped after write retries were exhausted"
      "rebal_journal_dropped_total"
  in
  fun line ->
    let rec attempt n delay =
      match write line with
      | () -> ()
      | exception Sys_error msg ->
        if n >= retries then begin
          Metrics.Counter.inc dropped;
          Printf.eprintf
            "rebal journal %s: append failed after %d retries (%s); line dropped (kept in tail ring)\n%!"
            label retries msg
        end
        else begin
          sleep delay;
          attempt (n + 1) (delay *. 2.0)
        end
    in
    attempt 0 backoff

let push_line sink line =
  sink.ring.(sink.ring_written mod Array.length sink.ring) <- line;
  sink.ring_written <- sink.ring_written + 1;
  sink.write (line ^ "\n")

let write_header sink ~journal meta =
  if not sink.header_written then begin
    sink.header_written <- true;
    push_line sink (render_header { journal; version = current_version; meta })
  end

let emit sink ~kind fields =
  let seq = sink.next_seq in
  sink.next_seq <- seq + 1;
  let ts_ns = Int64.to_int (sink.clock_ns ()) in
  push_line sink (render_event { seq; ts_ns; kind; fields; line = 0 })

let events_written sink = sink.next_seq

let tail sink n =
  let cap = Array.length sink.ring in
  let total = sink.ring_written in
  let avail = min total cap in
  let take = max 0 (min n avail) in
  List.init take (fun j -> sink.ring.((total - take + j) mod cap))

(* ----- whole-journal parsing ----- *)

let err lineno fmt = Printf.ksprintf (fun msg -> Error (Printf.sprintf "line %d: %s" lineno msg)) fmt

let parse_header_obj lineno kvs =
  match (List.assoc_opt "journal" kvs, List.assoc_opt "version" kvs) with
  | Some (Str journal), Some (Int version) ->
    let meta = List.filter (fun (k, _) -> k <> "journal" && k <> "version") kvs in
    Ok { journal; version; meta }
  | None, _ -> err lineno "header is missing the \"journal\" field"
  | _, None -> err lineno "header is missing the \"version\" field"
  | _ -> err lineno "header \"journal\"/\"version\" fields have the wrong type"

let parse_event_obj lineno ~expect_seq kvs =
  match
    ( List.assoc_opt "seq" kvs,
      List.assoc_opt "ts_ns" kvs,
      List.assoc_opt "ev" kvs )
  with
  | Some (Int seq), Some (Int ts_ns), Some (Str kind) ->
    if seq <> expect_seq then
      err lineno "sequence number %d, expected %d (truncated or tampered journal)" seq
        expect_seq
    else begin
      let fields = List.filter (fun (k, _) -> not (List.mem k reserved)) kvs in
      Ok { seq; ts_ns; kind; fields; line = lineno }
    end
  | None, _, _ -> err lineno "event is missing the \"seq\" field"
  | _, None, _ -> err lineno "event is missing the \"ts_ns\" field"
  | _, _, None -> err lineno "event is missing the \"ev\" field"
  | _ -> err lineno "event \"seq\"/\"ts_ns\"/\"ev\" fields have the wrong type"

let parse_lines lines =
  let rec go lineno ~header ~expect_seq acc = function
    | [] -> (
      match header with
      | None -> Error "empty journal: missing header line"
      | Some h -> Ok (h, List.rev acc))
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) ~header ~expect_seq acc rest
      else begin
        match json_of_string line with
        | Error msg -> err lineno "%s" msg
        | Ok (Obj kvs) -> (
          match header with
          | None -> (
            match parse_header_obj lineno kvs with
            | Error _ as e -> e
            | Ok h -> go (lineno + 1) ~header:(Some h) ~expect_seq acc rest)
          | Some _ -> (
            match parse_event_obj lineno ~expect_seq kvs with
            | Error _ as e -> e
            | Ok ev -> go (lineno + 1) ~header ~expect_seq:(expect_seq + 1) (ev :: acc) rest))
        | Ok _ -> err lineno "expected a JSON object"
      end
  in
  go 1 ~header:None ~expect_seq:0 [] lines

let parse_string s = parse_lines (String.split_on_char '\n' s)

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec loop acc =
          match input_line ic with
          | line -> loop (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        parse_lines (loop []))

(* ----- typed field access ----- *)

let field e key = List.assoc_opt key e.fields

let field_err e key what =
  Error (Printf.sprintf "line %d: %s event: field %S missing or not %s" e.line e.kind key what)

let int_field e key =
  match field e key with
  | Some (Int v) -> Ok v
  | _ -> field_err e key "an integer"

let str_field e key =
  match field e key with
  | Some (Str v) -> Ok v
  | _ -> field_err e key "a string"

let float_field e key =
  match field e key with
  | Some (Float v) -> Ok v
  | Some (Int v) -> Ok (float_of_int v)
  | _ -> field_err e key "a number"

let bool_field e key =
  match field e key with
  | Some (Bool v) -> Ok v
  | _ -> field_err e key "a boolean"

let list_field e key =
  match field e key with
  | Some (List v) -> Ok v
  | _ -> field_err e key "a list"
