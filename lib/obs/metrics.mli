(** The metrics registry: named counters, gauges and fixed-bucket
    histograms with labels.

    A metric handle is obtained once (a hashtable lookup in the current
    registry) and then mutated in place — the hot increment path
    ([Counter.inc], [Histogram.observe]) allocates nothing. Handles are
    identified by (name, canonically sorted labels); asking twice for the
    same identity returns the same handle, so instrumentation sites can
    re-fetch at every call without double counting.

    There is one process-global {!Registry.default}; tests and the bench
    harness isolate themselves with {!Registry.with_registry}, which
    scopes which registry handle-creation binds to.

    {b Concurrency contract.} Registry {e structure} is domain-safe: a
    per-registry mutex guards handle registration ({!counter}, {!gauge},
    {!histogram}), {!Registry.metrics}, {!Registry.clear},
    {!Registry.register_collector} and the structural half of {!merge},
    so several domains may register into the same registry concurrently.
    The "current registry" is domain-local ({!Registry.with_registry}
    scopes only the calling domain; fresh domains start on
    {!Registry.default}). Handle {e mutation} ([Counter.inc],
    [Gauge.set], [Histogram.observe]) is deliberately unsynchronized to
    keep the hot path zero-cost: confine each handle's writers to one
    domain at a time — the pattern the parallel cluster uses is one
    registry per worker domain, {!merge}d into an exposition registry on
    export. A reader ({!Registry.metrics}, {!merge}) racing a confined
    writer sees word-atomic values (no tearing), but cross-field
    invariants (a histogram's sum vs its buckets) may be mid-update;
    that is acceptable for monitoring reads and never corrupts the
    registry. *)

type labels = (string * string) list

type counter
type gauge
type histogram

type kind =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type metric = {
  name : string;
  labels : labels;  (** canonically sorted *)
  help : string;
  kind : kind;
}

module Registry : sig
  type t

  val create : unit -> t

  val default : t
  (** The process-global registry, current unless scoped otherwise. *)

  val current : unit -> t
  (** The calling domain's current registry (domain-local; fresh domains
      start on {!default}). *)

  val with_registry : t -> (unit -> 'a) -> 'a
  (** Make [t] the current registry for the call (exception-safe). The
      redirection is domain-local: other domains are unaffected. *)

  val register_collector : t -> (unit -> unit) -> unit
  (** Register a callback run by {!metrics} before snapshotting — the
      hook for exporting externally-held state (e.g. engine counters)
      into gauges at exposition time instead of on every event. *)

  val clear : t -> unit
  (** Drop all metrics and collectors. Existing handles keep working but
      are no longer reachable from the registry. *)

  val metrics : t -> metric list
  (** Run the collectors, then snapshot all metrics in registration
      order. *)
end

val counter : ?registry:Registry.t -> ?help:string -> ?labels:labels -> string -> counter
(** Find or create. [registry] defaults to [Registry.current ()].
    @raise Invalid_argument on an invalid name or if the identity is
    already registered as a different kind. *)

val gauge : ?registry:Registry.t -> ?help:string -> ?labels:labels -> string -> gauge

val histogram :
  ?registry:Registry.t ->
  ?help:string ->
  ?labels:labels ->
  ?buckets:float array ->
  string ->
  histogram
(** [buckets] are strictly increasing finite upper bounds (default:
    latency buckets 1 µs .. 1 s); an implicit +Inf bucket is appended.
    The bucket array is ignored when the histogram already exists. *)

val default_buckets : float array

val exponential_buckets : start:float -> factor:float -> count:int -> float array
(** [start *. factor^i] for [i < count].
    @raise Invalid_argument unless [start > 0], [factor > 1], [count >= 1]. *)

module Counter : sig
  type t = counter

  val inc : t -> unit
  val add : t -> int -> unit
  (** @raise Invalid_argument on a negative increment. *)

  val set : t -> int -> unit
  (** For collectors mirroring an externally-maintained monotone count. *)

  val value : t -> int
end

module Gauge : sig
  type t = gauge

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t = histogram

  val observe : t -> float -> unit
  (** Count [x] into the first bucket with [x <= upper] (the +Inf bucket
      if none) and add it to the sum. *)

  val observe_ns : t -> int64 -> unit
  (** Observe a nanosecond duration as seconds. *)

  val observations : t -> int
  val sum : t -> float

  val buckets : t -> (float * int) list
  (** Per-bucket (upper bound, count) pairs, non-cumulative; the last
      upper bound is [infinity]. *)
end

val register_build_info :
  ?registry:Registry.t -> ?clock:(unit -> float) -> version:string -> unit -> unit
(** Register the standard build metadata series:
    [rebal_build_info{ocaml,version}] (always 1) and a collector-driven
    [rebal_uptime_seconds] counting from this call. [registry] defaults
    to [Registry.current ()]; [clock] (default [Unix.gettimeofday])
    is injectable for tests. Both expositions pick the series up like
    any other registry member. *)

val merge : into:Registry.t -> Registry.t -> unit
(** Fold the source registry's values into [into]: counters add,
    histograms (with identical buckets) add bucket-wise, gauges take the
    source's value. Metrics absent from [into] are created. Merging
    registries that observed disjoint event streams yields the same
    counts as observing both streams into one registry.
    @raise Invalid_argument on kind or bucket mismatches. *)
