(** The master switch for clock-reading observability.

    Metric counters are plain field increments and always count; what
    this flag gates is everything that must read a clock per operation —
    span creation in {!Trace} and the per-event latency histograms in the
    online engine and simulators. Disabled (the default), those paths
    cost one atomic load and a branch, which is what keeps the
    instrumented hot loops within the < 5% overhead budget; the profile
    subcommand, the serve daemon and the bench experiments that need
    timings switch it on at startup. The flag is process-global and
    atomic — setting it on one domain is observed by all; [with_enabled]
    save/restore is not scoped per domain, so treat it as a
    whole-process toggle. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with the switch forced to the given value, restoring the
    previous value afterwards (exception-safe). *)
