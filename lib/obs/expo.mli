(** Exposition formats for a metrics registry. Both snapshots run the
    registry's collectors first (via [Metrics.Registry.metrics]). *)

val prometheus : Metrics.Registry.t -> string
(** Prometheus text exposition: [# HELP] / [# TYPE] headers per metric
    family, one sample line per label set; histograms expose cumulative
    [_bucket{le=...}] series plus [_sum] and [_count]. *)

val json : Metrics.Registry.t -> string
(** One JSON object [{"metrics": [...]}]; histogram buckets are
    non-cumulative with ["le"] rendered as a string (["+Inf"] for the
    overflow bucket). *)

val fmt_le : float -> string
(** A bucket upper bound as Prometheus renders it (["+Inf"] for
    [infinity]) — exposed for tests and custom renderers. *)
