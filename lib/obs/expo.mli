(** Exposition formats for a metrics registry. Both snapshots run the
    registry's collectors first (via [Metrics.Registry.metrics]). *)

val prometheus : Metrics.Registry.t -> string
(** Prometheus text exposition: [# HELP] / [# TYPE] headers per metric
    family, one sample line per label set; histograms expose cumulative
    [_bucket{le=...}] series plus [_sum] and [_count]. *)

val json : Metrics.Registry.t -> string
(** One JSON object [{"metrics": [...]}]; histogram buckets are
    non-cumulative with ["le"] rendered as a string (["+Inf"] for the
    overflow bucket). *)

val fmt_le : float -> string
(** A bucket upper bound as Prometheus renders it (["+Inf"] for
    [infinity]) — exposed for tests and custom renderers. *)

(** {2 Parsing the text format back}

    The inverse of {!prometheus}, for consumers of a scrape — the
    [rebalance top] subcommand and the round-trip tests. *)

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
      (** canonical (sorted) order, escapes decoded *)
  value : float;
}

val parse : string -> (sample list, string) result
(** One {!sample} per non-comment, non-blank line. Decodes the label
    escapes {!prometheus} emits (backslash, quote, newline); label
    values may contain spaces. [Error] names the offending sample
    line. *)

val find_sample : sample list -> string -> (string * string) list -> sample option
(** Lookup by name and label set (any label order). *)

(** {2 The single dump entry point}

    [rebalance profile --out], the serve daemon's [--metrics-file] dump
    and any other metric snapshot all route through {!write} /
    {!to_file} instead of hand-rolling channel plumbing. *)

type format = Prometheus | Json

val format_of_string : string -> format option
(** Recognizes ["prom"], ["prometheus"] and ["json"]. *)

val render : format -> Metrics.Registry.t -> string

val write : ?trailer:string -> format -> out_channel -> Metrics.Registry.t -> unit
(** Render, terminate with a newline if missing, append [trailer] on its
    own line if given (the serve dump uses ["# EOF"]), and flush. *)

val to_file : ?trailer:string -> format -> path:string -> Metrics.Registry.t -> (unit, string) result
(** {!write} to a fresh file, mapping [Sys_error] to [Error]. *)
