(** A fixed-memory in-process time-series store.

    A sampler snapshots every metric of a registry (counters, gauges,
    and histograms — the latter flattened into cumulative
    [<name>_bucket{le=...}] / [<name>_sum] / [<name>_count] series, the
    exact shape the Prometheus exposition uses) at a configurable
    cadence into bounded rings. Three downsampling tiers bound memory
    while keeping history: every sample lands in the raw ring, every 10
    raw samples are aggregated into one mid-tier point and every 60
    into one coarse point, so with the default capacities a 1 s
    interval retains 10 minutes raw, 100 minutes at 10 s and 10 hours
    at 1 min. An aggregated point keeps last/min/max/sum/samples, so
    counter deltas are conserved exactly across tiers (the [last] of a
    block is the counter's cumulative value) and gauge min/max/avg
    survive downsampling.

    Windowed queries ({!window}, {!quantile}, {!eval}) read a
    multi-resolution view: coarse points for the part of the window
    older than the mid ring's reach, mid points up to the raw ring's
    reach, raw points for the newest part — no sample is counted
    twice. Quantiles over a window are computed from histogram bucket
    deltas (cumulative count at window end minus window start), i.e.
    the quantile of what was observed {e during} the window, not since
    process start.

    The optional JSONL persistence sink reuses the {!Journal} machinery
    (seq numbers, injectable clock, resilient fail-open writes): one
    ["sample"] event per tick carrying every scalar series, so
    telemetry survives the process and [rebalance postmortem] can join
    it with the op journals.

    Concurrency: every operation takes an internal lock; {!sample} is
    expected to run on one telemetry thread while sessions issue
    queries concurrently. *)

type point = {
  at_ns : int;  (** timestamp of the newest raw sample merged in *)
  last : float;
  min : float;
  max : float;
  sum : float;  (** sum of the raw sampled values *)
  samples : int;  (** raw samples merged into this point *)
}

type stats = {
  s_points : int;  (** points in the window *)
  s_first_ns : int;
  s_last_ns : int;
  s_first : float;
  s_last : float;
  s_min : float;
  s_max : float;
  s_avg : float;  (** sample-weighted mean *)
  s_delta : float;  (** last - first *)
  s_rate : float;  (** delta per second over the observed span; 0 on one point *)
}

type t

val create :
  ?raw_capacity:int ->
  ?mid_capacity:int ->
  ?coarse_capacity:int ->
  ?clock_ns:(unit -> int64) ->
  ?sink:Journal.sink ->
  ?meta:(string * Journal.json) list ->
  source:(unit -> Metrics.metric list) ->
  unit ->
  t
(** [source] is called once per {!sample} — typically a thunk building
    the merged exposition registry and snapshotting it. Capacities
    default to 600 points per tier. [clock_ns] defaults to the
    monotonic [Rebal_harness.Timer.now_ns]. When [sink] is given the
    telemetry header ([journal = "rebal-telemetry"], with [meta]) is
    written immediately and every tick appends one ["sample"] event.
    @raise Invalid_argument if a capacity is < 2. *)

val sample : t -> unit
(** Take one snapshot of [source] now. *)

val samples_taken : t -> int

val last_sample_ns : t -> int
(** Timestamp of the latest tick (0 before the first). Windowed
    queries anchor their window end here, which makes them
    deterministic under an injected clock. *)

val series_list : t -> (string * Metrics.labels) list
(** Every series seen so far, in first-seen order. *)

val points :
  t -> ?labels:Metrics.labels -> window_s:float -> string -> point list
(** The multi-resolution points covering the trailing window, oldest
    first; [] for an unknown series. *)

val window :
  t -> ?labels:Metrics.labels -> window_s:float -> string -> stats option
(** Aggregate the window's points; [None] for an unknown or empty
    series. *)

val quantile :
  t -> ?labels:Metrics.labels -> q:float -> window_s:float -> string -> float option
(** The [q]-quantile (nearest-rank over bucket deltas) of histogram
    [name] over the trailing window: the upper bound of the first
    bucket whose cumulative in-window count reaches [q] of the total
    (possibly [infinity]). [None] if the histogram is unknown or
    nothing was observed in the window.
    @raise Invalid_argument unless [0 <= q <= 1]. *)

(** {2 Selectors, durations and query functions}

    The little expression language shared by alert rules, the [TSDB]
    protocol verb and [GET /tsdb]. *)

val parse_selector : string -> (string * Metrics.labels, string) result
(** [name] or [name{k="v",...}] (labels end up canonically sorted). *)

val selector_string : string -> Metrics.labels -> string

val parse_duration : string -> (float, string) result
(** Seconds from ["250ms"], ["30s"], ["5m"], ["1h"] or a bare number
    (seconds). Must be finite and >= 0. *)

val duration_string : float -> string

type func =
  | Value  (** last sampled value (window ignored) *)
  | Rate
  | Delta
  | Avg
  | Min
  | Max
  | Quantile of float  (** over a histogram's bucket deltas *)

val func_of_string : string -> (func, string) result
(** [value], [rate], [delta], [avg], [min], [max] or [p50] / [p99] /
    [p99.9] (quantile as a percentile). *)

val func_name : func -> string

val eval :
  t -> func -> ?labels:Metrics.labels -> window_s:float -> string -> float option
(** Apply a query function to the trailing window. For {!Quantile} the
    [name] is the histogram base name (no [_bucket] suffix). *)

(** {2 Rendering} *)

val render_lines :
  t -> selector:string -> window_s:float -> (string list, string) result
(** The [TSDB] verb reply body: a [SERIES ...] summary line followed by
    one [POINT at_ns=... last=... min=... max=... avg=... samples=...]
    line per in-window point (no [# EOF] trailer). [Error] on a
    malformed selector; an unknown series yields [points=0]. *)

val render_json :
  t -> selector:string -> window_s:float -> (string, string) result
(** The same data as a JSON object — the [GET /tsdb] response body. *)
