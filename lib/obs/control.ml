let flag = ref false

let enabled () = !flag
let set_enabled b = flag := b

let with_enabled b f =
  let saved = !flag in
  flag := b;
  Fun.protect ~finally:(fun () -> flag := saved) f
