(* An Atomic, not a ref: the serve daemon flips the switch once on the
   main domain and every shard worker domain must observe it — a plain
   ref would be a data race under OCaml 5's memory model. *)
let flag = Atomic.make false

let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

let with_enabled b f =
  let saved = Atomic.get flag in
  Atomic.set flag b;
  Fun.protect ~finally:(fun () -> Atomic.set flag saved) f
