(** Span tracing: a tree of timed spans with attached attributes, plus a
    fixed-capacity ring-buffer event log.

    [with_span name f] times [f] on the monotonic clock and records the
    span under the innermost open span (or as a new root). When
    {!Control} is disabled — the default — [with_span] is [f ()] behind
    one ref load and branch, so instrumented hot paths cost effectively
    nothing. Completed root spans are kept in a bounded queue (default
    256, oldest dropped) so a long-running daemon cannot leak.

    {b Concurrency contract.} All tracer state — the open-span stack,
    the completed-roots queue and the event ring — is {e domain-local}:
    each domain traces into its own buffers, so worker domains never
    race on a shared stack and a span tree never mixes domains.
    {!finished}, {!events}, {!reset}, {!set_max_roots} and
    {!set_ring_capacity} all operate on the calling domain's state; a
    coordinator that wants a worker's spans must collect them on that
    worker (the parallel cluster does exactly this for its per-domain
    metrics registries). Within one domain the discipline is unchanged:
    one logical stack, matching the single-threaded solvers and
    sessions it instruments. *)

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type span

val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** Run [f] inside a span. Exception-safe: the span is closed (and
    recorded) even if [f] raises. A no-op wrapper when disabled. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span; no-op when disabled
    or when no span is open. *)

val finished : unit -> span list
(** Completed root spans, oldest first (bounded; see {!set_max_roots}). *)

val reset : unit -> unit
(** Drop all completed roots and any open-span stack. *)

val set_max_roots : int -> unit
(** Capacity of the completed-roots queue.
    @raise Invalid_argument if not positive. *)

val name : span -> string
val attrs : span -> (string * value) list
val children : span -> span list
(** Child spans in start order. *)

val duration_ns : span -> int64

val string_of_value : value -> string

(** {2 Ring-buffer event log} *)

type event = {
  ts_ns : int64;
  event_name : string;
  event_attrs : (string * value) list;
}

val event : ?attrs:(string * value) list -> string -> unit
(** Append to the ring (no-op when disabled); overwrites the oldest
    entry when full, counting each overwrite in the
    [rebal_trace_dropped_total{kind="event"}] counter of the current
    registry (spans evicted from the roots queue count under
    [kind="span"]). *)

val events : unit -> event list
(** Buffered events, oldest first. *)

val set_ring_capacity : int -> unit
(** Resize (and clear) the ring. Default capacity 1024.
    @raise Invalid_argument if not positive. *)

(** {2 Rendering} *)

val pp_tree : Format.formatter -> span -> unit
(** Indented tree: one line per span with attributes and duration. *)

val render_tree : span -> string
