type labels = (string * string) list

type counter = { mutable count : int }
type gauge = { mutable value : float }

type histogram = {
  upper : float array;
  bucket_counts : int array; (* length = Array.length upper + 1; last is +Inf *)
  mutable sum : float;
  mutable observations : int;
}

type kind =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type metric = {
  name : string;
  labels : labels;
  help : string;
  kind : kind;
}

type registry = {
  tbl : (string * labels, metric) Hashtbl.t;
  mutable rev_order : (string * labels) list;
  mutable collectors : (unit -> unit) list;
  (* Guards the registry *structure* (table, order, collectors) against
     concurrent registration from several domains. Handle mutation is
     deliberately not behind it — see the .mli concurrency contract. *)
  lock : Mutex.t;
}

(* Canonical label order makes (name, labels) a stable identity
   regardless of the order the instrumentation site wrote them in. *)
let canonical labels = List.sort_uniq compare labels

let validate_name name =
  if String.length name = 0 then invalid_arg "Metrics: empty metric name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name))
    name;
  match name.[0] with
  | '0' .. '9' -> invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name)
  | _ -> ()

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

module Registry = struct
  type t = registry

  let create () =
    { tbl = Hashtbl.create 32; rev_order = []; collectors = []; lock = Mutex.create () }

  let default = create ()

  (* The current registry is a per-domain notion: [with_registry] on one
     domain must not redirect another domain's instrumentation (the
     cluster runtime scopes each shard worker to its own registry this
     way). Fresh domains start on the shared [default]. *)
  let current_key = Domain.DLS.new_key (fun () -> default)
  let current () = Domain.DLS.get current_key

  let with_registry r f =
    let saved = Domain.DLS.get current_key in
    Domain.DLS.set current_key r;
    Fun.protect ~finally:(fun () -> Domain.DLS.set current_key saved) f

  let register_collector r f = locked r.lock (fun () -> r.collectors <- f :: r.collectors)

  let clear r =
    locked r.lock (fun () ->
        Hashtbl.reset r.tbl;
        r.rev_order <- [];
        r.collectors <- [])

  let metrics r =
    (* Collectors run outside the lock: they re-enter the registry
       through [counter]/[gauge] handles, and the lock is not reentrant. *)
    let collectors = locked r.lock (fun () -> List.rev r.collectors) in
    List.iter (fun f -> f ()) collectors;
    locked r.lock (fun () -> List.rev_map (Hashtbl.find r.tbl) r.rev_order)
end

let pick_registry = function
  | Some r -> r
  | None -> Registry.current ()

let intern reg ~name ~labels ~help make =
  validate_name name;
  let labels = canonical labels in
  let key = (name, labels) in
  locked reg.lock (fun () ->
      match Hashtbl.find_opt reg.tbl key with
      | Some m -> m
      | None ->
        let m = { name; labels; help; kind = make () } in
        Hashtbl.replace reg.tbl key m;
        reg.rev_order <- key :: reg.rev_order;
        m)

let kind_mismatch what name =
  invalid_arg (Printf.sprintf "Metrics.%s: %s already registered with another type" what name)

let counter ?registry ?(help = "") ?(labels = []) name =
  let m =
    intern (pick_registry registry) ~name ~labels ~help (fun () -> Counter { count = 0 })
  in
  match m.kind with Counter c -> c | _ -> kind_mismatch "counter" name

let gauge ?registry ?(help = "") ?(labels = []) name =
  let m =
    intern (pick_registry registry) ~name ~labels ~help (fun () -> Gauge { value = 0.0 })
  in
  match m.kind with Gauge g -> g | _ -> kind_mismatch "gauge" name

(* Latency buckets in seconds: 1 µs .. 1 s, roughly 1-2.5-5 per decade. *)
let default_buckets =
  [|
    1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3;
    1e-2; 2.5e-2; 5e-2; 0.1; 0.25; 0.5; 1.0;
  |]

let exponential_buckets ~start ~factor ~count =
  if count < 1 then invalid_arg "Metrics.exponential_buckets: count must be positive";
  if start <= 0.0 then invalid_arg "Metrics.exponential_buckets: start must be positive";
  if factor <= 1.0 then invalid_arg "Metrics.exponential_buckets: factor must exceed 1";
  Array.init count (fun i -> start *. (factor ** float_of_int i))

let check_buckets upper =
  if Array.length upper = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i u ->
      if not (Float.is_finite u) then invalid_arg "Metrics.histogram: non-finite bucket";
      if i > 0 && upper.(i - 1) >= u then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    upper

let histogram ?registry ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  let m =
    intern (pick_registry registry) ~name ~labels ~help (fun () ->
        check_buckets buckets;
        let upper = Array.copy buckets in
        Histogram
          {
            upper;
            bucket_counts = Array.make (Array.length upper + 1) 0;
            sum = 0.0;
            observations = 0;
          })
  in
  match m.kind with Histogram h -> h | _ -> kind_mismatch "histogram" name

module Counter = struct
  type t = counter

  let inc c = c.count <- c.count + 1

  let add c n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    c.count <- c.count + n

  let set c n = c.count <- n
  let value c = c.count
end

module Gauge = struct
  type t = gauge

  let set g v = g.value <- v
  let add g v = g.value <- g.value +. v
  let value g = g.value
end

module Histogram = struct
  type t = histogram

  let observe h x =
    let n = Array.length h.upper in
    let i = ref 0 in
    while !i < n && x > h.upper.(!i) do
      incr i
    done;
    h.bucket_counts.(!i) <- h.bucket_counts.(!i) + 1;
    h.sum <- h.sum +. x;
    h.observations <- h.observations + 1

  let observe_ns h ns = observe h (Int64.to_float ns *. 1e-9)

  let observations h = h.observations
  let sum h = h.sum

  (* Per-bucket (non-cumulative) counts paired with their upper bounds;
     the final pair carries [infinity]. *)
  let buckets h =
    Array.to_list
      (Array.mapi
         (fun i c ->
           ((if i < Array.length h.upper then h.upper.(i) else infinity), c))
         h.bucket_counts)
end

let register_build_info ?registry ?(clock = Unix.gettimeofday) ~version () =
  let registry = match registry with Some r -> r | None -> Registry.current () in
  let info =
    gauge ~registry ~help:"Build metadata (value is always 1)"
      ~labels:[ ("ocaml", Sys.ocaml_version); ("version", version) ]
      "rebal_build_info"
  in
  Gauge.set info 1.;
  let uptime = gauge ~registry ~help:"Seconds since process start" "rebal_uptime_seconds" in
  let started = clock () in
  Registry.register_collector registry (fun () ->
      Gauge.set uptime (clock () -. started))

let merge ~into src =
  (* Snapshot the source's structure under its own lock, then intern into
     the destination (each intern takes the destination lock); the value
     reads themselves rely on the single-writer confinement contract. *)
  let ordered = locked src.lock (fun () -> List.rev_map (Hashtbl.find src.tbl) src.rev_order) in
  List.iter
    (fun m ->
      match m.kind with
      | Counter c ->
        let dst = counter ~registry:into ~help:m.help ~labels:m.labels m.name in
        dst.count <- dst.count + c.count
      | Gauge g ->
        let dst = gauge ~registry:into ~help:m.help ~labels:m.labels m.name in
        dst.value <- g.value
      | Histogram h ->
        let dst =
          histogram ~registry:into ~help:m.help ~labels:m.labels ~buckets:h.upper m.name
        in
        if dst.upper <> h.upper then
          invalid_arg
            (Printf.sprintf "Metrics.merge: histogram %s has mismatched buckets" m.name);
        Array.iteri
          (fun i c -> dst.bucket_counts.(i) <- dst.bucket_counts.(i) + c)
          h.bucket_counts;
        dst.sum <- dst.sum +. h.sum;
        dst.observations <- dst.observations + h.observations)
    ordered
