(* Exposition: render a registry in the Prometheus text format or as
   JSON. Pure string building against the public Metrics API. *)

let fmt_value f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let fmt_le u = if u = infinity then "+Inf" else Printf.sprintf "%.9g" u

(* Label values: escape backslash, double quote and newline (the
   Prometheus text-format rules). *)
let escape_label s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* HELP text: escape backslash and newline only. *)
let escape_help s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let label_set labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
    ^ "}"

let kind_name = function
  | Metrics.Counter _ -> "counter"
  | Metrics.Gauge _ -> "gauge"
  | Metrics.Histogram _ -> "histogram"

(* Group samples by metric name, preserving registration order of first
   appearance, so families with several label sets share one HELP/TYPE
   header. *)
let families reg =
  let ms = Metrics.Registry.metrics reg in
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (m : Metrics.metric) ->
      match Hashtbl.find_opt seen m.Metrics.name with
      | Some rev -> rev := m :: !rev
      | None ->
        let rev = ref [ m ] in
        Hashtbl.replace seen m.Metrics.name rev;
        order := m.Metrics.name :: !order)
    ms;
  List.rev_map (fun name -> (name, List.rev !(Hashtbl.find seen name))) !order

let prometheus reg =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, ms) ->
      let first = List.hd ms in
      if first.Metrics.help <> "" then
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" name (escape_help first.Metrics.help));
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name (kind_name first.Metrics.kind));
      List.iter
        (fun (m : Metrics.metric) ->
          let ls = label_set m.Metrics.labels in
          match m.Metrics.kind with
          | Metrics.Counter c ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %d\n" name ls (Metrics.Counter.value c))
          | Metrics.Gauge g ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" name ls (fmt_value (Metrics.Gauge.value g)))
          | Metrics.Histogram h ->
            (* Prometheus buckets are cumulative. *)
            let cum = ref 0 in
            List.iter
              (fun (upper, count) ->
                cum := !cum + count;
                let labels = m.Metrics.labels @ [ ("le", fmt_le upper) ] in
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" name (label_set labels) !cum))
              (Metrics.Histogram.buckets h);
            Buffer.add_string b
              (Printf.sprintf "%s_sum%s %s\n" name ls (fmt_value (Metrics.Histogram.sum h)));
            Buffer.add_string b
              (Printf.sprintf "%s_count%s %d\n" name ls (Metrics.Histogram.observations h)))
        ms)
    (families reg);
  Buffer.contents b

(* ----- JSON ----- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         labels)
  ^ "}"

let json_of_metric (m : Metrics.metric) =
  let common =
    Printf.sprintf "\"name\":\"%s\",\"type\":\"%s\",\"help\":\"%s\",\"labels\":%s"
      (json_escape m.Metrics.name) (kind_name m.Metrics.kind) (json_escape m.Metrics.help)
      (json_labels m.Metrics.labels)
  in
  match m.Metrics.kind with
  | Metrics.Counter c -> Printf.sprintf "{%s,\"value\":%d}" common (Metrics.Counter.value c)
  | Metrics.Gauge g ->
    Printf.sprintf "{%s,\"value\":%s}" common (fmt_value (Metrics.Gauge.value g))
  | Metrics.Histogram h ->
    let buckets =
      String.concat ","
        (List.map
           (fun (upper, count) ->
             Printf.sprintf "{\"le\":\"%s\",\"count\":%d}" (fmt_le upper) count)
           (Metrics.Histogram.buckets h))
    in
    Printf.sprintf "{%s,\"sum\":%s,\"count\":%d,\"buckets\":[%s]}" common
      (fmt_value (Metrics.Histogram.sum h))
      (Metrics.Histogram.observations h)
      buckets

let json reg =
  "{\"metrics\":["
  ^ String.concat "," (List.map json_of_metric (Metrics.Registry.metrics reg))
  ^ "]}"

(* ----- parsing the text format back ----- *)

(* The inverse of [prometheus], for consumers of a scrape — the [top]
   subcommand and the round-trip tests. One sample per non-comment
   line; label values may contain spaces and every escape [prometheus]
   emits, so the value starts after the last space and label bodies are
   decoded by walking the escapes (backslash, quote, newline). *)

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;  (* canonical (sorted) order *)
  value : float;
}

exception Bad of string

let parse_label_body s =
  let n = String.length s in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let i = ref 0 in
  while !i < n do
    let eq =
      match String.index_from_opt s !i '=' with
      | Some e -> e
      | None -> raise (Bad "label without '='")
    in
    let key = String.sub s !i (eq - !i) in
    if eq + 1 >= n || s.[eq + 1] <> '"' then raise (Bad "expected opening quote");
    Buffer.clear buf;
    let p = ref (eq + 2) in
    let closed = ref false in
    while not !closed do
      if !p >= n then raise (Bad "unterminated label value");
      (match s.[!p] with
      | '\\' ->
        if !p + 1 >= n then raise (Bad "dangling escape");
        (match s.[!p + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | c -> Buffer.add_char buf c);
        p := !p + 2
      | '"' ->
        closed := true;
        incr p
      | c ->
        Buffer.add_char buf c;
        incr p)
    done;
    out := (key, Buffer.contents buf) :: !out;
    i := (if !p < n && s.[!p] = ',' then !p + 1 else !p)
  done;
  List.rev !out

let parse_sample line =
  let sp =
    match String.rindex_opt line ' ' with
    | Some i -> i
    | None -> raise (Bad "sample line without a value")
  in
  let value =
    match float_of_string_opt (String.sub line (sp + 1) (String.length line - sp - 1)) with
    | Some v -> v
    | None -> raise (Bad "unparseable sample value")
  in
  let series = String.sub line 0 sp in
  match String.index_opt series '{' with
  | None -> { sample_name = series; sample_labels = []; value }
  | Some b ->
    let e =
      match String.rindex_opt series '}' with
      | Some e when e > b -> e
      | _ -> raise (Bad "unterminated label set")
    in
    {
      sample_name = String.sub series 0 b;
      sample_labels = List.sort compare (parse_label_body (String.sub series (b + 1) (e - b - 1)));
      value;
    }

let parse text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match
    List.mapi
      (fun i l -> match parse_sample l with s -> s | exception Bad e -> raise (Bad (Printf.sprintf "line %d: %s" (i + 1) e)))
      lines
  with
  | samples -> Ok samples
  | exception Bad e -> Error e

let find_sample samples name labels =
  let labels = List.sort compare labels in
  List.find_opt (fun s -> s.sample_name = name && s.sample_labels = labels) samples

(* ----- the single dump entry point ----- *)

type format = Prometheus | Json

let format_of_string = function
  | "prom" | "prometheus" -> Some Prometheus
  | "json" -> Some Json
  | _ -> None

let render format reg =
  match format with Prometheus -> prometheus reg | Json -> json reg

let write ?trailer format oc reg =
  let body = render format reg in
  output_string oc body;
  if body <> "" && body.[String.length body - 1] <> '\n' then output_char oc '\n';
  (match trailer with
  | Some t ->
    output_string oc t;
    output_char oc '\n'
  | None -> ());
  flush oc

let to_file ?trailer format ~path reg =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc -> (
    match Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write ?trailer format oc reg) with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg)
