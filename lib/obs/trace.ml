module Timer = Rebal_harness.Timer

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type span = {
  name : string;
  mutable attrs : (string * value) list;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable rev_children : span list;
}

let string_of_value = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

(* The stack of open spans (innermost first) and a bounded queue of
   completed root spans, so a long-running daemon cannot grow without
   bound. *)
let stack : span list ref = ref []
let roots : span Queue.t = Queue.create ()
let max_roots = ref 256

(* Overwriting a buffered span or event used to be silent; count drops
   so truncated traces are visible in the exposition. Fetched per drop —
   drops are rare and this respects [Registry.with_registry] scoping. *)
let count_dropped kind =
  Metrics.Counter.inc
    (Metrics.counter
       ~help:"Trace entries overwritten because a buffer wrapped"
       ~labels:[ ("kind", kind) ] "rebal_trace_dropped_total")

let set_max_roots n =
  if n < 1 then invalid_arg "Trace.set_max_roots: need a positive capacity";
  max_roots := n;
  while Queue.length roots > n do
    ignore (Queue.pop roots);
    count_dropped "span"
  done

let finish sp =
  sp.stop_ns <- Timer.now_ns ();
  (match !stack with
  | top :: rest when top == sp -> stack := rest
  | _ -> stack := List.filter (fun s -> s != sp) !stack);
  match !stack with
  | parent :: _ -> parent.rev_children <- sp :: parent.rev_children
  | [] ->
    Queue.push sp roots;
    while Queue.length roots > !max_roots do
      ignore (Queue.pop roots);
      count_dropped "span"
    done

let with_span ?(attrs = []) name f =
  if not (Control.enabled ()) then f ()
  else begin
    let sp =
      { name; attrs; start_ns = Timer.now_ns (); stop_ns = 0L; rev_children = [] }
    in
    stack := sp :: !stack;
    Fun.protect ~finally:(fun () -> finish sp) f
  end

let add_attr key v =
  if Control.enabled () then
    match !stack with
    | sp :: _ -> sp.attrs <- sp.attrs @ [ (key, v) ]
    | [] -> ()

let finished () = List.of_seq (Queue.to_seq roots)

let reset () =
  Queue.clear roots;
  stack := []

let name sp = sp.name
let attrs sp = sp.attrs
let children sp = List.rev sp.rev_children
let duration_ns sp = Int64.sub sp.stop_ns sp.start_ns

(* ----- the ring-buffer event log ----- *)

type event = {
  ts_ns : int64;
  event_name : string;
  event_attrs : (string * value) list;
}

let ring : event option array ref = ref (Array.make 1024 None)
let ring_written = ref 0

let set_ring_capacity n =
  if n < 1 then invalid_arg "Trace.set_ring_capacity: need a positive capacity";
  ring := Array.make n None;
  ring_written := 0

let event ?(attrs = []) name =
  if Control.enabled () then begin
    let buf = !ring in
    let slot = !ring_written mod Array.length buf in
    if buf.(slot) <> None then count_dropped "event";
    buf.(slot) <-
      Some { ts_ns = Timer.now_ns (); event_name = name; event_attrs = attrs };
    incr ring_written
  end

let events () =
  let buf = !ring in
  let cap = Array.length buf in
  let total = !ring_written in
  let start = max 0 (total - cap) in
  List.filter_map (fun i -> buf.(i mod cap)) (List.init (total - start) (fun j -> start + j))

(* ----- rendering ----- *)

let pp_duration ppf ns =
  let ns = Int64.to_float ns in
  if ns < 1e3 then Format.fprintf ppf "%.0fns" ns
  else if ns < 1e6 then Format.fprintf ppf "%.2fus" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%.2fms" (ns /. 1e6)
  else Format.fprintf ppf "%.3fs" (ns /. 1e9)

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    Format.fprintf ppf " {%s}"
      (String.concat " "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (string_of_value v)) attrs))

let rec pp_node ppf ~indent sp =
  Format.fprintf ppf "%s%s%a  %a\n" indent sp.name pp_attrs sp.attrs pp_duration
    (duration_ns sp);
  List.iter (fun c -> pp_node ppf ~indent:(indent ^ "  ") c) (children sp)

let pp_tree ppf sp = pp_node ppf ~indent:"" sp

let render_tree sp = Format.asprintf "%a" pp_tree sp
