module Timer = Rebal_harness.Timer

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type span = {
  name : string;
  mutable attrs : (string * value) list;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable rev_children : span list;
}

let string_of_value = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

(* All trace state — the stack of open spans (innermost first), the
   bounded queue of completed root spans, and the event ring — is
   domain-local: each domain traces into its own buffers, so shard
   worker domains never contend (or race) on a shared stack, and a span
   opened on one domain cannot adopt children finished on another.
   [finished]/[events] read the calling domain's buffers; a coordinator
   that wants a worker's spans must collect them on that worker. *)
type domain_state = {
  mutable stack : span list;
  roots : span Queue.t;
  mutable max_roots : int;
  mutable ring : event option array;
  mutable ring_written : int;
}

and event = {
  ts_ns : int64;
  event_name : string;
  event_attrs : (string * value) list;
}

let state_key =
  Domain.DLS.new_key (fun () ->
      {
        stack = [];
        roots = Queue.create ();
        max_roots = 256;
        ring = Array.make 1024 None;
        ring_written = 0;
      })

let state () = Domain.DLS.get state_key

(* Overwriting a buffered span or event used to be silent; count drops
   so truncated traces are visible in the exposition. Fetched per drop —
   drops are rare and this respects [Registry.with_registry] scoping. *)
let count_dropped kind =
  Metrics.Counter.inc
    (Metrics.counter
       ~help:"Trace entries overwritten because a buffer wrapped"
       ~labels:[ ("kind", kind) ] "rebal_trace_dropped_total")

let set_max_roots n =
  if n < 1 then invalid_arg "Trace.set_max_roots: need a positive capacity";
  let st = state () in
  st.max_roots <- n;
  while Queue.length st.roots > n do
    ignore (Queue.pop st.roots);
    count_dropped "span"
  done

let finish sp =
  sp.stop_ns <- Timer.now_ns ();
  let st = state () in
  (match st.stack with
  | top :: rest when top == sp -> st.stack <- rest
  | _ -> st.stack <- List.filter (fun s -> s != sp) st.stack);
  match st.stack with
  | parent :: _ -> parent.rev_children <- sp :: parent.rev_children
  | [] ->
    Queue.push sp st.roots;
    while Queue.length st.roots > st.max_roots do
      ignore (Queue.pop st.roots);
      count_dropped "span"
    done

let with_span ?(attrs = []) name f =
  if not (Control.enabled ()) then f ()
  else begin
    let sp =
      { name; attrs; start_ns = Timer.now_ns (); stop_ns = 0L; rev_children = [] }
    in
    let st = state () in
    st.stack <- sp :: st.stack;
    Fun.protect ~finally:(fun () -> finish sp) f
  end

let add_attr key v =
  if Control.enabled () then
    match (state ()).stack with
    | sp :: _ -> sp.attrs <- sp.attrs @ [ (key, v) ]
    | [] -> ()

let finished () = List.of_seq (Queue.to_seq (state ()).roots)

let reset () =
  let st = state () in
  Queue.clear st.roots;
  st.stack <- []

let name sp = sp.name
let attrs sp = sp.attrs
let children sp = List.rev sp.rev_children
let duration_ns sp = Int64.sub sp.stop_ns sp.start_ns

(* ----- the ring-buffer event log (domain-local, like the spans) ----- *)

let set_ring_capacity n =
  if n < 1 then invalid_arg "Trace.set_ring_capacity: need a positive capacity";
  let st = state () in
  st.ring <- Array.make n None;
  st.ring_written <- 0

let event ?(attrs = []) name =
  if Control.enabled () then begin
    let st = state () in
    let buf = st.ring in
    let slot = st.ring_written mod Array.length buf in
    if buf.(slot) <> None then count_dropped "event";
    buf.(slot) <-
      Some { ts_ns = Timer.now_ns (); event_name = name; event_attrs = attrs };
    st.ring_written <- st.ring_written + 1
  end

let events () =
  let st = state () in
  let buf = st.ring in
  let cap = Array.length buf in
  let total = st.ring_written in
  let start = max 0 (total - cap) in
  List.filter_map (fun i -> buf.(i mod cap)) (List.init (total - start) (fun j -> start + j))

(* ----- rendering ----- *)

let pp_duration ppf ns =
  let ns = Int64.to_float ns in
  if ns < 1e3 then Format.fprintf ppf "%.0fns" ns
  else if ns < 1e6 then Format.fprintf ppf "%.2fus" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%.2fms" (ns /. 1e6)
  else Format.fprintf ppf "%.3fs" (ns /. 1e9)

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    Format.fprintf ppf " {%s}"
      (String.concat " "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (string_of_value v)) attrs))

let rec pp_node ppf ~indent sp =
  Format.fprintf ppf "%s%s%a  %a\n" indent sp.name pp_attrs sp.attrs pp_duration
    (duration_ns sp);
  List.iter (fun c -> pp_node ppf ~indent:(indent ^ "  ") c) (children sp)

let pp_tree ppf sp = pp_node ppf ~indent:"" sp

let render_tree sp = Format.asprintf "%a" pp_tree sp
