(** The flight recorder: a structured, versioned JSONL event journal.

    A journal is one JSON object per line. The first line is a header
    ([{"journal": <producer>, "version": 1, ...metadata}]); every later
    line is an event carrying a monotonically increasing sequence
    number, a monotonic nanosecond timestamp and a producer-defined
    kind plus fields ([{"seq": 0, "ts_ns": ..., "ev": "add", ...}]).
    Producers append through a {!sink}; consumers parse whole journals
    back with line-numbered errors in the [Rebal_core.Io] style, so a
    corrupted or truncated recording points at the offending line.

    The module is deliberately generic — it knows nothing about engines
    or simulations. [Rebal_online.Engine] emits its operation stream
    here and [Rebal_online.Replay] re-executes it; [Rebal_sim] journals
    fault-plan runs through the same codec. *)

(** A minimal JSON value. Integers and floats are kept distinct so
    sequence numbers, loads and budgets survive a round trip exactly;
    floats are rendered with 17 significant digits, which round-trips
    every finite [float]. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Encode_error of string
(** Raised when a value cannot be encoded — today, exactly the
    non-finite floats: ["nan"] is not JSON, and silently writing [null]
    (the old behaviour) produced journals that failed replay long after
    the producer was gone. {!emit} adds line/seq/kind context before
    re-raising. *)

val render_json : json -> string
(** Compact (single-line) JSON. Strings are escaped per RFC 8259.
    @raise Encode_error on non-finite floats. *)

val json_of_string : string -> (json, string) result
(** Strict parser for the subset {!render_json} emits (which is plain
    JSON: objects, arrays, strings with escapes, numbers, booleans,
    null). Rejects trailing garbage. *)

val current_version : int
(** The journal format version this library writes (1). *)

type header = {
  journal : string;  (** producer tag, e.g. ["rebal-engine"] *)
  version : int;
  meta : (string * json) list;  (** every other header field *)
}

type event = {
  seq : int;
  ts_ns : int;
  kind : string;
  fields : (string * json) list;  (** every non-reserved field *)
  line : int;  (** 1-based journal line (0 on hand-built events) *)
}

(** {2 Writing} *)

(** On-disk form a sink writes. [Jsonl] is the portable interchange
    format (one JSON object per line); [Binary] is the length-prefixed
    frame codec of {!Binary} — same objects, ~5x cheaper to encode, for
    hot-path journaling. [journal-convert] translates both ways. *)
type format =
  | Jsonl
  | Binary

type sink

val create :
  ?format:format ->
  ?tail_capacity:int ->
  ?start_seq:int ->
  ?header_written:bool ->
  ?clock_ns:(unit -> int64) ->
  write:(string -> unit) ->
  unit ->
  sink
(** A sink calling [write] with each rendered line (trailing newline
    included). [clock_ns] defaults to the monotonic
    [Rebal_harness.Timer.now_ns]; inject a fake for deterministic
    tests. The sink keeps the last [tail_capacity] (default 512)
    rendered lines in a ring for {!tail}. [start_seq] (default 0)
    resumes an existing journal: the first event gets that sequence
    number, and when it is positive the sink considers the header
    already written (it is on disk), so {!write_header} is a no-op;
    [header_written] overrides that inference (resuming a journal that
    has a header but no events yet needs [~header_written:true] with
    [start_seq] 0).
    @raise Invalid_argument if [tail_capacity < 1] or [start_seq < 0]. *)

val to_channel :
  ?format:format ->
  ?tail_capacity:int ->
  ?start_seq:int ->
  ?header_written:bool ->
  ?line_flush:bool ->
  out_channel ->
  sink
(** A sink appending to a channel. [line_flush] (default [false])
    flushes after every line — what a crash-safe flight recorder wants;
    leave it off when journaling for throughput measurements. *)

val resilient :
  ?retries:int ->
  ?backoff:float ->
  ?sleep:(float -> unit) ->
  ?label:string ->
  (string -> unit) ->
  string ->
  unit
(** [resilient write] is a write function that contains I/O failure
    instead of propagating it into the engine hot path: a [Sys_error]
    from [write] is retried up to [retries] times (default 3) with
    exponential backoff starting at [backoff] seconds (default 0.01,
    doubling; [sleep] defaults to [Unix.sleepf] — inject a fake in
    tests). When the retries are exhausted the line is dropped from
    durable storage — it remains available in the sink's tail ring —
    and counted in [rebal_journal_dropped_total{journal=<label>}]
    (handle bound in the registry current at wrap time), with a
    warning on stderr. This is the fail-open policy: the daemon keeps
    serving, and the resulting sequence gap is caught loudly by
    replay's contiguity check rather than silently ignored. *)

val write_header : sink -> journal:string -> (string * json) list -> unit
(** Write the header line. Idempotent: only the first call writes, so
    an engine and the code that attached the sink cannot double-header
    a journal. *)

val emit : sink -> kind:string -> (string * json) list -> unit
(** Append one event: the sink assigns the next sequence number and
    stamps the clock. Reserved keys ([seq], [ts_ns], [ev]) in [fields]
    are skipped.
    @raise Encode_error on a non-finite float field, with line/seq/kind
    context. The event is rejected whole — no sequence number is
    consumed, so the journal stays contiguous. *)

val begin_batch : sink -> unit
(** Defer sink writes: until the matching {!end_batch}, emitted bytes
    accumulate in a buffer (the tail ring and sequence numbers advance
    normally) and are handed to the write function in a single call.
    Nestable; only the outermost [end_batch] flushes. [Engine.apply_bulk]
    brackets batches with this to amortize journal I/O. *)

val end_batch : sink -> unit
(** Flush and close one {!begin_batch} bracket. The flushed bytes are
    identical to what per-event writes would have produced. *)

(** Streamed emission: the zero-intermediate fast path for per-op hot
    sites. [emit] builds a [(string * json) list] per event — a boxed
    value per field, immediately garbage. [Emit] writes each field
    straight into the sink's scratch encoder instead, so a steady-state
    event allocates nothing but the payload string.

    Protocol: [start sink ~kind ~fields:n], then exactly [n] field
    calls, then [finish]. The produced bytes are identical to
    [emit sink ~kind fields] with the same fields in the same order.
    At most one streamed event may be open per sink; [emit] and
    [write_header] refuse ([Invalid_argument]) while one is open.
    Misuse — double [start], wrong arity, a reserved key — raises
    [Invalid_argument]. A non-finite [float] raises [Encode_error]
    with line/seq/kind context and aborts the whole event: no sequence
    number is consumed, matching [emit]'s rejection contract. *)
module Emit : sig
  val start : sink -> kind:string -> fields:int -> unit
  val int : sink -> string -> int -> unit
  val str : sink -> string -> string -> unit
  val bool : sink -> string -> bool -> unit
  val float : sink -> string -> float -> unit
  val finish : sink -> unit
end

val events_written : sink -> int

val tail : sink -> int -> string list
(** The last [min n tail_capacity] rendered lines (header included if
    still in the ring), oldest first. Always JSONL text: a [Binary]
    sink decodes its frames on demand, so the [JOURNAL] verb stays
    human-readable whatever the on-disk format. *)

(** {2 Rendering and parsing} *)

val render_header : header -> string
val render_event : event -> string

val parse_lines : string list -> (header * event list, string) result
(** Parse a whole journal. Errors are ["line %d: ..."]: malformed JSON,
    a missing or malformed header, non-contiguous sequence numbers
    (evidence of truncation or tampering) and wrong-type reserved
    fields are all rejected. Blank lines are ignored. *)

val parse_string : string -> (header * event list, string) result
val parse_file : string -> (header * event list, string) result
(** [parse_file path] also turns [Sys_error] into [Error]. *)

(** The length-prefixed binary frame codec: magic ["RBJB\x01\n"], then
    [u32 LE length | payload] frames, each payload one tag-prefixed
    value (null 0x00, bool 0x01, zigzag-varint int 0x02, 8-byte IEEE 754
    LE float 0x03, str 0x04, list 0x05, obj 0x06). Frame 1 is the
    header, later frames are events — the same objects as the JSONL
    form, so conversion is lossless both ways. *)
module Binary : sig
  val magic : string

  val encode_header : header -> string
  (** One complete frame (length prefix included), magic not included. *)

  val encode_event : event -> string
  (** @raise Encode_error on non-finite floats. *)

  val parse_string : string -> (header * event list, string) result
  (** Same guarantees as the text {!parse_lines}: header first,
      contiguous sequence numbers, ["line %d: ..."] errors (a frame is a
      "line": header 1, first event 2 — matching the JSONL numbering). *)

  val parse_file : string -> (header * event list, string) result
end

val load_string : string -> (header * event list, string) result

val load_file : string -> (header * event list, string) result
(** Auto-detect: a leading {!Binary.magic} selects the binary parser,
    anything else is parsed as JSONL text. What every consumer of
    user-supplied journal paths (replay, snapshot, compact, explain,
    serve resume, convert) should call. *)

(** {2 Typed field access} *)

val field : event -> string -> json option

val int_field : event -> string -> (int, string) result
val str_field : event -> string -> (string, string) result
val float_field : event -> string -> (float, string) result
(** Accepts [Int] too — JSON does not distinguish [2] from [2.0]. *)

val bool_field : event -> string -> (bool, string) result
val list_field : event -> string -> (json list, string) result
(** All errors are ["line %d: %s event: ..."] naming the field. *)
