(** The declarative alerting engine over {!Tsdb}.

    Rules come from a plain-text file, one rule per line ([#] comments
    and blank lines ignored):

    {v
    alert <name> <func>(<selector>[<window>]) <op> <value> for <dur> [suspect <shard>]
    burnrate <name> bad=<selector> total=<selector> budget=<B> factor=<F>
             short=<dur> long=<dur> [for=<dur>] [suspect=<shard>]
    v}

    A {e threshold} rule applies a {!Tsdb.func} ([value], [rate],
    [delta], [avg], [min], [max], [p99], ...) to a series over a
    trailing window and compares it against a bound ([>], [>=], [<],
    [<=]); e.g.
    [alert deep_mailbox max(rebal_mailbox_depth{domain="0"}[30s]) > 48 for 10s].
    A {e burnrate} rule is the multi-window SLO form: with error budget
    [B] (allowed bad fraction) and burn factor [F], it holds when
    [rate(bad)/rate(total) > F*B] over {e both} the short and the long
    window — the fast window catches the spike, the slow window keeps
    one blip from paging.

    Each {!eval} tick runs every rule against the store and advances a
    [Pending -> Firing -> Resolved] state machine: a rule whose
    condition first holds becomes Pending (or fires immediately when
    [for] is 0), Firing once the condition has held continuously for
    the [for] duration, Resolved when a firing rule's condition clears,
    and Pending collapses back to Inactive if the condition clears
    early. Ticks are timestamped with {!Tsdb.last_sample_ns}, so the
    machine is deterministic under an injected clock.

    Every transition is recorded with provenance — rule, observed
    value, window expression, tick timestamp — in a bounded ring,
    exported as metrics ([rebal_alert_state{rule,state}] 0/1 gauges and
    [rebal_alert_transitions_total{rule,to}]) and, when a sink is
    attached, appended to the telemetry journal as ["alert"] events.

    The optional [suspect <shard>] annotation is the feedback loop into
    the serving stack: the daemon reports every tick a suspect-annotated
    rule spends Firing to the Supervisor as an external failure signal,
    so a sustained alert marks the shard Suspect and, if it persists,
    tips it Down through the ordinary failover machinery. *)

type state =
  | Inactive
  | Pending  (** condition holds, [for] duration not yet served *)
  | Firing
  | Resolved  (** was firing, condition has cleared *)

val state_name : state -> string

type cmp = Gt | Ge | Lt | Le

type condition =
  | Threshold of {
      func : Tsdb.func;
      series : string;
      labels : Metrics.labels;
      window_s : float;
      cmp : cmp;
      bound : float;
    }
  | Burnrate of {
      bad : string * Metrics.labels;
      total : string * Metrics.labels;
      budget : float;
      factor : float;
      short_s : float;
      long_s : float;
    }

type rule = {
  rule_name : string;
  condition : condition;
  for_s : float;
  suspect : int option;  (** shard to report against while firing *)
}

val expr_string : condition -> string
(** Canonical expression text, e.g. ["rate(x{a="b"}[30s]) > 5"] —
    the provenance recorded on transitions. *)

val parse_rule : string -> (rule option, string) result
(** One line; [Ok None] on blank/comment. *)

val parse_rules : string -> (rule list, string) result
(** A whole rules file. Errors are ["line %d: ..."]; duplicate rule
    names are rejected. *)

val parse_rules_file : string -> (rule list, string) result

type transition = {
  t_rule : string;
  t_from : state;
  t_to : state;
  t_at_ns : int;  (** the tick's {!Tsdb.last_sample_ns} *)
  t_value : float option;  (** observed value ([None]: no data) *)
  t_expr : string;  (** {!expr_string} of the rule's condition *)
}

type t

val create :
  ?transition_capacity:int ->
  ?registry:Metrics.Registry.t ->
  ?sink:Journal.sink ->
  rules:rule list ->
  Tsdb.t ->
  t
(** [transition_capacity] (default 256) bounds the retained transition
    ring. State/transition metrics bind into [registry] (default: the
    registry current at creation). [sink] receives one ["alert"] event
    per transition — point it at the same telemetry sink as the store
    so post-mortems see samples and alerts on one timeline.
    @raise Invalid_argument on duplicate rule names. *)

val eval : t -> transition list
(** One tick: evaluate every rule, advance the state machines, record
    and return the transitions that happened (in rule order). *)

val rules : t -> rule list

val state : t -> string -> state option
(** Current state of a rule by name. *)

val last_value : t -> string -> float option
(** Last observed value of a rule's expression. *)

val firing : t -> (rule * float option) list
(** Rules currently Firing, with their last observed value — the
    daemon's per-tick supervisor feedback reads this. *)

val transitions : t -> transition list
(** Retained transitions, oldest first. *)

val status_lines : t -> string list
(** The [ALERTS] verb / [GET /alerts] body (no [# EOF] trailer): an
    [ALERTS ...] summary, one [ALERT <name> state=...] line per rule,
    one [TRANS ...] line per retained transition. *)
