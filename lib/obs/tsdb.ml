(* The time-series store. One {!series} per (name, sorted labels); each
   series owns three rings (raw, /10, /60). Aggregation is incremental:
   a raw push folds into the pending mid accumulator, every 10th push
   seals it into the mid ring, every 6th sealed mid point seals a
   coarse point — no rescan of the raw ring on downsampling. *)

type point = {
  at_ns : int;
  last : float;
  min : float;
  max : float;
  sum : float;
  samples : int;
}

type stats = {
  s_points : int;
  s_first_ns : int;
  s_last_ns : int;
  s_first : float;
  s_last : float;
  s_min : float;
  s_max : float;
  s_avg : float;
  s_delta : float;
  s_rate : float;
}

let zero_point = { at_ns = 0; last = 0.; min = 0.; max = 0.; sum = 0.; samples = 0 }

let merge_point older newer =
  {
    at_ns = newer.at_ns;
    last = newer.last;
    min = Float.min older.min newer.min;
    max = Float.max older.max newer.max;
    sum = older.sum +. newer.sum;
    samples = older.samples + newer.samples;
  }

(* A ring of points. [written] counts every push, so slot [i mod cap]
   holds push number i and eviction is oldest-first by construction. *)
type ring = { cap : int; data : point array; mutable written : int }

let ring_create cap = { cap; data = Array.make cap zero_point; written = 0 }

let ring_push r p =
  r.data.(r.written mod r.cap) <- p;
  r.written <- r.written + 1

let ring_retained r = min r.written r.cap

(* Oldest retained first. *)
let ring_points r =
  let n = ring_retained r in
  List.init n (fun i -> r.data.((r.written - n + i) mod r.cap))

let ring_oldest_ns r =
  if r.written = 0 then max_int
  else r.data.((r.written - ring_retained r) mod r.cap).at_ns

type series = {
  s_name : string;
  s_labels : Metrics.labels;
  raw : ring;
  mid : ring;
  coarse : ring;
  mutable acc_mid : point;  (* pending mid aggregate; samples = 0 when empty *)
  mutable acc_coarse : point;
  mutable coarse_pending : int;  (* sealed mid points since last coarse seal *)
}

let mid_factor = 10
let coarse_factor = 6 (* of mid points, i.e. 60 raw samples *)

let series_push s p =
  ring_push s.raw p;
  s.acc_mid <- (if s.acc_mid.samples = 0 then p else merge_point s.acc_mid p);
  if s.acc_mid.samples >= mid_factor then begin
    let sealed = s.acc_mid in
    s.acc_mid <- zero_point;
    ring_push s.mid sealed;
    s.acc_coarse <-
      (if s.acc_coarse.samples = 0 then sealed else merge_point s.acc_coarse sealed);
    s.coarse_pending <- s.coarse_pending + 1;
    if s.coarse_pending >= coarse_factor then begin
      ring_push s.coarse s.acc_coarse;
      s.acc_coarse <- zero_point;
      s.coarse_pending <- 0
    end
  end

(* The multi-resolution window view: each tier contributes only the
   part of the window older than the next finer tier's retained reach,
   so no raw sample is represented twice. *)
let series_window_points s ~start_ns =
  let raw_oldest = ring_oldest_ns s.raw in
  let mid_oldest = ring_oldest_ns s.mid in
  let in_range lo hi pts = List.filter (fun p -> p.at_ns >= lo && p.at_ns < hi) pts in
  let raw_pts = List.filter (fun p -> p.at_ns >= start_ns) (ring_points s.raw) in
  if raw_oldest <= start_ns then raw_pts
  else
    let mid_pts = in_range start_ns raw_oldest (ring_points s.mid) in
    if mid_oldest <= start_ns then mid_pts @ raw_pts
    else
      let coarse_pts =
        in_range start_ns (min mid_oldest raw_oldest) (ring_points s.coarse)
      in
      coarse_pts @ mid_pts @ raw_pts

type t = {
  source : unit -> Metrics.metric list;
  clock_ns : unit -> int64;
  raw_cap : int;
  mid_cap : int;
  coarse_cap : int;
  sink : Journal.sink option;
  table : (string * Metrics.labels, series) Hashtbl.t;
  mutable order : series list;  (* newest first *)
  mutable samples_taken : int;
  mutable last_sample_ns : int;
  lock : Mutex.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(raw_capacity = 600) ?(mid_capacity = 600) ?(coarse_capacity = 600)
    ?(clock_ns = Rebal_harness.Timer.now_ns) ?sink ?(meta = []) ~source () =
  if raw_capacity < 2 || mid_capacity < 2 || coarse_capacity < 2 then
    invalid_arg "Tsdb.create: capacities must be >= 2";
  (match sink with
  | Some s -> Journal.write_header s ~journal:"rebal-telemetry" meta
  | None -> ());
  {
    source;
    clock_ns;
    raw_cap = raw_capacity;
    mid_cap = mid_capacity;
    coarse_cap = coarse_capacity;
    sink;
    table = Hashtbl.create 64;
    order = [];
    samples_taken = 0;
    last_sample_ns = 0;
    lock = Mutex.create ();
  }

let find_series t name labels =
  Hashtbl.find_opt t.table (name, List.sort_uniq compare labels)

let get_series t name labels =
  let key = (name, List.sort_uniq compare labels) in
  match Hashtbl.find_opt t.table key with
  | Some s -> s
  | None ->
    let s =
      {
        s_name = name;
        s_labels = snd key;
        raw = ring_create t.raw_cap;
        mid = ring_create t.mid_cap;
        coarse = ring_create t.coarse_cap;
        acc_mid = zero_point;
        acc_coarse = zero_point;
        coarse_pending = 0;
      }
    in
    Hashtbl.add t.table key s;
    t.order <- s :: t.order;
    s

let selector_string name labels =
  match labels with
  | [] -> name
  | ls ->
    let pairs = List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) ls in
    Printf.sprintf "%s{%s}" name (String.concat "," pairs)

(* One scalar reading per metric: counters and gauges directly,
   histograms as the Prometheus-shaped cumulative bucket / sum / count
   series (cumulative buckets make quantile-over-window a subtraction). *)
let scalar_readings metrics =
  let out = ref [] in
  let push name labels v = out := (name, labels, v) :: !out in
  List.iter
    (fun (m : Metrics.metric) ->
      match m.kind with
      | Metrics.Counter c -> push m.name m.labels (float_of_int (Metrics.Counter.value c))
      | Metrics.Gauge g -> push m.name m.labels (Metrics.Gauge.value g)
      | Metrics.Histogram h ->
        let cum = ref 0 in
        List.iter
          (fun (upper, count) ->
            cum := !cum + count;
            push (m.name ^ "_bucket")
              (m.labels @ [ ("le", Expo.fmt_le upper) ])
              (float_of_int !cum))
          (Metrics.Histogram.buckets h);
        push (m.name ^ "_sum") m.labels (Metrics.Histogram.sum h);
        push (m.name ^ "_count") m.labels (float_of_int (Metrics.Histogram.observations h)))
    metrics;
  List.rev !out

let sample t =
  let metrics = t.source () in
  let now = Int64.to_int (t.clock_ns ()) in
  let readings = scalar_readings metrics in
  locked t (fun () ->
      List.iter
        (fun (name, labels, v) ->
          let s = get_series t name labels in
          series_push s { at_ns = now; last = v; min = v; max = v; sum = v; samples = 1 })
        readings;
      t.samples_taken <- t.samples_taken + 1;
      t.last_sample_ns <- now);
  match t.sink with
  | None -> ()
  | Some sink ->
    let pairs =
      List.map
        (fun (name, labels, v) ->
          (* A gauge fed from a division can legitimately read nan/inf;
             the journal rejects non-finite floats, so record "no
             meaningful value" rather than kill the sampler. *)
          ( selector_string name labels,
            if Float.is_finite v then Journal.Float v else Journal.Null ))
        readings
    in
    Journal.emit sink ~kind:"sample"
      [ ("at_ns", Journal.Int now); ("metrics", Journal.Obj pairs) ]

let samples_taken t = locked t (fun () -> t.samples_taken)
let last_sample_ns t = locked t (fun () -> t.last_sample_ns)

let series_list t =
  locked t (fun () -> List.rev_map (fun s -> (s.s_name, s.s_labels)) t.order)

let window_ns_of_s window_s =
  if Float.is_nan window_s || window_s < 0. then invalid_arg "Tsdb: negative window";
  if window_s > 4.0e9 then max_int else int_of_float (window_s *. 1e9)

(* Window end anchors at the newest tick so queries are deterministic
   under an injected clock and between-tick queries are stable. *)
let points_locked t name labels ~window_s =
  match find_series t name labels with
  | None -> []
  | Some s ->
    if s.raw.written = 0 then []
    else
      let end_ns = t.last_sample_ns in
      let w = window_ns_of_s window_s in
      let start_ns = if w >= end_ns then 0 else end_ns - w in
      series_window_points s ~start_ns

let points t ?(labels = []) ~window_s name =
  locked t (fun () -> points_locked t name labels ~window_s)

let stats_of_points = function
  | [] -> None
  | first :: _ as pts ->
    let last = List.nth pts (List.length pts - 1) in
    let mn = List.fold_left (fun a p -> Float.min a p.min) infinity pts in
    let mx = List.fold_left (fun a p -> Float.max a p.max) neg_infinity pts in
    let sum = List.fold_left (fun a p -> a +. p.sum) 0. pts in
    let n = List.fold_left (fun a p -> a + p.samples) 0 pts in
    let span_s = float_of_int (last.at_ns - first.at_ns) /. 1e9 in
    let delta = last.last -. first.last in
    Some
      {
        s_points = List.length pts;
        s_first_ns = first.at_ns;
        s_last_ns = last.at_ns;
        s_first = first.last;
        s_last = last.last;
        s_min = mn;
        s_max = mx;
        s_avg = (if n = 0 then 0. else sum /. float_of_int n);
        s_delta = delta;
        s_rate = (if span_s > 0. then delta /. span_s else 0.);
      }

let window t ?(labels = []) ~window_s name =
  locked t (fun () -> stats_of_points (points_locked t name labels ~window_s))

let le_value s = if s = "+Inf" then infinity else float_of_string s

let quantile t ?(labels = []) ~q ~window_s name =
  if Float.is_nan q || q < 0. || q > 1. then invalid_arg "Tsdb.quantile: q outside [0, 1]";
  let base_labels = List.sort_uniq compare labels in
  locked t (fun () ->
      (* Every bucket series of this histogram: same name ^ "_bucket",
         labels = base labels plus an "le". *)
      let buckets =
        List.filter_map
          (fun s ->
            if s.s_name <> name ^ "_bucket" then None
            else
              match List.assoc_opt "le" s.s_labels with
              | None -> None
              | Some le ->
                let rest = List.filter (fun (k, _) -> k <> "le") s.s_labels in
                if rest <> base_labels then None
                else
                  (match le_value le with
                  | upper -> Some (upper, s)
                  | exception _ -> None))
          t.order
      in
      let buckets = List.sort (fun (a, _) (b, _) -> compare a b) buckets in
      if buckets = [] then None
      else
        let deltas =
          List.map
            (fun (upper, s) ->
              let d =
                match
                  stats_of_points (points_locked t s.s_name s.s_labels ~window_s)
                with
                | Some st -> st.s_delta
                | None -> 0.
              in
              (upper, Float.max 0. d))
            buckets
        in
        (* Cumulative bucket counts: the +Inf delta is the window total. *)
        let total = match List.rev deltas with (_, d) :: _ -> d | [] -> 0. in
        if total <= 0. then None
        else
          let threshold = q *. total in
          let rec walk = function
            | [] -> None
            | (upper, d) :: rest -> if d >= threshold then Some upper else walk rest
          in
          walk deltas)

(* ------------------------------------------------------------------ *)
(* Selectors, durations, query functions.                              *)

let valid_name s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       s

let parse_labels body =
  (* k="v",k2="v2" — values are quoted, no escape support needed for the
     label values the registry produces (shard indices, verbs, paths). *)
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let n = String.length body in
  let rec pairs i acc =
    if i >= n then Ok (List.rev acc)
    else
      match String.index_from_opt body i '=' with
      | None -> err "label at %d: missing '='" i
      | Some eq ->
        let k = String.sub body i (eq - i) in
        if not (valid_name k) then err "invalid label name %S" k
        else if eq + 1 >= n || body.[eq + 1] <> '"' then
          err "label %s: value must be quoted" k
        else (
          match String.index_from_opt body (eq + 2) '"' with
          | None -> err "label %s: unterminated value" k
          | Some close ->
            let v = String.sub body (eq + 2) (close - eq - 2) in
            if close + 1 >= n then Ok (List.rev ((k, v) :: acc))
            else if body.[close + 1] = ',' then pairs (close + 2) ((k, v) :: acc)
            else err "label %s: expected ',' after value" k)
  in
  pairs 0 []

let parse_selector s =
  let s = String.trim s in
  match String.index_opt s '{' with
  | None ->
    if valid_name s then Ok (s, [])
    else Error (Printf.sprintf "invalid series name %S" s)
  | Some lb ->
    let name = String.sub s 0 lb in
    if not (valid_name name) then Error (Printf.sprintf "invalid series name %S" name)
    else if s.[String.length s - 1] <> '}' then Error "selector: missing '}'"
    else
      let body = String.sub s (lb + 1) (String.length s - lb - 2) in
      (match parse_labels body with
      | Ok labels -> Ok (name, List.sort_uniq compare labels)
      | Error e -> Error e)

let parse_duration s =
  let s = String.trim s in
  let num part =
    match float_of_string_opt part with
    | Some v when Float.is_finite v && v >= 0. -> Ok v
    | _ -> Error (Printf.sprintf "invalid duration %S" s)
  in
  let n = String.length s in
  let with_suffix len scale = Result.map (fun v -> v *. scale) (num (String.sub s 0 (n - len))) in
  if n = 0 then Error "empty duration"
  else if n > 2 && String.sub s (n - 2) 2 = "ms" then with_suffix 2 0.001
  else
    match s.[n - 1] with
    | 's' -> with_suffix 1 1.
    | 'm' -> with_suffix 1 60.
    | 'h' -> with_suffix 1 3600.
    | _ -> num s

let duration_string v =
  if Float.rem v 3600. = 0. && v >= 3600. then Printf.sprintf "%gh" (v /. 3600.)
  else if Float.rem v 60. = 0. && v >= 60. then Printf.sprintf "%gm" (v /. 60.)
  else if v < 1. && v > 0. then Printf.sprintf "%gms" (v *. 1000.)
  else Printf.sprintf "%gs" v

type func = Value | Rate | Delta | Avg | Min | Max | Quantile of float

let func_of_string s =
  match String.lowercase_ascii s with
  | "value" -> Ok Value
  | "rate" -> Ok Rate
  | "delta" -> Ok Delta
  | "avg" -> Ok Avg
  | "min" -> Ok Min
  | "max" -> Ok Max
  | f when String.length f > 1 && f.[0] = 'p' -> (
    match float_of_string_opt (String.sub f 1 (String.length f - 1)) with
    | Some pct when pct > 0. && pct < 100. -> Ok (Quantile (pct /. 100.))
    | _ -> Error (Printf.sprintf "invalid percentile %S" s))
  | _ -> Error (Printf.sprintf "unknown function %S (value|rate|delta|avg|min|max|pNN)" s)

let func_name = function
  | Value -> "value"
  | Rate -> "rate"
  | Delta -> "delta"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"
  | Quantile q -> Printf.sprintf "p%g" (q *. 100.)

let eval t func ?(labels = []) ~window_s name =
  match func with
  | Quantile q -> quantile t ~labels ~q ~window_s name
  | Value -> (
    match window t ~labels ~window_s:0. name with
    | Some st -> Some st.s_last
    | None -> None)
  | _ -> (
    match window t ~labels ~window_s name with
    | None -> None
    | Some st -> (
      match func with
      | Rate -> Some st.s_rate
      | Delta -> Some st.s_delta
      | Avg -> Some st.s_avg
      | Min -> Some st.s_min
      | Max -> Some st.s_max
      | Value | Quantile _ -> assert false))

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let fmt_f v = Printf.sprintf "%.9g" v

let render_lines t ~selector ~window_s =
  match parse_selector selector with
  | Error e -> Error e
  | Ok (name, labels) ->
    let pts = points t ~labels ~window_s name in
    let summary =
      match stats_of_points pts with
      | None ->
        Printf.sprintf "SERIES %s window=%s points=0"
          (selector_string name labels) (duration_string window_s)
      | Some st ->
        Printf.sprintf
          "SERIES %s window=%s points=%d first=%s last=%s min=%s max=%s avg=%s \
           delta=%s rate=%s"
          (selector_string name labels) (duration_string window_s) st.s_points
          (fmt_f st.s_first) (fmt_f st.s_last) (fmt_f st.s_min) (fmt_f st.s_max)
          (fmt_f st.s_avg) (fmt_f st.s_delta) (fmt_f st.s_rate)
    in
    Ok
      (summary
      :: List.map
           (fun p ->
             Printf.sprintf "POINT at_ns=%d last=%s min=%s max=%s avg=%s samples=%d"
               p.at_ns (fmt_f p.last) (fmt_f p.min) (fmt_f p.max)
               (fmt_f (if p.samples = 0 then 0. else p.sum /. float_of_int p.samples))
               p.samples)
           pts)

let render_json t ~selector ~window_s =
  match parse_selector selector with
  | Error e -> Error e
  | Ok (name, labels) ->
    let pts = points t ~labels ~window_s name in
    let open Journal in
    let point_json p =
      Obj
        [
          ("at_ns", Int p.at_ns);
          ("last", Float p.last);
          ("min", Float p.min);
          ("max", Float p.max);
          ("sum", Float p.sum);
          ("samples", Int p.samples);
        ]
    in
    let stats_json =
      match stats_of_points pts with
      | None -> []
      | Some st ->
        [
          ("first", Float st.s_first);
          ("last", Float st.s_last);
          ("min", Float st.s_min);
          ("max", Float st.s_max);
          ("avg", Float st.s_avg);
          ("delta", Float st.s_delta);
          ("rate", Float st.s_rate);
        ]
    in
    Ok
      (render_json
         (Obj
            ([
               ("series", Str (selector_string name labels));
               ("window_s", Float window_s);
               ("points", List (List.map point_json pts));
             ]
            @ stats_json)))
