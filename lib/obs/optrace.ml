module Timer = Rebal_harness.Timer

(* Cross-domain request tracing. Where [Trace] keeps a per-domain stack
   of nested spans (right for the single-threaded solvers), protocol ops
   cross threads and domains: a session systhread opens the op, a worker
   domain runs the engine half, and a two-phase move touches two
   workers. So spans here are flat records carrying explicit
   [trace_id]/[span_id]/[parent_id] links, recorded into per-domain ring
   buffers and stitched back into trees at exposition time — recording
   never blocks on anything wider than one domain's ring mutex.

   Cost model: head sampling (1-in-N at the op boundary) decides whether
   an op's spans are recorded at all; ops slower than the tail threshold
   are additionally captured into a bounded slow-op ring whether or not
   they were sampled (an unsampled slow op keeps only its root span —
   the children were never recorded). With both knobs off, [with_op] is
   [f ()] behind two atomic loads. *)

type span = {
  trace_id : int;
  span_id : int;
  parent_id : int;  (* 0 when the span is a trace root *)
  name : string;
  domain : int;  (* domain the span ran on *)
  start_ns : int64;
  mutable stop_ns : int64;
  attrs : (string * string) list;
}

type carrier = {
  trace : int;
  parent : int;
}

type slow_op = {
  slow_trace : int;
  slow_verb : string;
  slow_duration_ns : int64;
  slow_finished_ns : int64;
}

(* ----- configuration ----- *)

(* 0 = head sampling off; N = trace every Nth op. *)
let sample_every = Atomic.make 0

(* Negative = tail capture off; otherwise the threshold in ns. *)
let slow_threshold = Atomic.make (-1)

(* Injectable clock: the slow-ring property tests drive op durations
   deterministically through this hook. *)
let clock : (unit -> int64) Atomic.t = Atomic.make Timer.now_ns

let set_sample_every n = Atomic.set sample_every (max 0 n)
let sampling_every () = Atomic.get sample_every
let set_slow_threshold_ns n = Atomic.set slow_threshold n
let slow_threshold_ns () = Atomic.get slow_threshold
let set_clock f = Atomic.set clock f
let now () = (Atomic.get clock) ()

(* ----- id allocation (globally unique across domains) ----- *)

let trace_ids = Atomic.make 1
let span_ids = Atomic.make 1
let op_counter = Atomic.make 0

let next_trace () = Atomic.fetch_and_add trace_ids 1
let next_span () = Atomic.fetch_and_add span_ids 1

(* ----- drop accounting (same counter family as Trace) ----- *)

let count_dropped kind =
  Metrics.Counter.inc
    (Metrics.counter
       ~help:"Trace entries overwritten because a buffer wrapped"
       ~labels:[ ("kind", kind) ] "rebal_trace_dropped_total")

(* ----- per-domain span rings ----- *)

(* One ring per domain, in DLS. The mutex is not redundant: session
   systhreads all live on the control domain and share its DLS slot, so
   several threads record into one ring concurrently. *)
type ring = {
  ring_mu : Mutex.t;
  mutable slots : span option array;
  mutable written : int;
}

let ring_key =
  Domain.DLS.new_key (fun () ->
      { ring_mu = Mutex.create (); slots = Array.make 4096 None; written = 0 })

let ring () = Domain.DLS.get ring_key

let set_ring_capacity n =
  if n < 1 then invalid_arg "Optrace.set_ring_capacity: need a positive capacity";
  let r = ring () in
  Mutex.lock r.ring_mu;
  r.slots <- Array.make n None;
  r.written <- 0;
  Mutex.unlock r.ring_mu

let record sp =
  let r = ring () in
  Mutex.lock r.ring_mu;
  let cap = Array.length r.slots in
  let slot = r.written mod cap in
  let dropped = r.slots.(slot) <> None in
  r.slots.(slot) <- Some sp;
  r.written <- r.written + 1;
  Mutex.unlock r.ring_mu;
  if dropped then count_dropped "op_span"

let recorded () =
  let r = ring () in
  Mutex.lock r.ring_mu;
  let buf = Array.copy r.slots in
  let total = r.written in
  Mutex.unlock r.ring_mu;
  let cap = Array.length buf in
  let start = max 0 (total - cap) in
  List.filter_map (fun i -> buf.(i mod cap)) (List.init (total - start) (fun j -> start + j))

(* ----- the slow-op ring (global: every domain's slow ops land here) ----- *)

type slow_ring = {
  slow_mu : Mutex.t;
  mutable slow_slots : slow_op option array;
  mutable slow_written : int;
}

let slow_ring =
  { slow_mu = Mutex.create (); slow_slots = Array.make 256 None; slow_written = 0 }

let set_slow_capacity n =
  if n < 1 then invalid_arg "Optrace.set_slow_capacity: need a positive capacity";
  Mutex.lock slow_ring.slow_mu;
  slow_ring.slow_slots <- Array.make n None;
  slow_ring.slow_written <- 0;
  Mutex.unlock slow_ring.slow_mu

let record_slow e =
  Mutex.lock slow_ring.slow_mu;
  let cap = Array.length slow_ring.slow_slots in
  let slot = slow_ring.slow_written mod cap in
  let dropped = slow_ring.slow_slots.(slot) <> None in
  slow_ring.slow_slots.(slot) <- Some e;
  slow_ring.slow_written <- slow_ring.slow_written + 1;
  Mutex.unlock slow_ring.slow_mu;
  if dropped then count_dropped "slow_op"

let slow_ops () =
  Mutex.lock slow_ring.slow_mu;
  let buf = Array.copy slow_ring.slow_slots in
  let total = slow_ring.slow_written in
  Mutex.unlock slow_ring.slow_mu;
  let cap = Array.length buf in
  let start = max 0 (total - cap) in
  List.filter_map (fun i -> buf.(i mod cap)) (List.init (total - start) (fun j -> start + j))

(* ----- the current trace context ----- *)

(* Keyed by (domain, thread), not plain DLS: session systhreads share
   the control domain's DLS, so a domain-local "current carrier" would
   leak one session's context into another. The table only ever holds
   entries for threads inside a sampled op, so it stays tiny and the
   lock is uncontended unless tracing is busy. *)
let ctx_mu = Mutex.create ()
let ctx : (int * int, carrier) Hashtbl.t = Hashtbl.create 64

let self_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let current_carrier () =
  Mutex.lock ctx_mu;
  let c = Hashtbl.find_opt ctx (self_key ()) in
  Mutex.unlock ctx_mu;
  c

let set_ctx key v =
  Mutex.lock ctx_mu;
  (match v with
  | None -> Hashtbl.remove ctx key
  | Some c -> Hashtbl.replace ctx key c);
  Mutex.unlock ctx_mu

(* Run [f] with the current context set to [c], restoring on the way
   out (removing the entry if there was none — dead threads must not
   leave ghosts in the table). *)
let with_ctx c f =
  let key = self_key () in
  let saved =
    Mutex.lock ctx_mu;
    let s = Hashtbl.find_opt ctx key in
    Hashtbl.replace ctx key c;
    Mutex.unlock ctx_mu;
    s
  in
  Fun.protect ~finally:(fun () -> set_ctx key saved) f

(* ----- spans ----- *)

let with_op ~verb f =
  let every = Atomic.get sample_every in
  let slow_t = Atomic.get slow_threshold in
  if every <= 0 && slow_t < 0 then f ()
  else begin
    let sampled = every > 0 && Atomic.fetch_and_add op_counter 1 mod every = 0 in
    let start_ns = now () in
    let trace_id = next_trace () in
    let span_id = next_span () in
    let sp =
      {
        trace_id;
        span_id;
        parent_id = 0;
        name = verb;
        domain = (Domain.self () :> int);
        start_ns;
        stop_ns = start_ns;
        attrs = [];
      }
    in
    let finish () =
      let stop = now () in
      sp.stop_ns <- stop;
      let dur = Int64.sub stop start_ns in
      let is_slow = slow_t >= 0 && dur >= Int64.of_int slow_t in
      if sampled || is_slow then record sp;
      if is_slow then
        record_slow
          { slow_trace = trace_id; slow_verb = verb; slow_duration_ns = dur; slow_finished_ns = stop }
    in
    Fun.protect ~finally:finish @@ fun () ->
    if sampled then with_ctx { trace = trace_id; parent = span_id } f else f ()
  end

let with_span ?carrier ?(attrs = []) name f =
  let parent = match carrier with Some _ as c -> c | None -> current_carrier () in
  match parent with
  | None -> f ()
  | Some { trace; parent } ->
    let span_id = next_span () in
    let sp =
      {
        trace_id = trace;
        span_id;
        parent_id = parent;
        name;
        domain = (Domain.self () :> int);
        start_ns = now ();
        stop_ns = 0L;
        attrs;
      }
    in
    Fun.protect
      ~finally:(fun () ->
        sp.stop_ns <- now ();
        record sp)
      (fun () -> with_ctx { trace; parent = span_id } f)

let reset () =
  let r = ring () in
  Mutex.lock r.ring_mu;
  Array.fill r.slots 0 (Array.length r.slots) None;
  r.written <- 0;
  Mutex.unlock r.ring_mu;
  Mutex.lock slow_ring.slow_mu;
  Array.fill slow_ring.slow_slots 0 (Array.length slow_ring.slow_slots) None;
  slow_ring.slow_written <- 0;
  Mutex.unlock slow_ring.slow_mu;
  Atomic.set op_counter 0

(* ----- assembly: flat records back into causal trees ----- *)

type tree = {
  span : span;
  children : tree list;
}

let assemble spans =
  let by_id = Hashtbl.create 64 in
  List.iter (fun sp -> Hashtbl.replace by_id sp.span_id sp) spans;
  (* A span is a root when it says so (parent 0) — or when its parent
     was evicted from a ring, or claims a different trace (which a
     correct recorder never produces): orphans are promoted to roots
     rather than silently dropped, so truncation is visible. *)
  let is_root sp =
    sp.parent_id = 0
    ||
    match Hashtbl.find_opt by_id sp.parent_id with
    | Some p -> p.trace_id <> sp.trace_id
    | None -> true
  in
  let kids = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      if not (is_root sp) then
        Hashtbl.replace kids sp.parent_id
          (sp :: Option.value ~default:[] (Hashtbl.find_opt kids sp.parent_id)))
    spans;
  let by_start l = List.sort (fun a b -> Int64.compare a.start_ns b.start_ns) l in
  let rec node sp =
    {
      span = sp;
      children =
        List.map node (by_start (Option.value ~default:[] (Hashtbl.find_opt kids sp.span_id)));
    }
  in
  List.map node (by_start (List.filter is_root spans))

let trees_for ~trace_id trees = List.filter (fun t -> t.span.trace_id = trace_id) trees

(* ----- rendering ----- *)

let duration_ns sp = Int64.sub sp.stop_ns sp.start_ns

let pp_duration ppf ns =
  let ns = Int64.to_float ns in
  if ns < 1e3 then Format.fprintf ppf "%.0fns" ns
  else if ns < 1e6 then Format.fprintf ppf "%.2fus" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%.2fms" (ns /. 1e6)
  else Format.fprintf ppf "%.3fs" (ns /. 1e9)

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    Format.fprintf ppf " {%s}"
      (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs))

let rec pp_node ppf ~indent t =
  Format.fprintf ppf "%s%s%a  %a\n" indent t.span.name pp_attrs t.span.attrs pp_duration
    (duration_ns t.span);
  List.iter (fun c -> pp_node ppf ~indent:(indent ^ "  ") c) t.children

let pp_tree ppf t = pp_node ppf ~indent:"" t
let render_tree t = Format.asprintf "%a" pp_tree t

let render_duration ns = Format.asprintf "%a" pp_duration ns
