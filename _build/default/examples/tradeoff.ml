(* The moves-vs-makespan tradeoff — the reason the problem exists.

   On a drifted cluster (once balanced, since wandered), we sweep the
   move budget k from 0 to "everything may move" and watch the makespan
   fall. The interesting economics live at small k: the first few moves
   buy most of the improvement, which is exactly the regime the paper's
   bounded-relocation algorithms are built for.

   Run with: dune exec examples/tradeoff.exe *)

module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module Lower_bounds = Rebal_core.Lower_bounds
module Dist = Rebal_workloads.Dist
module Gen = Rebal_workloads.Gen
module Rng = Rebal_workloads.Rng
module Table = Rebal_harness.Table

let () =
  let rng = Rng.create 41 in
  let dist = Dist.prepare (Dist.Exponential { mean = 60.0 }) in
  let inst = Gen.drifted rng ~n:400 ~m:16 ~dist ~drift:0.35 () in
  Printf.printf "n=400 m=16 drifted workload; initial makespan=%d, average=%d\n\n"
    (Instance.initial_makespan inst) (Lower_bounds.average inst);
  let table =
    Table.create ~title:"move budget sweep (m-partition vs greedy)"
      ~columns:[ "k"; "m-partition"; "moves used"; "greedy"; "lower bound" ]
  in
  List.iter
    (fun k ->
      let mp = Rebal_algo.M_partition.solve inst ~k in
      let g = Rebal_algo.Greedy.solve inst ~k in
      Table.add_row table
        [
          string_of_int k;
          string_of_int (Assignment.makespan inst mp);
          string_of_int (Assignment.moves inst mp);
          string_of_int (Assignment.makespan inst g);
          string_of_int (Lower_bounds.best inst ~budget:(Budget.Moves k));
        ])
    [ 0; 1; 2; 4; 8; 16; 32; 64; 128; 400 ];
  Table.print table;
  print_endline
    "note how m-partition reaches within 1.5x of the bound after a handful\n\
     of moves, and how the bound flattens at the average load: past that\n\
     point extra relocations cannot buy anything, and m-partition's lazy\n\
     threshold scan stops spending them."
