examples/tradeoff.mli:
