examples/quickstart.mli:
