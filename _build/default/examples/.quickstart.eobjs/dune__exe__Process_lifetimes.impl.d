examples/process_lifetimes.ml: List Printf Rebal_harness Rebal_sim Rebal_workloads
