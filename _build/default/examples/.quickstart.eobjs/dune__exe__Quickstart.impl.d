examples/quickstart.ml: Array Printf Rebal_algo Rebal_core String
