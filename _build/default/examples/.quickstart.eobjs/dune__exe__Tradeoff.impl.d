examples/tradeoff.ml: List Printf Rebal_algo Rebal_core Rebal_harness Rebal_workloads
