examples/webserver_migration.mli:
