examples/process_lifetimes.mli:
