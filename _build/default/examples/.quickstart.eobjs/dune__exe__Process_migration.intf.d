examples/process_migration.mli:
