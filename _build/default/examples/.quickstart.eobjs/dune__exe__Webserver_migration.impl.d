examples/webserver_migration.ml: Array List Printf Rebal_harness Rebal_sim Rebal_workloads
