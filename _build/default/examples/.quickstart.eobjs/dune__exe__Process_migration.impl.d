examples/process_migration.ml: Array List Printf Rebal_algo Rebal_core Rebal_harness Rebal_lp Rebal_workloads
