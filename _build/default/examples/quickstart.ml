(* Quickstart: the whole public API in one small program.

   A cluster of 4 processors ran balanced for a while, then usage drifted
   and processor 0 became hot. We may move at most 3 jobs; how close to a
   perfect balance can we get?

   Run with: dune exec examples/quickstart.exe *)

module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module Lower_bounds = Rebal_core.Lower_bounds
module Verify = Rebal_core.Verify

let () =
  (* 10 jobs; sizes in arbitrary load units; initial placement is skewed
     towards processor 0. *)
  let sizes = [| 48; 30; 27; 25; 21; 18; 14; 11; 8; 6 |] in
  let initial = [| 0; 0; 1; 0; 2; 0; 3; 1; 2; 3 |] in
  let inst = Instance.create ~sizes ~m:4 initial in
  let k = 3 in
  Printf.printf "jobs=%d processors=%d move budget k=%d\n" (Instance.n inst)
    (Instance.m inst) k;
  Printf.printf "initial loads: [%s]  makespan=%d\n"
    (String.concat "; "
       (Array.to_list (Array.map string_of_int (Instance.initial_loads inst))))
    (Instance.initial_makespan inst);
  Printf.printf "lower bound on any rebalancing: %d\n\n"
    (Lower_bounds.best inst ~budget:(Budget.Moves k));

  let show name assignment =
    let report = Verify.check_exn inst assignment ~budget:(Budget.Moves k) in
    Printf.printf "%-14s makespan=%-4d moves=%d  loads=[%s]\n" name
      report.Verify.makespan report.Verify.moves
      (String.concat "; "
         (Array.to_list (Array.map string_of_int (Assignment.loads inst assignment))))
  in
  (* The paper's two algorithms. GREEDY: tight 2 - 1/m approximation,
     M-PARTITION: 1.5-approximation, both O(n log n). *)
  show "greedy" (Rebal_algo.Greedy.solve inst ~k);
  show "m-partition" (Rebal_algo.M_partition.solve inst ~k);
  (* The exact optimum, for reference (exponential; fine at this size). *)
  (match Rebal_algo.Exact.solve inst ~budget:(Budget.Moves k) with
  | Some a -> show "exact optimum" a
  | None -> print_endline "exact solver hit its node limit");
  print_newline ();

  (* The same instance under a relocation *cost* budget: moving job i
     costs its size (data volume); we can afford 40 units of movement. *)
  let costs = Array.copy sizes in
  let costed = Instance.create ~costs ~sizes ~m:4 initial in
  let budget = 40 in
  let a, guess = Rebal_algo.Budgeted_partition.solve costed ~budget in
  Printf.printf
    "cost-budgeted (B=%d): makespan=%d cost=%d (accepted guess %d, bound 1.5x)\n"
    budget
    (Assignment.makespan costed a)
    (Assignment.relocation_cost costed a)
    guess
