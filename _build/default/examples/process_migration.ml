(* Process migration with heterogeneous costs — the §3.2 setting.

   Jobs are OS processes on a small compute cluster. Migrating a process
   costs time proportional to its resident memory, which is unrelated to
   its CPU load: some light processes drag huge heaps around, some heavy
   number-crunchers are tiny to ship. With a fixed migration budget, the
   cost-aware PARTITION of §3.2 must pick cheap-but-useful moves; we
   compare it with the Shmoys-Tardos LP rounding and the exact optimum.

   Run with: dune exec examples/process_migration.exe *)

module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module Table = Rebal_harness.Table
module Rng = Rebal_workloads.Rng

let () =
  let rng = Rng.create 77 in
  (* 14 processes on 4 machines; machine 0 is overloaded. CPU load and
     heap size are drawn independently. *)
  let n = 14 in
  let m = 4 in
  let sizes = Array.init n (fun _ -> Rng.int_range rng 5 40) in
  let costs = Array.init n (fun _ -> Rng.int_range rng 1 12) in
  let initial = Array.init n (fun i -> if i < 8 then 0 else 1 + Rng.int rng (m - 1)) in
  let inst = Instance.create ~costs ~sizes ~m initial in
  Printf.printf "processes=%d machines=%d initial makespan=%d total size=%d\n\n" n m
    (Instance.initial_makespan inst) (Instance.total_size inst);
  let table =
    Table.create ~title:"makespan within a migration-cost budget"
      ~columns:[ "budget"; "budgeted-partition"; "st-gap"; "exact"; "bp cost"; "gap cost" ]
  in
  List.iter
    (fun budget ->
      let bp, _ = Rebal_algo.Budgeted_partition.solve inst ~budget in
      let gap, _ = Rebal_lp.Gap.solve inst ~budget in
      let exact =
        Rebal_algo.Exact.opt_makespan_exn inst ~budget:(Budget.Cost budget)
      in
      Table.add_row table
        [
          string_of_int budget;
          string_of_int (Assignment.makespan inst bp);
          string_of_int (Assignment.makespan inst gap);
          string_of_int exact;
          string_of_int (Assignment.relocation_cost inst bp);
          string_of_int (Assignment.relocation_cost inst gap);
        ])
    [ 0; 2; 5; 10; 20; 40 ];
  Table.print table;
  print_endline
    "both approximations stay within their guarantees (1.5x and 2x the exact\n\
     column) at every budget; the budget columns confirm neither ever\n\
     overspends."
