(* Does process migration pay? — replaying the §1 literature debate.

   The paper's introduction cites two camps: Harchol-Balter & Downey [6]
   showed with trace-driven simulation that migrating processes pays off
   because real process lifetimes are heavy-tailed (a few marathon
   processes dominate the load, and moving one fixes an imbalance for a
   long time); Lazowska et al [9] argued the benefits are limited outside
   unrealistic CPU-bound workloads, because migration has a price and
   well-behaved workloads rebalance themselves through churn.

   With the process simulator both positions coexist: we run the same
   cluster under Pareto (heavy-tailed) and exponential (memoryless)
   lifetimes at comparable congestion and sweep the per-round migration
   budget. Watch the migration counts, not just the slowdowns.

   Run with: dune exec examples/process_lifetimes.exe *)

module PS = Rebal_sim.Process_sim
module Policy = Rebal_sim.Policy
module Rng = Rebal_workloads.Rng
module Table = Rebal_harness.Table

let cpus = 8
let horizon = 6000
let period = 10

let run lifetime rate policy =
  PS.run (Rng.create 42) { PS.cpus; arrival_rate = rate; lifetime; horizon; period; policy }

let scenario table name lifetime rate =
  let none = run lifetime rate Policy.No_rebalance in
  let full = run lifetime rate Policy.Full_lpt in
  let denom = none.PS.mean_slowdown -. full.PS.mean_slowdown in
  let benefit r = 100.0 *. (none.PS.mean_slowdown -. r.PS.mean_slowdown) /. denom in
  List.iter
    (fun (pname, policy) ->
      let r = run lifetime rate policy in
      Table.add_row table
        [
          name;
          pname;
          Printf.sprintf "%.3f" r.PS.mean_slowdown;
          Printf.sprintf "%.1f" r.PS.p95_slowdown;
          Printf.sprintf "%.0f%%" (benefit r);
          string_of_int r.PS.migrations;
          string_of_int r.PS.completed;
        ])
    [
      ("never migrate", Policy.No_rebalance);
      ("greedy, 1 move/round", Policy.Greedy 1);
      ("greedy, 4 moves/round", Policy.Greedy 4);
      ("m-partition, 4/round", Policy.M_partition 4);
      ("migrate freely (lpt)", Policy.Full_lpt);
    ]

let () =
  Printf.printf
    "%d processor-sharing CPUs, one rebalancing round every %d steps,\n\
     %d simulated steps, comparable utilization in both scenarios.\n\n"
    cpus period horizon;
  let table =
    Table.create ~title:"process migration under different lifetime tails"
      ~columns:[ "lifetimes"; "policy"; "slowdown"; "p95"; "benefit"; "migrations"; "done" ]
  in
  scenario table "pareto(1.1)" (PS.Pareto_work { alpha = 1.1; xmin = 1.0 }) 0.5;
  scenario table "exponential" (PS.Exponential_work 5.5) 0.82;
  Table.print table;
  print_endline
    "reading the table:\n\
     - migration helps in both regimes (the [6] observation survives);\n\
     - under heavy tails the same benefit costs 2-3x fewer migrations\n\
       than under exponential lifetimes: the gain concentrates in moving\n\
       a few marathon processes, while light-tailed workloads must churn\n\
       many processes to profit — exactly the overhead the sceptics [9]\n\
       worried about;\n\
     - m-partition moves jobs only when its 1.5-makespan certificate\n\
       demands it. Under heavy tails one marathon process IS the\n\
       makespan, no move budget can beat 1.5x that, and so it stays\n\
       almost idle: a vivid reminder that the paper's objective is the\n\
       peak load, and that mean slowdown rewards a policy (greedy) that\n\
       spends its whole budget every round."
