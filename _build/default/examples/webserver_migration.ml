(* Web-server migration — the scenario that motivated the paper (§1).

   A hosting cluster serves 240 websites from 12 servers. Traffic follows
   a diurnal cycle with Zipf popularity and occasional flash crowds.
   Every 6 hours an operator may migrate at most a handful of sites
   (migration costs bandwidth and risks sessions, so "rebalance
   everything" is off the table). We compare doing nothing, the paper's
   bounded-move algorithms, and the unrestricted LPT rebalance over a
   simulated week.

   Run with: dune exec examples/webserver_migration.exe *)

module Traffic = Rebal_sim.Traffic
module Policy = Rebal_sim.Policy
module Simulation = Rebal_sim.Simulation
module Table = Rebal_harness.Table
module Rng = Rebal_workloads.Rng

let () =
  let horizon = 168 (* one week, hourly *) in
  let traffic =
    Traffic.create (Rng.create 2003) ~sites:240 ~horizon ~zipf_alpha:0.6
      ~scale:400 ~period:24 ~diurnal_depth:0.7 ~noise:0.12 ~flash_prob:0.002
      ~flash_mult:6 ~flash_len:5 ()
  in
  let servers = 12 in
  let period = 6 in
  Printf.printf
    "one simulated week: %d sites on %d servers, rebalancing every %dh\n\n"
    (Traffic.sites traffic) servers period;
  let table =
    Table.create ~title:"policy comparison"
      ~columns:
        [ "policy"; "mean imbalance"; "p95 imbalance"; "peak load"; "migrations/week" ]
  in
  let results =
    List.map
      (fun policy ->
        let r = Simulation.run traffic { Simulation.servers; period; policy } in
        Table.add_row table
          [
            Policy.name policy;
            Printf.sprintf "%.3f" r.Simulation.mean_imbalance;
            Printf.sprintf "%.3f" r.Simulation.p95_imbalance;
            string_of_int r.Simulation.peak_makespan;
            string_of_int r.Simulation.total_moves;
          ];
        (policy, r))
      [
        Policy.No_rebalance;
        Policy.Greedy 8;
        Policy.M_partition 8;
        Policy.Local_search 8;
        Policy.Full_lpt;
      ]
  in
  Table.print table;
  let find p = List.assoc p results in
  let none = find Policy.No_rebalance in
  let bounded = find (Policy.M_partition 8) in
  let full = find Policy.Full_lpt in
  Printf.printf
    "m-partition with 8 moves/round removes %.0f%% of the imbalance that full\n\
     rebalancing removes, using %.1f%% of its migrations.\n"
    (100.0
    *. (none.Simulation.mean_imbalance -. bounded.Simulation.mean_imbalance)
    /. (none.Simulation.mean_imbalance -. full.Simulation.mean_imbalance))
    (100.0
    *. float_of_int bounded.Simulation.total_moves
    /. float_of_int full.Simulation.total_moves);
  (* An hour-by-hour view of one day for the bounded policy. *)
  let day = Table.create ~title:"m-partition, day 3 hour-by-hour" ~columns:[ "hour"; "makespan"; "avg"; "moves" ] in
  Array.iter
    (fun s ->
      if s.Simulation.time >= 48 && s.Simulation.time < 72 then
        Table.add_row day
          [
            string_of_int (s.Simulation.time - 48);
            string_of_int s.Simulation.makespan;
            Printf.sprintf "%.0f" s.Simulation.average;
            string_of_int s.Simulation.moves;
          ])
    bounded.Simulation.steps;
  Table.print day
