module Instance = Rebal_core.Instance

type cost_model =
  | Unit
  | Proportional_to_size of { per : int }
  | Inverse_size of { numerator : int }
  | Uniform_random of { lo : int; hi : int }

let cost_model_name = function
  | Unit -> "unit"
  | Proportional_to_size { per } -> Printf.sprintf "size/%d" per
  | Inverse_size { numerator } -> Printf.sprintf "%d/size" numerator
  | Uniform_random { lo; hi } -> Printf.sprintf "U(%d,%d)" lo hi

let costs_of rng model sizes =
  match model with
  | Unit -> Array.map (fun _ -> 1) sizes
  | Proportional_to_size { per } ->
    if per <= 0 then invalid_arg "Gen: Proportional_to_size.per must be positive";
    Array.map (fun s -> (s + per - 1) / per) sizes
  | Inverse_size { numerator } ->
    if numerator <= 0 then invalid_arg "Gen: Inverse_size.numerator must be positive";
    Array.map (fun s -> max 1 (numerator / s)) sizes
  | Uniform_random { lo; hi } ->
    if lo < 0 || hi < lo then invalid_arg "Gen: bad Uniform_random cost range";
    Array.map (fun _ -> Rng.int_range rng lo hi) sizes

let random rng ~n ~m ~dist ?(cost = Unit) () =
  let sizes = Dist.sample_many dist rng n in
  let costs = costs_of rng cost sizes in
  let initial = Array.init n (fun _ -> Rng.int rng m) in
  Instance.create ~costs ~sizes ~m initial

let skewed rng ~n ~m ~dist ~skew ?(cost = Unit) () =
  if skew < 0.0 then invalid_arg "Gen.skewed: negative skew";
  let sizes = Dist.sample_many dist rng n in
  let costs = costs_of rng cost sizes in
  (* Cumulative weights (rank+1)^-skew over processors. *)
  let cdf = Array.make m 0.0 in
  let acc = ref 0.0 in
  for p = 0 to m - 1 do
    acc := !acc +. (1.0 /. (float_of_int (p + 1) ** skew));
    cdf.(p) <- !acc
  done;
  let pick () =
    let u = Rng.float rng cdf.(m - 1) in
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if cdf.(mid) > u then search lo mid else search (mid + 1) hi
      end
    in
    search 0 (m - 1)
  in
  let initial = Array.init n (fun _ -> pick ()) in
  Instance.create ~costs ~sizes ~m initial

(* Longest-processing-time-first placement used as the balanced starting
   point of [drifted]; re-implemented locally because the workloads library
   sits below the algorithms library. *)
let lpt_placement sizes m =
  let n = Array.length sizes in
  let order = Array.init n (fun j -> j) in
  Array.sort
    (fun j1 j2 ->
      if sizes.(j1) <> sizes.(j2) then compare sizes.(j2) sizes.(j1)
      else compare j1 j2)
    order;
  let heap = Rebal_ds.Indexed_heap.create m in
  for p = 0 to m - 1 do
    Rebal_ds.Indexed_heap.set heap p 0
  done;
  let placement = Array.make n 0 in
  Array.iter
    (fun j ->
      let p, load = Rebal_ds.Indexed_heap.min_exn heap in
      placement.(j) <- p;
      Rebal_ds.Indexed_heap.set heap p (load + sizes.(j)))
    order;
  placement

let drifted rng ~n ~m ~dist ~drift ?(cost = Unit) () =
  if drift < 0.0 || drift > 1.0 then invalid_arg "Gen.drifted: drift outside [0,1]";
  let sizes = Dist.sample_many dist rng n in
  let costs = costs_of rng cost sizes in
  let initial = lpt_placement sizes m in
  for j = 0 to n - 1 do
    if Rng.float rng 1.0 < drift then initial.(j) <- Rng.int rng m
  done;
  Instance.create ~costs ~sizes ~m initial
