(** Deterministic pseudo-random number generator (splitmix64).

    Every experiment in the repository is seeded explicitly through this
    module, so workloads, benchmarks and property tests are reproducible
    bit-for-bit across runs and machines — the stdlib [Random] state is
    never touched. *)

type t

val create : int -> t
(** Generator seeded from an integer. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent generator that continues from the same state. *)

val split : t -> t
(** Derive a new generator from the stream (for parallel substreams). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0 .. bound-1].
    @raise Invalid_argument if [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform on [lo .. hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
