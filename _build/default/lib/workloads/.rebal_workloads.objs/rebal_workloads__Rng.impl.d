lib/workloads/rng.ml: Array Int64
