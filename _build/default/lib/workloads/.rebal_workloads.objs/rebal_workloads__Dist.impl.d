lib/workloads/dist.ml: Array Printf Rng
