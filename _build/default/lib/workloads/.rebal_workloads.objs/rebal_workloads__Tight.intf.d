lib/workloads/tight.mli: Rebal_core
