lib/workloads/rng.mli:
