lib/workloads/gen.ml: Array Dist Printf Rebal_core Rebal_ds Rng
