lib/workloads/tight.ml: Array Rebal_core
