lib/workloads/dist.mli: Rng
