lib/workloads/gen.mli: Dist Rebal_core Rng
