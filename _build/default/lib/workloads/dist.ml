type spec =
  | Constant of int
  | Uniform of { lo : int; hi : int }
  | Exponential of { mean : float }
  | Zipf of { ranks : int; alpha : float; scale : int }
  | Bimodal of { small_lo : int; small_hi : int; big_lo : int; big_hi : int; big_prob : float }
  | Pareto of { alpha : float; scale : int }

type t = {
  spec : spec;
  zipf_cdf : float array; (* cumulative rank weights, empty unless Zipf *)
}

let validate = function
  | Constant c -> if c <= 0 then invalid_arg "Dist: Constant size must be positive"
  | Uniform { lo; hi } ->
    if lo <= 0 || hi < lo then invalid_arg "Dist: bad Uniform range"
  | Exponential { mean } ->
    if mean <= 0.0 then invalid_arg "Dist: Exponential mean must be positive"
  | Zipf { ranks; alpha; scale } ->
    if ranks < 1 || alpha < 0.0 || scale < 1 then invalid_arg "Dist: bad Zipf"
  | Bimodal { small_lo; small_hi; big_lo; big_hi; big_prob } ->
    if small_lo <= 0 || small_hi < small_lo || big_lo <= 0 || big_hi < big_lo
       || big_prob < 0.0 || big_prob > 1.0
    then invalid_arg "Dist: bad Bimodal"
  | Pareto { alpha; scale } ->
    if alpha <= 0.0 || scale < 1 then invalid_arg "Dist: bad Pareto"

let prepare spec =
  validate spec;
  let zipf_cdf =
    match spec with
    | Zipf { ranks; alpha; _ } ->
      let cdf = Array.make ranks 0.0 in
      let acc = ref 0.0 in
      for r = 1 to ranks do
        acc := !acc +. (1.0 /. (float_of_int r ** alpha));
        cdf.(r - 1) <- !acc
      done;
      cdf
    | Constant _ | Uniform _ | Exponential _ | Bimodal _ | Pareto _ -> [||]
  in
  { spec; zipf_cdf }

let spec t = t.spec

let name = function
  | Constant c -> Printf.sprintf "const(%d)" c
  | Uniform { lo; hi } -> Printf.sprintf "uniform(%d,%d)" lo hi
  | Exponential { mean } -> Printf.sprintf "exp(%.0f)" mean
  | Zipf { alpha; _ } -> Printf.sprintf "zipf(%.2f)" alpha
  | Bimodal { big_prob; _ } -> Printf.sprintf "bimodal(%.2f)" big_prob
  | Pareto { alpha; _ } -> Printf.sprintf "pareto(%.2f)" alpha

let zipf_rank t rng =
  let cdf = t.zipf_cdf in
  let ranks = Array.length cdf in
  let u = Rng.float rng cdf.(ranks - 1) in
  (* First rank whose cumulative weight exceeds u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if cdf.(mid) > u then search lo mid else search (mid + 1) hi
    end
  in
  search 0 (ranks - 1) + 1

let sample t rng =
  match t.spec with
  | Constant c -> c
  | Uniform { lo; hi } -> Rng.int_range rng lo hi
  | Exponential { mean } ->
    let x = Rng.exponential rng ~mean in
    max 1 (int_of_float (ceil x))
  | Zipf { scale; _ } ->
    let r = zipf_rank t rng in
    max 1 (scale / r)
  | Bimodal { small_lo; small_hi; big_lo; big_hi; big_prob } ->
    if Rng.float rng 1.0 < big_prob then Rng.int_range rng big_lo big_hi
    else Rng.int_range rng small_lo small_hi
  | Pareto { alpha; scale } ->
    let u = ref (Rng.float rng 1.0) in
    while !u <= 0.0 do
      u := Rng.float rng 1.0
    done;
    let x = float_of_int scale /. (!u ** (1.0 /. alpha)) in
    (* Cap so a single pathological draw cannot dominate the instance. *)
    min (scale * 1000) (max 1 (int_of_float (ceil x)))

let sample_many t rng count = Array.init count (fun _ -> sample t rng)
