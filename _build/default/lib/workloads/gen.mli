(** Instance generators. Each generator is a pure function of the supplied
    [Rng.t], so experiments are reproducible from a seed.

    The three initial-placement regimes model the three situations the
    paper's introduction motivates:

    - [random]: jobs land on uniformly random processors (a cluster that
      was never balanced);
    - [skewed]: placement is biased towards low-index processors with
      strength [skew] (a cluster whose early servers accreted load);
    - [drifted]: placement starts from an LPT-balanced assignment and each
      job then migrates to a random processor with probability [drift]
      (a cluster that {e was} balanced and has since drifted — the regime
      in which bounded-move rebalancing shines). *)

type cost_model =
  | Unit  (** every move costs 1 (the §2–3.1 problem) *)
  | Proportional_to_size of { per : int }
      (** cost = ⌈size / per⌉ — moving big jobs is expensive (data motion) *)
  | Inverse_size of { numerator : int }
      (** cost = max 1 (numerator / size) — small jobs are sticky
          (e.g. latency-critical sites with many connections) *)
  | Uniform_random of { lo : int; hi : int }

val cost_model_name : cost_model -> string

val random :
  Rng.t -> n:int -> m:int -> dist:Dist.t -> ?cost:cost_model -> unit -> Rebal_core.Instance.t

val skewed :
  Rng.t ->
  n:int ->
  m:int ->
  dist:Dist.t ->
  skew:float ->
  ?cost:cost_model ->
  unit ->
  Rebal_core.Instance.t
(** [skew >= 0]; 0 is uniform, larger concentrates load on few processors
    (processor chosen with probability proportional to [(rank+1)^-skew]). *)

val drifted :
  Rng.t ->
  n:int ->
  m:int ->
  dist:Dist.t ->
  drift:float ->
  ?cost:cost_model ->
  unit ->
  Rebal_core.Instance.t
(** [drift] in [0,1]: fraction of jobs expected to have moved away from
    the balanced position. *)
