(** The paper's adversarial instances, exactly as constructed in the
    tightness arguments, plus scaled variants. Each constructor returns
    the instance together with the move budget and the optimal makespan
    the paper derives for it. *)

type t = {
  instance : Rebal_core.Instance.t;
  k : int;  (** the move budget of the construction *)
  opt : int;  (** the optimal makespan, from the paper's argument *)
  worst_makespan : int;  (** the makespan the adversarial run exhibits *)
}

val greedy_tight : m:int -> t
(** Theorem 1's instance: one job of size [m] and [m^2 - m] unit jobs;
    initially every processor holds [m-1] unit jobs and processor 0 also
    holds the size-[m] job; [k = m-1]. GREEDY that reinserts the size-[m]
    job last reproduces the initial configuration of value [2m-1] while
    [OPT = m], giving the tight ratio [2 - 1/m].
    @raise Invalid_argument if [m < 2]. *)

val partition_tight : ?scale:int -> unit -> t
(** Theorem 2's instance (integer-scaled by [2*scale]): two processors,
    the first holding jobs of sizes [scale] and [2*scale], the second a
    job of size [scale]; [k = 1] and [OPT = 2*scale]. PARTITION makes no
    move and keeps makespan [3*scale] — exactly ratio 1.5.
    @raise Invalid_argument if [scale < 1]. *)

val two_tier : pairs:int -> size:int -> t
(** A best-case family: [2*pairs] processors, the first [pairs] of which
    each hold two jobs of size [size] while the rest are empty, with
    [k = pairs]. One move per loaded processor reaches the optimum
    [size]; the no-move makespan is [2*size]. Both GREEDY and PARTITION
    should solve this family exactly, which makes it a calibration point
    for the benchmark tables.
    @raise Invalid_argument if [pairs < 1] or [size < 1]. *)
