(** Job-size distributions. Specs are declarative and serializable-ish;
    [prepare] compiles a spec once (e.g. the Zipf CDF table) so that
    [sample] is [O(log ranks)] or better. All samples are positive
    integers. *)

type spec =
  | Constant of int  (** all jobs the same size *)
  | Uniform of { lo : int; hi : int }  (** uniform integers in [lo..hi] *)
  | Exponential of { mean : float }
      (** rounded-up exponential, heavy on small jobs *)
  | Zipf of { ranks : int; alpha : float; scale : int }
      (** rank [r] drawn with probability proportional to [r^-alpha]; the
          sampled size is [max 1 (scale / r)] — a few huge sites, a long
          tail of tiny ones, the canonical web-workload shape *)
  | Bimodal of { small_lo : int; small_hi : int; big_lo : int; big_hi : int; big_prob : float }
      (** mostly small jobs with an occasional big one *)
  | Pareto of { alpha : float; scale : int }
      (** continuous heavy tail, rounded up *)

type t

val prepare : spec -> t
(** @raise Invalid_argument on nonsensical parameters (non-positive sizes,
    empty ranges, probabilities outside [0,1], [alpha <= 0] for Pareto). *)

val spec : t -> spec
val name : spec -> string
(** Short label for tables, e.g. ["zipf(1.1)"]. *)

val sample : t -> Rng.t -> int
(** One positive job size. *)

val sample_many : t -> Rng.t -> int -> int array
