module Instance = Rebal_core.Instance

type t = {
  instance : Rebal_core.Instance.t;
  k : int;
  opt : int;
  worst_makespan : int;
}

let greedy_tight ~m =
  if m < 2 then invalid_arg "Tight.greedy_tight: need m >= 2";
  (* Job 0 has size m on processor 0; then m-1 unit jobs on each of the m
     processors. Initial loads: 2m-1 on processor 0, m-1 elsewhere. *)
  let n = 1 + (m * (m - 1)) in
  let sizes = Array.make n 1 in
  sizes.(0) <- m;
  let initial = Array.make n 0 in
  let idx = ref 1 in
  for p = 0 to m - 1 do
    for _ = 1 to m - 1 do
      initial.(!idx) <- p;
      incr idx
    done
  done;
  let instance = Instance.create ~sizes ~m initial in
  { instance; k = m - 1; opt = m; worst_makespan = (2 * m) - 1 }

let partition_tight ?(scale = 1) () =
  if scale < 1 then invalid_arg "Tight.partition_tight: scale must be >= 1";
  (* Paper (OPT = 1, sizes 1/2 and 1) scaled by 2*scale to stay integral:
     P0 = {scale, 2*scale}, P1 = {scale}, k = 1, OPT = 2*scale. With this
     OPT, PARTITION computes L_T = 1, a = (0,0), b = (1,0), selects P0
     (c_0 = -1 < c_1 = 0) and moves nothing — makespan stays 3*scale. *)
  let sizes = [| scale; 2 * scale; scale |] in
  let initial = [| 0; 0; 1 |] in
  let instance = Instance.create ~sizes ~m:2 initial in
  { instance; k = 1; opt = 2 * scale; worst_makespan = 3 * scale }

let two_tier ~pairs ~size =
  if pairs < 1 || size < 1 then invalid_arg "Tight.two_tier: bad parameters";
  let m = 2 * pairs in
  let n = 2 * pairs in
  let sizes = Array.make n size in
  let initial = Array.init n (fun j -> j / 2) in
  let instance = Instance.create ~sizes ~m initial in
  { instance; k = pairs; opt = size; worst_makespan = 2 * size }
