type t = { mutable state : int64 }

(* splitmix64 (Steele, Lea, Flood 2014): tiny state, passes BigCrush, and
   trivially reproducible across platforms. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw bound64 in
    if Int64.sub raw v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  (* 53 uniform bits -> [0,1) *)
  Int64.to_float raw /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = ref (float t 1.0) in
  while !u <= 0.0 do
    u := float t 1.0
  done;
  -.mean *. log !u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
