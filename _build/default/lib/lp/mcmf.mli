(** Minimum-cost maximum-flow on a directed graph with integer capacities
    and integer edge costs (successive shortest paths with SPFA, which
    tolerates zero-cost edges and needs no potentials).

    Used by [Gap] to extract a minimum-cost integral matching of jobs to
    machine slots from the fractional LP solution — the last step of the
    Shmoys–Tardos rounding. *)

type t

val create : int -> t
(** [create n] is an empty graph on nodes [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> capacity:int -> cost:int -> unit
(** Adds a directed edge (and its zero-capacity residual twin).
    @raise Invalid_argument on node indices out of range or negative
    capacity. *)

val min_cost_max_flow : t -> source:int -> sink:int -> int * int
(** [(flow, cost)] of a maximum flow of minimum cost. Mutates the graph's
    residual capacities; call once per graph. *)

val flow_on : t -> int
(** Number of directed edges added so far (edge ids are [0 .. flow_on-1]
    in insertion order). *)

val edge_flow : t -> int -> int
(** Flow routed on the [i]-th added edge after [min_cost_max_flow]. *)
