(** The Shmoys–Tardos 2-approximation baseline, specialized to the
    generalized-assignment encoding of load rebalancing that §2 of the
    paper describes: job [i] costs [0] on its initial processor and its
    relocation cost [c_i] everywhere else, all processing times are
    machine-independent.

    For a target makespan [t], the LP relaxation minimizes total
    relocation cost subject to fractional assignment, per-machine load at
    most [t], and [x_ij = 0] whenever [s_i > t]. A vertex optimum is
    rounded with the slot construction: machine [j] gets
    [ceil(sum_i x_ij)] slots, jobs are poured into the slots in
    decreasing size order, and a minimum-cost integral perfect matching
    of jobs to slots (a min-cost-flow) picks the final assignment. The
    rounded cost never exceeds the LP cost, and each machine's load is at
    most [t] plus its largest assigned job, i.e. at most [2t].

    The smallest feasible [t] is found by binary search (feasibility is
    monotone in [t]); since the true optimum is LP-feasible at its own
    makespan, the result is a 2-approximation within budget. *)

val feasible_target :
  ?tol:float ->
  ?eligible:int list array ->
  Rebal_core.Instance.t ->
  budget:int ->
  target:int ->
  Rebal_core.Assignment.t option
(** Round one target: [Some assignment] with relocation cost at most
    [budget] and makespan at most [2 * target], or [None] when the LP is
    infeasible or costs more than the budget. *)

val solve :
  ?tol:float -> Rebal_core.Instance.t -> budget:int -> Rebal_core.Assignment.t * int
(** Binary-search the smallest feasible target and round it. Returns the
    assignment and that target (a lower bound on the optimal makespan,
    making the result a certified 2-approximation).
    @raise Invalid_argument if [budget < 0]. *)

val solve_constrained :
  ?tol:float ->
  Rebal_core.Instance.t ->
  eligible:int list array ->
  budget:int ->
  (Rebal_core.Assignment.t * int) option
(** The {e Constrained Load Rebalancing} problem of §5 (Corollary 1):
    each job may only be placed on its [eligible] machines. Corollary 1
    shows no polynomial algorithm approximates it below 3/2; the paper
    notes the Shmoys–Tardos rounding remains the best known upper bound
    at factor 2 — this is that algorithm, with the LP restricted to
    eligible pairs. Returns [None] when no target is LP-feasible within
    budget (e.g. a job whose eligible set is empty); otherwise the
    assignment uses only eligible machines, costs at most [budget], and
    its makespan is at most twice the smallest LP-feasible target, which
    lower-bounds the constrained optimum.
    @raise Invalid_argument if [budget < 0], the eligibility array length
    differs from [n], or a machine index is out of range. *)

val solve_general :
  ?tol:float ->
  Rebal_core.Instance.t ->
  costs:int array array ->
  budget:int ->
  (Rebal_core.Assignment.t * int * int) option
(** Full generalized-assignment costs in the §5 setting: machine-dependent
    cost [costs.(i).(j)] charged for ending job [i] on machine [j]
    (processing times stay machine-independent, as everywhere in the
    paper). The instance's own relocation costs are ignored; its initial
    assignment only matters if the matrix prices it. Returns
    [(assignment, target, cost)] — makespan at most [2 * target] with
    [target] a lower bound on the constrained optimum and [cost <= budget]
    — or [None] when no target is LP-feasible within the budget (with
    machine-dependent costs even the "do nothing" placement can be
    unaffordable).

    This is the bridge between the paper's Theorem 6 gadget (two-valued
    costs) and its only known upper bound: run the gadget's cost matrix
    through this solver to see the factor-2 rounding at work on the
    instances the hardness proof builds.
    @raise Invalid_argument on a misshapen or negative cost matrix or a
    negative budget. *)
