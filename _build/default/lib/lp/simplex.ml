type kind =
  | Le
  | Ge
  | Eq

type problem = {
  maximize : bool;
  objective : float array;
  constraints : (float array * kind * float) list;
}

type outcome =
  | Optimal of { x : float array; value : float }
  | Infeasible
  | Unbounded

(* Dense tableau:
     tab.(r).(c) for r < rows is the constraint matrix with the rhs in the
     last column; row [rows] is the objective row (reduced costs, with the
     current objective value negated in the rhs cell). [basis.(r)] is the
     variable basic in row r. We always MAXIMIZE the objective row. *)
type tableau = {
  tab : float array array;
  basis : int array;
  rows : int;
  cols : int; (* structural + slack + artificial columns, excluding rhs *)
}

let pivot t ~row ~col ~tol =
  let piv = t.tab.(row).(col) in
  let prow = t.tab.(row) in
  for c = 0 to t.cols do
    prow.(c) <- prow.(c) /. piv
  done;
  for r = 0 to t.rows do
    if r <> row then begin
      let factor = t.tab.(r).(col) in
      if abs_float factor > tol then begin
        let rrow = t.tab.(r) in
        for c = 0 to t.cols do
          rrow.(c) <- rrow.(c) -. (factor *. prow.(c))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* One phase of maximization over the allowed columns. Bland's rule:
   entering column is the lowest-index improving one, leaving row breaks
   ratio ties by lowest basis index. Returns [`Optimal] or [`Unbounded]. *)
let optimize t ~allowed ~tol =
  let rec loop () =
    let obj = t.tab.(t.rows) in
    let entering = ref (-1) in
    (try
       for c = 0 to t.cols - 1 do
         if allowed c && obj.(c) > tol then begin
           entering := c;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to t.rows - 1 do
        let coeff = t.tab.(r).(col) in
        if coeff > tol then begin
          let ratio = t.tab.(r).(t.cols) /. coeff in
          if
            ratio < !best_ratio -. tol
            || (abs_float (ratio -. !best_ratio) <= tol
               && (!best_row < 0 || t.basis.(r) < t.basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := r
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot t ~row:!best_row ~col ~tol;
        loop ()
      end
    end
  in
  loop ()

let solve ?(tol = 1e-9) { maximize; objective; constraints } =
  let nvars = Array.length objective in
  List.iter
    (fun (row, _, _) ->
      if Array.length row <> nvars then
        invalid_arg "Simplex.solve: constraint row length mismatch")
    constraints;
  (* Normalize to non-negative right-hand sides. *)
  let constraints =
    List.map
      (fun (row, kind, b) ->
        if b < 0.0 then begin
          let flipped =
            match kind with
            | Le -> Ge
            | Ge -> Le
            | Eq -> Eq
          in
          (Array.map (fun v -> -.v) row, flipped, -.b)
        end
        else (Array.copy row, kind, b))
      constraints
  in
  let rows = List.length constraints in
  let n_slack =
    List.fold_left
      (fun acc (_, kind, _) ->
        match kind with
        | Le | Ge -> acc + 1
        | Eq -> acc)
      0 constraints
  in
  let n_artificial =
    List.fold_left
      (fun acc (_, kind, _) ->
        match kind with
        | Ge | Eq -> acc + 1
        | Le -> acc)
      0 constraints
  in
  let cols = nvars + n_slack + n_artificial in
  let tab = Array.make_matrix (rows + 1) (cols + 1) 0.0 in
  let basis = Array.make rows (-1) in
  let art_start = nvars + n_slack in
  let slack_idx = ref nvars in
  let art_idx = ref art_start in
  List.iteri
    (fun r (row, kind, b) ->
      Array.blit row 0 tab.(r) 0 nvars;
      tab.(r).(cols) <- b;
      (match kind with
      | Le ->
        tab.(r).(!slack_idx) <- 1.0;
        basis.(r) <- !slack_idx;
        incr slack_idx
      | Ge ->
        tab.(r).(!slack_idx) <- -1.0;
        incr slack_idx;
        tab.(r).(!art_idx) <- 1.0;
        basis.(r) <- !art_idx;
        incr art_idx
      | Eq ->
        tab.(r).(!art_idx) <- 1.0;
        basis.(r) <- !art_idx;
        incr art_idx))
    constraints;
  let t = { tab; basis; rows; cols } in
  let outcome =
    if n_artificial > 0 then begin
      (* Phase 1: maximize -(sum of artificials). Express the objective in
         terms of the non-basic variables by adding the artificial rows. *)
      for c = 0 to cols do
        let s = ref 0.0 in
        List.iteri
          (fun r (_, kind, _) ->
            match kind with
            | Ge | Eq -> s := !s +. tab.(r).(c)
            | Le -> ())
          constraints;
        t.tab.(rows).(c) <- !s
      done;
      for a = art_start to cols - 1 do
        t.tab.(rows).(a) <- 0.0
      done;
      match optimize t ~allowed:(fun _ -> true) ~tol with
      | `Unbounded -> `Phase1_unbounded
      | `Optimal ->
        if t.tab.(rows).(cols) > sqrt tol then `Infeasible
        else begin
          (* Drive any basic artificial out of the basis if possible. *)
          for r = 0 to rows - 1 do
            if t.basis.(r) >= art_start then begin
              let found = ref false in
              for c = 0 to art_start - 1 do
                if (not !found) && abs_float t.tab.(r).(c) > sqrt tol then begin
                  found := true;
                  pivot t ~row:r ~col:c ~tol
                end
              done
            end
          done;
          `Feasible
        end
    end
    else `Feasible
  in
  match outcome with
  | `Infeasible -> Infeasible
  | `Phase1_unbounded ->
    (* Cannot happen: phase-1 objective is bounded above by 0. *)
    Infeasible
  | `Feasible -> begin
    (* Phase 2 objective, rewritten over the current basis. *)
    let sign = if maximize then 1.0 else -1.0 in
    let obj = t.tab.(rows) in
    Array.fill obj 0 (cols + 1) 0.0;
    for c = 0 to nvars - 1 do
      obj.(c) <- sign *. objective.(c)
    done;
    for r = 0 to rows - 1 do
      let b = t.basis.(r) in
      if b < nvars then begin
        let coeff = obj.(b) in
        if abs_float coeff > 0.0 then
          for c = 0 to cols do
            obj.(c) <- obj.(c) -. (coeff *. t.tab.(r).(c))
          done
      end
    done;
    (* Artificial columns stay out of the basis in phase 2. *)
    let allowed c = c < art_start in
    match optimize t ~allowed ~tol with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let x = Array.make nvars 0.0 in
      for r = 0 to rows - 1 do
        if t.basis.(r) < nvars then x.(t.basis.(r)) <- t.tab.(r).(cols)
      done;
      let value = Array.fold_left ( +. ) 0.0 (Array.mapi (fun i xi -> objective.(i) *. xi) x) in
      Optimal { x; value }
  end
