module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment

(* Variables of the relaxation at target [t]: one per (job, machine) pair
   with s_i <= t, restricted to the job's eligible machines when the
   constrained variant is being solved. *)
let variables inst ~eligible ~target =
  let n = Instance.n inst in
  let m = Instance.m inst in
  let allowed i j =
    match eligible with
    | None -> true
    | Some sets -> List.mem j sets.(i)
  in
  let vars = ref [] in
  for i = n - 1 downto 0 do
    if Instance.size inst i <= target then
      for j = m - 1 downto 0 do
        if allowed i j then vars := (i, j) :: !vars
      done
  done;
  Array.of_list !vars

let relocation_cost_of inst i j =
  if Instance.initial inst i = j then 0 else Instance.cost inst i

let lp_solution ?(tol = 1e-9) ?eligible ~cost_of inst ~target =
  let n = Instance.n inst in
  let m = Instance.m inst in
  if Instance.max_size inst > target then None
  else begin
    let vars = variables inst ~eligible ~target in
    let nv = Array.length vars in
    let objective = Array.make nv 0.0 in
    Array.iteri (fun v (i, j) -> objective.(v) <- float_of_int (cost_of i j)) vars;
    let constraints = ref [] in
    (* Each job fully assigned. *)
    for i = 0 to n - 1 do
      let row = Array.make nv 0.0 in
      Array.iteri (fun v (i', _) -> if i' = i then row.(v) <- 1.0) vars;
      constraints := (row, Simplex.Eq, 1.0) :: !constraints
    done;
    (* Machine loads within target. *)
    for j = 0 to m - 1 do
      let row = Array.make nv 0.0 in
      Array.iteri
        (fun v (i, j') -> if j' = j then row.(v) <- float_of_int (Instance.size inst i))
        vars;
      constraints := (row, Simplex.Le, float_of_int target) :: !constraints
    done;
    match
      Simplex.solve ~tol
        { Simplex.maximize = false; objective; constraints = !constraints }
    with
    | Simplex.Infeasible | Simplex.Unbounded -> None
    | Simplex.Optimal { x; value } -> Some (vars, x, value)
  end

(* Slot construction + min-cost matching. [frac] holds x_ij > tol. *)
let round ~cost_of inst ~vars ~x ~tol =
  let n = Instance.n inst in
  let m = Instance.m inst in
  (* Per machine: jobs with positive fraction, sorted by decreasing size. *)
  let per_machine = Array.make m [] in
  Array.iteri
    (fun v (i, j) -> if x.(v) > tol then per_machine.(j) <- (i, x.(v)) :: per_machine.(j))
    vars;
  (* Build slots: slot = (machine, slot-rank); edges job -> slot. *)
  let slots = ref [] in
  let edges = ref [] in
  let nslots = ref 0 in
  for j = 0 to m - 1 do
    let jobs =
      List.sort
        (fun (i1, _) (i2, _) ->
          let s1 = Instance.size inst i1 and s2 = Instance.size inst i2 in
          if s1 <> s2 then compare s2 s1 else compare i1 i2)
        per_machine.(j)
    in
    if jobs <> [] then begin
      let slot_id = ref !nslots in
      slots := (!slot_id, j) :: !slots;
      incr nslots;
      let room = ref 1.0 in
      List.iter
        (fun (i, f) ->
          let remaining = ref f in
          (* Greedily pour this job's fraction into consecutive slots. *)
          while !remaining > tol do
            if !room <= tol then begin
              slot_id := !nslots;
              slots := (!slot_id, j) :: !slots;
              incr nslots;
              room := 1.0
            end;
            let put = min !remaining !room in
            edges := (i, !slot_id) :: !edges;
            remaining := !remaining -. put;
            room := !room -. put
          done)
        jobs
    end
  done;
  let slot_machine = Array.make (max 1 !nslots) 0 in
  List.iter (fun (s, j) -> slot_machine.(s) <- j) !slots;
  (* Min-cost perfect matching of jobs to slots over the support edges:
     source(0) -> jobs (1..n) -> slots (n+1..n+nslots) -> sink. *)
  let source = 0 and sink = n + !nslots + 1 in
  let g = Mcmf.create (sink + 1) in
  for i = 0 to n - 1 do
    Mcmf.add_edge g ~src:source ~dst:(1 + i) ~capacity:1 ~cost:0
  done;
  let job_slot_edges = ref [] in
  List.iter
    (fun (i, s) ->
      let id = Mcmf.flow_on g in
      Mcmf.add_edge g ~src:(1 + i) ~dst:(1 + n + s)
        ~capacity:1
        ~cost:(cost_of i slot_machine.(s));
      job_slot_edges := (id, i, s) :: !job_slot_edges)
    !edges;
  for s = 0 to !nslots - 1 do
    Mcmf.add_edge g ~src:(1 + n + s) ~dst:sink ~capacity:1 ~cost:0
  done;
  let flow, _cost = Mcmf.min_cost_max_flow g ~source ~sink in
  if flow < n then None
  else begin
    let assign = Instance.initial_assignment inst in
    List.iter
      (fun (id, i, s) -> if Mcmf.edge_flow g id = 1 then assign.(i) <- slot_machine.(s))
      !job_slot_edges;
    Some (Assignment.of_array ~m assign)
  end

let general_cost ~cost_of inst assignment =
  let total = ref 0 in
  for i = 0 to Instance.n inst - 1 do
    total := !total + cost_of i (Assignment.processor assignment i)
  done;
  !total

let feasible_target_cost ?(tol = 1e-7) ?eligible ~cost_of inst ~budget ~target =
  match lp_solution ~tol ?eligible ~cost_of inst ~target with
  | None -> None
  | Some (vars, x, value) ->
    if value > float_of_int budget +. 1e-6 then None
    else begin
      match round ~cost_of inst ~vars ~x ~tol with
      | None -> None
      | Some assignment ->
        (* The matching theorem promises cost <= LP cost; re-verify
           defensively against the integer budget. *)
        if general_cost ~cost_of inst assignment <= budget then Some assignment
        else None
    end

let feasible_target ?tol ?eligible inst ~budget ~target =
  feasible_target_cost ?tol ?eligible ~cost_of:(relocation_cost_of inst) inst ~budget
    ~target

let binary_search ?tol ?eligible ~cost_of inst ~budget ~lb ~ub =
  (* Feasibility is monotone in the target, so plain binary search. *)
  let rec search lo hi best =
    if lo > hi then best
    else begin
      let mid = (lo + hi) / 2 in
      match feasible_target_cost ?tol ?eligible ~cost_of inst ~budget ~target:mid with
      | Some a -> search lo (mid - 1) (Some (a, mid))
      | None -> search (mid + 1) hi best
    end
  in
  search lb ub None

let solve ?tol inst ~budget =
  if budget < 0 then invalid_arg "Gap.solve: negative budget";
  let m = Instance.m inst in
  let lb = max ((Instance.total_size inst + m - 1) / m) (Instance.max_size inst) in
  let ub = max lb (Instance.initial_makespan inst) in
  match binary_search ?tol ~cost_of:(relocation_cost_of inst) inst ~budget ~lb ~ub with
  | Some result -> result
  | None ->
    (* The initial assignment is feasible at the initial makespan with
       cost 0, so this is unreachable. *)
    failwith "Gap.solve: no feasible target (impossible)"

let solve_constrained ?tol inst ~eligible ~budget =
  if budget < 0 then invalid_arg "Gap.solve_constrained: negative budget";
  let n = Instance.n inst in
  let m = Instance.m inst in
  if Array.length eligible <> n then
    invalid_arg "Gap.solve_constrained: eligibility length mismatch";
  Array.iteri
    (fun i sets ->
      ignore i;
      List.iter
        (fun j ->
          if j < 0 || j >= m then
            invalid_arg "Gap.solve_constrained: machine out of range")
        sets)
    eligible;
  let lb = max ((Instance.total_size inst + m - 1) / m) (Instance.max_size inst) in
  (* Unlike the unconstrained problem, the initial assignment need not be
     eligible, and small targets can make the LP infeasible outright; the
     search cap is the total size (one machine takes everything it may). *)
  let ub = max lb (Instance.total_size inst) in
  binary_search ?tol ~eligible ~cost_of:(relocation_cost_of inst) inst ~budget ~lb ~ub

let solve_general ?tol inst ~costs ~budget =
  if budget < 0 then invalid_arg "Gap.solve_general: negative budget";
  let n = Instance.n inst in
  let m = Instance.m inst in
  if Array.length costs <> n then
    invalid_arg "Gap.solve_general: cost matrix has wrong number of rows";
  Array.iter
    (fun row ->
      if Array.length row <> m then
        invalid_arg "Gap.solve_general: cost matrix has wrong number of columns";
      Array.iter (fun c -> if c < 0 then invalid_arg "Gap.solve_general: negative cost") row)
    costs;
  let cost_of i j = costs.(i).(j) in
  let lb = max ((Instance.total_size inst + m - 1) / m) (Instance.max_size inst) in
  (* Staying put can itself be priced, so even the initial placement may
     bust the budget: the search can fail outright. *)
  let ub = max lb (Instance.total_size inst) in
  match binary_search ?tol ~cost_of inst ~budget ~lb ~ub with
  | None -> None
  | Some (assignment, target) ->
    Some (assignment, target, general_cost ~cost_of inst assignment)
