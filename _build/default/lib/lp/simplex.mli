(** A small dense two-phase simplex solver over floats, with Bland's rule
    for anti-cycling. Built as the substrate for the Shmoys–Tardos
    generalized-assignment baseline (the paper's §2 points out that load
    rebalancing reduces to GAP, whose best approximation is LP-based).

    Problems are stated as: optimize [c . x] subject to row constraints
    [a . x (<=|=|>=) b] and [x >= 0]. The solver returns a {e basic}
    optimal solution — a vertex of the polytope — which is what the
    rounding step of [Gap] relies on (a vertex of the GAP relaxation has
    at most [jobs + machines] nonzero entries). *)

type kind =
  | Le
  | Ge
  | Eq

type problem = {
  maximize : bool;
  objective : float array;
  constraints : (float array * kind * float) list;
}

type outcome =
  | Optimal of { x : float array; value : float }
  | Infeasible
  | Unbounded

val solve : ?tol:float -> problem -> outcome
(** [tol] (default [1e-9]) is the pivoting tolerance.
    @raise Invalid_argument if a constraint row length differs from the
    objective length. *)
