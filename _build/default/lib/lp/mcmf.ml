type t = {
  n : int;
  mutable heads : int array; (* adjacency list heads per node *)
  mutable nxt : int array; (* next edge index in the node's list *)
  mutable dst : int array;
  mutable cap : int array;
  mutable cost : int array;
  mutable edges : int; (* count of arcs, including residual twins *)
  mutable original : int; (* count of user-added edges *)
  mutable orig_cap : int array; (* original capacity per user edge *)
  mutable orig_arc : int array; (* arc index of each user edge *)
}

let create n =
  if n < 0 then invalid_arg "Mcmf.create";
  {
    n;
    heads = Array.make (max n 1) (-1);
    nxt = [||];
    dst = [||];
    cap = [||];
    cost = [||];
    edges = 0;
    original = 0;
    orig_cap = [||];
    orig_arc = [||];
  }

let ensure_arrays t =
  let need = t.edges + 2 in
  if Array.length t.dst < need then begin
    let ncap = max 16 (2 * need) in
    let grow arr = Array.append arr (Array.make (ncap - Array.length arr) 0) in
    t.nxt <- grow t.nxt;
    t.dst <- grow t.dst;
    t.cap <- grow t.cap;
    t.cost <- grow t.cost
  end;
  let need_o = t.original + 1 in
  if Array.length t.orig_cap < need_o then begin
    let ncap = max 16 (2 * need_o) in
    let grow arr = Array.append arr (Array.make (ncap - Array.length arr) 0) in
    t.orig_cap <- grow t.orig_cap;
    t.orig_arc <- grow t.orig_arc
  end

let add_arc t src dst cap cost =
  let e = t.edges in
  t.nxt.(e) <- t.heads.(src);
  t.heads.(src) <- e;
  t.dst.(e) <- dst;
  t.cap.(e) <- cap;
  t.cost.(e) <- cost;
  t.edges <- e + 1

let add_edge t ~src ~dst ~capacity ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Mcmf.add_edge: node out of range";
  if capacity < 0 then invalid_arg "Mcmf.add_edge: negative capacity";
  ensure_arrays t;
  t.orig_cap.(t.original) <- capacity;
  t.orig_arc.(t.original) <- t.edges;
  t.original <- t.original + 1;
  add_arc t src dst capacity cost;
  add_arc t dst src 0 (-cost)

let flow_on t = t.original
let edge_flow t i = t.orig_cap.(i) - t.cap.(t.orig_arc.(i))

(* Successive shortest augmenting paths; SPFA handles the negative
   residual costs that appear after augmentation. Each augmentation pushes
   the bottleneck along one cheapest source->sink path. *)
let min_cost_max_flow t ~source ~sink =
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n then
    invalid_arg "Mcmf.min_cost_max_flow: node out of range";
  let inf = max_int / 4 in
  let total_flow = ref 0 and total_cost = ref 0 in
  let dist = Array.make t.n inf in
  let in_queue = Array.make t.n false in
  let pred_arc = Array.make t.n (-1) in
  let continue_ = ref true in
  while !continue_ do
    Array.fill dist 0 t.n inf;
    Array.fill pred_arc 0 t.n (-1);
    dist.(source) <- 0;
    let queue = Queue.create () in
    Queue.add source queue;
    in_queue.(source) <- true;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      in_queue.(u) <- false;
      let e = ref t.heads.(u) in
      while !e >= 0 do
        let arc = !e in
        if t.cap.(arc) > 0 then begin
          let v = t.dst.(arc) in
          let nd = dist.(u) + t.cost.(arc) in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            pred_arc.(v) <- arc;
            if not in_queue.(v) then begin
              in_queue.(v) <- true;
              Queue.add v queue
            end
          end
        end;
        e := t.nxt.(arc)
      done
    done;
    if dist.(sink) >= inf then continue_ := false
    else begin
      (* Bottleneck along the path (walk back via predecessor arcs; the
         twin of arc 2i is 2i+1 and vice versa). *)
      let twin arc = arc lxor 1 in
      let rec bottleneck v acc =
        if v = source then acc
        else begin
          let arc = pred_arc.(v) in
          bottleneck t.dst.(twin arc) (min acc t.cap.(arc))
        end
      in
      let push = bottleneck sink inf in
      let rec apply v =
        if v <> source then begin
          let arc = pred_arc.(v) in
          t.cap.(arc) <- t.cap.(arc) - push;
          t.cap.(twin arc) <- t.cap.(twin arc) + push;
          apply t.dst.(twin arc)
        end
      in
      apply sink;
      total_flow := !total_flow + push;
      total_cost := !total_cost + (push * dist.(sink))
    end
  done;
  (!total_flow, !total_cost)
