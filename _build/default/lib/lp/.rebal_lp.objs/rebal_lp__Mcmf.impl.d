lib/lp/mcmf.ml: Array Queue
