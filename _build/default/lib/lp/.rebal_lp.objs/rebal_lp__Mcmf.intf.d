lib/lp/mcmf.mli:
