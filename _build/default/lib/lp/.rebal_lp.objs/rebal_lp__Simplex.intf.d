lib/lp/simplex.mli:
