lib/lp/gap.ml: Array List Mcmf Rebal_core Simplex
