lib/lp/gap.mli: Rebal_core
