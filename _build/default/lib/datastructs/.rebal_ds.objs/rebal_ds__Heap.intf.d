lib/datastructs/heap.mli:
