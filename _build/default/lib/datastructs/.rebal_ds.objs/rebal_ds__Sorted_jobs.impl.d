lib/datastructs/sorted_jobs.ml: Array
