lib/datastructs/indexed_heap.mli:
