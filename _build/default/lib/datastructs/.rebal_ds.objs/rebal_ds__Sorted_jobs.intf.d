lib/datastructs/sorted_jobs.mli:
