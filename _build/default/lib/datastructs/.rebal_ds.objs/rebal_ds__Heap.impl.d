lib/datastructs/heap.ml: Array List
