lib/datastructs/indexed_heap.ml: Array
