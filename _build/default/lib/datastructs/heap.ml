module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (E : ORDERED) = struct
  type t = {
    mutable data : E.t array;
    mutable size : int;
  }

  let create ?(capacity = 16) () = ignore capacity; { data = [||]; size = 0 }

  let length h = h.size
  let is_empty h = h.size = 0

  let grow h x =
    let cap = Array.length h.data in
    if h.size = cap then begin
      let ncap = if cap = 0 then 16 else 2 * cap in
      let ndata = Array.make ncap x in
      Array.blit h.data 0 ndata 0 h.size;
      h.data <- ndata
    end

  let rec sift_up data i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if E.compare data.(i) data.(parent) < 0 then begin
        let tmp = data.(i) in
        data.(i) <- data.(parent);
        data.(parent) <- tmp;
        sift_up data parent
      end
    end

  let rec sift_down data size i =
    let l = (2 * i) + 1 in
    let r = l + 1 in
    let smallest = ref i in
    if l < size && E.compare data.(l) data.(!smallest) < 0 then smallest := l;
    if r < size && E.compare data.(r) data.(!smallest) < 0 then smallest := r;
    if !smallest <> i then begin
      let tmp = data.(i) in
      data.(i) <- data.(!smallest);
      data.(!smallest) <- tmp;
      sift_down data size !smallest
    end

  let add h x =
    grow h x;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    sift_up h.data (h.size - 1)

  let min h = if h.size = 0 then None else Some h.data.(0)

  let min_exn h =
    if h.size = 0 then invalid_arg "Heap.min_exn: empty heap" else h.data.(0)

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.data.(0) <- h.data.(h.size);
        sift_down h.data h.size 0
      end;
      Some top
    end

  let pop_exn h =
    match pop h with
    | Some x -> x
    | None -> invalid_arg "Heap.pop_exn: empty heap"

  let clear h = h.size <- 0

  let of_list xs =
    let h = create ~capacity:(List.length xs + 1) () in
    List.iter (add h) xs;
    h

  let to_sorted_list h =
    let rec drain acc =
      match pop h with
      | None -> List.rev acc
      | Some x -> drain (x :: acc)
    in
    drain []

  let iter f h =
    for i = 0 to h.size - 1 do
      f h.data.(i)
    done

  let fold f init h =
    let acc = ref init in
    for i = 0 to h.size - 1 do
      acc := f !acc h.data.(i)
    done;
    !acc
end
