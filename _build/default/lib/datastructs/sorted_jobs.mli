(** Immutable per-processor view of a job multiset, sorted by size in
    decreasing order, with prefix sums of the sorted sizes.

    This is the data structure that makes the PARTITION / M-PARTITION
    algorithms of Aggarwal–Motwani–Zhu run in near-linear time: for a
    makespan guess [t], the number of {e large} jobs (size strictly greater
    than [t/2]) is the length of a prefix of the view, and the quantities

    - [a_i] — the minimum number of small jobs to remove so that the
      remaining small jobs total at most [t/2], and
    - [b_i] — the minimum number of jobs (large job included) to remove so
      that the remaining jobs total at most [t]

    are each computed with one binary search over the prefix sums
    ([O(log q)] for a processor holding [q] jobs).

    All size arithmetic is on integers; "size strictly greater than [t/2]"
    is evaluated exactly as [2*size > t]. *)

type t

val of_assoc : (int * int) array -> t
(** [of_assoc jobs] builds a view from [(job_id, size)] pairs. The input
    array is not modified. Ties in size are broken by job id so the view
    is deterministic.
    @raise Invalid_argument if any size is negative. *)

val length : t -> int
(** Number of jobs in the view. *)

val id : t -> int -> int
(** [id t i] is the job id at descending-sorted position [i]. *)

val size : t -> int -> int
(** [size t i] is the size at descending-sorted position [i]. *)

val total : t -> int
(** Sum of all job sizes in the view. *)

val prefix : t -> int -> int
(** [prefix t l] is the sum of the [l] largest sizes; [prefix t 0 = 0]. *)

val suffix : t -> int -> int
(** [suffix t l] is the total minus the [l] largest sizes, i.e. the sum of
    the sizes at positions [l .. length-1]. *)

val large_count : t -> threshold:int -> int
(** Number of jobs with [2*size > threshold]. They occupy positions
    [0 .. large_count-1]. [O(log q)]. *)

val min_removals_to_cap : t -> from_:int -> cap:int -> int
(** [min_removals_to_cap t ~from_ ~cap] is the least [r] such that removing
    the [r] largest jobs of the suffix starting at position [from_] leaves
    that suffix with total size at most [cap]. Removing largest-first is
    optimal for minimizing the count, so this is exact. [O(log q)].
    @raise Invalid_argument if no [r] suffices, which can only happen when
    [cap < 0]. *)

val ids_in_range : t -> int -> int -> int list
(** [ids_in_range t lo hi] are the job ids at positions [lo .. hi-1]. *)
