(** Functorized binary min-heap over a dynamically-resized array.

    Used throughout the algorithm library: [Greedy] keeps a max-heap of
    processors ordered by load (by inverting the comparison), the
    reassignment steps of [Partition] and [Greedy] keep a min-heap of
    processor loads, and the exact solver uses a heap for its frontier.

    All operations are in-place; [add] and [pop] are [O(log n)],
    [min] is [O(1)]. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (E : ORDERED) : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Fresh empty heap. [capacity] is a sizing hint; the backing array
      grows geometrically on demand either way. *)

  val length : t -> int
  val is_empty : t -> bool

  val add : t -> E.t -> unit
  (** Insert an element; duplicates are allowed. *)

  val min : t -> E.t option
  (** Smallest element without removing it, or [None] if empty. *)

  val min_exn : t -> E.t
  (** @raise Invalid_argument if the heap is empty. *)

  val pop : t -> E.t option
  (** Remove and return the smallest element, or [None] if empty. *)

  val pop_exn : t -> E.t
  (** @raise Invalid_argument if the heap is empty. *)

  val clear : t -> unit

  val of_list : E.t list -> t
  (** Heap containing the given elements; [O(n log n)]. *)

  val to_sorted_list : t -> E.t list
  (** Drain the heap, returning its elements in increasing order.
      The heap is empty afterwards. *)

  val iter : (E.t -> unit) -> t -> unit
  (** Iterate over the elements in unspecified order. *)

  val fold : ('a -> E.t -> 'a) -> 'a -> t -> 'a
  (** Fold over the elements in unspecified order. *)
end
