type t = {
  ids : int array;
  sizes : int array;
  pre : int array; (* pre.(l) = sum of the l largest sizes; length q+1 *)
}

let of_assoc jobs =
  let q = Array.length jobs in
  let order = Array.copy jobs in
  Array.sort
    (fun (id1, s1) (id2, s2) ->
      if s1 <> s2 then compare s2 s1 else compare id1 id2)
    order;
  let ids = Array.make q 0 in
  let sizes = Array.make q 0 in
  let pre = Array.make (q + 1) 0 in
  Array.iteri
    (fun i (id, s) ->
      if s < 0 then invalid_arg "Sorted_jobs.of_assoc: negative size";
      ids.(i) <- id;
      sizes.(i) <- s;
      pre.(i + 1) <- pre.(i) + s)
    order;
  { ids; sizes; pre }

let length t = Array.length t.ids
let id t i = t.ids.(i)
let size t i = t.sizes.(i)
let total t = t.pre.(Array.length t.ids)
let prefix t l = t.pre.(l)
let suffix t l = total t - t.pre.(l)

let large_count t ~threshold =
  (* Sizes are descending, so the large jobs form a prefix: binary search
     for the first position whose size is small (2*size <= threshold). *)
  let q = length t in
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if 2 * t.sizes.(mid) > threshold then search (mid + 1) hi
      else search lo mid
    end
  in
  search 0 q

let min_removals_to_cap t ~from_ ~cap =
  let q = length t in
  let tail_total = suffix t from_ in
  (* remaining(r) = tail_total - (pre.(from_+r) - pre.(from_)) decreases in
     r; find the least r with remaining(r) <= cap. *)
  let remaining r = tail_total - (t.pre.(from_ + r) - t.pre.(from_)) in
  if remaining (q - from_) > cap then
    invalid_arg "Sorted_jobs.min_removals_to_cap: cap unreachable";
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if remaining mid <= cap then search lo mid else search (mid + 1) hi
    end
  in
  search 0 (q - from_)

let ids_in_range t lo hi =
  let rec collect i acc =
    if i < lo then acc else collect (i - 1) (t.ids.(i) :: acc)
  in
  collect (hi - 1) []
