(** The {e move minimization} problem of §5 (Theorem 5): given a bound on
    the maximum processor load, minimize the number of relocations that
    achieve it (reporting infeasible when the bound is unachievable).

    The paper's reduction from the number-PARTITION problem shows no
    polynomial approximation of any factor exists: numbers [a_1..a_r]
    summing to [2S] become [r] jobs on processor 0 of a 2-processor
    instance with load bound [S]; the bound is achievable — by relocating
    the jobs of one side of the partition — iff a perfect partition
    exists, and distinguishing "some finite move count" from "infinite"
    is exactly deciding PARTITION. *)

val subset_sum : int array -> target:int -> bool
(** Pseudo-polynomial DP; the reference decision procedure. *)

val partition_exists : int array -> bool
(** Whether the numbers split into two halves of equal sum. *)

val of_partition : int array -> Rebal_core.Instance.t * int
(** The reduction: [(instance, load_bound)].
    @raise Invalid_argument if the numbers' sum is odd or any is
    non-positive. *)

val min_moves_to_target :
  ?node_limit:int -> Rebal_core.Instance.t -> target:int -> int option
(** Minimum number of moves achieving makespan at most [target], [None]
    when no number of moves suffices. Binary search over the move budget
    around the exact branch-and-bound solver; exponential.
    @raise Failure if the underlying exact solver hits its node limit. *)

val verify_reduction : int array -> bool
(** Checks that [min_moves_to_target] on the reduction instance is finite
    iff [partition_exists]. *)
