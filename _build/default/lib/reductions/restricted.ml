type t = {
  sizes : int array;
  machines : int;
  eligible : int list array;
}

let create ~sizes ~machines ~eligible =
  let n = Array.length sizes in
  if Array.length eligible <> n then
    invalid_arg "Restricted.create: sizes and eligibility lengths differ";
  Array.iter
    (fun s -> if s <= 0 then invalid_arg "Restricted.create: non-positive size")
    sizes;
  Array.iter
    (fun ms ->
      if ms = [] then invalid_arg "Restricted.create: empty eligibility";
      List.iter
        (fun p ->
          if p < 0 || p >= machines then
            invalid_arg "Restricted.create: machine out of range")
        ms)
    eligible;
  { sizes = Array.copy sizes; machines; eligible = Array.map (fun l -> l) eligible }

let jobs t = Array.length t.sizes
let machines t = t.machines
let size t j = t.sizes.(j)
let eligible t j = t.eligible.(j)

let feasible t ~target =
  let n = jobs t in
  (* Most-constrained-first ordering: fewest eligible machines, then
     largest size. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun j1 j2 ->
      let e1 = List.length t.eligible.(j1) and e2 = List.length t.eligible.(j2) in
      if e1 <> e2 then compare e1 e2
      else if t.sizes.(j1) <> t.sizes.(j2) then compare t.sizes.(j2) t.sizes.(j1)
      else compare j1 j2)
    order;
  let load = Array.make t.machines 0 in
  let assign = Array.make n (-1) in
  let rec place idx =
    if idx = n then true
    else begin
      let j = order.(idx) in
      List.exists
        (fun p ->
          if load.(p) + t.sizes.(j) <= target then begin
            load.(p) <- load.(p) + t.sizes.(j);
            assign.(j) <- p;
            if place (idx + 1) then true
            else begin
              load.(p) <- load.(p) - t.sizes.(j);
              assign.(j) <- -1;
              false
            end
          end
          else false)
        t.eligible.(j)
    end
  in
  if place 0 then Some (Array.copy assign) else None

let min_makespan t =
  let total = Array.fold_left ( + ) 0 t.sizes in
  let lb = Array.fold_left max 0 t.sizes in
  let rec scan target =
    if target > total then None
    else begin
      match feasible t ~target with
      | Some _ -> Some target
      | None -> scan (target + 1)
    end
  in
  scan lb

let of_three_dm dm =
  let n = Three_dm.n dm in
  let m = Three_dm.size dm in
  (* Machines of each type (= A-coordinate), and the machines containing
     each B / C element. *)
  let by_type = Array.make n [] in
  let by_b = Array.make n [] in
  let by_c = Array.make n [] in
  for i = m - 1 downto 0 do
    let a, b, c = Three_dm.triple dm i in
    by_type.(a) <- i :: by_type.(a);
    by_b.(b) <- i :: by_b.(b);
    by_c.(c) <- i :: by_c.(c)
  done;
  for u = 0 to n - 1 do
    if by_b.(u) = [] || by_c.(u) = [] then
      invalid_arg "Restricted.of_three_dm: uncovered element (trivially NO)"
  done;
  let sizes = ref [] and eligible = ref [] in
  (* 2n element jobs of size 1. *)
  for u = n - 1 downto 0 do
    sizes := 1 :: 1 :: !sizes;
    eligible := by_b.(u) :: by_c.(u) :: !eligible
  done;
  (* t_j - 1 dummy jobs of size 2 per type j. *)
  for j = 0 to n - 1 do
    let t_j = List.length by_type.(j) in
    for _ = 1 to t_j - 1 do
      sizes := 2 :: !sizes;
      eligible := by_type.(j) :: !eligible
    done
  done;
  create ~sizes:(Array.of_list !sizes) ~machines:m
    ~eligible:(Array.of_list !eligible)

let verify_reduction dm =
  match of_three_dm dm with
  | exception Invalid_argument _ -> not (Three_dm.has_perfect_matching dm)
  | gadget ->
    let schedulable = feasible gadget ~target:2 <> None in
    schedulable = Three_dm.has_perfect_matching dm
