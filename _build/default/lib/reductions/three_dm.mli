(** 3-dimensional matching, the NP-complete problem both §5 reductions of
    the paper start from. An instance over element universes
    [A = B = C = {0 .. n-1}] is a family of triples; the question is
    whether [n] pairwise-disjoint triples cover all three universes.

    The brute-force decision procedure makes the executable reductions
    testable in both directions on small instances. *)

type t

val create : n:int -> triples:(int * int * int) array -> t
(** @raise Invalid_argument if any coordinate is outside [0 .. n-1]. *)

val n : t -> int
(** Universe size. *)

val size : t -> int
(** Number of triples ([m] in the paper's notation; the reductions
    require [m >= n] to be meaningful). *)

val triple : t -> int -> int * int * int

val triples : t -> (int * int * int) array
(** Fresh copy of the family. *)

val has_perfect_matching : t -> bool
(** Backtracking decision; exponential, use [n <= 8] or so. *)

val matching : t -> int array option
(** A witness: [n] triple indices forming a matching, if one exists. *)

val random_yes : Rebal_workloads.Rng.t -> n:int -> extra:int -> t
(** A planted YES instance: a random perfect matching plus [extra] random
    noise triples, shuffled. *)

val random : Rebal_workloads.Rng.t -> n:int -> triples:int -> t
(** [triples] uniformly random triples; may or may not have a matching. *)
