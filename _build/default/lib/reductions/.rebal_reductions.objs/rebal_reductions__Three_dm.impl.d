lib/reductions/three_dm.ml: Array Fun List Rebal_workloads
