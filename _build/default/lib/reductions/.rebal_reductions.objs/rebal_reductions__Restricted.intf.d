lib/reductions/restricted.mli: Three_dm
