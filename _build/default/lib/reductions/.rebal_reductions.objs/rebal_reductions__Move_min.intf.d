lib/reductions/move_min.mli: Rebal_core
