lib/reductions/move_min.ml: Array Rebal_algo Rebal_core
