lib/reductions/conflict.ml: Array Fun List Three_dm
