lib/reductions/three_dm.mli: Rebal_workloads
