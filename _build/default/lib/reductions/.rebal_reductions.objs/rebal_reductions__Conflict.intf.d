lib/reductions/conflict.mli: Three_dm
