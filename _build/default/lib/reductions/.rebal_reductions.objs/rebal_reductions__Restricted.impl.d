lib/reductions/restricted.ml: Array Fun List Three_dm
