module Rng = Rebal_workloads.Rng

type t = {
  n : int;
  triples : (int * int * int) array;
}

let create ~n ~triples =
  Array.iter
    (fun (a, b, c) ->
      if a < 0 || a >= n || b < 0 || b >= n || c < 0 || c >= n then
        invalid_arg "Three_dm.create: element out of range")
    triples;
  { n; triples = Array.copy triples }

let n t = t.n
let size t = Array.length t.triples
let triple t i = t.triples.(i)
let triples t = Array.copy t.triples

(* Cover A-elements in order; for each, try the triples whose A-coordinate
   matches and whose B and C elements are still free. *)
let matching t =
  let by_a = Array.make t.n [] in
  Array.iteri
    (fun i (a, _, _) -> by_a.(a) <- i :: by_a.(a))
    t.triples;
  let used_b = Array.make t.n false in
  let used_c = Array.make t.n false in
  let chosen = Array.make t.n (-1) in
  let rec cover a =
    if a = t.n then true
    else
      List.exists
        (fun i ->
          let _, b, c = t.triples.(i) in
          if used_b.(b) || used_c.(c) then false
          else begin
            used_b.(b) <- true;
            used_c.(c) <- true;
            chosen.(a) <- i;
            if cover (a + 1) then true
            else begin
              used_b.(b) <- false;
              used_c.(c) <- false;
              chosen.(a) <- -1;
              false
            end
          end)
        by_a.(a)
  in
  if t.n = 0 then Some [||] else if cover 0 then Some chosen else None

let has_perfect_matching t = matching t <> None

let random_yes rng ~n ~extra =
  let perm_b = Array.init n Fun.id in
  let perm_c = Array.init n Fun.id in
  Rng.shuffle rng perm_b;
  Rng.shuffle rng perm_c;
  let planted = Array.init n (fun a -> (a, perm_b.(a), perm_c.(a))) in
  let noise =
    Array.init extra (fun _ -> (Rng.int rng n, Rng.int rng n, Rng.int rng n))
  in
  let all = Array.append planted noise in
  Rng.shuffle rng all;
  create ~n ~triples:all

let random rng ~n ~triples =
  create ~n
    ~triples:(Array.init triples (fun _ -> (Rng.int rng n, Rng.int rng n, Rng.int rng n)))
