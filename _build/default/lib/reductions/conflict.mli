(** The Conflict Scheduling problem of §5 (Theorem 7): assign jobs to
    machines so that no two conflicting jobs share a machine. The paper
    proves that {e deciding feasibility} is NP-hard via 3-dimensional
    matching, so the makespan version admits no polynomial approximation
    within any ratio unless P = NP.

    This module makes the reduction executable: [of_three_dm] builds the
    exact gadget of the paper's proof, and [feasible] decides small
    instances by backtracking, so the test-suite verifies the equivalence
    "matching exists iff the schedule is feasible" in both directions. *)

type t

val create : jobs:int -> machines:int -> conflicts:(int * int) list -> t
(** @raise Invalid_argument on out-of-range job indices or self-conflicts. *)

val jobs : t -> int
val machines : t -> int
val conflicts : t -> (int * int) list

val conflicted : t -> int -> int -> bool
(** Whether two jobs conflict. *)

val feasible : t -> int array option
(** A machine per job such that no conflicting pair shares one, if any
    exists. Backtracking with machine-symmetry breaking; exponential. *)

val of_three_dm : Three_dm.t -> t
(** Theorem 7's gadget. With [m] triples over universes of size [n]:
    [m] pairwise-conflicting {e triple} jobs, [3n] {e element} jobs (an
    element conflicts with every triple job whose triple does not contain
    it), and [m - n] pairwise-conflicting {e dummy} jobs that also
    conflict with every element job. Feasible on [m] machines iff the
    3DM instance has a perfect matching.
    @raise Invalid_argument if [m < n] (the gadget needs a dummy count of
    [m - n >= 0]). *)

val verify_reduction : Three_dm.t -> bool
(** Checks that [feasible (of_three_dm inst)] agrees with
    [Three_dm.has_perfect_matching inst]. *)
