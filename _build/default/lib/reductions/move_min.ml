module Instance = Rebal_core.Instance
module Budget = Rebal_core.Budget
module Exact = Rebal_algo.Exact

let subset_sum numbers ~target =
  if target < 0 then false
  else begin
    let reachable = Array.make (target + 1) false in
    reachable.(0) <- true;
    Array.iter
      (fun a ->
        if a >= 0 then
          for s = target downto a do
            if reachable.(s - a) then reachable.(s) <- true
          done)
      numbers;
    reachable.(target)
  end

let partition_exists numbers =
  let total = Array.fold_left ( + ) 0 numbers in
  total mod 2 = 0 && subset_sum numbers ~target:(total / 2)

let of_partition numbers =
  Array.iter
    (fun a -> if a <= 0 then invalid_arg "Move_min.of_partition: numbers must be positive")
    numbers;
  let total = Array.fold_left ( + ) 0 numbers in
  if total mod 2 <> 0 then invalid_arg "Move_min.of_partition: odd total";
  let n = Array.length numbers in
  let inst = Instance.create ~sizes:numbers ~m:2 (Array.make n 0) in
  (inst, total / 2)

let min_moves_to_target ?node_limit inst ~target =
  let n = Instance.n inst in
  let opt_at k = Exact.opt_makespan_exn ?node_limit inst ~budget:(Budget.Moves k) in
  if opt_at n > target then None
  else begin
    (* OPT(k) is non-increasing in k: binary search the least k that
       reaches the target. *)
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if opt_at mid <= target then search lo mid else search (mid + 1) hi
      end
    in
    Some (search 0 n)
  end

let verify_reduction numbers =
  let inst, target = of_partition numbers in
  let feasible = min_moves_to_target inst ~target <> None in
  feasible = partition_exists numbers
