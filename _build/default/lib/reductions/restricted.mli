(** Restricted assignment — each job may only run on an {e eligible}
    subset of the machines. This single model carries both of the paper's
    remaining §5 hardness results:

    - Theorem 6 (two-valued costs): in the gadget built from a
      3-dimensional matching instance, assigning any job outside its
      eligible set costs [q] instead of [p], and a cost budget of
      [(m + n) * p] forces every job onto an eligible machine. So
      "makespan 2 within budget" is exactly [feasible ~target:2] here.
    - Corollary 1 (Constrained Load Rebalancing): eligibility {e is} the
      constraint, so a polynomial algorithm approximating the makespan
      below 3/2 would decide [feasible ~target:2] vs "at least 3" and
      hence 3DM.

    The gadget (§5, proof of Theorem 6): machines are the [m] triples;
    for each 3DM type [j] (the [A]-element), [t_j - 1] {e dummy} jobs of
    size 2 are eligible exactly on the type-[j] machines; each of the
    [2n] {e element} jobs (the [B] and [C] elements) has size 1 and is
    eligible exactly on the machines whose triple contains it. A schedule
    of makespan 2 exists iff the 3DM instance has a perfect matching. *)

type t

val create : sizes:int array -> machines:int -> eligible:int list array -> t
(** @raise Invalid_argument on empty/out-of-range eligibility lists,
    non-positive sizes, or mismatched lengths. *)

val jobs : t -> int
val machines : t -> int
val size : t -> int -> int
val eligible : t -> int -> int list

val feasible : t -> target:int -> int array option
(** An assignment of every job to an eligible machine with makespan at
    most [target], if one exists. Backtracking; exponential. *)

val min_makespan : t -> int option
(** The smallest feasible makespan ([None] if some job has no eligible
    machine — cannot happen for values of [create]). Linear scan of
    feasible targets from the trivial lower bound. *)

val of_three_dm : Three_dm.t -> t
(** Theorem 6's gadget.
    @raise Invalid_argument if some 3DM element of [B] or [C] appears in
    no triple (the gadget would contain a job with empty eligibility;
    such instances are trivially NO instances). *)

val verify_reduction : Three_dm.t -> bool
(** [feasible ~target:2] on the gadget agrees with the existence of a
    perfect matching. *)
