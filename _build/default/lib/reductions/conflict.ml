type t = {
  jobs : int;
  machines : int;
  conflicts : (int * int) list;
  matrix : bool array array;
}

let create ~jobs ~machines ~conflicts =
  let matrix = Array.make_matrix jobs jobs false in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= jobs || v < 0 || v >= jobs then
        invalid_arg "Conflict.create: job out of range";
      if u = v then invalid_arg "Conflict.create: self-conflict";
      matrix.(u).(v) <- true;
      matrix.(v).(u) <- true)
    conflicts;
  { jobs; machines; conflicts; matrix }

let jobs t = t.jobs
let machines t = t.machines
let conflicts t = t.conflicts
let conflicted t u v = t.matrix.(u).(v)

(* Feasibility is m-coloring of the conflict graph. Jobs are coloured in
   decreasing-degree order (helps pruning) and a job may only open one new
   machine beyond those already in use (machines are interchangeable). *)
let feasible t =
  let order = Array.init t.jobs Fun.id in
  let degree j = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.matrix.(j) in
  Array.sort
    (fun j1 j2 ->
      let d1 = degree j1 and d2 = degree j2 in
      if d1 <> d2 then compare d2 d1 else compare j1 j2)
    order;
  let color = Array.make t.jobs (-1) in
  let rec assign idx used =
    if idx = t.jobs then true
    else begin
      let j = order.(idx) in
      let ok machine =
        let rec clash i =
          if i >= idx then false
          else begin
            let j' = order.(i) in
            (color.(j') = machine && t.matrix.(j).(j')) || clash (i + 1)
          end
        in
        not (clash 0)
      in
      let limit = min (t.machines - 1) used in
      let rec try_machine machine =
        if machine > limit then false
        else if ok machine then begin
          color.(j) <- machine;
          let used' = if machine = used then used + 1 else used in
          if assign (idx + 1) used' then true
          else begin
            color.(j) <- -1;
            try_machine (machine + 1)
          end
        end
        else try_machine (machine + 1)
      in
      try_machine 0
    end
  in
  if t.jobs = 0 then Some [||]
  else if t.machines = 0 then None
  else if assign 0 0 then Some (Array.copy color)
  else None

let of_three_dm dm =
  let n = Three_dm.n dm in
  let m = Three_dm.size dm in
  if m < n then invalid_arg "Conflict.of_three_dm: need at least n triples";
  (* Job layout: 0..m-1 triple jobs; then element jobs a_0..a_{n-1},
     b_0.., c_0..; then m-n dummy jobs. *)
  let elem_a u = m + u in
  let elem_b u = m + n + u in
  let elem_c u = m + (2 * n) + u in
  let dummy d = m + (3 * n) + d in
  let jobs = m + (3 * n) + (m - n) in
  let conflicts = ref [] in
  let add u v = conflicts := (u, v) :: !conflicts in
  for i = 0 to m - 1 do
    for i' = i + 1 to m - 1 do
      add i i' (* triple jobs pairwise conflict *)
    done
  done;
  for i = 0 to m - 1 do
    let a, b, c = Three_dm.triple dm i in
    for u = 0 to n - 1 do
      if u <> a then add i (elem_a u);
      if u <> b then add i (elem_b u);
      if u <> c then add i (elem_c u)
    done
  done;
  for d = 0 to m - n - 1 do
    for d' = d + 1 to m - n - 1 do
      add (dummy d) (dummy d')
    done;
    for u = 0 to n - 1 do
      add (dummy d) (elem_a u);
      add (dummy d) (elem_b u);
      add (dummy d) (elem_c u)
    done
  done;
  create ~jobs ~machines:m ~conflicts:!conflicts

let verify_reduction dm =
  let feasible_schedule = feasible (of_three_dm dm) <> None in
  feasible_schedule = Three_dm.has_perfect_matching dm
