(** Aligned plain-text tables and CSV emission for the experiment
    harness. Every benchmark table in EXPERIMENTS.md is printed through
    this module so the formatting is uniform. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_int_row : t -> string -> int list -> unit
(** Convenience: a label cell followed by integer cells. *)

val render : t -> string
(** The table as an aligned text block, title first. *)

val print : t -> unit
(** [render] to stdout, followed by a blank line. *)

val to_csv : t -> string
(** Comma-separated values (header + rows), commas in cells replaced by
    semicolons. *)

val save_csv : t -> path:string -> unit
