let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_median ?(repeats = 5) f =
  let repeats = max 1 repeats in
  let times = Array.make repeats 0.0 in
  let result = ref None in
  for i = 0 to repeats - 1 do
    let r, dt = time f in
    result := Some r;
    times.(i) <- dt
  done;
  Array.sort compare times;
  (Option.get !result, times.(repeats / 2))
