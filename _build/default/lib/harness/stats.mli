(** Small numeric summaries used by the experiment tables. *)

val mean : float array -> float
val maximum : float array -> float
val minimum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,1]; nearest-rank on a sorted copy.
    0 on an empty array. *)

val stddev : float array -> float

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val summarize : float array -> summary
val ratio : int -> int -> float
(** [ratio a b = a /. b] as floats, 1.0 when [b = 0]. *)

val pp_summary : Format.formatter -> summary -> unit
