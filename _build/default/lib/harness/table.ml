type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- row :: t.rows

let add_int_row t label ints = add_row t (label :: List.map string_of_int ints)

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let pad i cell =
    let extra = widths.(i) - String.length cell in
    if i = 0 then cell ^ String.make extra ' ' else String.make extra ' ' ^ cell
  in
  let emit_row row =
    Buffer.add_string buf (String.concat "  " (List.mapi pad row));
    Buffer.add_char buf '\n'
  in
  emit_row t.columns;
  Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let sanitize cell = String.map (fun c -> if c = ',' then ';' else c) cell

let to_csv t =
  let line row = String.concat "," (List.map sanitize row) in
  let body = String.concat "\n" (line t.columns :: List.map line (List.rev t.rows)) in
  body ^ "\n"

let save_csv t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))
