lib/harness/table.ml: Array Buffer Fun List String
