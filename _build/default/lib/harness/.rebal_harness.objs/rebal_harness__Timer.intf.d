lib/harness/timer.mli:
