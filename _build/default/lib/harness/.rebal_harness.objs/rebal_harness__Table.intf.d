lib/harness/table.mli:
