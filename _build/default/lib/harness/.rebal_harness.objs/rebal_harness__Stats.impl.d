lib/harness/stats.ml: Array Format
