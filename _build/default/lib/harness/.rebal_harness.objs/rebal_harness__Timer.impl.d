lib/harness/timer.ml: Array Option Unix
