(** Wall-clock measurement for the running-time experiments (E3). For
    statistically careful micro-benchmarks the bench executable uses
    Bechamel; this is the lightweight utility for one-shot timings inside
    experiment tables. *)

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed seconds. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** Run [repeats] times (default 5) and report the median elapsed
    seconds of the runs together with the last result. *)
