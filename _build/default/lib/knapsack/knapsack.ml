type solution = {
  value : int;
  weight : int;
  chosen : bool array;
}

let validate ~weights ~values ~capacity =
  let n = Array.length weights in
  if Array.length values <> n then
    invalid_arg "Knapsack: weights and values lengths differ";
  if capacity < 0 then invalid_arg "Knapsack: negative capacity";
  Array.iter (fun w -> if w < 0 then invalid_arg "Knapsack: negative weight") weights;
  Array.iter (fun v -> if v < 0 then invalid_arg "Knapsack: negative value") values;
  n

let solution_of_mask ~weights ~values chosen =
  let value = ref 0 and weight = ref 0 in
  Array.iteri
    (fun i keep ->
      if keep then begin
        value := !value + values.(i);
        weight := !weight + weights.(i)
      end)
    chosen;
  { value = !value; weight = !weight; chosen }

let max_value_exact ~weights ~values ~capacity =
  let n = validate ~weights ~values ~capacity in
  (* dp.(w) = best value with total weight <= w, rebuilt item by item;
     take.(i).(w) records whether item i is taken at weight budget w. *)
  let dp = Array.make (capacity + 1) 0 in
  let take = Array.make_matrix n (capacity + 1) false in
  for i = 0 to n - 1 do
    let wi = weights.(i) and vi = values.(i) in
    if wi <= capacity then
      for w = capacity downto wi do
        let candidate = dp.(w - wi) + vi in
        if candidate > dp.(w) then begin
          dp.(w) <- candidate;
          take.(i).(w) <- true
        end
      done
  done;
  let chosen = Array.make n false in
  let w = ref capacity in
  for i = n - 1 downto 0 do
    if take.(i).(!w) then begin
      chosen.(i) <- true;
      w := !w - weights.(i)
    end
  done;
  solution_of_mask ~weights ~values chosen

let brute_force ~weights ~values ~capacity =
  let n = validate ~weights ~values ~capacity in
  if n > 25 then invalid_arg "Knapsack.brute_force: too many items";
  let best_value = ref (-1) in
  let best_mask = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let value = ref 0 and weight = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        value := !value + values.(i);
        weight := !weight + weights.(i)
      end
    done;
    if !weight <= capacity && !value > !best_value then begin
      best_value := !value;
      best_mask := mask
    end
  done;
  let chosen = Array.init n (fun i -> !best_mask land (1 lsl i) <> 0) in
  solution_of_mask ~weights ~values chosen

let max_value_fptas ~weights ~values ~capacity ~epsilon =
  let n = validate ~weights ~values ~capacity in
  if epsilon <= 0.0 then invalid_arg "Knapsack.max_value_fptas: epsilon <= 0";
  let vmax = Array.fold_left max 0 values in
  if n = 0 || vmax = 0 then
    (* Value is identically 0: keep everything that fits greedily. *)
    solution_of_mask ~weights ~values
      (let room = ref capacity in
       Array.map
         (fun w ->
           if w <= !room then begin
             room := !room - w;
             true
           end
           else false)
         weights)
  else begin
    (* Scale values down by mu, then DP on "min weight to reach scaled
       value v". Scaled optimum <= n * floor(vmax/mu) <= n^2/epsilon. *)
    let mu = max 1 (int_of_float (epsilon *. float_of_int vmax /. float_of_int n)) in
    let scaled = Array.map (fun v -> v / mu) values in
    let vbound = Array.fold_left ( + ) 0 scaled in
    let inf = max_int / 2 in
    let dp = Array.make (vbound + 1) inf in
    let take = Array.make_matrix n (vbound + 1) false in
    dp.(0) <- 0;
    for i = 0 to n - 1 do
      let wi = weights.(i) and vi = scaled.(i) in
      for v = vbound downto vi do
        if dp.(v - vi) + wi < dp.(v) then begin
          dp.(v) <- dp.(v - vi) + wi;
          take.(i).(v) <- true
        end
      done
    done;
    let best_v = ref 0 in
    for v = 0 to vbound do
      if dp.(v) <= capacity then best_v := v
    done;
    let chosen = Array.make n false in
    let v = ref !best_v in
    for i = n - 1 downto 0 do
      if take.(i).(!v) then begin
        chosen.(i) <- true;
        v := !v - scaled.(i)
      end
    done;
    solution_of_mask ~weights ~values chosen
  end

let greedy_density ~weights ~values ~capacity ~slack =
  let n = validate ~weights ~values ~capacity in
  if slack < 0 then invalid_arg "Knapsack.greedy_density: negative slack";
  let chosen = Array.make n true in
  let total = Array.fold_left ( + ) 0 weights in
  if total <= capacity + slack then solution_of_mask ~weights ~values chosen
  else begin
    let order = Array.init n (fun i -> i) in
    (* Increasing value density; zero-weight items have infinite density
       and are never discarded before positive-weight ones. Ties by index
       keep the result deterministic. *)
    let density i =
      if weights.(i) = 0 then infinity
      else float_of_int values.(i) /. float_of_int weights.(i)
    in
    Array.sort
      (fun i j ->
        let di = density i and dj = density j in
        if di <> dj then compare di dj else compare i j)
      order;
    let kept = ref total in
    let idx = ref 0 in
    while !kept > capacity + slack && !idx < n do
      let i = order.(!idx) in
      if weights.(i) > 0 then begin
        chosen.(i) <- false;
        kept := !kept - weights.(i)
      end;
      incr idx
    done;
    solution_of_mask ~weights ~values chosen
  end

let max_value_branch_and_bound ~weights ~values ~capacity =
  let n = validate ~weights ~values ~capacity in
  (* Decreasing value density; zero-weight positive-value items are free
     and taken up front by density infinity. *)
  let order = Array.init n (fun i -> i) in
  let density i =
    if weights.(i) = 0 then infinity
    else float_of_int values.(i) /. float_of_int weights.(i)
  in
  Array.sort
    (fun i j ->
      let di = density i and dj = density j in
      if di <> dj then compare dj di else compare i j)
    order;
  (* Dantzig bound: fill the remaining capacity fractionally from
     position [idx] onwards. Zero-weight items always contribute fully
     (they sort first, so none follow the first partial item). *)
  let rec fractional idx room acc =
    if idx >= n then acc
    else begin
      let i = order.(idx) in
      if weights.(i) = 0 then fractional (idx + 1) room (acc +. float_of_int values.(i))
      else if weights.(i) <= room then
        fractional (idx + 1) (room - weights.(i)) (acc +. float_of_int values.(i))
      else acc +. (float_of_int values.(i) *. float_of_int room /. float_of_int weights.(i))
    end
  in
  let best = ref (-1) in
  let best_mask = Array.make n false in
  let cur_mask = Array.make n false in
  let rec dfs idx room value =
    if value > !best then begin
      best := value;
      Array.blit cur_mask 0 best_mask 0 n
    end;
    if idx < n && fractional idx room (float_of_int value) > float_of_int !best then begin
      let i = order.(idx) in
      if weights.(i) <= room then begin
        cur_mask.(i) <- true;
        dfs (idx + 1) (room - weights.(i)) (value + values.(i));
        cur_mask.(i) <- false
      end;
      dfs (idx + 1) room value
    end
  in
  dfs 0 capacity 0;
  solution_of_mask ~weights ~values (Array.copy best_mask)
