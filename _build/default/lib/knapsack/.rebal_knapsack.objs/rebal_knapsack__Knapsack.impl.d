lib/knapsack/knapsack.ml: Array
