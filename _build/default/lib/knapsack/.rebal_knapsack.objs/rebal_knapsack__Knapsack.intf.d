lib/knapsack/knapsack.mli:
