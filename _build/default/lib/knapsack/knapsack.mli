(** 0/1 knapsack solvers.

    §3.2 of the paper reduces the arbitrary-cost versions of the
    per-processor quantities [a_i] and [b_i] to knapsack: "find the set of
    small jobs to remain in the processor such that the total size is no
    more than [T/2] and the total relocation cost of these jobs is as high
    as possible" — i.e. maximize the {e kept} cost subject to a size cap,
    so the {e removed} cost is minimized. The paper notes the subroutine
    can be the exact DP when sizes are polynomially bounded, or an
    approximation scheme otherwise; both are provided, plus the greedy
    density heuristic with capacity slack that the paper's §3.2/§4
    configuration procedure uses for small jobs.

    Conventions: [weights.(i) >= 0], [values.(i) >= 0], [capacity >= 0].
    All solvers return the chosen ("kept") subset as a boolean mask. *)

type solution = {
  value : int;  (** total value of the chosen subset *)
  weight : int;  (** total weight of the chosen subset *)
  chosen : bool array;
}

val max_value_exact : weights:int array -> values:int array -> capacity:int -> solution
(** Exact DP over weights, [O(n * capacity)] time and space.
    @raise Invalid_argument on negative inputs or mismatched lengths. *)

val max_value_fptas :
  weights:int array -> values:int array -> capacity:int -> epsilon:float -> solution
(** Value-scaling FPTAS: the returned value is at least
    [(1 - epsilon) * optimum], and the weight respects [capacity]
    exactly. [O(n^2 * (n / epsilon))] worst case, independent of the
    magnitudes of the weights.
    @raise Invalid_argument if [epsilon <= 0]. *)

val greedy_density :
  weights:int array -> values:int array -> capacity:int -> slack:int -> solution
(** Start from keeping every item and discard items in increasing
    value-density order (value per unit weight, cheapest-to-lose first)
    until the kept weight is at most [capacity + slack]. This is the
    paper's "remove small jobs greedily by cost-to-size ratio until the
    total size is within the cap plus one small-job slack" step (§3.2/§4).

    Guarantee (the paper's small-jobs lemma): whenever
    [slack >= max_i weights.(i)], the kept value is at least the exact
    optimum value for a kept weight of [capacity] — the slack buys back
    integrality. The kept weight never exceeds [capacity + slack].
    @raise Invalid_argument if [slack < 0]. *)

val max_value_branch_and_bound :
  weights:int array -> values:int array -> capacity:int -> solution
(** Exact depth-first branch-and-bound in decreasing density order with
    the Dantzig (fractional-relaxation) upper bound for pruning. Unlike
    the DP its cost does not grow with [capacity], which is what the
    §3.2 algorithm needs once processor loads are large; worst case is
    exponential in the item count but instances arising from a single
    processor's job list prune very well. *)

val brute_force : weights:int array -> values:int array -> capacity:int -> solution
(** Exhaustive reference used by the test-suite; exponential, n <= 20. *)
