type t =
  | No_rebalance
  | Greedy of int
  | M_partition of int
  | Local_search of int
  | Full_lpt
  | Triggered of { k : int; threshold : float }

let name = function
  | No_rebalance -> "none"
  | Greedy k -> Printf.sprintf "greedy(k=%d)" k
  | M_partition k -> Printf.sprintf "m-partition(k=%d)" k
  | Local_search k -> Printf.sprintf "local-search(k=%d)" k
  | Full_lpt -> "full-lpt"
  | Triggered { k; threshold } -> Printf.sprintf "triggered(k=%d,t=%.2f)" k threshold

let budget = function
  | No_rebalance -> Some 0
  | Greedy k | M_partition k | Local_search k | Triggered { k; _ } -> Some k
  | Full_lpt -> None

let apply policy inst =
  match policy with
  | No_rebalance -> Rebal_core.Assignment.identity inst
  | Greedy k -> Rebal_algo.Greedy.solve inst ~k
  | M_partition k -> Rebal_algo.M_partition.solve inst ~k
  | Local_search k -> Rebal_algo.Local_search.solve inst ~k
  | Full_lpt -> Rebal_algo.Lpt.solve inst
  | Triggered { k; threshold } ->
    let m = Rebal_core.Instance.m inst in
    let total = Rebal_core.Instance.total_size inst in
    let average = float_of_int total /. float_of_int m in
    let makespan = float_of_int (Rebal_core.Instance.initial_makespan inst) in
    if average > 0.0 && makespan /. average > threshold then
      Rebal_algo.M_partition.solve inst ~k
    else Rebal_core.Assignment.identity inst
