module Rng = Rebal_workloads.Rng

type t = {
  sites : int;
  horizon : int;
  matrix : int array array; (* matrix.(time).(site) *)
}

let create rng ~sites ~horizon ?(zipf_alpha = 1.0) ?(scale = 1000) ?(period = 24)
    ?(diurnal_depth = 0.5) ?(noise = 0.1) ?(flash_prob = 0.002) ?(flash_mult = 8)
    ?(flash_len = 6) () =
  if sites <= 0 || horizon <= 0 || scale <= 0 then
    invalid_arg "Traffic.create: sites, horizon and scale must be positive";
  (* Zipf base popularity by site rank (site ids are shuffled ranks so the
     hot sites are not clustered at low indices). *)
  let ranks = Array.init sites Fun.id in
  Rng.shuffle rng ranks;
  let base =
    Array.init sites (fun s ->
        let rank = ranks.(s) + 1 in
        max 1.0 (float_of_int scale /. (float_of_int rank ** zipf_alpha)))
  in
  let phase = Array.init sites (fun _ -> Rng.float rng (float_of_int period)) in
  (* Flash-crowd end time per site, extended as events fire. *)
  let flash_until = Array.make sites (-1) in
  let matrix =
    Array.init horizon (fun time ->
        Array.init sites (fun s ->
            if Rng.float rng 1.0 < flash_prob then
              flash_until.(s) <- max flash_until.(s) (time + flash_len);
            let diurnal =
              1.0
              +. diurnal_depth
                 *. sin
                      (2.0 *. Float.pi
                      *. ((float_of_int time +. phase.(s)) /. float_of_int period))
            in
            let jitter = 1.0 +. ((Rng.float rng 2.0 -. 1.0) *. noise) in
            let flash = if time <= flash_until.(s) then float_of_int flash_mult else 1.0 in
            max 1 (int_of_float (base.(s) *. diurnal *. jitter *. flash))))
  in
  { sites; horizon; matrix }

let sites t = t.sites
let horizon t = t.horizon

let rate t ~site ~time =
  if site < 0 || site >= t.sites || time < 0 || time >= t.horizon then
    invalid_arg "Traffic.rate: out of range";
  t.matrix.(time).(site)

let rates_at t ~time =
  if time < 0 || time >= t.horizon then invalid_arg "Traffic.rates_at: out of range";
  Array.copy t.matrix.(time)

let total_at t ~time = Array.fold_left ( + ) 0 t.matrix.(time)
