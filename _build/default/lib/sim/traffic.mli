(** Synthetic website traffic for the web-server case study the paper's
    introduction motivates (and Linder–Shah's unpublished experiments
    ran on real servers — see DESIGN.md §4 for the substitution note).

    Each site gets a Zipf-distributed base request rate, a diurnal
    modulation with a site-specific phase (different audiences wake at
    different times), multiplicative noise, and occasional {e flash
    crowds} that multiply a site's rate for a stretch of steps. All
    randomness is drawn at [create] time from the supplied generator, so
    a traffic trace is an immutable, replayable object. *)

type t

val create :
  Rebal_workloads.Rng.t ->
  sites:int ->
  horizon:int ->
  ?zipf_alpha:float ->
  ?scale:int ->
  ?period:int ->
  ?diurnal_depth:float ->
  ?noise:float ->
  ?flash_prob:float ->
  ?flash_mult:int ->
  ?flash_len:int ->
  unit ->
  t
(** [sites] websites over [horizon] time steps. [scale] (default 1000) is
    the base rate of the most popular site; [zipf_alpha] (default 1.0)
    the popularity skew; [period] (default 24) the diurnal cycle length;
    [diurnal_depth] (default 0.5) the peak-to-mean swing; [noise]
    (default 0.1) multiplicative jitter; each site enters a flash crowd
    with probability [flash_prob] (default 0.002) per step, multiplying
    its rate by [flash_mult] (default 8) for [flash_len] (default 6)
    steps.
    @raise Invalid_argument on non-positive [sites]/[horizon]/[scale]. *)

val sites : t -> int
val horizon : t -> int

val rate : t -> site:int -> time:int -> int
(** Request rate (always [>= 1]) of a site at a time step. [O(1)]. *)

val rates_at : t -> time:int -> int array
(** All site rates at one step (fresh array). *)

val total_at : t -> time:int -> int
