module Rng = Rebal_workloads.Rng
module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment

type lifetime =
  | Exponential_work of float
  | Pareto_work of { alpha : float; xmin : float }

type config = {
  cpus : int;
  arrival_rate : float;
  lifetime : lifetime;
  horizon : int;
  period : int;
  policy : Policy.t;
}

type result = {
  completed : int;
  mean_slowdown : float;
  p95_slowdown : float;
  mean_backlog_imbalance : float;
  migrations : int;
  residual : int;
}

(* One service unit = [scale] micro-units of work; integer arithmetic
   keeps runs bit-reproducible. *)
let scale = 1000

type proc = {
  mutable remaining : int; (* micro-units *)
  work : int;
  arrival : int;
  mutable cpu : int;
}

let validate cfg =
  if cfg.cpus <= 0 then invalid_arg "Process_sim: cpus must be positive";
  if cfg.horizon <= 0 then invalid_arg "Process_sim: horizon must be positive";
  if cfg.period <= 0 then invalid_arg "Process_sim: period must be positive";
  if cfg.arrival_rate <= 0.0 then invalid_arg "Process_sim: arrival rate must be positive";
  match cfg.lifetime with
  | Exponential_work mean ->
    if mean <= 0.0 then invalid_arg "Process_sim: non-positive mean work"
  | Pareto_work { alpha; xmin } ->
    if alpha <= 0.0 || xmin <= 0.0 then invalid_arg "Process_sim: bad Pareto parameters"

let poisson rng lambda =
  (* Knuth's method; fine for the small rates used here. *)
  let l = exp (-.lambda) in
  let rec draw k p =
    let p = p *. Rng.float rng 1.0 in
    if p > l then draw (k + 1) p else k
  in
  draw 0 1.0

let sample_work rng = function
  | Exponential_work mean ->
    max 1 (int_of_float (Rng.exponential rng ~mean *. float_of_int scale))
  | Pareto_work { alpha; xmin } ->
    let u = ref (Rng.float rng 1.0) in
    while !u <= 0.0 do
      u := Rng.float rng 1.0
    done;
    let w = xmin /. (!u ** (1.0 /. alpha)) in
    (* Cap at 10^4 service units so one sample cannot dwarf the horizon. *)
    let capped = Float.min w 10_000.0 in
    max 1 (int_of_float (capped *. float_of_int scale))

let run rng cfg =
  validate cfg;
  let alive = ref [] in
  let slowdowns = ref [] in
  let completed = ref 0 in
  let migrations = ref 0 in
  let imbalance_sum = ref 0.0 in
  let imbalance_samples = ref 0 in
  let backlog = Array.make cfg.cpus 0 in
  let count = Array.make cfg.cpus 0 in
  for t = 0 to cfg.horizon - 1 do
    (* Arrivals land on a uniformly random CPU. *)
    let arrivals = poisson rng cfg.arrival_rate in
    for _ = 1 to arrivals do
      let work = sample_work rng cfg.lifetime in
      alive := { remaining = work; work; arrival = t; cpu = Rng.int rng cfg.cpus } :: !alive
    done;
    (* Rebalancing round: remaining work is the job size. *)
    if t > 0 && t mod cfg.period = 0 && !alive <> [] then begin
      let procs = Array.of_list !alive in
      let sizes = Array.map (fun p -> max 1 p.remaining) procs in
      let initial = Array.map (fun p -> p.cpu) procs in
      let inst = Instance.create ~sizes ~m:cfg.cpus initial in
      let next = Policy.apply cfg.policy inst in
      Array.iteri
        (fun i p ->
          let dst = Assignment.processor next i in
          if dst <> p.cpu then begin
            incr migrations;
            p.cpu <- dst
          end)
        procs
    end;
    (* Processor sharing: each CPU spreads [scale] micro-units across its
       residents. *)
    Array.fill count 0 cfg.cpus 0;
    Array.fill backlog 0 cfg.cpus 0;
    List.iter
      (fun p ->
        count.(p.cpu) <- count.(p.cpu) + 1;
        backlog.(p.cpu) <- backlog.(p.cpu) + p.remaining)
      !alive;
    let total_backlog = Array.fold_left ( + ) 0 backlog in
    if total_backlog > 0 then begin
      let mean = float_of_int total_backlog /. float_of_int cfg.cpus in
      let mx = float_of_int (Array.fold_left max 0 backlog) in
      imbalance_sum := !imbalance_sum +. (mx /. mean);
      incr imbalance_samples
    end;
    let survivors = ref [] in
    List.iter
      (fun p ->
        let share = scale / max 1 count.(p.cpu) in
        p.remaining <- p.remaining - share;
        if p.remaining <= 0 then begin
          incr completed;
          let sojourn = float_of_int (t + 1 - p.arrival) in
          let service = float_of_int p.work /. float_of_int scale in
          slowdowns := (sojourn /. Float.max service 1e-9) :: !slowdowns
        end
        else survivors := p :: !survivors)
      !alive;
    alive := !survivors
  done;
  let slow = Array.of_list !slowdowns in
  Array.sort compare slow;
  let n = Array.length slow in
  let mean_slowdown =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 slow /. float_of_int n
  in
  let p95_slowdown = if n = 0 then 0.0 else slow.(min (n - 1) (95 * n / 100)) in
  {
    completed = !completed;
    mean_slowdown;
    p95_slowdown;
    mean_backlog_imbalance =
      (if !imbalance_samples = 0 then 1.0
       else !imbalance_sum /. float_of_int !imbalance_samples);
    migrations = !migrations;
    residual = List.length !alive;
  }
