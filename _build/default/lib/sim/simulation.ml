module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment

type step = {
  time : int;
  makespan : int;
  average : float;
  imbalance : float;
  moves : int;
}

type result = {
  steps : step array;
  total_moves : int;
  peak_makespan : int;
  mean_imbalance : float;
  p95_imbalance : float;
  final_placement : int array;
}

type config = {
  servers : int;
  period : int;
  policy : Policy.t;
}

let percentile values p =
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let idx = int_of_float (p *. float_of_int (n - 1)) in
    sorted.(idx)
  end

let run traffic { servers; period; policy } =
  if servers <= 0 then invalid_arg "Simulation.run: servers must be positive";
  if period <= 0 then invalid_arg "Simulation.run: period must be positive";
  let sites = Traffic.sites traffic in
  let horizon = Traffic.horizon traffic in
  (* Initial placement: LPT on the rates at time 0. *)
  let placement =
    let rates0 = Traffic.rates_at traffic ~time:0 in
    let inst0 = Instance.create ~sizes:rates0 ~m:servers (Array.make sites 0) in
    Assignment.to_array (Rebal_algo.Lpt.solve inst0)
  in
  let steps = Array.make horizon { time = 0; makespan = 0; average = 0.0; imbalance = 1.0; moves = 0 } in
  let total_moves = ref 0 in
  for time = 0 to horizon - 1 do
    let rates = Traffic.rates_at traffic ~time in
    let moves =
      if time > 0 && time mod period = 0 then begin
        let inst = Instance.create ~sizes:rates ~m:servers placement in
        let next = Policy.apply policy inst in
        let moved = Assignment.moves inst next in
        Array.blit (Assignment.to_array next) 0 placement 0 sites;
        moved
      end
      else 0
    in
    total_moves := !total_moves + moves;
    let load = Array.make servers 0 in
    Array.iteri (fun s p -> load.(p) <- load.(p) + rates.(s)) placement;
    let makespan = Array.fold_left max 0 load in
    let total = Array.fold_left ( + ) 0 rates in
    let average = float_of_int total /. float_of_int servers in
    let imbalance = if average > 0.0 then float_of_int makespan /. average else 1.0 in
    steps.(time) <- { time; makespan; average; imbalance; moves }
  done;
  let imbalances = Array.map (fun s -> s.imbalance) steps in
  let mean_imbalance =
    Array.fold_left ( +. ) 0.0 imbalances /. float_of_int horizon
  in
  {
    steps;
    total_moves = !total_moves;
    peak_makespan = Array.fold_left (fun acc s -> max acc s.makespan) 0 steps;
    mean_imbalance;
    p95_imbalance = percentile imbalances 0.95;
    final_placement = placement;
  }
