(** The web-server cluster simulation: a fixed set of sites whose request
    rates follow a [Traffic.t] trace, served by [servers] machines.
    Every [period] steps the configured policy may migrate sites, paying
    one move per migrated site; between rounds the placement is frozen
    while the rates keep drifting.

    The per-step metrics captured are the ones the rebalancing problem is
    about: the makespan (hottest server), the load average (the ideal),
    their ratio (imbalance), and the cumulative number of migrations. *)

type step = {
  time : int;
  makespan : int;
  average : float;
  imbalance : float;  (** makespan / average *)
  moves : int;  (** migrations performed at this step (0 between rounds) *)
}

type result = {
  steps : step array;
  total_moves : int;
  peak_makespan : int;
  mean_imbalance : float;
  p95_imbalance : float;
  final_placement : int array;
}

type config = {
  servers : int;
  period : int;  (** steps between rebalancing rounds; must be [>= 1] *)
  policy : Policy.t;
}

val run : Traffic.t -> config -> result
(** Simulate the whole trace horizon. The initial placement is an LPT
    balance of the rates at time 0 (the cluster starts well-balanced and
    then drifts — the situation the paper's introduction describes).
    @raise Invalid_argument on non-positive [servers] or [period]. *)
