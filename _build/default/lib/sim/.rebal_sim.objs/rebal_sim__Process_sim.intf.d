lib/sim/process_sim.mli: Policy Rebal_workloads
