lib/sim/traffic.mli: Rebal_workloads
