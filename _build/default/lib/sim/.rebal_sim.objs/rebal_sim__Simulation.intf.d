lib/sim/simulation.mli: Policy Traffic
