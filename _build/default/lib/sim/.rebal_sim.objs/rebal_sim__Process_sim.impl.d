lib/sim/process_sim.ml: Array Float List Policy Rebal_core Rebal_workloads
