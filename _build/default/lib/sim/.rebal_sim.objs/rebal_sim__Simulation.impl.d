lib/sim/simulation.ml: Array Policy Rebal_algo Rebal_core Traffic
