lib/sim/policy.mli: Rebal_core
