lib/sim/traffic.ml: Array Float Fun Rebal_workloads
