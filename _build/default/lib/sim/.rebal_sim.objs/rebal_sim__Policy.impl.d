lib/sim/policy.ml: Printf Rebal_algo Rebal_core
