let average inst =
  let m = Instance.m inst in
  let total = Instance.total_size inst in
  (total + m - 1) / m

let max_size = Instance.max_size

(* Lemma 1: repeatedly deleting the largest job from the most-loaded
   processor is the optimal way to delete k jobs to minimize the maximum
   load; the resulting maximum load G1 is a lower bound on OPT. The
   most-loaded processor is tracked with a max-heap (priorities negated)
   and each processor consumes its descending-sorted jobs in order. *)
let g1 inst ~k =
  if k < 0 then invalid_arg "Lower_bounds.g1: negative k";
  let m = Instance.m inst in
  let views = Instance.sorted_views inst in
  let cursor = Array.make m 0 in
  let load = Array.make m 0 in
  let heap = Rebal_ds.Indexed_heap.create m in
  for p = 0 to m - 1 do
    load.(p) <- Rebal_ds.Sorted_jobs.total views.(p);
    Rebal_ds.Indexed_heap.set heap p (-load.(p))
  done;
  let steps = min k (Instance.n inst) in
  (try
     for _ = 1 to steps do
       let p, neg = Rebal_ds.Indexed_heap.min_exn heap in
       if neg = 0 then raise Exit (* every processor is already empty *);
       let v = views.(p) in
       if cursor.(p) >= Rebal_ds.Sorted_jobs.length v then raise Exit
       else begin
         load.(p) <- load.(p) - Rebal_ds.Sorted_jobs.size v cursor.(p);
         cursor.(p) <- cursor.(p) + 1;
         Rebal_ds.Indexed_heap.set heap p (-load.(p))
       end
     done
   with Exit -> ());
  Array.fold_left max 0 load

let best inst ~budget =
  let base = max (average inst) (max_size inst) in
  match budget with
  | Budget.Moves k -> max base (g1 inst ~k)
  | Budget.Cost _ -> base
