(** Relocation budgets. The paper states the problem in two forms: move at
    most [k] jobs (unit-cost version), or keep the total relocation cost of
    the moved jobs within [b] (arbitrary-cost version). *)

type t =
  | Moves of int  (** at most this many jobs may change processor *)
  | Cost of int  (** total relocation cost of moved jobs at most this *)

val pp : Format.formatter -> t -> unit

val spent : Instance.t -> Assignment.t -> t -> int
(** What the assignment consumed of this budget kind: its move count for
    [Moves _], its relocation cost for [Cost _]. *)

val within : Instance.t -> Assignment.t -> t -> bool
(** Whether the assignment respects the budget. *)

val limit : t -> int
(** The numeric bound carried by the budget. *)

val unlimited : Instance.t -> t
(** A [Moves] budget large enough to never bind ([k = n]). *)
