(** Lower bounds on the optimal rebalanced makespan. Every algorithm's
    empirical approximation ratio is measured against [best], so each bound
    here must be provably [<= OPT]:

    - [average]: ⌈total size / m⌉ — some processor carries at least the
      average load in any assignment.
    - [max_size]: every job sits on some processor in the optimal
      assignment, so [OPT >= max_j s_j].
    - [g1]: the paper's Lemma 1. Removing, [k] times, the largest job from
      the currently most-loaded processor minimizes the makespan over all
      ways of deleting [k] jobs {e without reassigning them}; since the
      optimum must additionally place the removed jobs somewhere,
      [G1 <= OPT]. Only valid for the [Moves k] budget. *)

val average : Instance.t -> int
val max_size : Instance.t -> int

val g1 : Instance.t -> k:int -> int
(** Lemma 1 bound. [O(n log n)].
    @raise Invalid_argument if [k < 0]. *)

val best : Instance.t -> budget:Budget.t -> int
(** The largest applicable bound: [max(average, max_size)] always, and
    additionally [g1] for a [Moves] budget. *)
