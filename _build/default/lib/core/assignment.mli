(** A (complete) assignment of jobs to processors — the output of every
    rebalancing algorithm — together with the derived quantities the
    problem is stated in terms of: loads, makespan, number of moved jobs
    and total relocation cost relative to an instance's initial
    assignment. *)

type t

val of_array : m:int -> int array -> t
(** Take ownership-by-copy of a job-to-processor map.
    @raise Invalid_argument if any entry is outside [0 .. m-1]. *)

val identity : Instance.t -> t
(** The instance's initial assignment (zero moves). *)

val to_array : t -> int array
(** Fresh copy of the job-to-processor map. *)

val processor : t -> int -> int
(** Processor assigned to a job. *)

val n : t -> int
val m : t -> int

val loads : Instance.t -> t -> int array
(** Per-processor load under this assignment.
    @raise Invalid_argument if the assignment doesn't match the instance
    (different [n] or [m]). *)

val makespan : Instance.t -> t -> int
(** Maximum processor load. *)

val moved_jobs : Instance.t -> t -> int list
(** Jobs assigned to a different processor than initially, ascending. *)

val moves : Instance.t -> t -> int
(** Number of moved jobs. *)

val relocation_cost : Instance.t -> t -> int
(** Total relocation cost of the moved jobs. *)

val equal : t -> t -> bool
