type t =
  | Moves of int
  | Cost of int

let pp ppf = function
  | Moves k -> Format.fprintf ppf "moves<=%d" k
  | Cost b -> Format.fprintf ppf "cost<=%d" b

let spent inst assignment = function
  | Moves _ -> Assignment.moves inst assignment
  | Cost _ -> Assignment.relocation_cost inst assignment

let within inst assignment budget =
  let bound =
    match budget with
    | Moves k -> k
    | Cost b -> b
  in
  spent inst assignment budget <= bound

let limit = function
  | Moves k -> k
  | Cost b -> b

let unlimited inst = Moves (Instance.n inst)
