type t = {
  sizes : int array;
  costs : int array;
  m : int;
  initial : int array;
}

let create ?costs ~sizes ~m initial =
  let n = Array.length sizes in
  let costs =
    match costs with
    | Some c -> c
    | None -> Array.make n 1
  in
  if m < 1 then invalid_arg "Instance.create: need at least one processor";
  if Array.length initial <> n then
    invalid_arg "Instance.create: sizes and initial lengths differ";
  if Array.length costs <> n then
    invalid_arg "Instance.create: sizes and costs lengths differ";
  Array.iter
    (fun s -> if s <= 0 then invalid_arg "Instance.create: job size must be positive")
    sizes;
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Instance.create: negative relocation cost")
    costs;
  Array.iter
    (fun p ->
      if p < 0 || p >= m then
        invalid_arg "Instance.create: initial processor out of range")
    initial;
  { sizes = Array.copy sizes; costs = Array.copy costs; m; initial = Array.copy initial }

let n t = Array.length t.sizes
let m t = t.m
let size t j = t.sizes.(j)
let cost t j = t.costs.(j)
let initial t j = t.initial.(j)
let sizes t = Array.copy t.sizes
let costs t = Array.copy t.costs
let initial_assignment t = Array.copy t.initial
let total_size t = Array.fold_left ( + ) 0 t.sizes
let max_size t = Array.fold_left max 0 t.sizes
let unit_cost t = Array.for_all (fun c -> c = 1) t.costs

let initial_loads t =
  let loads = Array.make t.m 0 in
  Array.iteri (fun j p -> loads.(p) <- loads.(p) + t.sizes.(j)) t.initial;
  loads

let initial_makespan t = Array.fold_left max 0 (initial_loads t)

let jobs_on t p =
  let jobs = ref [] in
  for j = Array.length t.sizes - 1 downto 0 do
    if t.initial.(j) = p then jobs := (j, t.sizes.(j)) :: !jobs
  done;
  Array.of_list !jobs

let sorted_views t =
  let buckets = Array.make t.m [] in
  for j = Array.length t.sizes - 1 downto 0 do
    let p = t.initial.(j) in
    buckets.(p) <- (j, t.sizes.(j)) :: buckets.(p)
  done;
  Array.map (fun jobs -> Rebal_ds.Sorted_jobs.of_assoc (Array.of_list jobs)) buckets
