type t = {
  m : int;
  assign : int array;
}

let of_array ~m assign =
  Array.iter
    (fun p ->
      if p < 0 || p >= m then invalid_arg "Assignment.of_array: processor out of range")
    assign;
  { m; assign = Array.copy assign }

let identity inst = { m = Instance.m inst; assign = Instance.initial_assignment inst }
let to_array t = Array.copy t.assign
let processor t j = t.assign.(j)
let n t = Array.length t.assign
let m t = t.m

let check inst t =
  if n t <> Instance.n inst || t.m <> Instance.m inst then
    invalid_arg "Assignment: instance/assignment shape mismatch"

let loads inst t =
  check inst t;
  let loads = Array.make t.m 0 in
  Array.iteri (fun j p -> loads.(p) <- loads.(p) + Instance.size inst j) t.assign;
  loads

let makespan inst t = Array.fold_left max 0 (loads inst t)

let moved_jobs inst t =
  check inst t;
  let moved = ref [] in
  for j = n t - 1 downto 0 do
    if t.assign.(j) <> Instance.initial inst j then moved := j :: !moved
  done;
  !moved

let moves inst t = List.length (moved_jobs inst t)

let relocation_cost inst t =
  List.fold_left (fun acc j -> acc + Instance.cost inst j) 0 (moved_jobs inst t)

let equal t1 t2 = t1.m = t2.m && t1.assign = t2.assign
