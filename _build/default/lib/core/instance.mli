(** A load-rebalancing instance: [n] jobs of positive integer size, an
    initial assignment of jobs to [m] processors, and a per-job relocation
    cost (all 1 for the unit-cost problem of §2–§3.1 of the paper).

    Sizes and costs are integers so that the threshold comparisons inside
    PARTITION ("size strictly greater than [OPT/2]") are exact. *)

type t

val create : ?costs:int array -> sizes:int array -> m:int -> int array -> t
(** [create ~sizes ~m initial] validates and builds an instance, where the
    final positional argument is the initial job-to-processor map.
    [costs] defaults to all-ones (the unit-cost problem, where the budget
    is a number of moves).
    @raise Invalid_argument if [m < 1], any size is [<= 0], any cost is
    negative, the lengths of [sizes], [costs] and [initial] differ, or any
    initial processor is outside [0 .. m-1]. *)

val n : t -> int
(** Number of jobs. *)

val m : t -> int
(** Number of processors. *)

val size : t -> int -> int
(** Size of a job. *)

val cost : t -> int -> int
(** Relocation cost of a job. *)

val initial : t -> int -> int
(** Initial processor of a job. *)

val sizes : t -> int array
(** Fresh copy of the size vector. *)

val costs : t -> int array
(** Fresh copy of the cost vector. *)

val initial_assignment : t -> int array
(** Fresh copy of the initial job-to-processor map. *)

val total_size : t -> int
(** Sum of all job sizes. *)

val max_size : t -> int
(** Largest job size (0 when there are no jobs). *)

val unit_cost : t -> bool
(** Whether every relocation cost is exactly 1. *)

val initial_loads : t -> int array
(** Load vector of the initial assignment. *)

val initial_makespan : t -> int
(** Makespan of the initial assignment. *)

val jobs_on : t -> int -> (int * int) array
(** [(job_id, size)] pairs initially on a processor, in job-id order. *)

val sorted_views : t -> Rebal_ds.Sorted_jobs.t array
(** Per-processor descending-sorted views of the initial assignment
    (computed once, [O(n log n)] overall). *)
