let write_instance oc inst =
  Printf.fprintf oc "processors %d\n" (Instance.m inst);
  for j = 0 to Instance.n inst - 1 do
    Printf.fprintf oc "job %d %d %d\n" (Instance.size inst j)
      (Instance.cost inst j) (Instance.initial inst j)
  done

let instance_to_string inst =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "processors %d\n" (Instance.m inst));
  for j = 0 to Instance.n inst - 1 do
    Buffer.add_string buf
      (Printf.sprintf "job %d %d %d\n" (Instance.size inst j)
         (Instance.cost inst j) (Instance.initial inst j))
  done;
  Buffer.contents buf

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  strip_comment line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_lines lines =
  let m = ref None in
  let jobs = ref [] in
  let error = ref None in
  List.iteri
    (fun idx line ->
      if !error = None then begin
        let lineno = idx + 1 in
        match tokens line with
        | [] -> ()
        | [ "processors"; v ] -> begin
          match int_of_string_opt v with
          | Some v when v >= 1 -> m := Some v
          | _ -> error := Some (Printf.sprintf "line %d: bad processor count" lineno)
        end
        | [ "job"; s; c; p ] -> begin
          match (int_of_string_opt s, int_of_string_opt c, int_of_string_opt p) with
          | Some s, Some c, Some p -> jobs := (s, c, p) :: !jobs
          | _ -> error := Some (Printf.sprintf "line %d: bad job line" lineno)
        end
        | _ -> error := Some (Printf.sprintf "line %d: unrecognized line" lineno)
      end)
    lines;
  match (!error, !m) with
  | Some msg, _ -> Error msg
  | None, None -> Error "missing 'processors' line"
  | None, Some m ->
    let jobs = Array.of_list (List.rev !jobs) in
    let sizes = Array.map (fun (s, _, _) -> s) jobs in
    let costs = Array.map (fun (_, c, _) -> c) jobs in
    let initial = Array.map (fun (_, _, p) -> p) jobs in
    (try Ok (Instance.create ~costs ~sizes ~m initial)
     with Invalid_argument msg -> Error msg)

let lines_of_channel ic =
  let rec loop acc =
    match input_line ic with
    | line -> loop (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  loop []

let read_instance ic = parse_lines (lines_of_channel ic)
let instance_of_string s = parse_lines (String.split_on_char '\n' s)

let assignment_to_string assignment =
  Assignment.to_array assignment |> Array.to_list |> List.map string_of_int
  |> String.concat " "

let write_assignment oc assignment =
  output_string oc (assignment_to_string assignment);
  output_char oc '\n'

let assignment_of_string ~m s =
  let toks = tokens s in
  let parsed = List.map int_of_string_opt toks in
  if List.exists (fun v -> v = None) parsed then
    Error "assignment: non-integer token"
  else begin
    let arr = Array.of_list (List.map Option.get parsed) in
    try Ok (Assignment.of_array ~m arr) with Invalid_argument msg -> Error msg
  end

let read_assignment ~m ic =
  let contents = lines_of_channel ic |> String.concat " " in
  assignment_of_string ~m contents
