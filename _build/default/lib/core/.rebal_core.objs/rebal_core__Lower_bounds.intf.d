lib/core/lower_bounds.mli: Budget Instance
