lib/core/io.ml: Array Assignment Buffer Instance List Option Printf String
