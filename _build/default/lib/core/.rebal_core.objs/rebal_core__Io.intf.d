lib/core/io.mli: Assignment Instance
