lib/core/instance.ml: Array Rebal_ds
