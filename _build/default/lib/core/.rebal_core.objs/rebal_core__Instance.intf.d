lib/core/instance.mli: Rebal_ds
