lib/core/budget.ml: Assignment Format Instance
