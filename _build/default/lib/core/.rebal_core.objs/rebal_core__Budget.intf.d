lib/core/budget.mli: Assignment Format Instance
