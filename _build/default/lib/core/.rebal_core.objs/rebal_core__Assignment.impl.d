lib/core/assignment.ml: Array Instance List
