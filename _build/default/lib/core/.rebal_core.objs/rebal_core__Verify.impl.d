lib/core/verify.ml: Assignment Budget Format Instance Lower_bounds Printf
