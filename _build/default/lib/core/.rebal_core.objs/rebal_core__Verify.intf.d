lib/core/verify.mli: Assignment Budget Format Instance
