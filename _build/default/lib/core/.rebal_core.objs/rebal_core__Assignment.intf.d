lib/core/assignment.mli: Instance
