lib/core/lower_bounds.ml: Array Budget Instance Rebal_ds
