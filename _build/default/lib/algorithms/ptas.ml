module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget

type stats = {
  accepted_guess : int;
  dp_cost : int;
  dp_states : int;
  classes : int;
}

let inf = max_int / 4

(* Everything the DP needs about one processor, precomputed per guess. *)
type proc_data = {
  x : int array; (* current large-job count per class *)
  large_ids : int array array; (* per class, ids sorted by ascending cost *)
  large_cost_prefix : int array array; (* removal cost of the r cheapest *)
  small_load : int;
  small_ids : int array; (* ascending cost density *)
  small_size_prefix : int array; (* total size of the first r small ids *)
  small_cost_prefix : int array;
}

let round_up v g = (v + g - 1) / g * g

let prepare inst ~cost_of ~guess ~delta =
  let g = max 1 (int_of_float (ceil (delta *. float_of_int guess))) in
  (* Geometric size classes covering (g, max_size]. *)
  let smax = Instance.max_size inst in
  let reps = ref [] in
  let r = ref (float_of_int g) in
  while int_of_float (ceil !r) < smax do
    r := !r *. (1.0 +. delta);
    reps := int_of_float (ceil !r) :: !reps
  done;
  let reps = Array.of_list (List.rev !reps) in
  let nclasses = Array.length reps in
  let class_of size =
    (* smallest class whose representative covers [size] *)
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if reps.(mid) >= size then search lo mid else search (mid + 1) hi
      end
    in
    search 0 (nclasses - 1)
  in
  let m = Instance.m inst in
  let large_bucket = Array.init m (fun _ -> Array.make nclasses []) in
  let small_bucket = Array.make m [] in
  for j = Instance.n inst - 1 downto 0 do
    let p = Instance.initial inst j in
    let s = Instance.size inst j in
    if s > g then begin
      let c = class_of s in
      large_bucket.(p).(c) <- j :: large_bucket.(p).(c)
    end
    else small_bucket.(p) <- j :: small_bucket.(p)
  done;
  let procs =
    Array.init m (fun p ->
        let per_class = large_bucket.(p) in
        let large_ids =
          Array.map
            (fun ids ->
              let arr = Array.of_list ids in
              Array.sort
                (fun j1 j2 ->
                  let c1 = cost_of j1 and c2 = cost_of j2 in
                  if c1 <> c2 then compare c1 c2 else compare j1 j2)
                arr;
              arr)
            per_class
        in
        let large_cost_prefix =
          Array.map
            (fun arr ->
              let pre = Array.make (Array.length arr + 1) 0 in
              Array.iteri (fun i j -> pre.(i + 1) <- pre.(i) + cost_of j) arr;
              pre)
            large_ids
        in
        let smalls = Array.of_list small_bucket.(p) in
        (* Increasing cost density: cheapest load-shedding first. *)
        Array.sort
          (fun j1 j2 ->
            let d1 = float_of_int (cost_of j1) /. float_of_int (Instance.size inst j1) in
            let d2 = float_of_int (cost_of j2) /. float_of_int (Instance.size inst j2) in
            if d1 <> d2 then compare d1 d2 else compare j1 j2)
          smalls;
        let q = Array.length smalls in
        let small_size_prefix = Array.make (q + 1) 0 in
        let small_cost_prefix = Array.make (q + 1) 0 in
        Array.iteri
          (fun i j ->
            small_size_prefix.(i + 1) <- small_size_prefix.(i) + Instance.size inst j;
            small_cost_prefix.(i + 1) <- small_cost_prefix.(i) + cost_of j)
          smalls;
        {
          x = Array.map Array.length large_ids;
          large_ids;
          large_cost_prefix;
          small_load = small_size_prefix.(q);
          small_ids = smalls;
          small_size_prefix;
          small_cost_prefix;
        })
  in
  (g, reps, procs)

(* Small-job removal on processor p down to [target + g] actual load:
   discard the cheapest-density prefix. Returns (cost, removed count). *)
let small_removal pd ~target ~g =
  if pd.small_load <= target + g then (0, 0)
  else begin
    let q = Array.length pd.small_ids in
    (* least r with small_load - prefix(r) <= target + g *)
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if pd.small_load - pd.small_size_prefix.(mid) <= target + g then search lo mid
        else search (mid + 1) hi
      end
    in
    let r = search 0 q in
    (pd.small_cost_prefix.(r), r)
  end

let solve_guess inst ~cost_of ~guess ~delta =
  let m = Instance.m inst in
  let g, reps, procs = prepare inst ~cost_of ~guess ~delta in
  let nclasses = Array.length reps in
  let w = int_of_float (ceil ((1.0 +. delta) *. float_of_int guess)) + (3 * g) in
  let total_small = Array.fold_left (fun acc pd -> acc + pd.small_load) 0 procs in
  let v_total = round_up total_small g + (m * g) in
  let counts0 = Array.make nclasses 0 in
  Array.iter (fun pd -> Array.iteri (fun c x -> counts0.(c) <- counts0.(c) + x) pd.x) procs;
  let memo : (int * int * int list, int) Hashtbl.t = Hashtbl.create 1024 in
  let choice : (int * int * int list, int array * int) Hashtbl.t = Hashtbl.create 1024 in
  let key p v counts = (p, v, Array.to_list counts) in
  (* Minimum cost to configure processors p..m-1, consuming exactly
     [counts] large jobs per class and exactly [v] of small allowance. *)
  let rec f p counts v =
    if p = m then
      if v = 0 && Array.for_all (fun c -> c = 0) counts then 0 else inf
    else begin
      let k = key p v counts in
      match Hashtbl.find_opt memo k with
      | Some c -> c
      | None ->
        let pd = procs.(p) in
        let best = ref inf in
        let best_choice = ref None in
        let x' = Array.make nclasses 0 in
        (* DFS over per-class kept/received counts, with running rounded
           large load; then the small allowance V'. *)
        let rec enum c load large_cost =
          if load > w then ()
          else if c = nclasses then begin
            let vmax = min v (w - load) in
            let v' = ref 0 in
            while !v' <= vmax do
              let small_cost, _ = small_removal pd ~target:!v' ~g in
              let here = large_cost + small_cost in
              if here < !best then begin
                let rest = f (p + 1) (Array.map2 ( - ) counts x') (v - !v') in
                if here + rest < !best then begin
                  best := here + rest;
                  best_choice := Some (Array.copy x', !v')
                end
              end;
              v' := !v' + g
            done
          end
          else begin
            let cap = counts.(c) in
            for take = 0 to cap do
              x'.(c) <- take;
              let removal =
                if take >= pd.x.(c) then 0
                else pd.large_cost_prefix.(c).(pd.x.(c) - take)
              in
              enum (c + 1) (load + (take * reps.(c))) (large_cost + removal)
            done;
            x'.(c) <- 0
          end
        in
        enum 0 0 0;
        Hashtbl.replace memo k !best;
        (match !best_choice with
        | Some ch -> Hashtbl.replace choice k ch
        | None -> ());
        !best
    end
  in
  let total_cost = f 0 counts0 v_total in
  if total_cost >= inf then None
  else begin
    (* Reconstruct the per-processor targets along the optimal path. *)
    let targets = Array.make m ([||], 0) in
    let counts = Array.copy counts0 in
    let v = ref v_total in
    for p = 0 to m - 1 do
      let x', v' = Hashtbl.find choice (key p !v counts) in
      targets.(p) <- (x', v');
      Array.iteri (fun c t -> counts.(c) <- counts.(c) - t) x';
      v := !v - v'
    done;
    (* Build the assignment: per processor keep the expensive larges up to
       the target count (pool the rest) and shed the cheap-density small
       prefix (pool them); then fill large deficits from the class pools
       and place pooled smalls on processors with spare small allowance. *)
    let assign = Instance.initial_assignment inst in
    let large_pool = Array.make nclasses [] in
    let small_pool = ref [] in
    let small_load = Array.make m 0 in
    for p = 0 to m - 1 do
      let pd = procs.(p) in
      let x', v' = targets.(p) in
      for c = 0 to nclasses - 1 do
        let keep = min x'.(c) pd.x.(c) in
        (* ids are sorted by ascending cost: pool the cheapest surplus. *)
        for i = 0 to pd.x.(c) - keep - 1 do
          large_pool.(c) <- pd.large_ids.(c).(i) :: large_pool.(c)
        done
      done;
      let _, shed = small_removal pd ~target:v' ~g in
      for i = 0 to shed - 1 do
        small_pool := pd.small_ids.(i) :: !small_pool
      done;
      small_load.(p) <- pd.small_load - pd.small_size_prefix.(shed)
    done;
    for p = 0 to m - 1 do
      let pd = procs.(p) in
      let x', _ = targets.(p) in
      for c = 0 to nclasses - 1 do
        for _ = 1 to x'.(c) - pd.x.(c) do
          match large_pool.(c) with
          | j :: rest ->
            large_pool.(c) <- rest;
            assign.(j) <- p
          | [] -> failwith "Ptas: large pool exhausted (bug)"
        done
      done
    done;
    (* Pooled small jobs: any processor whose small load is strictly below
       its allowance can take one; a strict-majorization argument
       guarantees one always exists (sum of allowances exceeds the total
       small load). *)
    let place_small j =
      let s = Instance.size inst j in
      let best = ref (-1) in
      for p = 0 to m - 1 do
        let _, v' = targets.(p) in
        if small_load.(p) < v'
           && (!best < 0 || v' - small_load.(p) > snd targets.(!best) - small_load.(!best))
        then best := p
      done;
      if !best < 0 then failwith "Ptas: no processor below its small allowance (bug)";
      assign.(j) <- !best;
      small_load.(!best) <- small_load.(!best) + s
    in
    let pool =
      List.sort
        (fun j1 j2 ->
          let s1 = Instance.size inst j1 and s2 = Instance.size inst j2 in
          if s1 <> s2 then compare s2 s1 else compare j1 j2)
        !small_pool
    in
    List.iter place_small pool;
    Some (Assignment.of_array ~m assign, total_cost, Hashtbl.length memo, nclasses)
  end

let solve_with_stats ?(delta = 0.2) ?(guess_cap = 200) inst ~budget =
  if delta <= 0.0 || delta > 1.0 then invalid_arg "Ptas: delta must be in (0, 1]";
  let cost_of =
    match budget with
    | Budget.Moves _ -> fun _ -> 1
    | Budget.Cost _ -> Instance.cost inst
  in
  let limit = Budget.limit budget in
  let m = Instance.m inst in
  let lb = max ((Instance.total_size inst + m - 1) / m) (Instance.max_size inst) in
  let rec scan guess tries =
    if tries > guess_cap then failwith "Ptas: no feasible guess within cap"
    else begin
      match solve_guess inst ~cost_of ~guess ~delta with
      | Some (assignment, dp_cost, dp_states, classes) when dp_cost <= limit ->
        (assignment, { accepted_guess = guess; dp_cost; dp_states; classes })
      | Some _ | None ->
        let next = max (guess + 1) (int_of_float (float_of_int guess *. (1.0 +. delta))) in
        scan next (tries + 1)
    end
  in
  scan lb 0

let solve ?delta inst ~budget = fst (solve_with_stats ?delta inst ~budget)
