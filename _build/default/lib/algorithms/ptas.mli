(** The paper's §4 approximation scheme for the load rebalancing problem
    with arbitrary relocation costs: for any fixed [delta > 0], a solution
    with relocation cost within the budget and makespan at most
    [(1 + c*delta) * OPT] (here [c = 7]; the paper's constant is 5 — ours
    is slightly looser because every rounding step is kept
    integer-exact), in time polynomial in [n] for fixed [delta].

    Machinery, faithful to the paper:
    - jobs larger than [~delta * t] (guess [t]) are {e large} and their
      sizes are rounded up to a geometric grid with ratio [1 + delta],
      giving [s = O(log(1/delta)/delta)] size classes;
    - a processor configuration is [(x_1..x_s, V)]: large-job counts per
      class plus the total small load rounded up to the grain
      [g = ceil(delta * t)];
    - a dynamic program over processors consumes the global class counts
      and a global small-load allowance, minimizing relocation cost; the
      cost of retargeting one processor removes the cheapest surplus
      large jobs per class and removes small jobs by increasing
      cost-density until within the target allowance plus one grain
      (the §3.2 greedy, [Knapsack.greedy_density]);
    - the makespan guess is raised along a [(1 + delta)] geometric grid
      until the DP cost fits the budget.

    The DP is exponential in [1/delta] (the paper's table is
    [O(m n^{s+1})]), so this is — exactly as the paper concedes — a
    complexity-theoretic result; use it on toy instances only. *)

type stats = {
  accepted_guess : int;  (** the first makespan guess whose DP cost fits *)
  dp_cost : int;  (** relocation cost the DP committed to *)
  dp_states : int;  (** memo-table size at acceptance *)
  classes : int;  (** number of large size classes [s] *)
}

val solve_with_stats :
  ?delta:float ->
  ?guess_cap:int ->
  Rebal_core.Instance.t ->
  budget:Rebal_core.Budget.t ->
  Rebal_core.Assignment.t * stats
(** [delta] defaults to [0.2] (i.e. epsilon ~ 1.4). [guess_cap] bounds the
    number of geometric guesses tried (default 200, far beyond need).
    @raise Invalid_argument if [delta <= 0 || delta > 1].
    @raise Failure if no guess is feasible within [guess_cap] (cannot
    happen for a well-formed instance). *)

val solve :
  ?delta:float -> Rebal_core.Instance.t -> budget:Rebal_core.Budget.t -> Rebal_core.Assignment.t
