module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Indexed_heap = Rebal_ds.Indexed_heap
module Knapsack = Rebal_knapsack.Knapsack

type knapsack_mode =
  | Auto
  | Exact_dp
  | Branch_and_bound
  | Fptas of float

(* Per-processor removal plan at one makespan guess. *)
type proc_plan = {
  a_cost : int;
  b_cost : int;
  has_large : bool;
  a_removed : int list; (* job ids removed when the processor is selected *)
  b_removed : int list; (* job ids removed when not selected *)
}

let keep_max_cost ~values ~weights ~capacity = function
  | Exact_dp -> Knapsack.max_value_exact ~weights ~values ~capacity
  | Branch_and_bound -> Knapsack.max_value_branch_and_bound ~weights ~values ~capacity
  | Fptas epsilon -> Knapsack.max_value_fptas ~weights ~values ~capacity ~epsilon
  | Auto ->
    (* The DP costs O(q * capacity) time and space; beyond a few million
       cells the branch-and-bound (capacity-independent) is the better
       exact solver. *)
    if (capacity + 1) * (Array.length weights + 1) <= 2_000_000 then
      Knapsack.max_value_exact ~weights ~values ~capacity
    else Knapsack.max_value_branch_and_bound ~weights ~values ~capacity

(* The cheapest removal set bringing the given jobs' total size under
   [cap]: a knapsack keeping the most expensive jobs that fit. Returns
   (removal cost, removed ids). *)
let cheapest_removal mode jobs ~cap =
  let weights = Array.map (fun (_, s, _) -> s) jobs in
  let values = Array.map (fun (_, _, c) -> c) jobs in
  let total_cost = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 jobs in
  let sol = keep_max_cost ~values ~weights ~capacity:cap mode in
  let removed = ref [] in
  Array.iteri
    (fun i (id, _, _) -> if not sol.Knapsack.chosen.(i) then removed := id :: !removed)
    jobs;
  (total_cost - sol.Knapsack.value, !removed)

let proc_plan mode jobs ~threshold =
  let larges, smalls =
    List.partition (fun (_, s, _) -> 2 * s > threshold) (Array.to_list jobs)
  in
  let larges = Array.of_list larges and smalls = Array.of_list smalls in
  let has_large = Array.length larges > 0 in
  (* a: keep the most expensive large job, drop the rest; then the small
     load must come under threshold/2. *)
  let large_removal_cost, removed_larges =
    if not has_large then (0, [])
    else begin
      let best = ref 0 in
      Array.iteri
        (fun i (_, _, c) ->
          let _, _, cb = larges.(!best) in
          if c > cb then best := i)
        larges;
      let cost = ref 0 and removed = ref [] in
      Array.iteri
        (fun i (id, _, c) ->
          if i <> !best then begin
            cost := !cost + c;
            removed := id :: !removed
          end)
        larges;
      (!cost, !removed)
    end
  in
  let small_cost, removed_smalls = cheapest_removal mode smalls ~cap:(threshold / 2) in
  let a_cost = large_removal_cost + small_cost in
  let a_removed = removed_larges @ removed_smalls in
  (* b: cheapest removal over all jobs bringing the load under threshold.
     The kept set retains at most one large job (two would overflow the
     cap), and may retain none. *)
  let b_cost, b_removed = cheapest_removal mode jobs ~cap:threshold in
  { a_cost; b_cost; has_large; a_removed; b_removed }

let jobs_by_proc inst =
  let m = Instance.m inst in
  let buckets = Array.make m [] in
  for j = Instance.n inst - 1 downto 0 do
    let p = Instance.initial inst j in
    buckets.(p) <- (j, Instance.size inst j, Instance.cost inst j) :: buckets.(p)
  done;
  Array.map Array.of_list buckets

(* Full plan at one guess: None when structurally infeasible. *)
let full_plan mode inst ~threshold =
  let m = Instance.m inst in
  let large_total = ref 0 in
  for j = 0 to Instance.n inst - 1 do
    if 2 * Instance.size inst j > threshold then incr large_total
  done;
  if !large_total > m then None
  else begin
    let buckets = jobs_by_proc inst in
    let plans = Array.map (fun jobs -> proc_plan mode jobs ~threshold) buckets in
    let order = Array.init m (fun p -> p) in
    Array.sort
      (fun p1 p2 ->
        let c1 = plans.(p1).a_cost - plans.(p1).b_cost in
        let c2 = plans.(p2).a_cost - plans.(p2).b_cost in
        if c1 <> c2 then compare c1 c2
        else begin
          let l1 = if plans.(p1).has_large then 0 else 1 in
          let l2 = if plans.(p2).has_large then 0 else 1 in
          if l1 <> l2 then compare l1 l2 else compare p1 p2
        end)
      order;
    let selected = Array.make m false in
    for i = 0 to !large_total - 1 do
      selected.(order.(i)) <- true
    done;
    let cost = ref 0 in
    for p = 0 to m - 1 do
      cost := !cost + (if selected.(p) then plans.(p).a_cost else plans.(p).b_cost)
    done;
    Some (plans, selected, !cost)
  end

let plan_cost ?(knapsack = Auto) inst ~threshold =
  Option.map (fun (_, _, cost) -> cost) (full_plan knapsack inst ~threshold)

let build inst plans selected ~threshold =
  let m = Instance.m inst in
  let n = Instance.n inst in
  let assign = Instance.initial_assignment inst in
  let removed = Array.make n false in
  for p = 0 to m - 1 do
    let ids = if selected.(p) then plans.(p).a_removed else plans.(p).b_removed in
    List.iter (fun j -> removed.(j) <- true) ids
  done;
  let load = Array.make m 0 in
  for j = 0 to n - 1 do
    if not removed.(j) then load.(assign.(j)) <- load.(assign.(j)) + Instance.size inst j
  done;
  (* Split the removed jobs by the threshold classification. *)
  let larges = ref [] and smalls = ref [] in
  for j = n - 1 downto 0 do
    if removed.(j) then begin
      if 2 * Instance.size inst j > threshold then larges := j :: !larges
      else smalls := j :: !smalls
    end
  done;
  (* Removed large jobs go one each to selected processors keeping no
     large job; the §3.2 counting argument guarantees enough of them
     (unselected processors may legitimately keep one large job, which
     only frees more slots). *)
  let frees = ref [] in
  for p = m - 1 downto 0 do
    if selected.(p) && not plans.(p).has_large then frees := p :: !frees
  done;
  let rec place_large jobs frees =
    match (jobs, frees) with
    | [], _ -> ()
    | j :: jobs', p :: frees' ->
      assign.(j) <- p;
      load.(p) <- load.(p) + Instance.size inst j;
      place_large jobs' frees'
    | _ :: _, [] ->
      invalid_arg "Budgeted_partition.build: not enough large-free processors"
  in
  place_large !larges !frees;
  (* Removed small jobs go, largest first, to the least loaded processor. *)
  let smalls =
    List.sort
      (fun j1 j2 ->
        let s1 = Instance.size inst j1 and s2 = Instance.size inst j2 in
        if s1 <> s2 then compare s2 s1 else compare j1 j2)
      !smalls
  in
  let heap = Indexed_heap.create m in
  Array.iteri (fun p l -> Indexed_heap.set heap p l) load;
  List.iter
    (fun j ->
      let p, l = Indexed_heap.min_exn heap in
      assign.(j) <- p;
      Indexed_heap.set heap p (l + Instance.size inst j))
    smalls;
  Assignment.of_array ~m assign

let guess_grid ~alpha ~lb ~ub =
  let rec next acc t =
    if t >= ub then List.rev (ub :: acc)
    else begin
      let t' = max (t + 1) (int_of_float (float_of_int t *. (1.0 +. alpha))) in
      next (t :: acc) t'
    end
  in
  next [] lb

let solve ?(alpha = 0.05) ?(knapsack = Auto) inst ~budget =
  if budget < 0 then invalid_arg "Budgeted_partition: negative budget";
  if alpha <= 0.0 then invalid_arg "Budgeted_partition: alpha must be positive";
  let lb =
    max
      ((Instance.total_size inst + Instance.m inst - 1) / Instance.m inst)
      (Instance.max_size inst)
  in
  let ub = max lb (Instance.initial_makespan inst) in
  let rec scan = function
    | [] ->
      (* Unreachable: at the initial makespan the plan removes nothing. *)
      failwith "Budgeted_partition: no affordable guess (impossible)"
    | t :: rest -> begin
      match full_plan knapsack inst ~threshold:t with
      | Some (plans, selected, cost) when cost <= budget ->
        (build inst plans selected ~threshold:t, t)
      | Some _ | None -> scan rest
    end
  in
  scan (guess_grid ~alpha ~lb ~ub)
