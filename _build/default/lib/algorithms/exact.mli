(** Exact branch-and-bound solver. The problem is NP-hard (§2 of the
    paper, by reduction from multiprocessor scheduling), so this solver is
    exponential and intended for the small instances on which the test
    suite and the benchmark tables validate true approximation ratios.

    The search assigns jobs in decreasing size order, branching on the
    receiving processor. Pruning: incumbent makespan, the average-load and
    largest-remaining-job lower bounds, the relocation budget, and a
    symmetry cut that never tries two non-initial processors with equal
    current load for the same job. *)

val solve :
  ?node_limit:int ->
  Rebal_core.Instance.t ->
  budget:Rebal_core.Budget.t ->
  Rebal_core.Assignment.t option
(** An optimal assignment within the budget, or [None] if the search
    visits more than [node_limit] nodes (default [20_000_000]) first.
    The initial assignment is always feasible, so when the node limit is
    not hit the result is never [None]. *)

val opt_makespan :
  ?node_limit:int -> Rebal_core.Instance.t -> budget:Rebal_core.Budget.t -> int option
(** Makespan of [solve]'s result. *)

val opt_makespan_exn :
  ?node_limit:int -> Rebal_core.Instance.t -> budget:Rebal_core.Budget.t -> int
(** @raise Failure if the node limit is exceeded. *)

val brute_force :
  Rebal_core.Instance.t -> budget:Rebal_core.Budget.t -> Rebal_core.Assignment.t
(** Exhaustive enumeration of all [m^n] assignments — a second,
    independent exact solver used by the test-suite to cross-validate the
    branch-and-bound (its pruning and symmetry logic never touch this
    code path). Ties are broken toward fewer budget units spent, then
    lexicographically smaller assignments, so the makespan (though not
    necessarily the witness) matches [solve].
    @raise Invalid_argument if [m^n] exceeds 10 million states. *)
