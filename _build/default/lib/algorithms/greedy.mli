(** The paper's GREEDY algorithm (§2), a variant of Graham's list
    scheduling heuristic for the unit-cost load rebalancing problem:

    + repeat [k] times: remove the largest job from the currently
      most-loaded processor;
    + place each removed job, in some order, on the currently
      least-loaded processor.

    Theorem 1: GREEDY is a tight [(2 - 1/m)]-approximation and runs in
    [O(n log n)] time. The approximation guarantee holds for {e any}
    insertion order in step 2; the order still matters in practice
    (descending is best; ascending exhibits the tight [2 - 1/m] example
    of Theorem 1, where the one huge job is re-placed last). *)

type insertion_order =
  | As_removed  (** FIFO over the removal sequence — the paper's default *)
  | Ascending  (** smallest first; adversarial on Theorem 1's instance *)
  | Descending  (** largest first (LPT-style); best practical choice *)

val solve : ?order:insertion_order -> Rebal_core.Instance.t -> k:int -> Rebal_core.Assignment.t
(** [solve inst ~k] relocates at most [k] jobs. [order] defaults to
    [Descending]. The returned assignment always moves at most [k] jobs
    (a removed job re-placed on its own processor counts as no move).
    @raise Invalid_argument if [k < 0]. *)

val removal_phase_makespan : Rebal_core.Instance.t -> k:int -> int
(** Makespan after step 1 only — the quantity [G1] of Lemma 1, exposed
    for the test-suite (it must equal [Lower_bounds.g1]). *)
