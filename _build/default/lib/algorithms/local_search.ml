module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment

let solve inst ~k =
  if k < 0 then invalid_arg "Local_search: negative k";
  let n = Instance.n inst in
  let m = Instance.m inst in
  let assign = Instance.initial_assignment inst in
  let load = Array.make m 0 in
  for j = 0 to n - 1 do
    load.(assign.(j)) <- load.(assign.(j)) + Instance.size inst j
  done;
  (* Jobs currently displaced from their initial processor. *)
  let displaced = Hashtbl.create 16 in
  let displaced_count () = Hashtbl.length displaced in
  let argmax () =
    let best = ref 0 in
    for p = 1 to m - 1 do
      if load.(p) > load.(!best) then best := p
    done;
    !best
  in
  let argmin () =
    let best = ref 0 in
    for p = 1 to m - 1 do
      if load.(p) < load.(!best) then best := p
    done;
    !best
  in
  let continue_ = ref (m > 1) in
  while !continue_ do
    let src = argmax () in
    let dst = argmin () in
    (* Best job to shift: minimizes max(load src - s, load dst + s),
       provided that is strictly below load src. *)
    let best_job = ref (-1) in
    let best_peak = ref load.(src) in
    for j = 0 to n - 1 do
      if assign.(j) = src then begin
        let s = Instance.size inst j in
        let peak = max (load.(src) - s) (load.(dst) + s) in
        let new_displacement =
          if Instance.initial inst j = dst then 0
          else if Hashtbl.mem displaced j then 0
          else 1
        in
        if peak < !best_peak && displaced_count () + new_displacement <= k then begin
          best_peak := peak;
          best_job := j
        end
      end
    done;
    if !best_job < 0 then continue_ := false
    else begin
      let j = !best_job in
      let s = Instance.size inst j in
      assign.(j) <- dst;
      load.(src) <- load.(src) - s;
      load.(dst) <- load.(dst) + s;
      if dst = Instance.initial inst j then Hashtbl.remove displaced j
      else Hashtbl.replace displaced j ()
    end
  done;
  Assignment.of_array ~m assign
