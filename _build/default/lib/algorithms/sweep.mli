(** Moves-versus-makespan tradeoff utilities built on M-PARTITION.

    The rebalancing problem exists because moves are scarce; the question
    an operator actually asks is "how many moves until the cluster is
    acceptably balanced?". This module answers it by sweeping the move
    budget and reporting the Pareto frontier of (moves actually used,
    makespan achieved) pairs, and by inverting the sweep to find the
    smallest budget reaching a target. *)

type point = {
  k : int;  (** the budget the point was produced with *)
  moves : int;  (** moves the solution actually uses ([<= k]) *)
  makespan : int;
}

val curve : Rebal_core.Instance.t -> ks:int list -> point list
(** One M-PARTITION run per requested budget, in the given order. *)

val frontier : ?max_points:int -> Rebal_core.Instance.t -> point list
(** The Pareto frontier over a doubling budget sweep [0, 1, 2, 4, .. n]
    (at most [max_points] sweep points, default 24): points strictly
    dominated in both coordinates are dropped, and the list is sorted by
    increasing moves / decreasing makespan. *)

val cheapest_k_for : Rebal_core.Instance.t -> target:int -> int option
(** The smallest budget [k] whose M-PARTITION solution has makespan at
    most [target], found by binary search — valid because the accepted
    threshold of the scan is non-increasing in [k] — or [None] if even
    [k = n] misses the target (remember the algorithm is 1.5-approximate:
    a reachable target can still be reported [None] if only the exact
    optimum attains it).
    @raise Invalid_argument if [target < 0]. *)
