(** A simple hill-climbing baseline: repeatedly shift one job from the
    most-loaded processor to the least-loaded processor while that
    improves the makespan and the move budget permits. It carries no
    approximation guarantee for bounded moves and exists to show, in the
    benchmark tables, what the guarantees of GREEDY and M-PARTITION buy
    over the obvious heuristic. *)

val solve : Rebal_core.Instance.t -> k:int -> Rebal_core.Assignment.t
(** At most [k] jobs end up displaced from their initial processor.
    Each round moves, from an arbitrary most-loaded processor, the job
    whose transfer to the least-loaded processor minimizes the resulting
    pairwise maximum; rounds stop when no transfer strictly improves
    that pairwise maximum or the budget is exhausted.
    @raise Invalid_argument if [k < 0]. *)
