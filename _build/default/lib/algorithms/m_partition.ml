module Instance = Rebal_core.Instance
module Budget = Rebal_core.Budget
module Lower_bounds = Rebal_core.Lower_bounds
module Sorted_jobs = Rebal_ds.Sorted_jobs

let candidate_thresholds inst =
  let views = Instance.sorted_views inst in
  let acc = ref [] in
  for j = 0 to Instance.n inst - 1 do
    acc := (2 * Instance.size inst j) :: !acc
  done;
  Array.iter
    (fun v ->
      for l = 0 to Sorted_jobs.length v do
        let s = Sorted_jobs.suffix v l in
        acc := s :: (2 * s) :: !acc
      done)
    views;
  let arr = Array.of_list !acc in
  Array.sort compare arr;
  (* Deduplicate in place. *)
  let out = ref [] in
  Array.iter
    (fun t ->
      match !out with
      | last :: _ when last = t -> ()
      | _ -> out := t :: !out)
    arr;
  Array.of_list (List.rev !out)

type scan_stats = {
  candidates : int;
  tried : int;
  accepted : int;
  lower_bound : int;
}

let solve_with_stats inst ~k =
  if k < 0 then invalid_arg "M_partition: negative k";
  let views = Instance.sorted_views inst in
  let lb = Lower_bounds.best inst ~budget:(Budget.Moves k) in
  let candidates = candidate_thresholds inst in
  let tried = ref 0 in
  let feasible t =
    incr tried;
    match Partition.plan inst ~views ~threshold:t with
    | Some plan when plan.Partition.moves <= k -> Some plan
    | Some _ | None -> None
  in
  let finish plan t =
    ( Partition.build inst ~views plan,
      { candidates = Array.length candidates; tried = !tried; accepted = t; lower_bound = lb } )
  in
  (* Try the lower bound itself first (it need not be a candidate value),
     then every candidate above it in increasing order. The scan always
     terminates: at the initial makespan — which is a suffix sum, hence a
     candidate — the plan moves nothing. *)
  let rec scan i =
    if i >= Array.length candidates then
      failwith "M_partition: no feasible threshold (impossible)"
    else begin
      let t = candidates.(i) in
      if t < lb then scan (i + 1)
      else begin
        match feasible t with
        | Some plan -> finish plan t
        | None -> scan (i + 1)
      end
    end
  in
  match feasible lb with
  | Some plan -> finish plan lb
  | None -> scan 0

let solve_with_threshold inst ~k =
  let assignment, stats = solve_with_stats inst ~k in
  (assignment, stats.accepted)

let solve inst ~k = fst (solve_with_threshold inst ~k)
