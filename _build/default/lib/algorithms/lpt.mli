(** Longest-processing-time-first list scheduling (Graham 1966) — the
    classical from-scratch load balancer. It ignores the initial
    assignment entirely and therefore serves as the "unbounded moves"
    reference point in the benchmark tables: the makespan a rebalancer
    could reach if relocation were free, at the price of moving almost
    every job. *)

val solve : Rebal_core.Instance.t -> Rebal_core.Assignment.t
(** Assign jobs to processors from scratch, largest first, each on the
    currently least-loaded processor. [(4/3 - 1/(3m))]-approximate for
    plain makespan minimization; moves are unbounded. *)
