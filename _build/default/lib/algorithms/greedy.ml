module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Sorted_jobs = Rebal_ds.Sorted_jobs
module Indexed_heap = Rebal_ds.Indexed_heap

type insertion_order =
  | As_removed
  | Ascending
  | Descending

(* Step 1: remove, k times, the largest job from the most-loaded
   processor. Each processor consumes its descending-sorted job view in
   order, so a cursor per processor suffices; the most-loaded processor is
   the minimum of a heap keyed by negated load. Returns the removed jobs
   in removal order and the resulting loads. *)
let removal_phase inst ~k =
  if k < 0 then invalid_arg "Greedy: negative k";
  let m = Instance.m inst in
  let views = Instance.sorted_views inst in
  let cursor = Array.make m 0 in
  let load = Array.make m 0 in
  let heap = Indexed_heap.create m in
  for p = 0 to m - 1 do
    load.(p) <- Sorted_jobs.total views.(p);
    Indexed_heap.set heap p (-load.(p))
  done;
  let removed = ref [] in
  (try
     for _ = 1 to min k (Instance.n inst) do
       let p, neg = Indexed_heap.min_exn heap in
       if neg = 0 then raise Exit;
       let v = views.(p) in
       let job = Sorted_jobs.id v cursor.(p) in
       let size = Sorted_jobs.size v cursor.(p) in
       cursor.(p) <- cursor.(p) + 1;
       load.(p) <- load.(p) - size;
       Indexed_heap.set heap p (-load.(p));
       removed := (job, size) :: !removed
     done
   with Exit -> ());
  (List.rev !removed, load)

let removal_phase_makespan inst ~k =
  let _, load = removal_phase inst ~k in
  Array.fold_left max 0 load

let solve ?(order = Descending) inst ~k =
  let removed, load = removal_phase inst ~k in
  let removed =
    match order with
    | As_removed -> removed
    | Ascending ->
      List.stable_sort (fun (_, s1) (_, s2) -> compare s1 s2) removed
    | Descending ->
      List.stable_sort (fun (_, s1) (_, s2) -> compare s2 s1) removed
  in
  let m = Instance.m inst in
  let heap = Indexed_heap.create m in
  Array.iteri (fun p l -> Indexed_heap.set heap p l) load;
  let assign = Instance.initial_assignment inst in
  List.iter
    (fun (job, size) ->
      let p, l = Indexed_heap.min_exn heap in
      assign.(job) <- p;
      Indexed_heap.set heap p (l + size))
    removed;
  Assignment.of_array ~m assign
