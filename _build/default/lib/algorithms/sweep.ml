module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment

type point = {
  k : int;
  moves : int;
  makespan : int;
}

let point_of inst k =
  let a = M_partition.solve inst ~k in
  { k; moves = Assignment.moves inst a; makespan = Assignment.makespan inst a }

let curve inst ~ks = List.map (point_of inst) ks

let frontier ?(max_points = 24) inst =
  let n = Instance.n inst in
  let rec budgets acc k count =
    if k >= n || count >= max_points - 1 then List.rev (n :: acc)
    else budgets (k :: acc) (max (k + 1) (2 * k)) (count + 1)
  in
  let points = curve inst ~ks:(budgets [ 0 ] 1 1) in
  (* Keep the non-dominated points: sort by moves, then keep strictly
     decreasing makespans. *)
  let sorted =
    List.sort
      (fun p1 p2 ->
        if p1.moves <> p2.moves then compare p1.moves p2.moves
        else compare p1.makespan p2.makespan)
      points
  in
  let rec prune best = function
    | [] -> []
    | p :: rest ->
      if p.makespan < best then p :: prune p.makespan rest else prune best rest
  in
  prune max_int sorted

let cheapest_k_for inst ~target =
  if target < 0 then invalid_arg "Sweep.cheapest_k_for: negative target";
  let n = Instance.n inst in
  if (point_of inst n).makespan > target then None
  else begin
    (* The scan's accepted threshold is non-increasing in k, so the
       achieved makespan of the built solution is non-increasing in k up
       to ties; binary search on the smallest k that reaches the target,
       then walk down defensively in case of local non-monotonicity. *)
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if (point_of inst mid).makespan <= target then search lo mid
        else search (mid + 1) hi
      end
    in
    let k = search 0 n in
    let rec refine k =
      if k > 0 && (point_of inst (k - 1)).makespan <= target then refine (k - 1) else k
    in
    Some (refine k)
  end
