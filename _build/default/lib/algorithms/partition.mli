(** The paper's PARTITION algorithm (§3): a 1.5-approximation for the
    unit-cost load rebalancing problem when the optimal makespan (or any
    threshold [t >= OPT], or in fact any lower bound at which the plan
    happens to be feasible) is supplied.

    Given a threshold [t], a job is {e large} when its size is strictly
    greater than [t/2]. The algorithm (a) keeps only the smallest large
    job on each processor that has one, (b) computes for each processor
    the removal counts [a_i] (small jobs to get the small load under
    [t/2]) and [b_i] (any jobs to get the whole load under [t]), (c)
    selects the [L_T] processors with the smallest [c_i = a_i - b_i]
    (ties prefer processors holding a large job) to become the
    one-large-job processors, (d) clears the rest down to load [t] and
    large-free, and (e) re-places every removed job — large jobs one per
    large-free selected processor, small jobs greedily on the least
    loaded processor.

    The number of removals is minimal over all ways of reaching a
    "half-optimal" configuration (Lemma 3/4), hence at most the number of
    moves the optimum uses when [t >= OPT]; the resulting makespan is at
    most [1.5 t] (Theorem 2). *)

type plan = {
  threshold : int;
  moves : int;  (** total removals the plan performs *)
  large_total : int;  (** [L_T], the number of large jobs *)
  large_extra : int;  (** [L_E], large jobs beyond one per processor *)
  selected : bool array;  (** the [L_T] processors chosen in step (c) *)
  a : int array;
  b : int array;
}

val plan :
  Rebal_core.Instance.t -> views:Rebal_ds.Sorted_jobs.t array -> threshold:int -> plan option
(** The removal plan for a guess [threshold], or [None] when the guess is
    structurally infeasible (more large jobs than processors, which
    cannot happen for [threshold >= OPT]). [O(m log n)] given the views.
    @raise Invalid_argument if [threshold < 0]. *)

val build :
  Rebal_core.Instance.t -> views:Rebal_ds.Sorted_jobs.t array -> plan -> Rebal_core.Assignment.t
(** Execute a plan: perform its removals and re-place the removed jobs.
    The returned assignment displaces at most [plan.moves] jobs and, for
    [threshold >= max(average, max_size)], has makespan at most
    [1.5 * threshold]. *)

val solve :
  Rebal_core.Instance.t -> opt_guess:int -> Rebal_core.Assignment.t option
(** [plan] + [build] in one step with freshly computed views. *)
