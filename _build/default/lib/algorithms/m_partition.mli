(** M-PARTITION (§3.1): PARTITION without knowing the optimal makespan.

    The behaviour of PARTITION is a piecewise-constant function of the
    makespan guess: the large/small classification of job [j] changes
    only when the guess crosses [2*s_j], the value [b_i] changes only at
    the suffix sums of processor [i]'s descending-sorted job sizes, and
    [a_i] changes only at twice those suffix sums (Lemma 5 of the paper).
    M-PARTITION therefore enumerates this [O(n)]-sized set of threshold
    values in increasing order, starting from a certified lower bound on
    [OPT], and runs the PARTITION plan at each until the plan needs at
    most [k] moves. Because the optimum itself needs at least as many
    moves as the plan at the largest threshold [<= OPT] (Lemma 3/6), the
    accepted threshold never exceeds [OPT], and the built assignment has
    makespan at most [1.5 * OPT] within [k] moves (Theorem 3). *)

val candidate_thresholds : Rebal_core.Instance.t -> int array
(** The sorted, deduplicated threshold set: [{2 s_j}] for every job,
    every suffix sum of every processor's sorted sizes, and twice those
    suffix sums. Exposed for the test-suite, which verifies the
    piecewise-constance claim directly. *)

val solve_with_threshold : Rebal_core.Instance.t -> k:int -> Rebal_core.Assignment.t * int
(** The assignment and the accepted threshold.
    @raise Invalid_argument if [k < 0]. *)

val solve : Rebal_core.Instance.t -> k:int -> Rebal_core.Assignment.t
(** [fst (solve_with_threshold inst ~k)]: at most [k] displaced jobs,
    makespan at most [1.5 * OPT(k)]. *)

type scan_stats = {
  candidates : int;  (** size of the candidate threshold set *)
  tried : int;  (** thresholds evaluated before acceptance *)
  accepted : int;  (** the accepted threshold *)
  lower_bound : int;  (** the certified lower bound the scan started at *)
}

val solve_with_stats : Rebal_core.Instance.t -> k:int -> Rebal_core.Assignment.t * scan_stats
(** Like [solve_with_threshold] but also reports how much of the
    candidate set the scan actually visited — the quantity behind the
    near-linear running time in practice (the benchmark suite's scan
    ablation measures it). *)
