module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Sorted_jobs = Rebal_ds.Sorted_jobs
module Indexed_heap = Rebal_ds.Indexed_heap

type plan = {
  threshold : int;
  moves : int;
  large_total : int;
  large_extra : int;
  selected : bool array;
  a : int array;
  b : int array;
}

(* Per-processor quantities for a guess [t], all on the descending-sorted
   view. After step 1 the processor keeps its smallest large job (the one
   at position lc-1) plus all small jobs (positions lc..). *)

let large_counts views ~threshold =
  Array.map (fun v -> Sorted_jobs.large_count v ~threshold) views

let a_value v ~lc ~threshold =
  (* Small jobs remaining must total at most t/2: 2*total <= t is exactly
     total <= floor(t/2) for integers. *)
  Sorted_jobs.min_removals_to_cap v ~from_:lc ~cap:(threshold / 2)

let b_value v ~lc ~threshold =
  let small_total = Sorted_jobs.suffix v lc in
  let kept_total =
    small_total + (if lc >= 1 then Sorted_jobs.size v (lc - 1) else 0)
  in
  if kept_total <= threshold then 0
  else if lc >= 1 then
    (* The kept large job is the largest kept job, so the count-minimal
       removal takes it first, then small jobs largest-first. *)
    1 + Sorted_jobs.min_removals_to_cap v ~from_:lc ~cap:threshold
  else Sorted_jobs.min_removals_to_cap v ~from_:0 ~cap:threshold

let plan inst ~views ~threshold =
  if threshold < 0 then invalid_arg "Partition.plan: negative threshold";
  let m = Instance.m inst in
  let lc = large_counts views ~threshold in
  let large_total = Array.fold_left ( + ) 0 lc in
  if large_total > m then None
  else begin
    let with_large = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 lc in
    let large_extra = large_total - with_large in
    let a = Array.make m 0 in
    let b = Array.make m 0 in
    for p = 0 to m - 1 do
      a.(p) <- a_value views.(p) ~lc:lc.(p) ~threshold;
      b.(p) <- b_value views.(p) ~lc:lc.(p) ~threshold
    done;
    (* Select the L_T processors of smallest c = a - b; ties prefer
       processors holding a large job (this tie-break is what guarantees
       every unselected processor with a large job has b >= 1). *)
    let order = Array.init m (fun p -> p) in
    Array.sort
      (fun p1 p2 ->
        let c1 = a.(p1) - b.(p1) and c2 = a.(p2) - b.(p2) in
        if c1 <> c2 then compare c1 c2
        else begin
          let l1 = if lc.(p1) > 0 then 0 else 1 in
          let l2 = if lc.(p2) > 0 then 0 else 1 in
          if l1 <> l2 then compare l1 l2 else compare p1 p2
        end)
      order;
    let selected = Array.make m false in
    for i = 0 to large_total - 1 do
      selected.(order.(i)) <- true
    done;
    (* Step-1 removals contribute L_E; selected processors then pay a,
       unselected processors pay b. *)
    let moves = ref large_extra in
    for p = 0 to m - 1 do
      if selected.(p) then moves := !moves + a.(p) else moves := !moves + b.(p)
    done;
    Some { threshold; moves = !moves; large_total; large_extra; selected; a; b }
  end

let build inst ~views { threshold; selected; a; b; _ } =
  let m = Instance.m inst in
  let lc = large_counts views ~threshold in
  let assign = Instance.initial_assignment inst in
  let removed_large = ref [] in
  let removed_small = ref [] in
  let load = Array.make m 0 in
  for p = 0 to m - 1 do
    let v = views.(p) in
    (* Step 1: all large jobs but the smallest one leave processor p. *)
    let step1 = Sorted_jobs.ids_in_range v 0 (max 0 (lc.(p) - 1)) in
    List.iter (fun j -> removed_large := j :: !removed_large) step1;
    let gone = ref (Sorted_jobs.prefix v (max 0 (lc.(p) - 1))) in
    if selected.(p) then begin
      (* Step 3: the a.(p) largest small jobs leave. *)
      let smalls = Sorted_jobs.ids_in_range v lc.(p) (lc.(p) + a.(p)) in
      List.iter
        (fun j -> removed_small := (j, Instance.size inst j) :: !removed_small)
        smalls;
      gone := !gone + (Sorted_jobs.prefix v (lc.(p) + a.(p)) - Sorted_jobs.prefix v lc.(p))
    end
    else if lc.(p) >= 1 then begin
      (* Step 4 on a processor that still holds its one large job: the
         large job must leave (b >= 1 is guaranteed by the tie-break; see
         Partition.mli) together with the b-1 largest small jobs. *)
      assert (b.(p) >= 1);
      removed_large := Sorted_jobs.id v (lc.(p) - 1) :: !removed_large;
      gone := !gone + Sorted_jobs.size v (lc.(p) - 1);
      let smalls = Sorted_jobs.ids_in_range v lc.(p) (lc.(p) + b.(p) - 1) in
      List.iter
        (fun j -> removed_small := (j, Instance.size inst j) :: !removed_small)
        smalls;
      gone := !gone + (Sorted_jobs.prefix v (lc.(p) + b.(p) - 1) - Sorted_jobs.prefix v lc.(p))
    end
    else begin
      (* Step 4, no large job: the b.(p) largest jobs leave. *)
      let smalls = Sorted_jobs.ids_in_range v 0 b.(p) in
      List.iter
        (fun j -> removed_small := (j, Instance.size inst j) :: !removed_small)
        smalls;
      gone := !gone + Sorted_jobs.prefix v b.(p)
    end;
    load.(p) <- Sorted_jobs.total v - !gone
  done;
  (* Step 5: every removed large job goes to a distinct selected processor
     that has no large job. The counting argument in §3 of the paper makes
     the two lists the same length. *)
  let large_free =
    List.filter (fun p -> selected.(p) && lc.(p) = 0) (List.init m Fun.id)
  in
  let rec place_large jobs frees =
    match (jobs, frees) with
    | [], [] -> ()
    | j :: jobs', p :: frees' ->
      assign.(j) <- p;
      load.(p) <- load.(p) + Instance.size inst j;
      place_large jobs' frees'
    | _ -> invalid_arg "Partition.build: large job / large-free processor mismatch"
  in
  place_large !removed_large large_free;
  (* Step 6: removed small jobs go, largest first, to the least loaded
     processor. Any order satisfies Theorem 2; descending is simply the
     best practical choice. *)
  let smalls =
    List.sort
      (fun (j1, s1) (j2, s2) -> if s1 <> s2 then compare s2 s1 else compare j1 j2)
      !removed_small
  in
  let heap = Indexed_heap.create m in
  Array.iteri (fun p l -> Indexed_heap.set heap p l) load;
  List.iter
    (fun (j, s) ->
      let p, l = Indexed_heap.min_exn heap in
      assign.(j) <- p;
      Indexed_heap.set heap p (l + s))
    smalls;
  Assignment.of_array ~m assign

let solve inst ~opt_guess =
  let views = Instance.sorted_views inst in
  match plan inst ~views ~threshold:opt_guess with
  | None -> None
  | Some p -> Some (build inst ~views p)
