(** PARTITION extended to arbitrary relocation costs (§3.2 of the paper):
    minimize the makespan subject to a total relocation-cost budget [B].

    For a makespan guess [t] (restricted to
    [t >= max(average load, max job size)], both lower bounds on the
    optimum), the per-processor quantities become minimum {e costs}
    instead of minimum counts, each computed by a knapsack subroutine
    that keeps the most expensive jobs within a size cap:

    - [a_i]: cost of removing all large jobs but the most expensive one,
      plus the cheapest set of small jobs whose removal brings the small
      load under [t/2];
    - [b_i]: the cheapest set of jobs (large included) whose removal
      brings the whole load under [t].

    The [L_T] processors of smallest [c_i = a_i - b_i] are selected as in
    the unit-cost algorithm; the total removal cost of the resulting plan
    is compared with [B]. The guess is raised along a geometric grid with
    ratio [1 + alpha] until the plan is affordable; the first affordable
    guess is at most [(1 + alpha)] times the optimal makespan (the plan at
    any [t >=] optimum costs no more than the optimum's own relocation
    cost — the paper's Lemma 7), so the result is a
    [1.5 (1 + alpha)]-approximation, plus the knapsack error [epsilon]
    when the FPTAS replaces the exact DP. *)

type knapsack_mode =
  | Auto
      (** exact: the DP when [q * t] is small, branch-and-bound
          otherwise; the default *)
  | Exact_dp  (** exact pseudo-polynomial DP, [O(q * t)] per processor *)
  | Branch_and_bound  (** exact, capacity-independent *)
  | Fptas of float  (** value-scaling FPTAS with the given epsilon *)

val solve :
  ?alpha:float ->
  ?knapsack:knapsack_mode ->
  Rebal_core.Instance.t ->
  budget:int ->
  Rebal_core.Assignment.t * int
(** [solve inst ~budget] returns the assignment and the accepted makespan
    guess. [alpha] (default [0.05]) is the geometric step of the guess
    grid; [knapsack] defaults to [Auto]. The returned assignment's relocation cost is at most [budget].
    @raise Invalid_argument if [budget < 0] or [alpha <= 0]. *)

val plan_cost :
  ?knapsack:knapsack_mode ->
  Rebal_core.Instance.t ->
  threshold:int ->
  int option
(** Total removal cost of the §3.2 plan at one guess, or [None] when the
    guess is structurally infeasible (more large jobs than processors).
    Exposed for tests. *)
