module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Indexed_heap = Rebal_ds.Indexed_heap

let solve inst =
  let n = Instance.n inst in
  let m = Instance.m inst in
  let order = Array.init n (fun j -> j) in
  Array.sort
    (fun j1 j2 ->
      let s1 = Instance.size inst j1 and s2 = Instance.size inst j2 in
      if s1 <> s2 then compare s2 s1 else compare j1 j2)
    order;
  let heap = Indexed_heap.create m in
  for p = 0 to m - 1 do
    Indexed_heap.set heap p 0
  done;
  let assign = Array.make n 0 in
  Array.iter
    (fun j ->
      let p, load = Indexed_heap.min_exn heap in
      assign.(j) <- p;
      Indexed_heap.set heap p (load + Instance.size inst j))
    order;
  Assignment.of_array ~m assign
