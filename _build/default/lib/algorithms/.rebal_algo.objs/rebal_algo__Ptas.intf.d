lib/algorithms/ptas.mli: Rebal_core
