lib/algorithms/greedy.mli: Rebal_core
