lib/algorithms/budgeted_partition.ml: Array List Option Rebal_core Rebal_ds Rebal_knapsack
