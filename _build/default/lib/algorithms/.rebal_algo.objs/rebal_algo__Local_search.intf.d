lib/algorithms/local_search.mli: Rebal_core
