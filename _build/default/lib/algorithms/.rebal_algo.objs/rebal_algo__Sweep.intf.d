lib/algorithms/sweep.mli: Rebal_core
