lib/algorithms/m_partition.ml: Array List Partition Rebal_core Rebal_ds
