lib/algorithms/m_partition.mli: Rebal_core
