lib/algorithms/partition.ml: Array Fun List Rebal_core Rebal_ds
