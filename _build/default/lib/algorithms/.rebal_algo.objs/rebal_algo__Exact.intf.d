lib/algorithms/exact.mli: Rebal_core
