lib/algorithms/sweep.ml: List M_partition Rebal_core
