lib/algorithms/budgeted_partition.mli: Rebal_core
