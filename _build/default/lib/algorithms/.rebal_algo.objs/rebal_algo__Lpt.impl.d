lib/algorithms/lpt.ml: Array Rebal_core Rebal_ds
