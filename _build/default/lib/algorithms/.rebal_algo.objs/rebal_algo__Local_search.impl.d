lib/algorithms/local_search.ml: Array Hashtbl Rebal_core
