lib/algorithms/greedy.ml: Array List Rebal_core Rebal_ds
