lib/algorithms/exact.ml: Array Float Greedy Option Rebal_core
