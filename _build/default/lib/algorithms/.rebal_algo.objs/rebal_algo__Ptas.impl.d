lib/algorithms/ptas.ml: Array Hashtbl List Rebal_core
