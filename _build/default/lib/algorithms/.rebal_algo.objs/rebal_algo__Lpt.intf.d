lib/algorithms/lpt.mli: Rebal_core
