lib/algorithms/partition.mli: Rebal_core Rebal_ds
