module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget

exception Node_limit

let solve ?(node_limit = 20_000_000) inst ~budget =
  let n = Instance.n inst in
  let m = Instance.m inst in
  let limit = Budget.limit budget in
  let move_cost j =
    match budget with
    | Budget.Moves _ -> 1
    | Budget.Cost _ -> Instance.cost inst j
  in
  let order = Array.init n (fun j -> j) in
  Array.sort
    (fun j1 j2 ->
      let s1 = Instance.size inst j1 and s2 = Instance.size inst j2 in
      if s1 <> s2 then compare s2 s1 else compare j1 j2)
    order;
  let avg_lb = (Instance.total_size inst + m - 1) / m in
  (* Incumbent: the initial assignment is always within budget; GREEDY
     usually improves on it when the budget is a move count. *)
  let best_assign = ref (Instance.initial_assignment inst) in
  let best = ref (Instance.initial_makespan inst) in
  (match budget with
  | Budget.Moves k ->
    let greedy = Greedy.solve inst ~k in
    let ms = Assignment.makespan inst greedy in
    if ms < !best then begin
      best := ms;
      best_assign := Assignment.to_array greedy
    end
  | Budget.Cost _ -> ());
  let load = Array.make m 0 in
  (* remaining_init.(p) = number of still-unplaced jobs whose initial
     processor is p. Two processors with equal load are interchangeable
     for the rest of the search only when neither is the initial home of
     any remaining job; the symmetry cut below dedupes only those. *)
  let remaining_init = Array.make m 0 in
  for j = 0 to n - 1 do
    remaining_init.(Instance.initial inst j) <- remaining_init.(Instance.initial inst j) + 1
  done;
  let nodes = ref 0 in
  let cur = Array.make n (-1) in
  let rec dfs t spent cur_max =
    incr nodes;
    if !nodes > node_limit then raise Node_limit;
    if cur_max < !best then begin
      if t = n then begin
        best := cur_max;
        Array.blit cur 0 !best_assign 0 n
      end
      else begin
        let j = order.(t) in
        let s = Instance.size inst j in
        let init_p = Instance.initial inst j in
        remaining_init.(init_p) <- remaining_init.(init_p) - 1;
        (* Lower bound: job j lands somewhere, so the final makespan is at
           least min-load + s; also at least the average load. *)
        let min_load = Array.fold_left min max_int load in
        let lb = max avg_lb (max cur_max (min_load + s)) in
        if lb < !best then begin
          let try_proc p cost =
            if spent + cost <= limit && load.(p) + s < !best then begin
              load.(p) <- load.(p) + s;
              cur.(j) <- p;
              dfs (t + 1) (spent + cost) (max cur_max load.(p));
              cur.(j) <- -1;
              load.(p) <- load.(p) - s
            end
          in
          try_proc init_p 0;
          (* Non-initial processors in ascending (load, index) order; a
             fresh copy, because recursive calls re-sort their own. *)
          let procs = Array.init m (fun p -> p) in
          Array.sort
            (fun p1 p2 ->
              if load.(p1) <> load.(p2) then compare load.(p1) load.(p2)
              else compare p1 p2)
            procs;
          let last_anon_load = ref min_int in
          Array.iter
            (fun p ->
              if p <> init_p then begin
                if remaining_init.(p) > 0 then try_proc p (move_cost j)
                else if load.(p) <> !last_anon_load then begin
                  last_anon_load := load.(p);
                  try_proc p (move_cost j)
                end
              end)
            procs
        end;
        remaining_init.(init_p) <- remaining_init.(init_p) + 1
      end
    end
  in
  match dfs 0 0 0 with
  | () -> Some (Assignment.of_array ~m !best_assign)
  | exception Node_limit -> None

let opt_makespan ?node_limit inst ~budget =
  Option.map (Assignment.makespan inst) (solve ?node_limit inst ~budget)

let opt_makespan_exn ?node_limit inst ~budget =
  match opt_makespan ?node_limit inst ~budget with
  | Some v -> v
  | None -> failwith "Exact.opt_makespan_exn: node limit exceeded"

let brute_force inst ~budget =
  let n = Instance.n inst in
  let m = Instance.m inst in
  let states = Float.of_int m ** Float.of_int n in
  if states > 1e7 then invalid_arg "Exact.brute_force: too many assignments";
  let limit = Budget.limit budget in
  let move_cost j =
    match budget with
    | Budget.Moves _ -> 1
    | Budget.Cost _ -> Instance.cost inst j
  in
  let cur = Array.make n 0 in
  let load = Array.make m 0 in
  let best = ref max_int in
  let best_spent = ref max_int in
  let best_assign = ref (Instance.initial_assignment inst) in
  let rec enum j spent =
    if spent <= limit then begin
      if j = n then begin
        let makespan = Array.fold_left max 0 load in
        if makespan < !best || (makespan = !best && spent < !best_spent) then begin
          best := makespan;
          best_spent := spent;
          best_assign := Array.copy cur
        end
      end
      else
        for p = 0 to m - 1 do
          let cost = if p = Instance.initial inst j then 0 else move_cost j in
          cur.(j) <- p;
          load.(p) <- load.(p) + Instance.size inst j;
          enum (j + 1) (spent + cost);
          load.(p) <- load.(p) - Instance.size inst j
        done
    end
  in
  enum 0 0;
  Assignment.of_array ~m !best_assign
