(* Knapsack tests: exact DP against brute force, FPTAS guarantee, and the
   density-greedy slack lemma from §3.2/§4 of the paper. Property-based
   via qcheck, registered as alcotest cases. *)

module K = Rebal_knapsack.Knapsack
module Rng = Rebal_workloads.Rng

let check_int = Alcotest.check Alcotest.int

let random_items rng max_n max_w max_v =
  let n = Rng.int_range rng 0 max_n in
  let weights = Array.init n (fun _ -> Rng.int rng (max_w + 1)) in
  let values = Array.init n (fun _ -> Rng.int rng (max_v + 1)) in
  (weights, values)

let test_exact_vs_brute () =
  let rng = Rng.create 20 in
  for _ = 1 to 300 do
    let weights, values = random_items rng 12 30 40 in
    let capacity = Rng.int rng 120 in
    let dp = K.max_value_exact ~weights ~values ~capacity in
    let bf = K.brute_force ~weights ~values ~capacity in
    check_int "dp = brute force" bf.K.value dp.K.value;
    Alcotest.(check bool) "dp within capacity" true (dp.K.weight <= capacity)
  done

let test_solution_mask_consistent () =
  let rng = Rng.create 21 in
  for _ = 1 to 200 do
    let weights, values = random_items rng 15 25 25 in
    let capacity = Rng.int rng 100 in
    let s = K.max_value_exact ~weights ~values ~capacity in
    let v = ref 0 and w = ref 0 in
    Array.iteri
      (fun i keep ->
        if keep then begin
          v := !v + values.(i);
          w := !w + weights.(i)
        end)
      s.K.chosen;
    check_int "mask value" s.K.value !v;
    check_int "mask weight" s.K.weight !w
  done

let test_fptas_guarantee () =
  let rng = Rng.create 22 in
  List.iter
    (fun epsilon ->
      for _ = 1 to 100 do
        let weights, values = random_items rng 12 40 1000 in
        let capacity = Rng.int rng 200 in
        let opt = K.brute_force ~weights ~values ~capacity in
        let approx = K.max_value_fptas ~weights ~values ~capacity ~epsilon in
        Alcotest.(check bool) "fptas within capacity" true (approx.K.weight <= capacity);
        let bound = (1.0 -. epsilon) *. float_of_int opt.K.value in
        if float_of_int approx.K.value < bound -. 1e-9 then
          Alcotest.failf "fptas %d below (1-%.2f) * %d" approx.K.value epsilon opt.K.value
      done)
    [ 0.5; 0.25; 0.1 ]

let test_greedy_density_lemma () =
  (* With slack >= max item weight, the kept value must be at least the
     exact optimum for the unslacked capacity, and the kept weight at most
     capacity + slack. *)
  let rng = Rng.create 23 in
  for _ = 1 to 300 do
    let n = Rng.int_range rng 0 12 in
    let weights = Array.init n (fun _ -> Rng.int_range rng 1 20) in
    let values = Array.init n (fun _ -> Rng.int rng 30) in
    let capacity = Rng.int rng 80 in
    let wmax = Array.fold_left max 0 weights in
    let slack = wmax + Rng.int rng 5 in
    let g = K.greedy_density ~weights ~values ~capacity ~slack in
    Alcotest.(check bool) "weight within capacity+slack" true (g.K.weight <= capacity + slack);
    let opt = K.brute_force ~weights ~values ~capacity in
    if g.K.value < opt.K.value then
      Alcotest.failf "greedy density %d < optimum %d (cap=%d slack=%d)" g.K.value
        opt.K.value capacity slack
  done

let test_edge_cases () =
  let empty = K.max_value_exact ~weights:[||] ~values:[||] ~capacity:10 in
  check_int "empty value" 0 empty.K.value;
  let zero_cap = K.max_value_exact ~weights:[| 5; 1 |] ~values:[| 10; 3 |] ~capacity:0 in
  check_int "zero capacity" 0 zero_cap.K.value;
  (* Zero-weight items always fit. *)
  let free = K.max_value_exact ~weights:[| 0; 0 |] ~values:[| 4; 6 |] ~capacity:0 in
  check_int "free items" 10 free.K.value;
  (match K.max_value_exact ~weights:[| -1 |] ~values:[| 1 |] ~capacity:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative weight accepted");
  match K.max_value_fptas ~weights:[| 1 |] ~values:[| 1 |] ~capacity:5 ~epsilon:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "epsilon 0 accepted"

(* qcheck properties *)

let items_gen =
  QCheck2.Gen.(
    let* n = int_range 0 10 in
    let* weights = array_size (return n) (int_range 0 25) in
    let* values = array_size (return n) (int_range 0 25) in
    let* capacity = int_range 0 100 in
    return (weights, values, capacity))

let prop_exact_matches_brute =
  QCheck2.Test.make ~name:"exact dp equals brute force" ~count:300 items_gen
    (fun (weights, values, capacity) ->
      let dp = K.max_value_exact ~weights ~values ~capacity in
      let bf = K.brute_force ~weights ~values ~capacity in
      dp.K.value = bf.K.value && dp.K.weight <= capacity)

let prop_monotone_in_capacity =
  QCheck2.Test.make ~name:"value monotone in capacity" ~count:300 items_gen
    (fun (weights, values, capacity) ->
      let v1 = (K.max_value_exact ~weights ~values ~capacity).K.value in
      let v2 = (K.max_value_exact ~weights ~values ~capacity:(capacity + 7)).K.value in
      v1 <= v2)


let test_branch_and_bound_exact () =
  let rng = Rng.create 24 in
  for _ = 1 to 300 do
    let weights, values = random_items rng 14 30 40 in
    let capacity = Rng.int rng 150 in
    let bb = K.max_value_branch_and_bound ~weights ~values ~capacity in
    let dp = K.max_value_exact ~weights ~values ~capacity in
    check_int "bb = dp" dp.K.value bb.K.value;
    Alcotest.(check bool) "bb within capacity" true (bb.K.weight <= capacity)
  done;
  (* Huge capacities where the DP would be hopeless. *)
  for _ = 1 to 50 do
    let n = Rng.int_range rng 1 18 in
    let weights = Array.init n (fun _ -> Rng.int_range rng 1 1_000_000) in
    let values = Array.init n (fun _ -> Rng.int rng 1000) in
    let capacity = Rng.int rng 5_000_000 in
    let bb = K.max_value_branch_and_bound ~weights ~values ~capacity in
    let bf = K.brute_force ~weights ~values ~capacity in
    check_int "bb = brute force at huge capacity" bf.K.value bb.K.value
  done

let prop_bb_matches_dp =
  QCheck2.Test.make ~name:"branch-and-bound equals dp" ~count:300 items_gen
    (fun (weights, values, capacity) ->
      (K.max_value_branch_and_bound ~weights ~values ~capacity).K.value
      = (K.max_value_exact ~weights ~values ~capacity).K.value)

let () =
  Alcotest.run "rebal_knapsack"
    [
      ( "knapsack",
        [
          Alcotest.test_case "exact vs brute force" `Quick test_exact_vs_brute;
          Alcotest.test_case "solution mask consistent" `Quick test_solution_mask_consistent;
          Alcotest.test_case "fptas guarantee" `Quick test_fptas_guarantee;
          Alcotest.test_case "greedy density slack lemma" `Quick test_greedy_density_lemma;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "branch and bound exact" `Quick test_branch_and_bound_exact;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_exact_matches_brute; prop_monotone_in_capacity; prop_bb_matches_dp ] );
    ]
