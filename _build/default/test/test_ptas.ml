(* Tests for the §4 PTAS: budget compliance and the (1 + c*delta)
   makespan guarantee against the exact solver, for both budget kinds and
   several delta values, on toy instances (the only regime where a PTAS
   of this shape is runnable — as the paper itself notes). *)

module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module Ptas = Rebal_algo.Ptas
module Exact = Rebal_algo.Exact
module Rng = Rebal_workloads.Rng

(* Our integer-exact rounding gives c = 7 (the paper's real-arithmetic
   constant is 5); plus a +2 additive slop for grain quantization on tiny
   sizes. *)
let bound ~delta opt = ((1.0 +. (7.0 *. delta)) *. float_of_int opt) +. 2.0

let random_instance rng ~with_costs =
  let n = Rng.int_range rng 1 8 in
  let m = Rng.int_range rng 1 3 in
  let sizes = Array.init n (fun _ -> Rng.int_range rng 1 30) in
  let costs =
    if with_costs then Array.init n (fun _ -> Rng.int_range rng 0 9)
    else Array.make n 1
  in
  let initial = Array.init n (fun _ -> Rng.int rng m) in
  Instance.create ~costs ~sizes ~m initial

let test_moves_budget () =
  let rng = Rng.create 70 in
  for _ = 1 to 60 do
    let inst = random_instance rng ~with_costs:false in
    let k = Rng.int_range rng 0 (Instance.n inst) in
    let budget = Budget.Moves k in
    let opt = Exact.opt_makespan_exn inst ~budget in
    let delta = 0.25 in
    let a, stats = Ptas.solve_with_stats ~delta inst ~budget in
    Alcotest.(check bool) "moves within k" true (Assignment.moves inst a <= k);
    let ms = Assignment.makespan inst a in
    if float_of_int ms > bound ~delta opt then
      Alcotest.failf "ptas makespan %d > bound %.1f (opt=%d, guess=%d)" ms
        (bound ~delta opt) opt stats.Ptas.accepted_guess
  done

let test_cost_budget () =
  let rng = Rng.create 71 in
  for _ = 1 to 60 do
    let inst = random_instance rng ~with_costs:true in
    let b = Rng.int_range rng 0 25 in
    let budget = Budget.Cost b in
    let opt = Exact.opt_makespan_exn inst ~budget in
    let delta = 0.25 in
    let a, _ = Ptas.solve_with_stats ~delta inst ~budget in
    Alcotest.(check bool) "cost within b" true (Assignment.relocation_cost inst a <= b);
    let ms = Assignment.makespan inst a in
    if float_of_int ms > bound ~delta opt then
      Alcotest.failf "ptas makespan %d > bound %.1f (opt=%d)" ms (bound ~delta opt) opt
  done

let test_quality_improves_with_delta () =
  (* Smaller delta must never give an asymptotically worse guarantee; on a
     fixed instance we check both satisfy their own bounds and that the
     tighter delta is within the looser bound too. *)
  let rng = Rng.create 72 in
  for _ = 1 to 20 do
    let inst = random_instance rng ~with_costs:false in
    let k = Rng.int_range rng 0 (Instance.n inst) in
    let budget = Budget.Moves k in
    let opt = Exact.opt_makespan_exn inst ~budget in
    List.iter
      (fun delta ->
        let a, _ = Ptas.solve_with_stats ~delta inst ~budget in
        let ms = Assignment.makespan inst a in
        if float_of_int ms > bound ~delta opt then
          Alcotest.failf "delta=%.2f: %d > %.1f" delta ms (bound ~delta opt))
      [ 0.5; 0.25; 0.15 ]
  done

let test_large_scale_sizes () =
  (* Sizes in the hundreds: grain effects are negligible, so the
     multiplicative bound must hold with almost no additive slop. *)
  let rng = Rng.create 73 in
  for _ = 1 to 25 do
    let n = Rng.int_range rng 2 7 in
    let m = Rng.int_range rng 2 3 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 100 900) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~sizes ~m initial in
    let k = Rng.int_range rng 0 n in
    let budget = Budget.Moves k in
    let opt = Exact.opt_makespan_exn inst ~budget in
    let delta = 0.2 in
    let a, _ = Ptas.solve_with_stats ~delta inst ~budget in
    let ms = Assignment.makespan inst a in
    if float_of_int ms > (1.0 +. (7.0 *. delta)) *. float_of_int opt +. 4.0 then
      Alcotest.failf "large sizes: %d vs opt %d" ms opt
  done

let test_zero_budget () =
  let rng = Rng.create 74 in
  for _ = 1 to 30 do
    let inst = random_instance rng ~with_costs:true in
    let a, _ = Ptas.solve_with_stats ~delta:0.3 inst ~budget:(Budget.Cost 0) in
    List.iter
      (fun j -> Alcotest.(check int) "only free moves" 0 (Instance.cost inst j))
      (Assignment.moved_jobs inst a)
  done

let test_stats_sane () =
  let inst =
    Instance.create ~sizes:[| 9; 7; 5; 3; 2 |] ~m:2 [| 0; 0; 0; 1; 1 |]
  in
  let _, stats = Ptas.solve_with_stats ~delta:0.25 inst ~budget:(Budget.Moves 2) in
  Alcotest.(check bool) "states positive" true (stats.Ptas.dp_states > 0);
  Alcotest.(check bool) "classes positive" true (stats.Ptas.classes >= 1);
  Alcotest.(check bool) "guess at least max size" true (stats.Ptas.accepted_guess >= 9)

let test_invalid_delta () =
  let inst = Instance.create ~sizes:[| 1 |] ~m:1 [| 0 |] in
  List.iter
    (fun delta ->
      match Ptas.solve ~delta inst ~budget:(Budget.Moves 0) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad delta accepted")
    [ 0.0; -0.5; 1.5 ]

let () =
  Alcotest.run "rebal_ptas"
    [
      ( "ptas",
        [
          Alcotest.test_case "move budget" `Quick test_moves_budget;
          Alcotest.test_case "cost budget" `Quick test_cost_budget;
          Alcotest.test_case "delta sweep" `Quick test_quality_improves_with_delta;
          Alcotest.test_case "large sizes, tight bound" `Quick test_large_scale_sizes;
          Alcotest.test_case "zero budget" `Quick test_zero_budget;
          Alcotest.test_case "stats" `Quick test_stats_sane;
          Alcotest.test_case "invalid delta" `Quick test_invalid_delta;
        ] );
    ]
