(* Tests for the algorithm library: every guarantee the paper proves is
   checked against the exact branch-and-bound solver on randomized small
   instances, and the paper's tight examples are reproduced exactly. *)

module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module Lower_bounds = Rebal_core.Lower_bounds
module Greedy = Rebal_algo.Greedy
module Lpt = Rebal_algo.Lpt
module Local_search = Rebal_algo.Local_search
module Partition = Rebal_algo.Partition
module M_partition = Rebal_algo.M_partition
module Exact = Rebal_algo.Exact
module Rng = Rebal_workloads.Rng
module Tight = Rebal_workloads.Tight

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* A small random instance suitable for the exact solver. *)
let random_small rng =
  let n = Rng.int_range rng 1 9 in
  let m = Rng.int_range rng 1 4 in
  let sizes = Array.init n (fun _ -> Rng.int_range rng 1 20) in
  let initial = Array.init n (fun _ -> Rng.int rng m) in
  let inst = Instance.create ~sizes ~m initial in
  let k = Rng.int_range rng 0 n in
  (inst, k)

let iterations = 300

(* --- GREEDY ------------------------------------------------------------ *)

let test_greedy_respects_budget () =
  let rng = Rng.create 42 in
  for _ = 1 to iterations do
    let inst, k = random_small rng in
    let a = Greedy.solve inst ~k in
    if Assignment.moves inst a > k then
      Alcotest.failf "greedy used %d moves with k=%d" (Assignment.moves inst a) k
  done

let test_greedy_two_approx () =
  let rng = Rng.create 43 in
  for _ = 1 to iterations do
    let inst, k = random_small rng in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Moves k) in
    List.iter
      (fun order ->
        let a = Greedy.solve ~order inst ~k in
        let ms = Assignment.makespan inst a in
        let m = Instance.m inst in
        (* Theorem 1: ms <= (2 - 1/m) OPT, i.e. ms * m <= (2m - 1) * OPT. *)
        if ms * m > ((2 * m) - 1) * opt then
          Alcotest.failf "greedy %d > (2-1/m) * opt=%d (m=%d)" ms opt m)
      [ Greedy.As_removed; Greedy.Ascending; Greedy.Descending ]
  done

let test_greedy_tight_instance () =
  for m = 2 to 12 do
    let t = Tight.greedy_tight ~m in
    let a = Greedy.solve ~order:Greedy.Ascending t.Tight.instance ~k:t.Tight.k in
    let ms = Assignment.makespan t.Tight.instance a in
    check_int (Printf.sprintf "adversarial greedy on m=%d" m) t.Tight.worst_makespan ms;
    (* The optimum really is m: the exact ratio is 2 - 1/m. *)
    check_int
      (Printf.sprintf "tight ratio numerator m=%d" m)
      ((2 * m) - 1)
      (ms * t.Tight.opt / t.Tight.opt)
  done

let test_greedy_removal_phase_is_g1 () =
  let rng = Rng.create 44 in
  for _ = 1 to iterations do
    let inst, k = random_small rng in
    check_int "G1 agree"
      (Lower_bounds.g1 inst ~k)
      (Greedy.removal_phase_makespan inst ~k)
  done

let test_greedy_two_tier_optimal () =
  List.iter
    (fun pairs ->
      let t = Tight.two_tier ~pairs ~size:7 in
      let a = Greedy.solve t.Tight.instance ~k:t.Tight.k in
      check_int
        (Printf.sprintf "two_tier pairs=%d" pairs)
        t.Tight.opt
        (Assignment.makespan t.Tight.instance a))
    [ 1; 2; 3; 5; 8 ]

(* --- PARTITION / M-PARTITION ------------------------------------------- *)

let test_partition_tight_instance () =
  List.iter
    (fun scale ->
      let t = Tight.partition_tight ~scale () in
      let a, threshold = M_partition.solve_with_threshold t.Tight.instance ~k:t.Tight.k in
      let ms = Assignment.makespan t.Tight.instance a in
      check_int (Printf.sprintf "1.5-tight scale=%d" scale) t.Tight.worst_makespan ms;
      check_bool "threshold <= opt" true (threshold <= t.Tight.opt);
      check_bool "within k" true (Assignment.moves t.Tight.instance a <= t.Tight.k))
    [ 1; 3; 10 ]

let test_m_partition_budget_and_ratio () =
  let rng = Rng.create 45 in
  for _ = 1 to iterations do
    let inst, k = random_small rng in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Moves k) in
    let a, threshold = M_partition.solve_with_threshold inst ~k in
    let ms = Assignment.makespan inst a in
    if Assignment.moves inst a > k then
      Alcotest.failf "m-partition used %d moves with k=%d" (Assignment.moves inst a) k;
    if threshold > opt then
      Alcotest.failf "m-partition threshold %d > opt %d" threshold opt;
    (* Theorem 3: ms <= 1.5 OPT, i.e. 2*ms <= 3*opt. *)
    if 2 * ms > 3 * opt then
      Alcotest.failf "m-partition makespan %d > 1.5 * opt=%d (n=%d m=%d k=%d)" ms opt
        (Instance.n inst) (Instance.m inst) k
  done

let test_partition_given_exact_opt () =
  let rng = Rng.create 46 in
  for _ = 1 to iterations do
    let inst, k = random_small rng in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Moves k) in
    match Partition.solve inst ~opt_guess:opt with
    | None -> Alcotest.fail "partition infeasible at the exact optimum"
    | Some a ->
      let ms = Assignment.makespan inst a in
      if 2 * ms > 3 * opt then
        Alcotest.failf "partition(opt) makespan %d > 1.5 * opt=%d" ms opt;
      if Assignment.moves inst a > k then
        Alcotest.failf "partition(opt) used %d moves with k=%d" (Assignment.moves inst a) k
  done

let test_partition_moves_monotone_vs_optimal () =
  (* Lemma 4: at threshold = OPT the plan never uses more moves than the
     optimum did. *)
  let rng = Rng.create 47 in
  for _ = 1 to iterations do
    let inst, k = random_small rng in
    let budget = Budget.Moves k in
    let opt_assign = Option.get (Exact.solve inst ~budget) in
    let opt = Assignment.makespan inst opt_assign in
    let views = Instance.sorted_views inst in
    match Partition.plan inst ~views ~threshold:opt with
    | None -> Alcotest.fail "plan infeasible at exact optimum"
    | Some plan ->
      if plan.Partition.moves > k then
        Alcotest.failf "plan at opt needs %d moves but k=%d suffices for opt" plan.Partition.moves k
  done

let test_candidate_thresholds_sorted_unique () =
  let rng = Rng.create 48 in
  for _ = 1 to 50 do
    let inst, _ = random_small rng in
    let c = M_partition.candidate_thresholds inst in
    for i = 1 to Array.length c - 1 do
      check_bool "strictly increasing" true (c.(i - 1) < c.(i))
    done
  done

let test_piecewise_constant_between_thresholds () =
  (* Lemma 5: between consecutive candidate thresholds the plan's move
     count does not change. Sample midpoints and endpoints. *)
  let rng = Rng.create 49 in
  for _ = 1 to 50 do
    let inst, _ = random_small rng in
    let views = Instance.sorted_views inst in
    let c = M_partition.candidate_thresholds inst in
    let moves_at t =
      match Partition.plan inst ~views ~threshold:t with
      | None -> -1
      | Some p -> p.Partition.moves
    in
    for i = 0 to Array.length c - 2 do
      let lo = c.(i) and hi = c.(i + 1) in
      if hi - lo >= 2 then begin
        let mid = lo + ((hi - lo) / 2) in
        check_int "plateau" (moves_at lo) (moves_at mid);
        check_int "plateau end" (moves_at lo) (moves_at (hi - 1))
      end
    done
  done

let test_m_partition_k_zero () =
  let rng = Rng.create 50 in
  for _ = 1 to 100 do
    let inst, _ = random_small rng in
    let a = M_partition.solve inst ~k:0 in
    check_int "no moves allowed" 0 (Assignment.moves inst a);
    check_int "initial makespan" (Instance.initial_makespan inst) (Assignment.makespan inst a)
  done

(* --- other baselines ---------------------------------------------------- *)

let test_local_search_budget_and_no_worse () =
  let rng = Rng.create 51 in
  for _ = 1 to iterations do
    let inst, k = random_small rng in
    let a = Local_search.solve inst ~k in
    check_bool "within k" true (Assignment.moves inst a <= k);
    check_bool "never worse than initial" true
      (Assignment.makespan inst a <= Instance.initial_makespan inst)
  done

let test_lpt_respects_classic_bound () =
  let rng = Rng.create 52 in
  for _ = 1 to iterations do
    let inst, _ = random_small rng in
    let a = Lpt.solve inst in
    let ms = Assignment.makespan inst a in
    let lb = max (Lower_bounds.average inst) (Lower_bounds.max_size inst) in
    let m = Instance.m inst in
    (* Graham: ms <= (4/3 - 1/(3m)) * OPT' and OPT' >= lb. *)
    check_bool "lpt within 4/3 of lower bound" true (3 * ms * m <= ((4 * m) - 1) * lb * 3 || ms <= lb * 2)
  done

let test_exact_beats_or_ties_everyone () =
  let rng = Rng.create 53 in
  for _ = 1 to iterations do
    let inst, k = random_small rng in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Moves k) in
    let candidates =
      [ Greedy.solve inst ~k; M_partition.solve inst ~k; Local_search.solve inst ~k ]
    in
    List.iter
      (fun a -> check_bool "opt <= heuristic" true (opt <= Assignment.makespan inst a))
      candidates;
    (* And the optimum respects all lower bounds. *)
    check_bool "lb <= opt" true (Lower_bounds.best inst ~budget:(Budget.Moves k) <= opt)
  done

let test_exact_cost_budget () =
  let rng = Rng.create 54 in
  for _ = 1 to 100 do
    let n = Rng.int_range rng 1 7 in
    let m = Rng.int_range rng 1 3 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 15) in
    let costs = Array.init n (fun _ -> Rng.int_range rng 0 9) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~costs ~sizes ~m initial in
    let b = Rng.int_range rng 0 20 in
    let a = Option.get (Exact.solve inst ~budget:(Budget.Cost b)) in
    check_bool "within cost budget" true (Assignment.relocation_cost inst a <= b);
    (* With budget 0 only zero-cost jobs may move. *)
    let a0 = Option.get (Exact.solve inst ~budget:(Budget.Cost 0)) in
    List.iter
      (fun j -> check_int "only free moves" 0 (Instance.cost inst j))
      (Assignment.moved_jobs inst a0)
  done


(* --- sweep / scan instrumentation --------------------------------------- *)

let test_sweep_curve_and_frontier () =
  let rng = Rng.create 55 in
  for _ = 1 to 50 do
    let inst, _ = random_small rng in
    let n = Instance.n inst in
    let points = Rebal_algo.Sweep.curve inst ~ks:[ 0; 1; n ] in
    (match points with
    | [ p0; p1; pn ] ->
      check_int "k=0 makespan is initial" (Instance.initial_makespan inst) p0.Rebal_algo.Sweep.makespan;
      check_int "k=0 moves" 0 p0.Rebal_algo.Sweep.moves;
      check_bool "k=1 moves <= 1" true (p1.Rebal_algo.Sweep.moves <= 1);
      check_bool "moves within k" true (pn.Rebal_algo.Sweep.moves <= n)
    | _ -> Alcotest.fail "curve arity");
    let frontier = Rebal_algo.Sweep.frontier inst in
    check_bool "frontier nonempty" true (frontier <> []);
    let rec strictly_improving = function
      | p1 :: (p2 :: _ as rest) ->
        p1.Rebal_algo.Sweep.moves < p2.Rebal_algo.Sweep.moves
        && p1.Rebal_algo.Sweep.makespan > p2.Rebal_algo.Sweep.makespan
        && strictly_improving rest
      | _ -> true
    in
    check_bool "frontier is a frontier" true (strictly_improving frontier)
  done

let test_sweep_cheapest_k () =
  let rng = Rng.create 56 in
  for _ = 1 to 50 do
    let inst, _ = random_small rng in
    let n = Instance.n inst in
    let best = Assignment.makespan inst (M_partition.solve inst ~k:n) in
    (match Rebal_algo.Sweep.cheapest_k_for inst ~target:best with
    | None -> Alcotest.fail "reachable target reported None"
    | Some k ->
      let a = M_partition.solve inst ~k in
      check_bool "meets target" true (Assignment.makespan inst a <= best);
      if k > 0 then begin
        let worse = M_partition.solve inst ~k:(k - 1) in
        check_bool "k-1 misses target" true (Assignment.makespan inst worse > best)
      end);
    (* An unreachable target. *)
    check_bool "unreachable" true
      (Rebal_algo.Sweep.cheapest_k_for inst ~target:(Rebal_core.Lower_bounds.average inst - 1)
       = None
      || Rebal_core.Lower_bounds.average inst = 0
      || Assignment.makespan inst (M_partition.solve inst ~k:n)
         <= Rebal_core.Lower_bounds.average inst - 1)
  done

let test_scan_stats () =
  let rng = Rng.create 57 in
  for _ = 1 to 100 do
    let inst, k = random_small rng in
    let a, stats = M_partition.solve_with_stats inst ~k in
    let a', t = M_partition.solve_with_threshold inst ~k in
    check_bool "same assignment" true (Assignment.equal a a');
    check_int "same threshold" t stats.M_partition.accepted;
    check_bool "tried >= 1" true (stats.M_partition.tried >= 1);
    check_bool "tried bounded by candidates + 1" true
      (stats.M_partition.tried <= stats.M_partition.candidates + 1);
    check_bool "accepted >= lb" true (stats.M_partition.accepted >= stats.M_partition.lower_bound)
  done


let test_exact_matches_brute_force () =
  (* Two independent exact solvers must agree on the optimal makespan,
     for both budget kinds. *)
  let rng = Rng.create 58 in
  for _ = 1 to 200 do
    let n = Rng.int_range rng 1 7 in
    let m = Rng.int_range rng 1 3 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 25) in
    let costs = Array.init n (fun _ -> Rng.int_range rng 0 8) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~costs ~sizes ~m initial in
    let budgets =
      [ Budget.Moves (Rng.int_range rng 0 n); Budget.Cost (Rng.int_range rng 0 20) ]
    in
    List.iter
      (fun budget ->
        let bnb = Exact.opt_makespan_exn inst ~budget in
        let bf = Assignment.makespan inst (Exact.brute_force inst ~budget) in
        if bnb <> bf then
          Alcotest.failf "branch-and-bound %d vs brute force %d (n=%d m=%d)" bnb bf n m;
        (* The brute-force witness itself must respect the budget. *)
        check_bool "bf within budget" true
          (Rebal_core.Budget.within inst (Exact.brute_force inst ~budget) budget))
      budgets
  done


let test_partition_structural_invariants () =
  (* After build at any accepted threshold t: no processor carries two
     t-large jobs, and the makespan is at most 1.5 t (the two facts the
     Theorem 2 proof establishes for the final configuration). *)
  let rng = Rng.create 59 in
  for _ = 1 to 200 do
    let n = Rng.int_range rng 1 20 in
    let m = Rng.int_range rng 1 6 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 60) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~sizes ~m initial in
    let k = Rng.int_range rng 0 n in
    let a, t = M_partition.solve_with_threshold inst ~k in
    let large_per_proc = Array.make m 0 in
    for j = 0 to n - 1 do
      if 2 * Instance.size inst j > t then begin
        let p = Assignment.processor a j in
        large_per_proc.(p) <- large_per_proc.(p) + 1
      end
    done;
    Array.iteri
      (fun p c ->
        if c > 1 then
          Alcotest.failf "processor %d holds %d large jobs at threshold %d" p c t)
      large_per_proc;
    let ms = Assignment.makespan inst a in
    if 2 * ms > 3 * t then Alcotest.failf "makespan %d > 1.5 * threshold %d" ms t
  done


let test_partition_edge_cases () =
  (* Single processor: no relocation can change anything. *)
  let inst1 = Instance.create ~sizes:[| 5; 3; 9 |] ~m:1 [| 0; 0; 0 |] in
  let a1 = M_partition.solve inst1 ~k:3 in
  check_int "m=1 makespan" 17 (Assignment.makespan inst1 a1);
  check_int "m=1 moves" 0 (Assignment.moves inst1 a1);
  (* All jobs large at the accepted threshold: equal huge jobs, one per
     processor needed. *)
  let inst2 = Instance.create ~sizes:[| 100; 100; 100 |] ~m:3 [| 0; 0; 0 |] in
  let a2, t2 = M_partition.solve_with_threshold inst2 ~k:2 in
  check_int "spread out" 100 (Assignment.makespan inst2 a2);
  check_bool "threshold at opt" true (t2 <= 100);
  (* More large jobs than processors: the guess is structurally
     infeasible (Fact 1) and the plan must reject it. *)
  let crowded = Instance.create ~sizes:[| 100; 100; 100 |] ~m:2 [| 0; 0; 1 |] in
  let views = Instance.sorted_views crowded in
  check_bool "plan rejects tiny threshold" true
    (Rebal_algo.Partition.plan crowded ~views ~threshold:10 = None);
  (* n = 0 jobs. *)
  let inst3 = Instance.create ~sizes:[||] ~m:2 [||] in
  let a3 = M_partition.solve inst3 ~k:0 in
  check_int "empty instance" 0 (Assignment.makespan inst3 a3);
  (* k larger than n. *)
  let a4 = Rebal_algo.Greedy.solve inst1 ~k:99 in
  check_bool "greedy oversize k" true (Assignment.makespan inst1 a4 = 17)

let () =
  Alcotest.run "rebal_algo"
    [
      ( "greedy",
        [
          Alcotest.test_case "respects move budget" `Quick test_greedy_respects_budget;
          Alcotest.test_case "2 - 1/m approximation vs exact" `Quick test_greedy_two_approx;
          Alcotest.test_case "Theorem 1 tight instance" `Quick test_greedy_tight_instance;
          Alcotest.test_case "removal phase equals G1" `Quick test_greedy_removal_phase_is_g1;
          Alcotest.test_case "two-tier family solved exactly" `Quick test_greedy_two_tier_optimal;
        ] );
      ( "partition",
        [
          Alcotest.test_case "Theorem 2 tight instance" `Quick test_partition_tight_instance;
          Alcotest.test_case "1.5 ratio and budget vs exact" `Quick test_m_partition_budget_and_ratio;
          Alcotest.test_case "partition at exact OPT" `Quick test_partition_given_exact_opt;
          Alcotest.test_case "Lemma 4 move optimality at OPT" `Quick test_partition_moves_monotone_vs_optimal;
          Alcotest.test_case "candidate thresholds sorted" `Quick test_candidate_thresholds_sorted_unique;
          Alcotest.test_case "Lemma 5 piecewise constant" `Quick test_piecewise_constant_between_thresholds;
          Alcotest.test_case "k = 0 keeps initial assignment" `Quick test_m_partition_k_zero;
          Alcotest.test_case "half-optimal structural invariants" `Quick test_partition_structural_invariants;
          Alcotest.test_case "edge cases" `Quick test_partition_edge_cases;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "curve and frontier" `Quick test_sweep_curve_and_frontier;
          Alcotest.test_case "cheapest k for target" `Quick test_sweep_cheapest_k;
          Alcotest.test_case "scan statistics" `Quick test_scan_stats;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "local search budget" `Quick test_local_search_budget_and_no_worse;
          Alcotest.test_case "lpt sanity" `Quick test_lpt_respects_classic_bound;
          Alcotest.test_case "exact dominates heuristics" `Quick test_exact_beats_or_ties_everyone;
          Alcotest.test_case "exact with cost budget" `Quick test_exact_cost_budget;
          Alcotest.test_case "B&B cross-validated vs brute force" `Quick test_exact_matches_brute_force;
        ] );
    ]
