test/test_properties.mli:
