test/test_ds.ml: Alcotest Array Int List Rebal_ds Rebal_workloads
