test/test_budgeted.ml: Alcotest Array List Rebal_algo Rebal_core Rebal_workloads
