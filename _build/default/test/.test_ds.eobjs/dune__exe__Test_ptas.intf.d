test/test_ptas.mli:
