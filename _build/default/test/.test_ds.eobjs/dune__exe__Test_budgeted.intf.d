test/test_budgeted.mli:
