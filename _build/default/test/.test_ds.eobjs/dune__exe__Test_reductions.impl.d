test/test_reductions.ml: Alcotest Array Fun List Rebal_core Rebal_reductions Rebal_workloads
