test/test_sim.ml: Alcotest Array List Rebal_sim Rebal_workloads
