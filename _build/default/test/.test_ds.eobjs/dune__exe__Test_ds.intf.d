test/test_ds.mli:
