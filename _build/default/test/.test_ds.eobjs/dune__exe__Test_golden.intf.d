test/test_golden.mli:
