test/test_golden.ml: Alcotest Filename Fun List Rebal_algo Rebal_core
