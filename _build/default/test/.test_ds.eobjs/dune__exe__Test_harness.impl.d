test/test_harness.ml: Alcotest List Rebal_harness String
