test/test_knapsack.ml: Alcotest Array List QCheck2 QCheck_alcotest Rebal_knapsack Rebal_workloads
