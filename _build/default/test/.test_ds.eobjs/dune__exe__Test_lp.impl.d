test/test_lp.ml: Alcotest Array Fun List Option Rebal_algo Rebal_core Rebal_lp Rebal_reductions Rebal_workloads Stdlib
