test/test_reductions.mli:
