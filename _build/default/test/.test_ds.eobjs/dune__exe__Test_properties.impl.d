test/test_properties.ml: Alcotest Array Fun Gen Int List QCheck2 QCheck_alcotest Rebal_algo Rebal_core Rebal_ds Test
