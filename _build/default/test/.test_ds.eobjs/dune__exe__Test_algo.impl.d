test/test_algo.ml: Alcotest Array List Option Printf Rebal_algo Rebal_core Rebal_workloads
