test/test_core.ml: Alcotest Array Format List Rebal_algo Rebal_core Rebal_workloads String
