test/test_workloads.ml: Alcotest Array Fun List Rebal_core Rebal_workloads
