(* Golden regression tests: fixed instances under data/ solved with fixed
   budgets must keep producing byte-identical results. Every algorithm in
   the library is deterministic, so any diff here means an intentional
   behaviour change (update the constants) or a regression (fix the bug).

   The constants were produced by the same code they pin; their role is
   change *detection*, while correctness is covered by the ratio and
   invariant suites. *)

module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module Lower_bounds = Rebal_core.Lower_bounds

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match Rebal_core.Io.read_instance ic with
      | Ok inst -> inst
      | Error msg -> Alcotest.failf "fixture %s unreadable: %s" path msg)

type golden = {
  path : string;
  k : int;
  initial : int;
  lower_bound : int;
  greedy_makespan : int;
  greedy_moves : int;
  mp_makespan : int;
  mp_moves : int;
  mp_threshold : int;
  local_search_makespan : int;
  lpt_makespan : int;
  bp_makespan : int;
  bp_cost : int;
  bp_threshold : int;
}

let goldens =
  [
    {
      path = "../data/skewed_zipf_40x5.txt";
      k = 6;
      initial = 3205;
      lower_bound = 1079;
      greedy_makespan = 1205;
      greedy_moves = 5;
      mp_makespan = 1205;
      mp_moves = 4;
      mp_threshold = 1079;
      local_search_makespan = 1104;
      lpt_makespan = 1079;
      bp_makespan = 1205;
      bp_cost = 4;
      bp_threshold = 1079;
    };
    {
      path = "../data/drifted_uniform_60x8.txt";
      k = 10;
      initial = 558;
      lower_bound = 364;
      greedy_makespan = 387;
      greedy_moves = 9;
      mp_makespan = 387;
      mp_moves = 5;
      mp_threshold = 364;
      local_search_makespan = 371;
      lpt_makespan = 366;
      bp_makespan = 476;
      bp_cost = 9;
      bp_threshold = 487;
    };
    {
      (* M-PARTITION legitimately moves nothing here: the initial
         makespan 321 is already within 1.5x of the bound 262. *)
      path = "../data/random_bimodal_25x4.txt";
      k = 5;
      initial = 321;
      lower_bound = 262;
      greedy_makespan = 300;
      greedy_moves = 5;
      mp_makespan = 321;
      mp_moves = 0;
      mp_threshold = 262;
      local_search_makespan = 262;
      lpt_makespan = 262;
      bp_makespan = 321;
      bp_cost = 0;
      bp_threshold = 262;
    };
  ]

let check_one g () =
  let inst = load g.path in
  let ci = Alcotest.(check int) in
  ci "initial makespan" g.initial (Instance.initial_makespan inst);
  ci "lower bound" g.lower_bound (Lower_bounds.best inst ~budget:(Budget.Moves g.k));
  let greedy = Rebal_algo.Greedy.solve inst ~k:g.k in
  ci "greedy makespan" g.greedy_makespan (Assignment.makespan inst greedy);
  ci "greedy moves" g.greedy_moves (Assignment.moves inst greedy);
  let mp, t = Rebal_algo.M_partition.solve_with_threshold inst ~k:g.k in
  ci "m-partition makespan" g.mp_makespan (Assignment.makespan inst mp);
  ci "m-partition moves" g.mp_moves (Assignment.moves inst mp);
  ci "m-partition threshold" g.mp_threshold t;
  let ls = Rebal_algo.Local_search.solve inst ~k:g.k in
  ci "local-search makespan" g.local_search_makespan (Assignment.makespan inst ls);
  let lpt = Rebal_algo.Lpt.solve inst in
  ci "lpt makespan" g.lpt_makespan (Assignment.makespan inst lpt);
  let bp, bt = Rebal_algo.Budgeted_partition.solve inst ~budget:g.k in
  ci "budgeted makespan" g.bp_makespan (Assignment.makespan inst bp);
  ci "budgeted cost" g.bp_cost (Assignment.relocation_cost inst bp);
  ci "budgeted threshold" g.bp_threshold bt

let () =
  Alcotest.run "rebal_golden"
    [
      ( "fixtures",
        List.map
          (fun g -> Alcotest.test_case (Filename.basename g.path) `Quick (check_one g))
          goldens );
    ]
