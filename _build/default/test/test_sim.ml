(* Tests for the web-server simulator: traffic trace invariants,
   policy budget compliance inside the loop, conservation of sites, and
   the qualitative claim of the paper's introduction — periodic bounded
   rebalancing keeps imbalance far below never-rebalancing at a fraction
   of full rebalancing's migration volume. *)

module Traffic = Rebal_sim.Traffic
module Policy = Rebal_sim.Policy
module Simulation = Rebal_sim.Simulation
module Rng = Rebal_workloads.Rng

let trace ?(sites = 60) ?(horizon = 96) ?(seed = 7) () =
  Traffic.create (Rng.create seed) ~sites ~horizon ()

let test_traffic_shape () =
  let t = trace () in
  Alcotest.(check int) "sites" 60 (Traffic.sites t);
  Alcotest.(check int) "horizon" 96 (Traffic.horizon t);
  for time = 0 to 95 do
    for site = 0 to 59 do
      Alcotest.(check bool) "positive rate" true (Traffic.rate t ~site ~time >= 1)
    done
  done

let test_traffic_deterministic () =
  let t1 = trace ~seed:5 () and t2 = trace ~seed:5 () in
  for time = 0 to Traffic.horizon t1 - 1 do
    Alcotest.(check (array int)) "same trace" (Traffic.rates_at t1 ~time)
      (Traffic.rates_at t2 ~time)
  done

let test_traffic_diurnal_varies () =
  let t = trace ~sites:200 ~horizon:48 () in
  let t0 = Traffic.total_at t ~time:0 in
  let varies = ref false in
  for time = 1 to 47 do
    if abs (Traffic.total_at t ~time - t0) > t0 / 20 then varies := true
  done;
  Alcotest.(check bool) "total load moves over the day" true !varies

let test_simulation_runs_all_policies () =
  let t = trace () in
  List.iter
    (fun policy ->
      let r = Simulation.run t { Simulation.servers = 6; period = 8; policy } in
      Alcotest.(check int) "steps" 96 (Array.length r.Simulation.steps);
      Alcotest.(check bool) "peak positive" true (r.Simulation.peak_makespan > 0);
      Alcotest.(check bool) "imbalance >= 1" true (r.Simulation.mean_imbalance >= 0.999);
      (* Every site placed on a valid server at the end. *)
      Array.iter
        (fun p -> Alcotest.(check bool) "valid server" true (p >= 0 && p < 6))
        r.Simulation.final_placement)
    [
      Policy.No_rebalance;
      Policy.Greedy 5;
      Policy.M_partition 5;
      Policy.Local_search 5;
      Policy.Full_lpt;
    ]

let test_no_rebalance_never_moves () =
  let t = trace () in
  let r = Simulation.run t { Simulation.servers = 5; period = 4; policy = Policy.No_rebalance } in
  Alcotest.(check int) "zero moves" 0 r.Simulation.total_moves

let test_budget_respected_per_round () =
  let t = trace ~horizon:64 () in
  List.iter
    (fun k ->
      let r = Simulation.run t { Simulation.servers = 6; period = 8; policy = Policy.M_partition k } in
      Array.iter
        (fun s ->
          if s.Simulation.moves > k then
            Alcotest.failf "round moved %d > k=%d" s.Simulation.moves k)
        r.Simulation.steps)
    [ 0; 1; 3; 10 ]

let test_rebalancing_beats_nothing () =
  (* The qualitative Linder–Shah claim: a small move budget keeps mean
     imbalance well below never rebalancing, with far fewer moves than
     full LPT. *)
  (* Mild skew (no indivisible hot site above the average), strong
     diurnal drift: the regime where bounded-move rebalancing matters. *)
  let t =
    Traffic.create (Rng.create 11) ~sites:200 ~horizon:288 ~zipf_alpha:0.5
      ~scale:300 ~diurnal_depth:0.8 ~noise:0.15 ~flash_prob:0.003 ~flash_mult:5
      ~flash_len:8 ()
  in
  let run policy = Simulation.run t { Simulation.servers = 10; period = 6; policy } in
  let none = run Policy.No_rebalance in
  let bounded = run (Policy.M_partition 10) in
  let full = run Policy.Full_lpt in
  Alcotest.(check bool) "bounded clearly beats none" true
    (bounded.Simulation.mean_imbalance < none.Simulation.mean_imbalance *. 0.95);
  Alcotest.(check bool) "bounded is close to full" true
    (bounded.Simulation.mean_imbalance < full.Simulation.mean_imbalance *. 1.10);
  Alcotest.(check bool) "bounded moves a tenth of full" true
    (bounded.Simulation.total_moves * 10 < full.Simulation.total_moves);
  Alcotest.(check bool) "full moves a lot" true (full.Simulation.total_moves > 1000)

let test_period_one_rebalances_every_step () =
  let t = trace ~horizon:20 () in
  let r = Simulation.run t { Simulation.servers = 4; period = 1; policy = Policy.Greedy 2 } in
  (* Moves may occur at every step after the first. *)
  let move_steps =
    Array.fold_left (fun acc s -> if s.Simulation.moves > 0 then acc + 1 else acc) 0 r.Simulation.steps
  in
  Alcotest.(check bool) "some rounds move" true (move_steps > 0)

let test_invalid_config () =
  let t = trace ~horizon:4 () in
  List.iter
    (fun cfg ->
      match Simulation.run t cfg with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad config accepted")
    [
      { Simulation.servers = 0; period = 1; policy = Policy.No_rebalance };
      { Simulation.servers = 3; period = 0; policy = Policy.No_rebalance };
    ]


(* --- process simulator --------------------------------------------------- *)

module PS = Rebal_sim.Process_sim

let ps_config ?(policy = Policy.No_rebalance) ?(horizon = 800) () =
  {
    PS.cpus = 4;
    arrival_rate = 0.5;
    lifetime = PS.Exponential_work 3.0;
    horizon;
    period = 5;
    policy;
  }

let test_process_sim_basic () =
  let r = PS.run (Rng.create 21) (ps_config ()) in
  Alcotest.(check bool) "some processes completed" true (r.PS.completed > 50);
  Alcotest.(check bool) "slowdown at least 1" true (r.PS.mean_slowdown >= 1.0);
  Alcotest.(check bool) "p95 >= mean-ish" true (r.PS.p95_slowdown >= 1.0);
  Alcotest.(check int) "no policy, no migrations" 0 r.PS.migrations;
  Alcotest.(check bool) "imbalance at least 1" true (r.PS.mean_backlog_imbalance >= 1.0)

let test_process_sim_deterministic () =
  let r1 = PS.run (Rng.create 22) (ps_config ~policy:(Policy.Greedy 2) ()) in
  let r2 = PS.run (Rng.create 22) (ps_config ~policy:(Policy.Greedy 2) ()) in
  Alcotest.(check int) "completed equal" r1.PS.completed r2.PS.completed;
  Alcotest.(check int) "migrations equal" r1.PS.migrations r2.PS.migrations;
  Alcotest.(check (float 1e-12)) "slowdown equal" r1.PS.mean_slowdown r2.PS.mean_slowdown

let test_process_sim_migration_helps () =
  (* Under heavy-tailed lifetimes and visible congestion, migrating with
     a small budget must reduce mean slowdown vs never migrating. *)
  let lifetime = PS.Pareto_work { alpha = 1.1; xmin = 1.0 } in
  let cfg policy =
    { PS.cpus = 8; arrival_rate = 0.5; lifetime; horizon = 4000; period = 10; policy }
  in
  let none = PS.run (Rng.create 23) (cfg Policy.No_rebalance) in
  let greedy = PS.run (Rng.create 23) (cfg (Policy.Greedy 4)) in
  Alcotest.(check bool) "migration reduces slowdown" true
    (greedy.PS.mean_slowdown < none.PS.mean_slowdown);
  Alcotest.(check bool) "migrations happened" true (greedy.PS.migrations > 0)

let test_process_sim_work_conservation () =
  (* completed + residual accounts for every arrival: completed processes
     plus the residual population equals what arrived. Run with a policy
     to exercise migration paths too. *)
  let r = PS.run (Rng.create 24) (ps_config ~policy:(Policy.M_partition 3) ()) in
  Alcotest.(check bool) "counts sane" true (r.PS.completed >= 0 && r.PS.residual >= 0);
  Alcotest.(check bool) "work done" true (r.PS.completed + r.PS.residual > 100)

let test_process_sim_validation () =
  List.iter
    (fun cfg ->
      match PS.run (Rng.create 1) cfg with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad process-sim config accepted")
    [
      { (ps_config ()) with PS.cpus = 0 };
      { (ps_config ()) with PS.horizon = 0 };
      { (ps_config ()) with PS.period = 0 };
      { (ps_config ()) with PS.arrival_rate = 0.0 };
      { (ps_config ()) with PS.lifetime = PS.Exponential_work 0.0 };
      { (ps_config ()) with PS.lifetime = PS.Pareto_work { alpha = 0.0; xmin = 1.0 } };
    ]

let () =
  Alcotest.run "rebal_sim"
    [
      ( "traffic",
        [
          Alcotest.test_case "shape" `Quick test_traffic_shape;
          Alcotest.test_case "deterministic" `Quick test_traffic_deterministic;
          Alcotest.test_case "diurnal variation" `Quick test_traffic_diurnal_varies;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "all policies run" `Quick test_simulation_runs_all_policies;
          Alcotest.test_case "no-rebalance never moves" `Quick test_no_rebalance_never_moves;
          Alcotest.test_case "per-round budget" `Quick test_budget_respected_per_round;
          Alcotest.test_case "rebalancing beats nothing" `Quick test_rebalancing_beats_nothing;
          Alcotest.test_case "period one" `Quick test_period_one_rebalances_every_step;
          Alcotest.test_case "invalid configs" `Quick test_invalid_config;
        ] );
      ( "process_sim",
        [
          Alcotest.test_case "basic run" `Quick test_process_sim_basic;
          Alcotest.test_case "deterministic" `Quick test_process_sim_deterministic;
          Alcotest.test_case "migration helps (heavy tails)" `Quick test_process_sim_migration_helps;
          Alcotest.test_case "work conservation" `Quick test_process_sim_work_conservation;
          Alcotest.test_case "validation" `Quick test_process_sim_validation;
        ] );
    ]
