(* Tests for the workload substrate: PRNG determinism and uniformity,
   distribution sanity, generator invariants, and the constructed values
   of the tight instances. *)

module Rng = Rebal_workloads.Rng
module Dist = Rebal_workloads.Dist
module Gen = Rebal_workloads.Gen
module Tight = Rebal_workloads.Tight
module Instance = Rebal_core.Instance

let check = Alcotest.check
let check_int = check Alcotest.int

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 1000 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  let c = Rng.create 124 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.bits64 a <> Rng.bits64 c then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let bound = Rng.int_range rng 1 100 in
    let v = Rng.int rng bound in
    Alcotest.(check bool) "in range" true (v >= 0 && v < bound);
    let lo = Rng.int_range rng (-50) 50 in
    let hi = lo + Rng.int rng 100 in
    let w = Rng.int_range rng lo hi in
    Alcotest.(check bool) "int_range" true (w >= lo && w <= hi);
    let f = Rng.float rng 3.5 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 3.5)
  done

let test_rng_uniformity () =
  (* Chi-squared-ish sanity: 10 buckets, 100k draws, each bucket within
     10% of the expectation. *)
  let rng = Rng.create 10 in
  let buckets = Array.make 10 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if abs (c - (draws / 10)) > draws / 100 then
        Alcotest.failf "bucket %d count %d too far from %d" i c (draws / 10))
    buckets

let test_rng_shuffle_permutes () =
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    let arr = Array.init 30 Fun.id in
    Rng.shuffle rng arr;
    let sorted = Array.copy arr in
    Array.sort compare sorted;
    check (Alcotest.array Alcotest.int) "permutation" (Array.init 30 Fun.id) sorted
  done

let all_specs =
  [
    Dist.Constant 7;
    Dist.Uniform { lo = 1; hi = 100 };
    Dist.Exponential { mean = 20.0 };
    Dist.Zipf { ranks = 500; alpha = 1.1; scale = 1000 };
    Dist.Bimodal { small_lo = 1; small_hi = 10; big_lo = 200; big_hi = 400; big_prob = 0.05 };
    Dist.Pareto { alpha = 1.5; scale = 10 };
  ]

let test_dist_positive () =
  let rng = Rng.create 12 in
  List.iter
    (fun spec ->
      let d = Dist.prepare spec in
      for _ = 1 to 2000 do
        let s = Dist.sample d rng in
        if s < 1 then Alcotest.failf "%s produced %d" (Dist.name spec) s
      done)
    all_specs

let test_dist_shapes () =
  let rng = Rng.create 13 in
  let d = Dist.prepare (Dist.Constant 7) in
  for _ = 1 to 50 do
    check_int "constant" 7 (Dist.sample d rng)
  done;
  let u = Dist.prepare (Dist.Uniform { lo = 5; hi = 9 }) in
  for _ = 1 to 1000 do
    let s = Dist.sample u rng in
    Alcotest.(check bool) "uniform in range" true (s >= 5 && s <= 9)
  done;
  (* Zipf should produce a heavy head: the largest sample should dwarf
     the median sample. *)
  let z = Dist.prepare (Dist.Zipf { ranks = 1000; alpha = 1.2; scale = 10_000 }) in
  let samples = Dist.sample_many z rng 5000 in
  Array.sort compare samples;
  (* Rank 1 (size = scale) is drawn with probability ~0.18, so the max of
     5000 draws is the full scale; meanwhile at least a tenth of the draws
     fall beyond rank 100 (size <= 100). *)
  check_int "zipf head" 10_000 samples.(4999);
  Alcotest.(check bool) "zipf tail" true (samples.(500) <= 100)

let test_dist_validation () =
  List.iter
    (fun spec ->
      match Dist.prepare spec with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [
      Dist.Constant 0;
      Dist.Uniform { lo = 5; hi = 4 };
      Dist.Exponential { mean = 0.0 };
      Dist.Zipf { ranks = 0; alpha = 1.0; scale = 10 };
      Dist.Bimodal { small_lo = 1; small_hi = 2; big_lo = 3; big_hi = 4; big_prob = 1.5 };
      Dist.Pareto { alpha = 0.0; scale = 5 };
    ]

let test_generators_shape () =
  let rng = Rng.create 14 in
  let dist = Dist.prepare (Dist.Uniform { lo = 1; hi = 50 }) in
  let inst = Gen.random rng ~n:200 ~m:10 ~dist () in
  check_int "n" 200 (Instance.n inst);
  check_int "m" 10 (Instance.m inst);
  Alcotest.(check bool) "unit cost default" true (Instance.unit_cost inst);
  let skewed = Gen.skewed rng ~n:500 ~m:10 ~dist ~skew:2.0 () in
  let loads = Instance.initial_loads skewed in
  Alcotest.(check bool) "skew concentrates on processor 0" true
    (loads.(0) > loads.(9));
  let drifted = Gen.drifted rng ~n:300 ~m:10 ~dist ~drift:0.0 () in
  (* With zero drift the assignment is LPT-balanced: max - min is at most
     the largest job size. *)
  let dl = Instance.initial_loads drifted in
  let mx = Array.fold_left max 0 dl and mn = Array.fold_left min max_int dl in
  Alcotest.(check bool) "zero drift is balanced" true (mx - mn <= 50)

let test_generators_deterministic () =
  let dist = Dist.prepare (Dist.Zipf { ranks = 100; alpha = 1.0; scale = 500 }) in
  let i1 = Gen.random (Rng.create 77) ~n:100 ~m:7 ~dist () in
  let i2 = Gen.random (Rng.create 77) ~n:100 ~m:7 ~dist () in
  check (Alcotest.array Alcotest.int) "same sizes" (Instance.sizes i1) (Instance.sizes i2);
  check (Alcotest.array Alcotest.int) "same placement" (Instance.initial_assignment i1)
    (Instance.initial_assignment i2)

let test_cost_models () =
  let rng = Rng.create 15 in
  let dist = Dist.prepare (Dist.Uniform { lo = 10; hi = 90 }) in
  let inst = Gen.random rng ~n:100 ~m:5 ~dist ~cost:(Gen.Proportional_to_size { per = 10 }) () in
  for j = 0 to 99 do
    check_int "proportional cost" ((Instance.size inst j + 9) / 10) (Instance.cost inst j)
  done;
  let inst2 = Gen.random rng ~n:100 ~m:5 ~dist ~cost:(Gen.Inverse_size { numerator = 90 }) () in
  for j = 0 to 99 do
    Alcotest.(check bool) "inverse cost positive" true (Instance.cost inst2 j >= 1)
  done;
  let inst3 = Gen.random rng ~n:100 ~m:5 ~dist ~cost:(Gen.Uniform_random { lo = 2; hi = 6 }) () in
  for j = 0 to 99 do
    let c = Instance.cost inst3 j in
    Alcotest.(check bool) "random cost in range" true (c >= 2 && c <= 6)
  done

let test_tight_constructions () =
  let t = Tight.greedy_tight ~m:4 in
  let inst = t.Tight.instance in
  check_int "n" 13 (Instance.n inst);
  check_int "initial makespan" 7 (Instance.initial_makespan inst);
  check_int "k" 3 t.Tight.k;
  check_int "opt" 4 t.Tight.opt;
  let p = Tight.partition_tight ~scale:5 () in
  check_int "partition tight makespan" 15 (Instance.initial_makespan p.Tight.instance);
  check_int "partition tight opt" 10 p.Tight.opt;
  let tt = Tight.two_tier ~pairs:3 ~size:4 in
  check_int "two tier m" 6 (Instance.m tt.Tight.instance);
  check_int "two tier makespan" 8 (Instance.initial_makespan tt.Tight.instance)

let () =
  Alcotest.run "rebal_workloads"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "dist",
        [
          Alcotest.test_case "positive sizes" `Quick test_dist_positive;
          Alcotest.test_case "shapes" `Quick test_dist_shapes;
          Alcotest.test_case "validation" `Quick test_dist_validation;
        ] );
      ( "gen",
        [
          Alcotest.test_case "shapes" `Quick test_generators_shape;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "cost models" `Quick test_cost_models;
        ] );
      ( "tight",
        [ Alcotest.test_case "constructions" `Quick test_tight_constructions ] );
    ]
