(* Tests for the §5 hardness machinery: the 3DM solver against hand-built
   instances, and each executable reduction verified in both directions
   (YES instances map to feasible gadgets, NO instances to infeasible
   ones) on randomized small inputs. *)

module Three_dm = Rebal_reductions.Three_dm
module Conflict = Rebal_reductions.Conflict
module Move_min = Rebal_reductions.Move_min
module Restricted = Rebal_reductions.Restricted
module Rng = Rebal_workloads.Rng
module Instance = Rebal_core.Instance

let test_three_dm_known () =
  (* Perfect matching: (0,0,0), (1,1,1); decoy triples don't hurt. *)
  let yes =
    Three_dm.create ~n:2 ~triples:[| (0, 0, 0); (1, 1, 1); (0, 1, 0) |]
  in
  Alcotest.(check bool) "yes instance" true (Three_dm.has_perfect_matching yes);
  (* No matching: both triples use b=0. *)
  let no = Three_dm.create ~n:2 ~triples:[| (0, 0, 0); (1, 0, 1) |] in
  Alcotest.(check bool) "no instance" false (Three_dm.has_perfect_matching no);
  let empty = Three_dm.create ~n:0 ~triples:[||] in
  Alcotest.(check bool) "empty instance" true (Three_dm.has_perfect_matching empty)

let test_three_dm_witness () =
  let rng = Rng.create 90 in
  for _ = 1 to 100 do
    let n = Rng.int_range rng 1 5 in
    let dm = Three_dm.random_yes rng ~n ~extra:(Rng.int rng 6) in
    match Three_dm.matching dm with
    | None -> Alcotest.fail "planted matching not found"
    | Some chosen ->
      (* Witness must be disjoint and cover all three universes. *)
      let used_a = Array.make n false in
      let used_b = Array.make n false in
      let used_c = Array.make n false in
      Array.iter
        (fun i ->
          let a, b, c = Three_dm.triple dm i in
          if used_a.(a) || used_b.(b) || used_c.(c) then
            Alcotest.fail "witness not disjoint";
          used_a.(a) <- true;
          used_b.(b) <- true;
          used_c.(c) <- true)
        chosen;
      Alcotest.(check bool) "covers" true
        (Array.for_all Fun.id used_a && Array.for_all Fun.id used_b
        && Array.for_all Fun.id used_c)
  done

let test_three_dm_random_agree_bruteforce () =
  (* Independent brute force: try all subsets of size n. *)
  let brute dm =
    let n = Three_dm.n dm in
    let m = Three_dm.size dm in
    let rec choose i chosen =
      if List.length chosen = n then begin
        let ok u =
          let sa = List.sort_uniq compare (List.map (fun (a, _, _) -> a) u) in
          let sb = List.sort_uniq compare (List.map (fun (_, b, _) -> b) u) in
          let sc = List.sort_uniq compare (List.map (fun (_, _, c) -> c) u) in
          List.length sa = n && List.length sb = n && List.length sc = n
        in
        ok (List.map (Three_dm.triple dm) chosen)
      end
      else if i >= m then false
      else choose (i + 1) (i :: chosen) || choose (i + 1) chosen
    in
    if n = 0 then true else choose 0 []
  in
  let rng = Rng.create 91 in
  for _ = 1 to 60 do
    let n = Rng.int_range rng 1 4 in
    let dm = Three_dm.random rng ~n ~triples:(Rng.int_range rng 1 7) in
    Alcotest.(check bool) "solver agrees with brute force" (brute dm)
      (Three_dm.has_perfect_matching dm)
  done

(* --- Theorem 7: conflict scheduling ------------------------------------- *)

let test_conflict_feasible_basic () =
  (* Triangle on 2 machines: infeasible; on 3: feasible. *)
  let tri m = Conflict.create ~jobs:3 ~machines:m ~conflicts:[ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check bool) "triangle 2" true (Conflict.feasible (tri 2) = None);
  (match Conflict.feasible (tri 3) with
  | Some coloring ->
    Alcotest.(check bool) "proper" true
      (coloring.(0) <> coloring.(1) && coloring.(1) <> coloring.(2)
      && coloring.(0) <> coloring.(2))
  | None -> Alcotest.fail "triangle on 3 machines is feasible");
  (* No conflicts: always feasible on one machine. *)
  let free = Conflict.create ~jobs:4 ~machines:1 ~conflicts:[] in
  Alcotest.(check bool) "free" true (Conflict.feasible free <> None)

let test_conflict_reduction_yes () =
  let rng = Rng.create 92 in
  for _ = 1 to 30 do
    let n = Rng.int_range rng 1 3 in
    let dm = Three_dm.random_yes rng ~n ~extra:(Rng.int rng 4) in
    Alcotest.(check bool) "reduction on planted yes" true (Conflict.verify_reduction dm)
  done

let test_conflict_reduction_both_directions () =
  let rng = Rng.create 93 in
  for _ = 1 to 40 do
    let n = Rng.int_range rng 1 3 in
    let triples = Rng.int_range rng n 6 in
    let dm = Three_dm.random rng ~n ~triples in
    Alcotest.(check bool) "reduction agrees" true (Conflict.verify_reduction dm)
  done

(* --- Theorem 5: move minimization --------------------------------------- *)

let test_subset_sum () =
  Alcotest.(check bool) "basic yes" true (Move_min.subset_sum [| 3; 1; 4; 2 |] ~target:6);
  Alcotest.(check bool) "basic no" false (Move_min.subset_sum [| 3; 5 |] ~target:4);
  Alcotest.(check bool) "zero target" true (Move_min.subset_sum [||] ~target:0);
  Alcotest.(check bool) "partition yes" true (Move_min.partition_exists [| 1; 5; 6 |]);
  Alcotest.(check bool) "partition no" false (Move_min.partition_exists [| 1; 2; 4 |])

let test_move_min_reduction () =
  let rng = Rng.create 94 in
  let count = ref 0 in
  while !count < 40 do
    let r = Rng.int_range rng 2 8 in
    let numbers = Array.init r (fun _ -> Rng.int_range rng 1 12) in
    let total = Array.fold_left ( + ) 0 numbers in
    if total mod 2 = 0 then begin
      incr count;
      Alcotest.(check bool) "Theorem 5 reduction" true (Move_min.verify_reduction numbers)
    end
  done

let test_move_min_exact_count () =
  (* Numbers 2,2,2,2 -> S = 4: the minimum is exactly 2 moves. *)
  let inst, target = Move_min.of_partition [| 2; 2; 2; 2 |] in
  Alcotest.(check (option int)) "two moves" (Some 2)
    (Move_min.min_moves_to_target inst ~target);
  (* 3,3 -> S = 3: move one job. *)
  let inst2, target2 = Move_min.of_partition [| 3; 3 |] in
  Alcotest.(check (option int)) "one move" (Some 1)
    (Move_min.min_moves_to_target inst2 ~target:target2);
  (* 1,3 -> S = 2: unachievable. *)
  let inst3, target3 = Move_min.of_partition [| 1; 3 |] in
  Alcotest.(check (option int)) "infeasible" None
    (Move_min.min_moves_to_target inst3 ~target:target3)

(* --- Theorem 6 / Corollary 1: restricted assignment ---------------------- *)

let test_restricted_basic () =
  (* Two unit jobs, both only eligible on machine 0. *)
  let t =
    Restricted.create ~sizes:[| 1; 1 |] ~machines:2 ~eligible:[| [ 0 ]; [ 0 ] |]
  in
  Alcotest.(check bool) "target 1 infeasible" true (Restricted.feasible t ~target:1 = None);
  Alcotest.(check bool) "target 2 feasible" true (Restricted.feasible t ~target:2 <> None);
  Alcotest.(check (option int)) "min makespan" (Some 2) (Restricted.min_makespan t)

let test_restricted_respects_eligibility () =
  let rng = Rng.create 95 in
  for _ = 1 to 60 do
    let n = Rng.int_range rng 1 6 in
    let machines = Rng.int_range rng 1 3 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 9) in
    let eligible =
      Array.init n (fun _ ->
          let count = Rng.int_range rng 1 machines in
          let all = Array.init machines Fun.id in
          Rng.shuffle rng all;
          Array.to_list (Array.sub all 0 count))
    in
    let t = Restricted.create ~sizes ~machines ~eligible in
    match Restricted.min_makespan t with
    | None -> Alcotest.fail "min_makespan must exist"
    | Some target -> begin
      match Restricted.feasible t ~target with
      | None -> Alcotest.fail "feasible at its own min"
      | Some assign ->
        Array.iteri
          (fun j p ->
            Alcotest.(check bool) "eligible machine used" true
              (List.mem p (Restricted.eligible t j)))
          assign;
        let load = Array.make machines 0 in
        Array.iteri (fun j p -> load.(p) <- load.(p) + Restricted.size t j) assign;
        Alcotest.(check bool) "makespan ok" true (Array.for_all (fun l -> l <= target) load);
        (* Minimality: target - 1 must be infeasible. *)
        Alcotest.(check bool) "minimal" true
          (target = Array.fold_left max 0 sizes || Restricted.feasible t ~target:(target - 1) = None)
    end
  done

let test_restricted_reduction () =
  let rng = Rng.create 96 in
  for _ = 1 to 40 do
    let n = Rng.int_range rng 1 3 in
    let triples = Rng.int_range rng n 6 in
    let dm = Three_dm.random rng ~n ~triples in
    Alcotest.(check bool) "Theorem 6 gadget agrees" true (Restricted.verify_reduction dm)
  done

let test_restricted_gap_is_2_vs_3 () =
  (* On YES instances the gadget's optimum is exactly 2; the hardness gap
     of Theorem 6 is 2 vs 3. *)
  let rng = Rng.create 97 in
  for _ = 1 to 20 do
    let n = Rng.int_range rng 1 3 in
    let dm = Three_dm.random_yes rng ~n ~extra:(Rng.int rng 3) in
    match Restricted.of_three_dm dm with
    | gadget ->
      Alcotest.(check (option int)) "optimum 2"
        (Some 2)
        (if Restricted.jobs gadget = 0 then Some 2 else Restricted.min_makespan gadget)
    | exception Invalid_argument _ -> Alcotest.fail "planted yes must be covered"
  done

let () =
  Alcotest.run "rebal_reductions"
    [
      ( "three_dm",
        [
          Alcotest.test_case "known instances" `Quick test_three_dm_known;
          Alcotest.test_case "planted witness" `Quick test_three_dm_witness;
          Alcotest.test_case "vs brute force" `Quick test_three_dm_random_agree_bruteforce;
        ] );
      ( "conflict (Thm 7)",
        [
          Alcotest.test_case "basic feasibility" `Quick test_conflict_feasible_basic;
          Alcotest.test_case "reduction on yes" `Quick test_conflict_reduction_yes;
          Alcotest.test_case "reduction both directions" `Quick test_conflict_reduction_both_directions;
        ] );
      ( "move_min (Thm 5)",
        [
          Alcotest.test_case "subset sum" `Quick test_subset_sum;
          Alcotest.test_case "reduction" `Quick test_move_min_reduction;
          Alcotest.test_case "exact move counts" `Quick test_move_min_exact_count;
        ] );
      ( "restricted (Thm 6 / Cor 1)",
        [
          Alcotest.test_case "basic" `Quick test_restricted_basic;
          Alcotest.test_case "eligibility respected" `Quick test_restricted_respects_eligibility;
          Alcotest.test_case "reduction" `Quick test_restricted_reduction;
          Alcotest.test_case "gap 2 vs 3" `Quick test_restricted_gap_is_2_vs_3;
        ] );
    ]
