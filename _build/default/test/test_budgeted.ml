(* Tests for the arbitrary-cost PARTITION (§3.2): budget compliance,
   approximation quality against the exact solver, agreement with the
   unit-cost algorithm when all costs are 1, and the behaviour of the
   plan-cost curve. *)

module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module BP = Rebal_algo.Budgeted_partition
module Exact = Rebal_algo.Exact
module Rng = Rebal_workloads.Rng

let alpha = 0.05

let random_cost_instance rng =
  let n = Rng.int_range rng 1 8 in
  let m = Rng.int_range rng 1 4 in
  let sizes = Array.init n (fun _ -> Rng.int_range rng 1 20) in
  let costs = Array.init n (fun _ -> Rng.int_range rng 0 9) in
  let initial = Array.init n (fun _ -> Rng.int rng m) in
  (Instance.create ~costs ~sizes ~m initial, Rng.int_range rng 0 25)

let test_budget_respected () =
  let rng = Rng.create 60 in
  for _ = 1 to 200 do
    let inst, b = random_cost_instance rng in
    let a, _ = BP.solve ~alpha inst ~budget:b in
    if Assignment.relocation_cost inst a > b then
      Alcotest.failf "cost %d > budget %d" (Assignment.relocation_cost inst a) b
  done

let test_approximation_vs_exact () =
  let rng = Rng.create 61 in
  for _ = 1 to 200 do
    let inst, b = random_cost_instance rng in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Cost b) in
    let a, accepted = BP.solve ~alpha inst ~budget:b in
    let ms = Assignment.makespan inst a in
    (* Guarantee: ms <= 1.5 * accepted and accepted <= (1 + alpha) * opt
       (+1 for the integer grid). *)
    if 2 * ms > 3 * accepted then
      Alcotest.failf "makespan %d > 1.5 * accepted guess %d" ms accepted;
    let guess_cap = int_of_float (ceil ((1.0 +. alpha) *. float_of_int opt)) + 1 in
    if accepted > guess_cap then
      Alcotest.failf "accepted guess %d > (1+alpha)*opt bound %d (opt=%d)" accepted
        guess_cap opt
  done

let test_unit_costs_match_move_budget () =
  (* With all costs 1, a cost budget of k is exactly a move budget of k;
     the budgeted algorithm must then also be a 1.5(1+alpha)
     approximation against the move-budget optimum. *)
  let rng = Rng.create 62 in
  for _ = 1 to 200 do
    let n = Rng.int_range rng 1 8 in
    let m = Rng.int_range rng 1 4 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 20) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~sizes ~m initial in
    let k = Rng.int_range rng 0 n in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Moves k) in
    let a, _ = BP.solve ~alpha inst ~budget:k in
    Alcotest.(check bool) "moves within k" true (Assignment.moves inst a <= k);
    let ms = Assignment.makespan inst a in
    let bound = 1.5 *. (1.0 +. alpha) *. float_of_int opt +. 1.5 in
    if float_of_int ms > bound then
      Alcotest.failf "unit-cost budgeted partition %d > bound %.1f (opt=%d)" ms bound opt
  done

let test_zero_budget_moves_only_free_jobs () =
  let rng = Rng.create 63 in
  for _ = 1 to 100 do
    let inst, _ = random_cost_instance rng in
    let a, _ = BP.solve ~alpha inst ~budget:0 in
    List.iter
      (fun j -> Alcotest.(check int) "free move" 0 (Instance.cost inst j))
      (Assignment.moved_jobs inst a)
  done

let test_plan_cost_zero_at_initial_makespan () =
  let rng = Rng.create 64 in
  for _ = 1 to 100 do
    let inst, _ = random_cost_instance rng in
    match BP.plan_cost inst ~threshold:(Instance.initial_makespan inst) with
    | Some c -> Alcotest.(check int) "free at UB" 0 c
    | None -> Alcotest.fail "plan infeasible at initial makespan"
  done

let test_plan_cost_infeasible_when_too_many_larges () =
  (* m jobs of size 10 on one of 2 processors, threshold small enough that
     every job is large: 3 large jobs > 2 processors. *)
  let inst = Instance.create ~sizes:[| 10; 10; 10 |] ~m:2 [| 0; 0; 0 |] in
  Alcotest.(check (option int)) "infeasible" None (BP.plan_cost inst ~threshold:11)

let test_fptas_mode () =
  let rng = Rng.create 65 in
  for _ = 1 to 100 do
    let inst, b = random_cost_instance rng in
    let a, accepted = BP.solve ~alpha ~knapsack:(BP.Fptas 0.2) inst ~budget:b in
    Alcotest.(check bool) "fptas mode within budget" true
      (Assignment.relocation_cost inst a <= b);
    (* The knapsack approximation can overpay in cost but never violates
       the size caps, so the 1.5 shape bound on the accepted guess holds. *)
    Alcotest.(check bool) "fptas mode 1.5 of guess" true
      (2 * Assignment.makespan inst a <= 3 * accepted)
  done

let test_expensive_large_job_stays () =
  (* One overloaded processor with an expensive huge job and cheap small
     jobs: the algorithm should shed the cheap ones. *)
  let sizes = [| 10; 2; 2; 2; 2; 2 |] in
  let costs = [| 100; 1; 1; 1; 1; 1 |] in
  let initial = [| 0; 0; 0; 0; 0; 0 |] in
  let inst = Instance.create ~costs ~sizes ~m:2 initial in
  let a, _ = BP.solve ~alpha inst ~budget:5 in
  Alcotest.(check int) "huge job unmoved" 0 (Assignment.processor a 0);
  Alcotest.(check bool) "cost within budget" true (Assignment.relocation_cost inst a <= 5);
  Alcotest.(check bool) "makespan improved" true
    (Assignment.makespan inst a < Instance.initial_makespan inst)


let test_knapsack_modes_agree () =
  (* All exact knapsack modes see the same optimal removal costs, so the
     plan-cost curve and the accepted threshold must be identical. The
     chosen kept sets may be different (equal-value ties), so the built
     assignments are only required to satisfy the same guarantees. *)
  let rng = Rng.create 66 in
  for _ = 1 to 100 do
    let inst, b = random_cost_instance rng in
    let solve mode = BP.solve ~alpha ~knapsack:mode inst ~budget:b in
    let a_auto, t_auto = solve BP.Auto in
    let a_dp, t_dp = solve BP.Exact_dp in
    let a_bb, t_bb = solve BP.Branch_and_bound in
    Alcotest.(check int) "auto = dp threshold" t_dp t_auto;
    Alcotest.(check int) "bb = dp threshold" t_dp t_bb;
    List.iter
      (fun (label, t) ->
        Alcotest.(check (option int)) label (BP.plan_cost ~knapsack:BP.Exact_dp inst ~threshold:t)
          (BP.plan_cost ~knapsack:BP.Branch_and_bound inst ~threshold:t))
      [ ("plan cost parity at accepted threshold", t_dp) ];
    List.iter
      (fun a ->
        Alcotest.(check bool) "budget ok" true (Assignment.relocation_cost inst a <= b);
        Alcotest.(check bool) "1.5 of threshold" true
          (2 * Assignment.makespan inst a <= 3 * t_dp))
      [ a_auto; a_dp; a_bb ]
  done

let () =
  Alcotest.run "rebal_budgeted"
    [
      ( "budgeted_partition",
        [
          Alcotest.test_case "budget respected" `Quick test_budget_respected;
          Alcotest.test_case "1.5(1+a) vs exact" `Quick test_approximation_vs_exact;
          Alcotest.test_case "unit costs = move budget" `Quick test_unit_costs_match_move_budget;
          Alcotest.test_case "zero budget" `Quick test_zero_budget_moves_only_free_jobs;
          Alcotest.test_case "plan free at initial makespan" `Quick test_plan_cost_zero_at_initial_makespan;
          Alcotest.test_case "too many larges infeasible" `Quick test_plan_cost_infeasible_when_too_many_larges;
          Alcotest.test_case "fptas knapsack mode" `Quick test_fptas_mode;
          Alcotest.test_case "expensive large job stays" `Quick test_expensive_large_job_stays;
          Alcotest.test_case "knapsack modes agree" `Quick test_knapsack_modes_agree;
        ] );
    ]
