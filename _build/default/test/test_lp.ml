(* Tests for the LP substrate: simplex on known problems and randomized
   comparisons against brute-force vertex enumeration on 2-variable
   problems; min-cost-flow on known graphs; and the end-to-end
   Shmoys–Tardos guarantee (cost within budget, makespan within 2x the
   exact optimum) on random small instances. *)

module Simplex = Rebal_lp.Simplex
module Mcmf = Rebal_lp.Mcmf
module Gap = Rebal_lp.Gap
module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module Exact = Rebal_algo.Exact
module Rng = Rebal_workloads.Rng

let check_float msg expected got =
  if abs_float (expected -. got) > 1e-6 then
    Alcotest.failf "%s: expected %.9f got %.9f" msg expected got

let test_simplex_known_max () =
  (* max 3x + 5y st x <= 4; 2y <= 12; 3x + 2y <= 18 -> 36 at (2,6). *)
  let p =
    {
      Simplex.maximize = true;
      objective = [| 3.0; 5.0 |];
      constraints =
        [
          ([| 1.0; 0.0 |], Simplex.Le, 4.0);
          ([| 0.0; 2.0 |], Simplex.Le, 12.0);
          ([| 3.0; 2.0 |], Simplex.Le, 18.0);
        ];
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal { x; value } ->
    check_float "value" 36.0 value;
    check_float "x" 2.0 x.(0);
    check_float "y" 6.0 x.(1)
  | _ -> Alcotest.fail "expected optimum"

let test_simplex_known_min_with_ge () =
  (* min 2x + 3y st x + y >= 10; x <= 8; y <= 8 -> 22 at (8,2). *)
  let p =
    {
      Simplex.maximize = false;
      objective = [| 2.0; 3.0 |];
      constraints =
        [
          ([| 1.0; 1.0 |], Simplex.Ge, 10.0);
          ([| 1.0; 0.0 |], Simplex.Le, 8.0);
          ([| 0.0; 1.0 |], Simplex.Le, 8.0);
        ];
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal { value; _ } -> check_float "value" 22.0 value
  | _ -> Alcotest.fail "expected optimum"

let test_simplex_equality () =
  (* min x + y st x + 2y = 4; x, y >= 0 -> 2 at (0,2). *)
  let p =
    {
      Simplex.maximize = false;
      objective = [| 1.0; 1.0 |];
      constraints = [ ([| 1.0; 2.0 |], Simplex.Eq, 4.0) ];
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal { value; _ } -> check_float "value" 2.0 value
  | _ -> Alcotest.fail "expected optimum"

let test_simplex_infeasible () =
  let p =
    {
      Simplex.maximize = true;
      objective = [| 1.0 |];
      constraints = [ ([| 1.0 |], Simplex.Le, 1.0); ([| 1.0 |], Simplex.Ge, 2.0) ];
    }
  in
  match Simplex.solve p with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  let p =
    { Simplex.maximize = true; objective = [| 1.0 |]; constraints = [ ([| -1.0 |], Simplex.Le, 1.0) ] }
  in
  match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

(* Random 2-variable LPs vs brute-force over constraint intersections. *)
let test_simplex_random_2d () =
  let rng = Rng.create 80 in
  for _ = 1 to 200 do
    let rand_coef () = float_of_int (Rng.int_range rng 1 9) in
    let nc = Rng.int_range rng 1 4 in
    let rows =
      List.init nc (fun _ ->
          ([| rand_coef (); rand_coef () |], Simplex.Le, float_of_int (Rng.int_range rng 5 40)))
    in
    let c = [| rand_coef (); rand_coef () |] in
    (* Positive coefficients and <= constraints with positive rhs: bounded,
       feasible at the origin. Brute force over all vertex candidates. *)
    let candidates = ref [ (0.0, 0.0) ] in
    let rows_arr = Array.of_list rows in
    let axis_points (row, _, b) = [ (b /. row.(0), 0.0); (0.0, b /. row.(1)) ] in
    Array.iter (fun r -> candidates := axis_points r @ !candidates) rows_arr;
    Array.iteri
      (fun i (r1, _, b1) ->
        Array.iteri
          (fun j (r2, _, b2) ->
            if i < j then begin
              let det = (r1.(0) *. r2.(1)) -. (r1.(1) *. r2.(0)) in
              if abs_float det > 1e-9 then begin
                let x = ((b1 *. r2.(1)) -. (r1.(1) *. b2)) /. det in
                let y = ((r1.(0) *. b2) -. (b1 *. r2.(0))) /. det in
                candidates := (x, y) :: !candidates
              end
            end)
          rows_arr)
      rows_arr;
    let feasible (x, y) =
      x >= -1e-9 && y >= -1e-9
      && Array.for_all (fun (r, _, b) -> (r.(0) *. x) +. (r.(1) *. y) <= b +. 1e-6) rows_arr
    in
    let best =
      List.fold_left
        (fun acc (x, y) ->
          if feasible (x, y) then Stdlib.max acc ((c.(0) *. x) +. (c.(1) *. y)) else acc)
        0.0 !candidates
    in
    match Simplex.solve { Simplex.maximize = true; objective = c; constraints = rows } with
    | Simplex.Optimal { value; _ } ->
      if abs_float (value -. best) > 1e-5 then
        Alcotest.failf "simplex %.6f vs brute force %.6f" value best
    | _ -> Alcotest.fail "expected optimum"
  done

let test_mcmf_known () =
  (* Two paths 0->1->3 (cost 1+1) and 0->2->3 (cost 2+2), caps 1 each:
     max flow 2, min cost 6. *)
  let g = Mcmf.create 4 in
  Mcmf.add_edge g ~src:0 ~dst:1 ~capacity:1 ~cost:1;
  Mcmf.add_edge g ~src:1 ~dst:3 ~capacity:1 ~cost:1;
  Mcmf.add_edge g ~src:0 ~dst:2 ~capacity:1 ~cost:2;
  Mcmf.add_edge g ~src:2 ~dst:3 ~capacity:1 ~cost:2;
  let flow, cost = Mcmf.min_cost_max_flow g ~source:0 ~sink:3 in
  Alcotest.(check int) "flow" 2 flow;
  Alcotest.(check int) "cost" 6 cost

let test_mcmf_prefers_cheap () =
  (* Parallel edges: capacity forces only one unit; the cheap one wins. *)
  let g = Mcmf.create 2 in
  Mcmf.add_edge g ~src:0 ~dst:1 ~capacity:1 ~cost:5;
  Mcmf.add_edge g ~src:0 ~dst:1 ~capacity:1 ~cost:1;
  let sinkless = Mcmf.min_cost_max_flow g ~source:0 ~sink:1 in
  Alcotest.(check (pair int int)) "flow/cost" (2, 6) sinkless;
  Alcotest.(check int) "cheap edge used" 1 (Mcmf.edge_flow g 1)

let test_mcmf_assignment_matrix () =
  (* 3x3 assignment problem with a known optimum. *)
  let costs = [| [| 4; 1; 3 |]; [| 2; 0; 5 |]; [| 3; 2; 2 |] |] in
  let g = Mcmf.create 8 in
  for i = 0 to 2 do
    Mcmf.add_edge g ~src:0 ~dst:(1 + i) ~capacity:1 ~cost:0
  done;
  for i = 0 to 2 do
    for j = 0 to 2 do
      Mcmf.add_edge g ~src:(1 + i) ~dst:(4 + j) ~capacity:1 ~cost:costs.(i).(j)
    done
  done;
  for j = 0 to 2 do
    Mcmf.add_edge g ~src:(4 + j) ~dst:7 ~capacity:1 ~cost:0
  done;
  let flow, cost = Mcmf.min_cost_max_flow g ~source:0 ~sink:7 in
  Alcotest.(check int) "flow" 3 flow;
  (* Optimal: (0,1)+(1,0)+(2,2) = 1 + 2 + 2 = 5. *)
  Alcotest.(check int) "cost" 5 cost

let random_cost_instance rng =
  let n = Rng.int_range rng 1 7 in
  let m = Rng.int_range rng 1 3 in
  let sizes = Array.init n (fun _ -> Rng.int_range rng 1 20) in
  let costs = Array.init n (fun _ -> Rng.int_range rng 0 9) in
  let initial = Array.init n (fun _ -> Rng.int rng m) in
  (Instance.create ~costs ~sizes ~m initial, Rng.int_range rng 0 20)

let test_gap_two_approximation () =
  let rng = Rng.create 81 in
  for _ = 1 to 100 do
    let inst, b = random_cost_instance rng in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Cost b) in
    let a, target = Gap.solve inst ~budget:b in
    if Assignment.relocation_cost inst a > b then
      Alcotest.failf "gap cost %d > budget %d" (Assignment.relocation_cost inst a) b;
    let ms = Assignment.makespan inst a in
    if ms > 2 * opt then Alcotest.failf "gap makespan %d > 2*opt (opt=%d)" ms opt;
    (* The accepted target is an LP lower bound on the optimum. *)
    if target > opt then Alcotest.failf "gap target %d > opt %d" target opt
  done

let test_gap_infeasible_target () =
  let inst = Instance.create ~sizes:[| 10; 10 |] ~m:2 [| 0; 0 |] in
  Alcotest.(check bool) "target below max size" true
    (Gap.feasible_target inst ~budget:5 ~target:9 = None);
  (* Budget 0 cannot pay for any move: target below initial makespan is
     infeasible. *)
  Alcotest.(check bool) "budget zero" true
    (Gap.feasible_target inst ~budget:0 ~target:10 = None);
  Alcotest.(check bool) "budget one suffices" true
    (Gap.feasible_target inst ~budget:1 ~target:10 <> None)


let test_gap_constrained () =
  (* Against the brute-force restricted-assignment solver: eligibility is
     respected, cost within budget, makespan within twice the constrained
     optimum. *)
  let module Restricted = Rebal_reductions.Restricted in
  let rng = Rng.create 82 in
  for _ = 1 to 60 do
    let n = Rng.int_range rng 1 6 in
    let m = Rng.int_range rng 1 3 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 15) in
    let eligible =
      Array.init n (fun _ ->
          let count = Rng.int_range rng 1 m in
          let all = Array.init m Fun.id in
          Rng.shuffle rng all;
          List.sort compare (Array.to_list (Array.sub all 0 count)))
    in
    (* Start every job on its first eligible machine so zero-cost staying
       is eligible too. *)
    let initial = Array.map List.hd eligible in
    let inst = Instance.create ~sizes ~m initial in
    let restricted = Restricted.create ~sizes ~machines:m ~eligible in
    let opt = Option.get (Restricted.min_makespan restricted) in
    match Gap.solve_constrained inst ~eligible ~budget:n with
    | None -> Alcotest.fail "constrained gap returned None on feasible input"
    | Some (a, target) ->
      Array.iteri
        (fun i _ ->
          Alcotest.(check bool) "eligible placement" true
            (List.mem (Assignment.processor a i) eligible.(i)))
        sizes;
      Alcotest.(check bool) "within budget" true (Assignment.moves inst a <= n);
      let ms = Assignment.makespan inst a in
      if ms > 2 * opt then Alcotest.failf "constrained gap %d > 2 * opt %d" ms opt;
      Alcotest.(check bool) "target lower-bounds opt" true (target <= opt)
  done

let test_gap_constrained_singleton_eligibility () =
  (* Everything pinned: the only feasible placement is the pinned one. *)
  let inst = Instance.create ~sizes:[| 4; 6; 2 |] ~m:2 [| 0; 1; 0 |] in
  let eligible = [| [ 0 ]; [ 1 ]; [ 0 ] |] in
  match Gap.solve_constrained inst ~eligible ~budget:0 with
  | None -> Alcotest.fail "pinned placement is feasible"
  | Some (a, _) ->
    Alcotest.(check int) "makespan is pinned load" 6 (Assignment.makespan inst a);
    Alcotest.(check int) "no moves" 0 (Assignment.moves inst a)


(* Brute-force GAP optimum: min makespan over all assignments with
   matrix cost within budget. *)
let gap_brute inst costs budget =
  let n = Instance.n inst in
  let m = Instance.m inst in
  let best = ref None in
  let load = Array.make m 0 in
  let rec enum i cost =
    if cost > budget then ()
    else if i = n then begin
      let ms = Array.fold_left max 0 load in
      match !best with
      | Some b when b <= ms -> ()
      | _ -> best := Some ms
    end
    else
      for j = 0 to m - 1 do
        load.(j) <- load.(j) + Instance.size inst i;
        enum (i + 1) (cost + costs.(i).(j));
        load.(j) <- load.(j) - Instance.size inst i
      done
  in
  enum 0 0;
  !best

let test_gap_general_two_approx () =
  let rng = Rng.create 83 in
  for _ = 1 to 60 do
    let n = Rng.int_range rng 1 6 in
    let m = Rng.int_range rng 1 3 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 15) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~sizes ~m initial in
    let costs = Array.init n (fun _ -> Array.init m (fun _ -> Rng.int rng 8)) in
    let budget = Rng.int_range rng 0 25 in
    let brute = gap_brute inst costs budget in
    match (Gap.solve_general inst ~costs ~budget, brute) with
    | None, None -> ()
    | None, Some opt ->
      (* LP feasibility relaxes integrality, so an integrally feasible
         budget can never be LP-infeasible at target >= opt. *)
      Alcotest.failf "solve_general None but integral optimum %d exists" opt
    | Some (_, _, cost), None ->
      Alcotest.failf "solve_general cost %d but brute force says infeasible" cost
    | Some (a, target, cost), Some opt ->
      Alcotest.(check bool) "cost within budget" true (cost <= budget);
      let ms = Assignment.makespan inst a in
      if ms > 2 * opt then Alcotest.failf "general gap %d > 2 * opt %d" ms opt;
      Alcotest.(check bool) "target lower-bounds opt" true (target <= opt)
  done

let test_gap_general_on_theorem6_gadget () =
  (* The Theorem 6 gadget as a two-valued cost matrix: eligible pairs
     cost p = 1, the rest q = 1000; budget = (#jobs) * p. On YES
     instances the optimum is 2, so the rounding must give <= 4 within
     budget (and in particular never touch a q-cost pair). *)
  let module Tdm = Rebal_reductions.Three_dm in
  let module Restricted = Rebal_reductions.Restricted in
  let rng = Rng.create 84 in
  for _ = 1 to 15 do
    let dm = Tdm.random_yes rng ~n:(Rng.int_range rng 1 3) ~extra:(Rng.int rng 3) in
    let gadget = Restricted.of_three_dm dm in
    let jobs = Restricted.jobs gadget in
    if jobs > 0 then begin
      let machines = Restricted.machines gadget in
      let sizes = Array.init jobs (Restricted.size gadget) in
      let initial = Array.make jobs 0 in
      let inst = Instance.create ~sizes ~m:machines initial in
      let costs =
        Array.init jobs (fun i ->
            Array.init machines (fun j ->
                if List.mem j (Restricted.eligible gadget i) then 1 else 1000))
      in
      match Gap.solve_general inst ~costs ~budget:jobs with
      | None -> Alcotest.fail "gadget LP infeasible on a YES instance"
      | Some (a, _, cost) ->
        Alcotest.(check bool) "all placements eligible" true (cost <= jobs);
        let ms = Assignment.makespan inst a in
        Alcotest.(check bool) "within 2x the gadget optimum (2)" true (ms <= 4);
        Array.iteri
          (fun i _ ->
            Alcotest.(check bool) "eligible machine" true
              (List.mem (Assignment.processor a i) (Restricted.eligible gadget i)))
          sizes
    end
  done


let test_simplex_degenerate_and_redundant () =
  (* Redundant equality rows leave an artificial basic at zero after
     phase 1; the solver must still optimize correctly. *)
  let p =
    {
      Simplex.maximize = true;
      objective = [| 1.0; 1.0 |];
      constraints =
        [
          ([| 1.0; 1.0 |], Simplex.Eq, 4.0);
          ([| 2.0; 2.0 |], Simplex.Eq, 8.0);
          ([| 1.0; 0.0 |], Simplex.Le, 3.0);
        ];
    }
  in
  (match Simplex.solve p with
  | Simplex.Optimal { value; _ } -> check_float "redundant eq" 4.0 value
  | _ -> Alcotest.fail "expected optimum");
  (* Degenerate vertex (multiple constraints tight at the optimum). *)
  let d =
    {
      Simplex.maximize = true;
      objective = [| 1.0 |];
      constraints =
        [ ([| 1.0 |], Simplex.Le, 2.0); ([| 2.0 |], Simplex.Le, 4.0); ([| 3.0 |], Simplex.Le, 6.0) ];
    }
  in
  match Simplex.solve d with
  | Simplex.Optimal { value; _ } -> check_float "degenerate" 2.0 value
  | _ -> Alcotest.fail "expected optimum"

let test_simplex_zero_objective () =
  let p =
    {
      Simplex.maximize = false;
      objective = [| 0.0; 0.0 |];
      constraints = [ ([| 1.0; 1.0 |], Simplex.Ge, 2.0) ];
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal { value; x } ->
    check_float "zero objective value" 0.0 value;
    Alcotest.(check bool) "feasible point" true (x.(0) +. x.(1) >= 2.0 -. 1e-6)
  | _ -> Alcotest.fail "expected optimum"

let test_mcmf_disconnected_and_zero_cap () =
  let g = Mcmf.create 4 in
  Mcmf.add_edge g ~src:0 ~dst:1 ~capacity:0 ~cost:1;
  Mcmf.add_edge g ~src:2 ~dst:3 ~capacity:5 ~cost:1;
  let flow, cost = Mcmf.min_cost_max_flow g ~source:0 ~sink:3 in
  Alcotest.(check (pair int int)) "no path" (0, 0) (flow, cost);
  Alcotest.(check int) "no flow on zero-cap edge" 0 (Mcmf.edge_flow g 0);
  (match Mcmf.create (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative node count accepted");
  let g2 = Mcmf.create 2 in
  match Mcmf.add_edge g2 ~src:0 ~dst:5 ~capacity:1 ~cost:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range edge accepted"

let () =
  Alcotest.run "rebal_lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "known maximization" `Quick test_simplex_known_max;
          Alcotest.test_case "known minimization with >=" `Quick test_simplex_known_min_with_ge;
          Alcotest.test_case "equality constraints" `Quick test_simplex_equality;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "random 2d vs brute force" `Quick test_simplex_random_2d;
          Alcotest.test_case "degenerate / redundant rows" `Quick test_simplex_degenerate_and_redundant;
          Alcotest.test_case "zero objective" `Quick test_simplex_zero_objective;
        ] );
      ( "mcmf",
        [
          Alcotest.test_case "known network" `Quick test_mcmf_known;
          Alcotest.test_case "prefers cheap edges" `Quick test_mcmf_prefers_cheap;
          Alcotest.test_case "assignment matrix" `Quick test_mcmf_assignment_matrix;
          Alcotest.test_case "disconnected / zero capacity" `Quick test_mcmf_disconnected_and_zero_cap;
        ] );
      ( "gap",
        [
          Alcotest.test_case "2-approximation vs exact" `Quick test_gap_two_approximation;
          Alcotest.test_case "infeasible targets" `Quick test_gap_infeasible_target;
          Alcotest.test_case "constrained variant (Cor 1)" `Quick test_gap_constrained;
          Alcotest.test_case "constrained, pinned jobs" `Quick test_gap_constrained_singleton_eligibility;
          Alcotest.test_case "general costs 2-approx" `Quick test_gap_general_two_approx;
          Alcotest.test_case "Theorem 6 gadget through the LP" `Quick test_gap_general_on_theorem6_gadget;
        ] );
    ]
